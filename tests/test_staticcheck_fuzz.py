"""Fuzz-differential soundness harness (acceptance: every shipped
contract at >= 3 seeds x >= 200 events with 100% RWSet coverage and
full conflict-verdict agreement), plus the CLI and SARIF export."""

import json

import pytest

from repro.staticcheck.__main__ import main as staticcheck_main
from repro.staticcheck.fuzz import default_cases, fuzz_case, run_fuzz

SEEDS = (1, 2, 3)
N_EVENTS = 200

CASES = default_cases()


class TestFuzzSoundness:
    @pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_contract_sound_at_seed(self, case, seed):
        outcome = fuzz_case(case, n_events=N_EVENTS, seed=seed)
        assert outcome.ok, [
            f"{v.kind}: {v.detail}" for v in outcome.violations[:5]
        ]
        # the trace must actually exercise the interesting regimes
        assert outcome.codes.get("VALID", 0) > 0
        assert outcome.codes.get("CONTRACT_REJECTED", 0) > 0
        assert outcome.keys_checked > 0
        assert outcome.pairs_checked > 0

    def test_traces_hit_mvcc_conflicts(self):
        # MVCC downgrades are the whole point of the attribution check;
        # across the default cases at one seed they must occur.
        outcomes = run_fuzz(n_events=N_EVENTS, seed=SEEDS[0])
        assert sum(
            o.codes.get("MVCC_READ_CONFLICT", 0) for o in outcomes
        ) > 0

    def test_outcome_json_shape(self):
        outcome = fuzz_case(CASES[0], n_events=40, seed=0)
        payload = json.loads(json.dumps(outcome.to_json()))
        assert payload["case"] == CASES[0].name
        assert payload["ok"] is True
        assert set(payload) >= {
            "seed", "n_events", "blocks", "codes", "violations",
            "keys_checked", "pairs_checked",
        }

    def test_deterministic_given_seed(self):
        first = fuzz_case(CASES[1], n_events=60, seed=9).to_json()
        second = fuzz_case(CASES[1], n_events=60, seed=9).to_json()
        assert first == second


class TestCli:
    def test_fuzz_subcommand_exits_zero(self, capsys):
        assert staticcheck_main(["--fuzz", "40", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert out.count("SOUND") == len(CASES)

    def test_multi_target_json(self, capsys):
        code = staticcheck_main([
            "repro.core.doom_contract:DoomContract",
            "repro.core.monopoly_contract:MonopolyContract",
            "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert [entry["contract"] for entry in payload] == [
            "DoomContract", "MonopolyContract",
        ]
        assert all(entry["ok"] for entry in payload)

    def test_sarif_export_shape(self, tmp_path, capsys):
        sarif_path = tmp_path / "findings.sarif"
        code = staticcheck_main([
            "repro.core.doom_contract:DoomContract",
            "--sarif", str(sarif_path),
        ])
        assert code == 0
        log = json.loads(sarif_path.read_text())
        assert log["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in log["$schema"]
        run = log["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-staticcheck"
        rule_ids = {rule["id"] for rule in driver["rules"]}
        assert {"DET001", "CHT001", "CHT004"} <= rule_ids
        assert run["results"] == []  # Doom is clean

    def test_sarif_results_carry_locations_and_suppressions(self, tmp_path):
        from repro.staticcheck import to_sarif
        from repro.staticcheck.vulnfixtures import FIXTURES
        from repro.staticcheck import taint_source

        vuln = next(f for f in FIXTURES if f.name == "unguarded-grant")
        waived = next(f for f in FIXTURES if f.name == "waived-mint")
        report = taint_source(vuln.source, class_name=vuln.class_name)
        waived_report = taint_source(
            waived.source, class_name=waived.class_name
        )
        log = to_sarif([
            {"uri": "fixtures/vuln.py", "diagnostics": report.diagnostics},
            {"uri": "fixtures/waived.py", "waived": waived_report.waived},
        ])
        results = log["runs"][0]["results"]
        active = [r for r in results if "suppressions" not in r]
        suppressed = [r for r in results if "suppressions" in r]
        assert active and suppressed
        for result in results:
            location = result["locations"][0]["physicalLocation"]
            assert location["region"]["startLine"] >= 1
            assert location["artifactLocation"]["uri"].startswith("fixtures/")
        assert all(r["ruleId"].startswith("CHT") for r in results)

    def test_fuzz_rejects_targets(self):
        with pytest.raises(SystemExit) as excinfo:
            staticcheck_main([
                "repro.core.doom_contract:DoomContract", "--fuzz", "10",
            ])
        assert excinfo.value.code == 2
