"""End-to-end chaos runner tests: seeded runs stay green, timelines are
deterministic, buggy peers are caught and schedules shrink (the PR's
acceptance criteria)."""

import pytest

from repro.chaos import Scenario, get_scenario, run_scenario, shrink_failing_schedule
from repro.chaos.__main__ import main as chaos_main

# A catalog-shaped but smaller scenario so every test stays fast.
MINI_CHURN = Scenario(
    name="mini-churn",
    description="two crash/restart cycles over a 4-peer chain",
    n_peers=4,
    duration_ms=6_000.0,
    churn=2,
    workload_interval_ms=100.0,
    settle_ms=1_000.0,
)

MINI_CALM = Scenario(
    name="mini-calm",
    description="no faults, 4 peers",
    n_peers=4,
    duration_ms=4_000.0,
    workload_interval_ms=100.0,
    settle_ms=500.0,
)

# With seed 1 the generated mini-churn schedule crashes peer0 first and
# peer1 (the catchup-corruption victim) third — pinned by the tests below.
PEER1_CRASH_SEED = 1


class TestHealthyRuns:
    def test_smoke_scenario_all_green(self):
        result = run_scenario("smoke", seed=42)
        assert result.ok, [v.describe() for v in result.violations]
        assert result.faults_applied == result.faults_in_schedule > 0
        assert result.probe_codes == ["VALID", "VALID", "VALID"]
        assert result.committed_height > 0

    def test_mini_churn_converges(self):
        result = run_scenario(MINI_CHURN, seed=PEER1_CRASH_SEED)
        assert result.ok, [v.describe() for v in result.violations]
        assert result.workload_summary.get("VALID", 0) > 0

    def test_block_level_conflicts_are_exercised(self):
        """The workload must keep hitting the block-level KVS lock, or
        the MVCC invariant is vacuous."""
        result = run_scenario(MINI_CALM, seed=0)
        assert result.ok
        assert result.workload_summary.get("MVCC_READ_CONFLICT", 0) > 0


class TestDeterminism:
    def test_same_seed_reproduces_identical_timeline(self):
        a = run_scenario(MINI_CHURN, seed=7)
        b = run_scenario(MINI_CHURN, seed=7)
        assert a.timeline == b.timeline
        assert a.timeline_digest() == b.timeline_digest()
        assert a.workload_summary == b.workload_summary
        assert a.ok == b.ok

    def test_different_seed_different_timeline(self):
        a = run_scenario(MINI_CHURN, seed=7)
        b = run_scenario(MINI_CHURN, seed=8)
        assert a.timeline_digest() != b.timeline_digest()


class TestBuggyPeersAreCaught:
    def test_platform_mvcc_bypass_caught_without_faults(self):
        result = run_scenario(MINI_CALM, seed=0, buggy="mvcc-bypass")
        assert not result.ok
        assert any(v.invariant == "mvcc" for v in result.violations)

    def test_mvcc_bypass_shrinks_to_empty_prefix(self):
        report = shrink_failing_schedule(MINI_CALM, seed=0, buggy="mvcc-bypass")
        assert report.failed
        assert report.minimal_faults == 0  # the bug needs no faults at all

    def test_catchup_corruption_needs_a_crash_to_surface(self):
        clean = run_scenario(MINI_CALM, seed=0, buggy="catchup-corruption")
        assert clean.ok  # never catches up, so the bug stays dormant
        broken = run_scenario(
            MINI_CHURN, seed=PEER1_CRASH_SEED, buggy="catchup-corruption"
        )
        assert not broken.ok

    def test_catchup_corruption_shrinks_to_crash_prefix(self):
        report = shrink_failing_schedule(
            MINI_CHURN, seed=PEER1_CRASH_SEED, buggy="catchup-corruption"
        )
        assert report.failed
        # The minimal prefix must include peer1's crash (the third event)
        # and nothing after it.
        assert report.minimal_faults == 3
        kinds = [e.kind for e in report.minimal_schedule.events]
        assert kinds[-1] == "peer-crash"
        assert report.minimal_schedule.events[-1].targets == ("peer1",)
        assert "--faults 3" in report.replay()
        assert "--buggy catchup-corruption" in report.replay()

    def test_replay_command_reproduces_failure(self):
        report = shrink_failing_schedule(
            MINI_CHURN, seed=PEER1_CRASH_SEED, buggy="catchup-corruption"
        )
        replayed = run_scenario(
            MINI_CHURN, seed=PEER1_CRASH_SEED,
            max_faults=report.minimal_faults, buggy="catchup-corruption",
        )
        assert not replayed.ok

    def test_unknown_fixture_rejected(self):
        with pytest.raises(KeyError):
            run_scenario(MINI_CALM, seed=0, buggy="no-such-bug")


class TestCLI:
    def test_list_scenarios(self, capsys):
        assert chaos_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "churn-partition-ddos" in out
        assert "smoke" in out

    def test_green_run_exits_zero(self, capsys):
        code = chaos_main(["--seed", "42", "--scenario", "smoke"])
        out = capsys.readouterr().out
        assert code == 0
        assert "all green" in out

    def test_json_output(self, capsys):
        import json

        code = chaos_main(["--seed", "42", "--scenario", "smoke", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["ok"] is True
        assert payload["scenario"] == "smoke"
        assert payload["timeline_digest"]

    def test_unknown_scenario_errors(self):
        with pytest.raises(SystemExit):
            chaos_main(["--scenario", "nope"])

    def test_catalog_names_resolve(self):
        assert get_scenario("churn-partition-ddos").n_peers == 8
