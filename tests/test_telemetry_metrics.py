"""Unit tests for the telemetry metrics registry and exporters."""

import math

import pytest

from repro.telemetry import (
    FIG2_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    prometheus_text,
)


# ----------------------------------------------------------------------
# counters and gauges


def test_counter_increments_and_rejects_negative():
    c = Counter("txs")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_set_and_callback():
    g = Gauge("depth")
    g.set(7)
    assert g.value == 7
    backing = {"n": 3}
    cb = Gauge("cb", fn=lambda: backing["n"])
    assert cb.value == 3
    backing["n"] = 9
    assert cb.value == 9
    with pytest.raises(RuntimeError):
        cb.set(1)


# ----------------------------------------------------------------------
# histogram bucket correctness


def test_histogram_le_semantics():
    h = Histogram("lat", boundaries=(10.0, 20.0, 50.0))
    # Prometheus `le`: a bucket counts observations <= its bound.
    h.observe(10.0)   # first bucket (le=10), boundary inclusive
    h.observe(10.001) # second bucket (le=20)
    h.observe(20.0)   # second bucket
    h.observe(49.9)   # third bucket (le=50)
    h.observe(50.1)   # +Inf overflow
    assert h.bucket_counts == [1, 2, 1, 1]
    assert h.count == 5
    assert h.sum == pytest.approx(10.0 + 10.001 + 20.0 + 49.9 + 50.1)


def test_histogram_cumulative_is_monotone_and_ends_at_count():
    h = Histogram("lat", boundaries=FIG2_BUCKETS_MS)
    for v in (1, 49, 50, 51, 99, 100, 240, 600, 601, 10_000):
        h.observe(v)
    cum = h.cumulative()
    counts = [n for _, n in cum]
    assert counts == sorted(counts)
    assert math.isinf(cum[-1][0])
    assert cum[-1][1] == h.count == 10


def test_histogram_bucket_of_matches_observe():
    h = Histogram("lat", boundaries=(1.0, 5.0, 25.0))
    for value in (0.0, 1.0, 1.5, 5.0, 24.9, 25.0, 26.0):
        before = list(h.bucket_counts)
        h.observe(value)
        changed = [
            i for i, (a, b) in enumerate(zip(before, h.bucket_counts)) if a != b
        ]
        assert changed == [h.bucket_of(value)]


def test_histogram_rejects_bad_boundaries():
    with pytest.raises(ValueError):
        Histogram("h", boundaries=())
    with pytest.raises(ValueError):
        Histogram("h", boundaries=(5.0, 5.0))
    with pytest.raises(ValueError):
        Histogram("h", boundaries=(1.0, math.inf))


# ----------------------------------------------------------------------
# registry


def test_registry_get_or_create_identity_and_labels():
    reg = MetricsRegistry()
    a = reg.counter("txs", "help text")
    assert reg.counter("txs") is a
    by_stage = reg.histogram("stage_ms", stage="commit")
    other = reg.histogram("stage_ms", stage="gossip")
    assert by_stage is not other
    assert reg.get("stage_ms", stage="commit") is by_stage
    assert reg.get("missing") is None


def test_registry_kind_collision_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.histogram("x")


# ----------------------------------------------------------------------
# Prometheus exporter golden output


def test_prometheus_text_golden():
    reg = MetricsRegistry()
    reg.counter("txs_total", "transactions").inc(3)
    reg.gauge("queue_depth", "orderer queue").set(2)
    h = reg.histogram("lat_ms", "latency", boundaries=(10.0, 50.0))
    h.observe(5.0)
    h.observe(12.5)
    h.observe(99.0)
    expected = "\n".join([
        "# HELP lat_ms latency",
        "# TYPE lat_ms histogram",
        'lat_ms_bucket{le="10"} 1',
        'lat_ms_bucket{le="50"} 2',
        'lat_ms_bucket{le="+Inf"} 3',
        "lat_ms_sum 116.5",
        "lat_ms_count 3",
        "# HELP queue_depth orderer queue",
        "# TYPE queue_depth gauge",
        "queue_depth 2",
        "# HELP txs_total transactions",
        "# TYPE txs_total counter",
        "txs_total 3",
    ]) + "\n"
    assert prometheus_text(reg) == expected


def test_prometheus_text_labelled_series_share_one_header():
    reg = MetricsRegistry()
    reg.counter("faults", "by kind", kind="peer-crash").inc()
    reg.counter("faults", "by kind", kind="partition").inc(2)
    text = prometheus_text(reg)
    assert text.count("# TYPE faults counter") == 1
    assert 'faults{kind="partition"} 2' in text
    assert 'faults{kind="peer-crash"} 1' in text
