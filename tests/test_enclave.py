"""Tests for the secure-enclave model (overhead + rollback protection)."""

import dataclasses

import pytest

from repro.blockchain import FabricConfig
from repro.enclave import (
    CRYPTO_MS_PER_EVENT,
    DEFAULT_OVERHEAD,
    EnclaveError,
    RollbackError,
    SecureEnclave,
    with_enclave,
)


class TestOverheadModel:
    def test_costs_scaled_by_overhead(self):
        base = FabricConfig()
        enclaved = with_enclave(base, overhead=0.2, crypto_ms=0.0)
        assert enclaved.exec_ms_per_tx == pytest.approx(base.exec_ms_per_tx * 1.2)
        assert enclaved.vote_verify_ms == pytest.approx(base.vote_verify_ms * 1.2)
        assert enclaved.sync_verify_ms == pytest.approx(base.sync_verify_ms * 1.2)

    def test_crypto_cost_added_per_tx(self):
        base = FabricConfig()
        enclaved = with_enclave(base, overhead=0.0, crypto_ms=1.0)
        assert enclaved.exec_ms_per_tx == pytest.approx(base.exec_ms_per_tx + 1.0)

    def test_default_overhead_in_cited_range(self):
        # The paper cites 10-20% enclave overhead (§7.2.3).
        assert 0.10 <= DEFAULT_OVERHEAD <= 0.20
        assert CRYPTO_MS_PER_EVENT <= 1.0

    def test_non_compute_parameters_unchanged(self):
        base = FabricConfig(max_block_txs=5, mutually_exclusive_blocks=True)
        enclaved = with_enclave(base)
        assert enclaved.max_block_txs == 5
        assert enclaved.mutually_exclusive_blocks is True
        assert enclaved.tx_bytes == base.tx_bytes

    def test_invalid_overhead_rejected(self):
        with pytest.raises(ValueError):
            with_enclave(FabricConfig(), overhead=1.5)


class TestSealedState:
    def test_seal_unseal_roundtrip(self):
        enclave = SecureEnclave("peer0")
        blob = enclave.seal({"health": 100})
        assert enclave.unseal(blob) == {"health": 100}

    def test_counter_monotonic(self):
        enclave = SecureEnclave("peer0")
        b1 = enclave.seal({"v": 1})
        b2 = enclave.seal({"v": 2})
        assert b2.counter == b1.counter + 1

    def test_rollback_attack_detected(self):
        """Presenting stale sealed state (the [69, 76] attack the paper
        cites) must raise."""
        enclave = SecureEnclave("peer0")
        old = enclave.seal({"ammo": 50})
        enclave.seal({"ammo": 10})  # newer state exists
        with pytest.raises(RollbackError):
            enclave.unseal(old)

    def test_tampered_blob_detected(self):
        enclave = SecureEnclave("peer0")
        blob = enclave.seal({"ammo": 50})
        forged = dataclasses.replace(blob, ciphertext='{"ammo": 400}')
        with pytest.raises(EnclaveError):
            enclave.unseal(forged)

    def test_counter_forgery_detected(self):
        enclave = SecureEnclave("peer0")
        old = enclave.seal({"ammo": 50})
        enclave.seal({"ammo": 10})
        bumped = dataclasses.replace(old, counter=99)
        with pytest.raises(EnclaveError):
            enclave.unseal(bumped)

    def test_foreign_enclave_cannot_unseal(self):
        blob = SecureEnclave("peer0").seal({"x": 1})
        with pytest.raises(EnclaveError):
            SecureEnclave("peer1").unseal(blob)

    def test_attestation_depends_on_measurement(self):
        a = SecureEnclave("peer0", measurement="contract-v1")
        b = SecureEnclave("peer0", measurement="contract-v2")
        assert a.attest() != b.attest()
        assert a.attest() == SecureEnclave("peer0", measurement="contract-v1").attest()


class TestEnclavedPipeline:
    def test_enclave_latency_within_cited_bound(self):
        """Running the same workload with enclave costs must stay within
        ~10-20% + crypto of the plain latency (the paper's argument that
        enclaves keep the system real-time, §7.2.3)."""
        import sys

        sys.path.insert(0, "tests")
        from conftest import CounterContract

        from repro.blockchain import BlockchainNetwork
        from repro.simnet import LAN_1GBPS

        def avg_latency(config):
            chain = BlockchainNetwork(n_peers=4, profile=LAN_1GBPS, config=config)
            chain.install_contract(CounterContract)
            # Poll continuously: the client tick would otherwise quantise
            # away the small enclave overhead on a fast LAN pipeline.
            client = chain.create_client("c0", poll_interval_ms=1.0)
            latencies = []
            client.invoke("counter", "init", ("m",), ("ctr/m",),
                          on_complete=lambda r, l: latencies.append(l))
            chain.run_until_idle()
            for i in range(5):
                client.invoke("counter", "add", ("m", 1), ("ctr/m",),
                              on_complete=lambda r, l: latencies.append(l))
                chain.run_until_idle()
            return sum(latencies) / len(latencies)

        plain = avg_latency(FabricConfig())
        enclaved = avg_latency(with_enclave(FabricConfig()))
        assert plain < enclaved < plain * 1.35 + CRYPTO_MS_PER_EVENT * 2
