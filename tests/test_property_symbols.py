"""Property tests for :mod:`repro.staticcheck.symbols`.

``may_collide`` is the foundation of conflict prediction (and now of the
ConflictPlanner's lane partition), so it must be

* **symmetric** — ``may_collide(a, b) == may_collide(b, a)``, and
* a sound **over-approximation** of concrete key equality: whenever two
  patterns *can* expand to the same concrete key under the provenance
  rules (creators equal iff ``same_creator``, nonces unique per
  transaction, arguments arbitrary), the verdict must be ``True``.

The second property is checked constructively: draw two patterns, draw a
concrete instantiation for every placeholder consistent with its
provenance, and whenever the two expansions happen to produce the same
string, require ``may_collide`` to have predicted it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.staticcheck.symbols import Sym, SymKind, make_pattern, may_collide

# Small alphabets keep collisions frequent enough to exercise the
# interesting branch (hypothesis finds equal expansions easily).
_LITERALS = st.text(alphabet="ab1/", min_size=1, max_size=3)
_VALUES = st.text(alphabet="ab1", min_size=1, max_size=2)

_SYMS = st.builds(
    Sym,
    name=st.sampled_from(["x", "y", "item", "target"]),
    kind=st.sampled_from(
        [SymKind.ARG, SymKind.UNKNOWN, SymKind.CREATOR, SymKind.NONCE]
    ),
)

_PARTS = st.lists(st.one_of(_LITERALS, _SYMS), min_size=0, max_size=5)


def _instantiate(parts, side, creator, draw_value):
    """Expand a pattern to a concrete key under the provenance rules.

    ``side`` distinguishes the two transactions: nonce material is
    unique per transaction, so each side gets its own nonce text.
    ARG/UNKNOWN placeholders take arbitrary drawn values (clients may
    pass anything); CREATOR placeholders all resolve to the side's
    submitter identity.
    """
    out = []
    for part in parts:
        if isinstance(part, str):
            out.append(part)
        elif part.kind == SymKind.CREATOR:
            out.append(creator)
        elif part.kind == SymKind.NONCE:
            out.append(f"nonce{side}")
        else:  # ARG / UNKNOWN: any value, independently per occurrence
            out.append(draw_value())
    return "".join(out)


@given(a=_PARTS, b=_PARTS, same_creator=st.booleans())
def test_may_collide_is_symmetric(a, b, same_creator):
    pa, pb = make_pattern(a), make_pattern(b)
    assert may_collide(pa, pb, same_creator) == may_collide(pb, pa, same_creator)


@given(a=_PARTS, b=_PARTS, same_creator=st.booleans(), data=st.data())
@settings(max_examples=400)
def test_may_collide_over_approximates_concrete_equality(
    a, b, same_creator, data
):
    pa, pb = make_pattern(a), make_pattern(b)
    creators = ("cr", "cr") if same_creator else ("cr", "cs")
    key_a = _instantiate(
        a, "A", creators[0], lambda: data.draw(_VALUES, label="value_a")
    )
    key_b = _instantiate(
        b, "B", creators[1], lambda: data.draw(_VALUES, label="value_b")
    )
    if key_a == key_b:
        assert may_collide(pa, pb, same_creator), (
            f"patterns {pa} / {pb} both expand to {key_a!r} "
            f"(same_creator={same_creator}) but may_collide said False"
        )


@given(parts=_PARTS, data=st.data())
def test_pattern_covers_its_own_expansions(parts, data):
    pattern = make_pattern(parts)
    key = _instantiate(
        parts, "A", "cr", lambda: data.draw(_VALUES, label="value")
    )
    assert pattern.covers(key)


@given(a=_PARTS, b=_PARTS)
def test_same_creator_widens_the_verdict(a, b):
    # same_creator=True merges the creator equivalence classes, so it can
    # only ever ADD collisions relative to distinct creators.
    pa, pb = make_pattern(a), make_pattern(b)
    if may_collide(pa, pb, same_creator=False):
        assert may_collide(pa, pb, same_creator=True)
