"""The ``--max-wall-s`` in-process wall-clock budget for chaos runs."""

import json

from repro.chaos.__main__ import EXIT_TRUNCATED, main as chaos_main
from repro.chaos.runner import run_scenario


def test_tiny_budget_truncates():
    result = run_scenario("churn-partition-ddos", seed=7, max_wall_s=0.001)
    assert result.truncated
    assert result.wall_s > 0.0
    # A truncated run reaches no verdict: no convergence/liveness checks ran.
    assert result.ok  # no violations recorded, but ...
    assert "TRUNCATED" in result.describe()[0]


def test_generous_budget_matches_unbudgeted_run():
    plain = run_scenario("smoke", seed=7)
    budgeted = run_scenario("smoke", seed=7, max_wall_s=600.0)
    assert not budgeted.truncated
    assert budgeted.timeline_digest() == plain.timeline_digest()
    assert budgeted.network_stats == plain.network_stats
    assert budgeted.probe_codes == plain.probe_codes


def test_cli_exit_code_on_truncation(tmp_path, capsys):
    record = tmp_path / "rec.json"
    code = chaos_main([
        "--scenario", "churn-partition-ddos", "--seed", "7",
        "--max-wall-s", "0.001", "--record", str(record),
    ])
    assert code == EXIT_TRUNCATED == 3
    payload = json.loads(record.read_text())
    assert payload["truncated"] is True
    assert payload["wall_s"] > 0.0
    err = capsys.readouterr().err
    assert "truncated by --max-wall-s" in err


def test_cli_smoke_passes_within_budget(tmp_path):
    record = tmp_path / "rec.json"
    code = chaos_main([
        "--scenario", "smoke", "--seed", "42",
        "--max-wall-s", "120", "--record", str(record),
    ])
    assert code == 0
    payload = json.loads(record.read_text())
    assert payload["ok"] is True
    assert payload["truncated"] is False
