"""Soak harness tests: record shape, invariants, CLI, both backends.

Durations here are deliberately tiny — the soak harness's correctness
(session wiring, composite fault filters, record fields, exit codes)
does not need CI minutes; the long runs live in the workflow jobs.
"""

from __future__ import annotations

import json

import pytest

from repro.soak import SoakConfig, run_soak, write_record
from repro.soak.__main__ import main


def test_config_validation():
    with pytest.raises(ValueError):
        SoakConfig(backend="carrier-pigeon")
    with pytest.raises(ValueError):
        SoakConfig(sessions=0)
    with pytest.raises(ValueError):
        SoakConfig(wall_s=0.0)


def test_simnet_soak_clean(tmp_path):
    config = SoakConfig(
        backend="simnet", sessions=2, peers=4, wall_s=3.0, seed=5
    )
    record = run_soak(config, metrics_snapshot_path=str(tmp_path / "m.prom"))
    assert record["ok"], record["violations"]
    assert record["schema"] == "repro.soak/1"
    assert record["backend"] == "simnet"
    assert record["submitted"] > 0
    # Simulated commit latency is a few sim-ms: backpressure never sheds.
    assert record["shed"] == 0
    assert record["codes"].get("VALID", 0) > 0
    assert len(record["per_session"]) == 2
    for session in record["per_session"]:
        assert session["probe_codes"] == ["VALID"] * 3
        assert session["committed_height"] > 0
    # Sessions are independent deployments: distinct name prefixes.
    assert {s["name_prefix"] for s in record["per_session"]} == {"s0.", "s1."}
    assert record["metrics_snapshot"] == "export"
    assert "client_txs_submitted" in (tmp_path / "m.prom").read_text()


def test_simnet_soak_with_faults_still_converges():
    config = SoakConfig(
        backend="simnet", sessions=1, peers=4, wall_s=3.0,
        drop=0.05, delay_ms=10.0, seed=6,
    )
    record = run_soak(config)
    assert record["ok"], record["violations"]
    assert record["net"]["messages_dropped_fault"] > 0
    assert any(f["kind"] == "msg-drop" for f in record["faults"])


def test_simnet_soak_with_churn():
    config = SoakConfig(
        backend="simnet", sessions=1, peers=5, wall_s=3.0, churn=True, seed=7
    )
    record = run_soak(config)
    assert record["ok"], record["violations"]
    kinds = {f["kind"] for f in record["faults"]}
    assert "peer-crash" in kinds and "peer-restart" in kinds


def test_realnet_soak_tiny(tmp_path):
    config = SoakConfig(
        backend="realnet", sessions=1, peers=3, wall_s=2.0,
        settle_s=10.0, seed=8,
    )
    record = run_soak(config, metrics_snapshot_path=str(tmp_path / "m.prom"))
    assert record["ok"], record["violations"]
    assert record["backend"] == "realnet"
    assert record["transport"]["connects"] > 0
    assert record["transport"]["frame_errors"] == 0
    assert record["metrics_url"].startswith("http://127.0.0.1:")
    # The snapshot was scraped live over HTTP mid-run.
    assert record["metrics_snapshot"] == "live-scrape"
    assert "client_txs_submitted" in (tmp_path / "m.prom").read_text()


def test_record_roundtrips_as_json(tmp_path):
    config = SoakConfig(backend="simnet", sessions=1, peers=3, wall_s=2.0)
    record = run_soak(config)
    path = tmp_path / "soak.json"
    write_record(record, str(path))
    loaded = json.loads(path.read_text())
    assert loaded["schema"] == "repro.soak/1"
    assert loaded["ok"] is True
    assert loaded["samples"] == record["samples"]


def test_cli_exit_codes_and_artifacts(tmp_path, capsys):
    record_path = tmp_path / "r.json"
    code = main([
        "--backend", "simnet", "--sessions", "1", "--peers", "3",
        "--wall-s", "2", "--record", str(record_path), "-q",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert record_path.exists()
    assert "all invariants held" in out
