"""Integration tests: the full execute-order-vote-commit-sync pipeline."""

import pytest

from repro.blockchain import (
    BlockchainNetwork,
    FabricConfig,
    TxValidationCode,
)
from repro.simnet import LAN_1GBPS, TakedownAttack

from conftest import BrokenCounterContract, CounterContract


def make_chain(n_peers=4, profile=LAN_1GBPS, config=None, policy="majority", seed=0):
    chain = BlockchainNetwork(
        n_peers=n_peers, profile=profile, config=config, policy=policy, seed=seed
    )
    chain.install_contract(CounterContract)
    return chain


def submit_and_wait(chain, client, function, args, touched=("ctr/main",)):
    results = []
    client.invoke(
        "counter", function, args, touched_keys=touched,
        on_complete=lambda res, lat: results.append((res, lat)),
    )
    chain.run_until_idle()
    assert results, "transaction never completed"
    return results[0]


class TestHappyPath:
    def test_valid_update_commits_everywhere(self):
        chain = make_chain()
        client = chain.create_client("c0")
        res, latency = submit_and_wait(chain, client, "init", ("main",))
        assert res.code == TxValidationCode.VALID
        assert latency > 0
        for peer in chain.peers:
            assert peer.ledger.state.get("ctr/main") == 0
            assert peer.synced_height == 1
            assert not peer.diverged

    def test_sequential_updates_apply_in_order(self):
        chain = make_chain()
        client = chain.create_client("c0")
        submit_and_wait(chain, client, "init", ("main",))
        submit_and_wait(chain, client, "add", ("main", 5))
        res, _ = submit_and_wait(chain, client, "add", ("main", 2))
        assert res.code == TxValidationCode.VALID
        assert chain.peers[0].ledger.state.get("ctr/main") == 7
        assert chain.all_synced()

    def test_ledgers_identical_across_peers(self):
        chain = make_chain(n_peers=5)
        client = chain.create_client("c0")
        submit_and_wait(chain, client, "init", ("main",))
        for i in range(4):
            submit_and_wait(chain, client, "add", ("main", i + 1))
        hashes = {p.ledger.state_hash() for p in chain.peers}
        assert len(hashes) == 1
        assert all(p.ledger.validate_chain() for p in chain.peers)

    def test_latency_reported_in_simulated_ms(self):
        chain = make_chain()
        client = chain.create_client("c0")
        _, latency = submit_and_wait(chain, client, "init", ("main",))
        # LAN pipeline with 4 peers: well under the paper's 34 ms bound.
        assert 0 < latency < 34.0


class TestRejections:
    def test_contract_rejection_is_reported(self):
        """An illegal transition (counter below zero) must be rejected by
        consensus and must not mutate any peer's state."""
        chain = make_chain()
        client = chain.create_client("c0")
        submit_and_wait(chain, client, "init", ("main",))
        res, _ = submit_and_wait(chain, client, "sub", ("main", 10))
        assert res.code == TxValidationCode.CONTRACT_REJECTED
        assert chain.peers[0].ledger.state.get("ctr/main") == 0

    def test_duplicate_nonce_rejected(self):
        chain = make_chain()
        client = chain.create_client("c0")
        submit_and_wait(chain, client, "init", ("main",))

        tx1 = client.build_transaction("counter", "add", ("main", 1), nonce="fixed")
        results = []
        client.submit(tx1, on_complete=lambda r, l: results.append(r))
        chain.run_until_idle()
        tx2 = client.build_transaction("counter", "add", ("main", 1), nonce="fixed")
        client.submit(tx2, on_complete=lambda r, l: results.append(r))
        chain.run_until_idle()

        assert results[0].code == TxValidationCode.VALID
        assert results[1].code == TxValidationCode.DUPLICATE_NONCE
        assert chain.peers[0].ledger.state.get("ctr/main") == 1

    def test_unknown_contract_rejected(self):
        chain = make_chain()
        client = chain.create_client("c0")
        results = []
        client.invoke("nope", "f", (), on_complete=lambda r, l: results.append(r))
        chain.run_until_idle()
        assert results[0].code == TxValidationCode.UNKNOWN_CONTRACT

    def test_forged_signature_rejected(self):
        chain = make_chain()
        client = chain.create_client("c0")
        tx = client.build_transaction("counter", "init", ("main",))
        forged = type(tx)(
            proposal=tx.proposal, certificate=tx.certificate, signature=123456789
        )
        results = []
        client.submit(forged, on_complete=lambda r, l: results.append(r))
        chain.run_until_idle()
        assert results[0].code == TxValidationCode.BAD_SIGNATURE


class TestKVSConflicts:
    def test_same_key_txs_in_one_block_conflict(self):
        """Block-level KVS lock (§6): with block size 2 and two updates to
        the same counter submitted back-to-back, the second is rejected."""
        config = FabricConfig(max_block_txs=2, batch_timeout_ms=50.0)
        chain = make_chain(config=config)
        client = chain.create_client("c0")
        submit_and_wait(chain, client, "init", ("main",))

        results = []
        client.invoke("counter", "add", ("main", 1), ("ctr/main",),
                      on_complete=lambda r, l: results.append(r.code))
        client.invoke("counter", "add", ("main", 1), ("ctr/main",),
                      on_complete=lambda r, l: results.append(r.code))
        chain.run_until_idle()
        assert sorted(results) == [
            TxValidationCode.MVCC_READ_CONFLICT,
            TxValidationCode.VALID,
        ]
        assert chain.peers[0].ledger.state.get("ctr/main") == 1

    def test_mutually_exclusive_blocks_avoid_conflicts(self):
        """§6 opt. ii: the orderer keeps conflicting txs out of one block,
        so both commit (in successive blocks)."""
        config = FabricConfig(
            max_block_txs=2, batch_timeout_ms=5.0, mutually_exclusive_blocks=True
        )
        chain = make_chain(config=config)
        client = chain.create_client("c0")
        submit_and_wait(chain, client, "init", ("main",))

        results = []
        client.invoke("counter", "add", ("main", 1), ("ctr/main",),
                      on_complete=lambda r, l: results.append(r.code))
        client.invoke("counter", "add", ("main", 1), ("ctr/main",),
                      on_complete=lambda r, l: results.append(r.code))
        chain.run_until_idle()
        assert results == [TxValidationCode.VALID, TxValidationCode.VALID]
        assert chain.peers[0].ledger.state.get("ctr/main") == 2

    def test_disjoint_keys_share_block(self):
        config = FabricConfig(
            max_block_txs=2, batch_timeout_ms=50.0, mutually_exclusive_blocks=True
        )
        chain = make_chain(config=config)
        client = chain.create_client("c0")
        submit_and_wait(chain, client, "init", ("a",), touched=("ctr/a",))
        submit_and_wait(chain, client, "init", ("b",), touched=("ctr/b",))

        results = []
        client.invoke("counter", "add", ("a", 1), ("ctr/a",),
                      on_complete=lambda r, l: results.append(r.code))
        client.invoke("counter", "add", ("b", 1), ("ctr/b",),
                      on_complete=lambda r, l: results.append(r.code))
        chain.run_until_idle()
        assert results == [TxValidationCode.VALID, TxValidationCode.VALID]
        # Both were cut into a single block (block numbers: 1 init, 2 init, 3 both)
        assert chain.peers[0].ledger.height == 4


class TestByzantineAndFaults:
    def test_minority_tampered_contract_outvoted(self):
        """A minority of peers running a tampered contract is outvoted;
        honest peers commit, tampered peers diverge and stall."""
        chain = BlockchainNetwork(n_peers=5, profile=LAN_1GBPS)
        for i, peer in enumerate(chain.peers):
            peer.install_contract(
                BrokenCounterContract() if i < 2 else CounterContract()
            )
        client = chain.create_client("c0", anchor=chain.peers[2])
        results = []
        client.invoke("counter", "init", ("main",), ("ctr/main",),
                      on_complete=lambda r, l: results.append(r))
        chain.run_until_idle()
        assert results[0].code == TxValidationCode.VALID
        assert chain.peers[2].ledger.state.get("ctr/main") == 0
        assert chain.peers[0].diverged and chain.peers[1].diverged

    def test_majority_rejection_blocks_cheat(self):
        """When the *majority* rejects (honest peers see a cheat), the
        update does not reach consensus anywhere."""
        chain = make_chain(n_peers=5)
        client = chain.create_client("c0")
        submit_and_wait(chain, client, "init", ("main",))
        res, _ = submit_and_wait(chain, client, "sub", ("main", 99))
        assert res.code == TxValidationCode.CONTRACT_REJECTED
        assert all(p.ledger.state.get("ctr/main") == 0 for p in chain.peers)

    def test_progress_with_minority_peers_down(self):
        """Consensus progresses with 3 of 8 peers (37.5%) taken down —
        the paper's strongest DDoS configuration."""
        chain = make_chain(n_peers=8)
        client = chain.create_client("c0")
        submit_and_wait(chain, client, "init", ("main",))

        TakedownAttack(["peer5", "peer6", "peer7"]).apply(chain.net)
        res, _ = submit_and_wait(chain, client, "add", ("main", 3))
        assert res.code == TxValidationCode.VALID
        assert chain.peers[0].ledger.state.get("ctr/main") == 3

    def test_no_progress_with_majority_down(self):
        """With a majority down, consensus can never be decided: the
        transaction stays pending (the attack succeeded, which for P2P
        requires taking down far more nodes than for C/S)."""
        chain = make_chain(n_peers=4)
        client = chain.create_client("c0")
        submit_and_wait(chain, client, "init", ("main",))

        TakedownAttack(["peer1", "peer2", "peer3"]).apply(chain.net)
        done = []
        client.invoke("counter", "add", ("main", 1), ("ctr/main",),
                      on_complete=lambda r, l: done.append(r))
        chain.run(until=chain.now + 5000.0)
        assert done == []
        assert client.pending_count() == 1


class TestNetworkBuilder:
    def test_requires_at_least_one_peer(self):
        with pytest.raises(ValueError):
            BlockchainNetwork(n_peers=0)

    def test_region_count_must_match(self):
        with pytest.raises(ValueError):
            BlockchainNetwork(n_peers=3, regions=["dallas"])

    def test_single_peer_network_works(self):
        chain = make_chain(n_peers=1)
        client = chain.create_client("c0")
        res, _ = submit_and_wait(chain, client, "init", ("main",))
        assert res.code == TxValidationCode.VALID

    def test_genesis_identical_across_peers(self):
        chain = make_chain(n_peers=4)
        digests = {p.ledger.genesis.digest() for p in chain.peers}
        assert len(digests) == 1


class TestCatchUp:
    def test_revived_peer_catches_up(self):
        """A peer taken down (DDoS) misses blocks; once reachable again
        it detects the gap on the next delivery, requests the missing
        range from the ordering service, replays it deterministically
        and rejoins with an identical ledger."""
        from repro.simnet import TakedownAttack

        chain = make_chain(n_peers=4)
        client = chain.create_client("c0")
        submit_and_wait(chain, client, "init", ("main",))

        attack = TakedownAttack(["peer3"])
        attack.apply(chain.net)
        for i in range(3):
            submit_and_wait(chain, client, "add", ("main", 1))
        assert chain.peers[3].committed_height == 1  # missed three blocks

        attack.lift(chain.net)
        submit_and_wait(chain, client, "add", ("main", 1))
        chain.run_until_idle()

        revived = chain.peers[3]
        assert revived.committed_height == chain.peers[0].committed_height
        assert revived.synced_height == chain.peers[0].synced_height
        assert revived.ledger.state.get("ctr/main") == 4
        assert revived.ledger.state_hash() == chain.peers[0].ledger.state_hash()
        assert revived.ledger.validate_chain()
        assert not revived.diverged

    def test_catch_up_preserves_rejections(self):
        """Catch-up replays the consensus outcome exactly, including
        transactions the network rejected while the peer was away."""
        from repro.simnet import TakedownAttack

        chain = make_chain(n_peers=4)
        client = chain.create_client("c0")
        submit_and_wait(chain, client, "init", ("main",))

        attack = TakedownAttack(["peer3"])
        attack.apply(chain.net)
        res, _ = submit_and_wait(chain, client, "sub", ("main", 99))  # cheat
        assert res.code == TxValidationCode.CONTRACT_REJECTED
        submit_and_wait(chain, client, "add", ("main", 2))

        attack.lift(chain.net)
        submit_and_wait(chain, client, "add", ("main", 1))
        chain.run_until_idle()
        revived = chain.peers[3]
        assert revived.ledger.state.get("ctr/main") == 3
        assert revived.ledger.state_hash() == chain.peers[0].ledger.state_hash()
