"""Unit tests for attack models and the Periodic helper."""

import pytest

from repro.simnet import (
    FloodAttack,
    Host,
    LatencyInjectionAttack,
    LAN_1GBPS,
    Network,
    Periodic,
    TakedownAttack,
    select_victims,
)


class Sink(Host):
    def __init__(self, name):
        super().__init__(name)
        self.received = []

    def handle_message(self, src, payload):
        self.received.append(payload)


def make_net(n=4):
    net = Network(profile=LAN_1GBPS, seed=0)
    hosts = [net.register(Sink(f"h{i}")) for i in range(n)]
    return net, hosts


def test_takedown_blocks_and_lift_restores():
    net, (a, b, *_rest) = make_net()
    attack = TakedownAttack(["h1"])
    attack.apply(net)
    a.send(b, "during")
    net.run_until_idle()
    assert b.received == []
    attack.lift(net)
    a.send(b, "after")
    net.run_until_idle()
    assert b.received == ["after"]


def test_attack_cannot_apply_twice():
    net, _ = make_net()
    attack = TakedownAttack(["h0"])
    attack.apply(net)
    with pytest.raises(RuntimeError):
        attack.apply(net)


def test_attack_cannot_lift_inactive():
    net, _ = make_net()
    with pytest.raises(RuntimeError):
        TakedownAttack(["h0"]).lift(net)


def test_latency_injection_adds_and_removes_delay():
    net, (a, b, *_rest) = make_net()
    attack = LatencyInjectionAttack(["h1"], extra_ms=500.0)
    attack.apply(net)
    assert net.condition("h1").extra_ingress_ms == 500.0
    attack.lift(net)
    assert net.condition("h1").extra_ingress_ms == 0.0


def test_latency_injection_stacks():
    net, _ = make_net()
    a1 = LatencyInjectionAttack(["h1"], extra_ms=100.0)
    a2 = LatencyInjectionAttack(["h1"], extra_ms=200.0)
    a1.apply(net)
    a2.apply(net)
    assert net.condition("h1").extra_ingress_ms == 300.0
    a1.lift(net)
    assert net.condition("h1").extra_ingress_ms == 200.0


def test_flood_attack_drops_most_traffic():
    net, (a, b, *_rest) = make_net()
    FloodAttack(["h1"], drop_rate=1.0).apply(net)
    for i in range(50):
        a.send(b, i)
    net.run_until_idle()
    assert b.received == []


def test_flood_rejects_bad_rate():
    with pytest.raises(ValueError):
        FloodAttack(["x"], drop_rate=1.5)


def test_latency_injection_rejects_negative():
    with pytest.raises(ValueError):
        LatencyInjectionAttack(["x"], extra_ms=-1.0)


def test_select_victims_fraction():
    names = [f"p{i}" for i in range(16)]
    assert len(select_victims(names, 0.125)) == 2
    assert len(select_victims(names, 0.25)) == 4
    assert len(select_victims(names, 0.375)) == 6
    assert select_victims(names, 0.0) == []


def test_select_victims_deterministic():
    names = [f"p{i}" for i in range(8)]
    assert select_victims(names, 0.5, seed=1) == select_victims(names, 0.5, seed=1)


def test_select_victims_rejects_bad_fraction():
    with pytest.raises(ValueError):
        select_victims(["a"], 2.0)


def test_periodic_fires_at_interval():
    net, _ = make_net()
    ticks = []
    p = Periodic(net.scheduler, 10.0, lambda: ticks.append(net.now))
    p.start()
    net.run(until=55.0)
    assert ticks == [10.0, 20.0, 30.0, 40.0, 50.0]
    p.stop()
    net.run(until=100.0)
    assert len(ticks) == 5


def test_periodic_fire_now():
    net, _ = make_net()
    ticks = []
    Periodic(net.scheduler, 10.0, lambda: ticks.append(net.now)).start(fire_now=True)
    net.run(until=25.0)
    assert ticks == [0.0, 10.0, 20.0]


def test_periodic_rejects_nonpositive_interval():
    net, _ = make_net()
    with pytest.raises(ValueError):
        Periodic(net.scheduler, 0.0, lambda: None)


def test_periodic_stop_from_within_callback():
    net, _ = make_net()
    ticks = []
    p = Periodic(net.scheduler, 5.0, lambda: (ticks.append(1), p.stop()))
    p.start()
    net.run(until=100.0)
    assert len(ticks) == 1


class TestPartition:
    def test_partition_blocks_cross_group_traffic(self):
        from repro.simnet import PartitionAttack

        net, (a, b, c, d) = make_net()
        attack = PartitionAttack(["h0", "h1"], ["h2", "h3"])
        attack.apply(net)
        a.send(b, "same-side")
        a.send(c, "cross")
        net.run_until_idle()
        assert b.received == ["same-side"]
        assert c.received == []
        attack.lift(net)
        a.send(c, "after-heal")
        net.run_until_idle()
        assert c.received == ["after-heal"]

    def test_ungrouped_hosts_form_implicit_group(self):
        from repro.simnet import PartitionAttack

        net, (a, b, c, d) = make_net()
        PartitionAttack(["h0"]).apply(net)
        b.send(c, "both-ungrouped")
        b.send(a, "to-isolated")
        net.run_until_idle()
        assert c.received == ["both-ungrouped"]
        assert a.received == []


class TestSplitBrain:
    def test_majority_partition_progresses_and_reconverges(self):
        """Split-brain on the blockchain: the majority side keeps
        validating, the minority stalls; healing triggers catch-up and
        all ledgers reconverge."""
        import sys

        sys.path.insert(0, "tests")
        from conftest import CounterContract

        from repro.blockchain import BlockchainNetwork, TxValidationCode
        from repro.simnet import LAN_1GBPS, PartitionAttack

        chain = BlockchainNetwork(n_peers=5, profile=LAN_1GBPS, seed=1)
        chain.install_contract(CounterContract)
        client = chain.create_client("c0", anchor=chain.peers[0])
        results = []
        client.invoke("counter", "init", ("m",), ("ctr/m",),
                      on_complete=lambda r, l: results.append(r.code))
        chain.run_until_idle()

        # Orderer + client + 3 peers on one side; 2 peers isolated.
        majority = ["orderer", "c0", "peer0", "peer1", "peer2"]
        attack = PartitionAttack(majority, ["peer3", "peer4"])
        attack.apply(chain.net)
        client.invoke("counter", "add", ("m", 1), ("ctr/m",),
                      on_complete=lambda r, l: results.append(r.code))
        chain.run_until_idle()
        assert results == [TxValidationCode.VALID] * 2
        assert chain.peers[0].ledger.state.get("ctr/m") == 1
        assert chain.peers[3].ledger.state.get("ctr/m") == 0  # stalled side

        attack.lift(chain.net)
        client.invoke("counter", "add", ("m", 1), ("ctr/m",),
                      on_complete=lambda r, l: results.append(r.code))
        chain.run_until_idle()
        assert results[-1] == TxValidationCode.VALID
        hashes = {p.ledger.state_hash() for p in chain.peers}
        assert len(hashes) == 1
        assert chain.peers[3].ledger.state.get("ctr/m") == 2
