"""Unit tests for the consensus-policy mini-language."""

import pytest

from repro.blockchain import ConsensusPolicy, PolicyError, parse_policy


def votes(yes, no=0, prefix="p"):
    out = {}
    for i in range(yes):
        out[f"{prefix}{i}"] = True
    for i in range(no):
        out[f"{prefix}{yes + i}"] = False
    return out


class TestEvaluate:
    def test_majority_boundary(self):
        policy = ConsensusPolicy("majority")
        assert policy.evaluate(votes(3, 2), total=5)
        assert not policy.evaluate(votes(2, 2), total=4)  # tie is not majority
        assert policy.evaluate(votes(3, 1), total=4)

    def test_all(self):
        policy = ConsensusPolicy("all")
        assert policy.evaluate(votes(4), total=4)
        assert not policy.evaluate(votes(3, 1), total=4)

    def test_any(self):
        policy = ConsensusPolicy("any")
        assert policy.evaluate(votes(1, 3), total=4)
        assert not policy.evaluate(votes(0, 4), total=4)

    def test_atleast(self):
        policy = ConsensusPolicy("atleast(3)")
        assert policy.evaluate(votes(3, 5), total=8)
        assert not policy.evaluate(votes(2, 6), total=8)

    def test_peer_vote(self):
        policy = ConsensusPolicy("peer(referee)")
        assert policy.evaluate({"referee": True}, total=3)
        assert not policy.evaluate({"referee": False, "p0": True}, total=3)
        assert not policy.evaluate({"p0": True}, total=3)

    def test_and_or_composition(self):
        policy = ConsensusPolicy("majority and peer(referee)")
        v = votes(3, 1)
        v["referee"] = True
        assert policy.evaluate(v, total=5)
        v["referee"] = False
        assert not policy.evaluate(v, total=5)

    def test_or_composition(self):
        policy = ConsensusPolicy("all or atleast(2)")
        assert policy.evaluate(votes(2, 4), total=6)

    def test_not(self):
        policy = ConsensusPolicy("not any")
        assert policy.evaluate(votes(0, 3), total=3)
        assert not policy.evaluate(votes(1, 2), total=3)

    def test_parentheses(self):
        policy = ConsensusPolicy("(majority or all) and any")
        assert policy.evaluate(votes(3, 1), total=4)

    def test_total_must_be_positive(self):
        with pytest.raises(PolicyError):
            ConsensusPolicy("majority").evaluate({}, total=0)


class TestParseErrors:
    @pytest.mark.parametrize(
        "expr",
        ["", "majority and", "atleast()", "atleast(0)", "((majority)",
         "bogus", "majority or or all", "peer()"],
    )
    def test_malformed(self, expr):
        with pytest.raises(PolicyError):
            ConsensusPolicy(expr)

    def test_describe_roundtrips_semantics(self):
        policy = parse_policy("majority and (peer(a) or atleast(2))")
        again = parse_policy(policy.describe())
        v = {"a": True, "b": True, "c": False}
        assert policy.evaluate(v, 3) == again.evaluate(v, 3)


class TestDecided:
    def test_undecided_with_few_votes(self):
        policy = ConsensusPolicy("majority")
        assert policy.decided(votes(1), total=5) is None

    def test_decided_true_once_majority_reached(self):
        policy = ConsensusPolicy("majority")
        assert policy.decided(votes(3), total=5) is True

    def test_decided_false_once_impossible(self):
        policy = ConsensusPolicy("majority")
        assert policy.decided(votes(0, 3), total=5) is False

    def test_decided_with_explicit_electorate(self):
        policy = ConsensusPolicy("peer(p3)")
        electorate = [f"p{i}" for i in range(4)]
        assert policy.decided({"p0": True}, 4, all_voters=electorate) is None
        assert policy.decided({"p3": False}, 4, all_voters=electorate) is False
        assert policy.decided({"p3": True}, 4, all_voters=electorate) is True

    def test_decided_progresses_with_absent_peers(self):
        """With 37.5% of peers down, majority consensus still decides —
        the basis of the paper's DDoS robustness claim (§7.2.4(3))."""
        policy = ConsensusPolicy("majority")
        total = 16
        up = votes(9)  # 9 of 16 honest votes arrive, 6 peers are down
        assert policy.decided(up, total) is True

    def test_all_policy_never_decides_with_down_peer(self):
        policy = ConsensusPolicy("all")
        assert policy.decided(votes(15), total=16) is None
