"""Tests for client-side prediction and server reconciliation."""

import pytest

from repro.game import AssetId, DoomClient, EventType, GameEvent, WeaponId


def loc(client, seq, x, y, t):
    return GameEvent(t, client.player, EventType.LOCATION, {"x": x, "y": y}, seq)


@pytest.fixture()
def client():
    return DoomClient("p1")


class TestPrediction:
    def test_prediction_applies_immediately(self, client):
        shoot = GameEvent(0.0, "p1", EventType.SHOOT, {"count": 2}, 1)
        client.apply_event(shoot)
        assert client.predicted[AssetId.AMMUNITION] == 48
        assert client.confirmed[AssetId.AMMUNITION] == 50

    def test_ack_confirms(self, client):
        shoot = GameEvent(0.0, "p1", EventType.SHOOT, {"count": 2}, 1)
        client.apply_event(shoot)
        client.acknowledge(1, accepted=True)
        assert client.confirmed[AssetId.AMMUNITION] == 48
        assert client.stats.confirmed == 1
        assert client.stats.misprediction_rate == 0.0

    def test_rejection_rolls_back(self, client):
        shoot = GameEvent(0.0, "p1", EventType.SHOOT, {"count": 2}, 1)
        client.apply_event(shoot)
        client.acknowledge(1, accepted=False)
        assert client.predicted[AssetId.AMMUNITION] == 50
        assert client.stats.rolled_back == 1

    def test_rollback_replays_surviving_inflight_events(self, client):
        client.apply_event(GameEvent(0.0, "p1", EventType.SHOOT, {"count": 1}, 1))
        client.apply_event(GameEvent(30.0, "p1", EventType.SHOOT, {"count": 1}, 2))
        client.apply_event(GameEvent(60.0, "p1", EventType.SHOOT, {"count": 1}, 3))
        assert client.predicted[AssetId.AMMUNITION] == 47
        # Reject the first; the other two remain predicted.
        client.acknowledge(1, accepted=False)
        assert client.predicted[AssetId.AMMUNITION] == 48
        client.acknowledge(2, accepted=True)
        client.acknowledge(3, accepted=True)
        assert client.confirmed[AssetId.AMMUNITION] == 48

    def test_unknown_ack_ignored(self, client):
        client.acknowledge(99, accepted=True)
        assert client.stats.confirmed == 0

    def test_wrong_player_event_rejected(self, client):
        with pytest.raises(ValueError):
            client.apply_event(GameEvent(0.0, "p2", EventType.SHOOT, {}, 1))


class TestTransitions:
    def test_movement_updates_position(self, client):
        start = dict(client.predicted[AssetId.POSITION])
        client.apply_event(loc(client, 1, start["x"] + 20.0, start["y"], 28.6))
        assert client.predicted[AssetId.POSITION]["x"] == start["x"] + 20.0

    def test_illegal_prediction_not_applied(self, client):
        start = dict(client.predicted[AssetId.POSITION])
        client.apply_event(loc(client, 1, start["x"] + 4000.0, start["y"], 28.6))
        assert client.predicted[AssetId.POSITION]["x"] == start["x"]

    def test_weapon_pickup_grants_and_selects(self, client):
        client.apply_event(
            GameEvent(0.0, "p1", EventType.PICKUP_WEAPON, {"wid": WeaponId.SHOTGUN}, 1)
        )
        weapon = client.predicted[AssetId.WEAPON]
        assert weapon["current"] == WeaponId.SHOTGUN
        assert WeaponId.SHOTGUN in weapon["owned"]
        assert client.predicted[AssetId.AMMUNITION] == 70

    def test_damage_and_medkit_cycle(self, client):
        client.apply_event(GameEvent(0.0, "p1", EventType.DAMAGE, {"amount": 40}, 1))
        assert client.predicted[AssetId.HEALTH]["hp"] == 60
        client.apply_event(GameEvent(10.0, "p1", EventType.PICKUP_MEDKIT, {}, 2))
        assert client.predicted[AssetId.HEALTH]["hp"] == 85

    def test_invulnerability_prevents_predicted_damage(self, client):
        client.apply_event(GameEvent(0.0, "p1", EventType.PICKUP_INVULN, {}, 1))
        client.apply_event(GameEvent(10.0, "p1", EventType.DAMAGE, {"amount": 50}, 2))
        assert client.predicted[AssetId.HEALTH]["hp"] == 100

    def test_berserk_heals_and_arms(self, client):
        client.apply_event(GameEvent(0.0, "p1", EventType.DAMAGE, {"amount": 60}, 1))
        client.apply_event(GameEvent(10.0, "p1", EventType.PICKUP_BERSERK, {}, 2))
        assert client.predicted[AssetId.HEALTH]["hp"] == 100
        assert client.predicted[AssetId.BERSERK] > 0

    def test_powerup_timers_set(self, client):
        client.apply_event(GameEvent(100.0, "p1", EventType.PICKUP_RADSUIT, {}, 1))
        client.apply_event(GameEvent(100.0, "p1", EventType.PICKUP_INVIS, {}, 2))
        assert client.predicted[AssetId.RADIATION_SUIT] == pytest.approx(30_100.0)
        assert client.predicted[AssetId.INVISIBILITY] == pytest.approx(30_100.0)

    def test_confirmed_state_isolated_from_prediction(self, client):
        client.apply_event(GameEvent(0.0, "p1", EventType.DAMAGE, {"amount": 40}, 1))
        assert client.confirmed[AssetId.HEALTH]["hp"] == 100
