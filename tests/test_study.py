"""Tests for the §7.1 Steam study substrate and methodology."""

import pytest

from repro.study import (
    LATENCY_BINS,
    STUDY_TITLES,
    SteamEcosystem,
    SteamStudy,
)


@pytest.fixture(scope="module")
def study():
    return SteamStudy(seed=2018)


class TestEcosystem:
    def test_ten_titles(self):
        assert len(STUDY_TITLES) == 10

    def test_server_population_deterministic(self):
        a = SteamEcosystem(seed=1).servers("Team Fortress 2")
        b = SteamEcosystem(seed=1).servers("Team Fortress 2")
        assert [s.latency_ms for s in a] == [s.latency_ms for s in b]

    def test_unknown_title_rejected(self):
        with pytest.raises(KeyError):
            SteamEcosystem().title("Quake")

    def test_bin_distribution_sums_to_one(self, study):
        for title in STUDY_TITLES:
            bins = study.ecosystem.bin_distribution(title.name)
            assert sum(bins) == pytest.approx(1.0, abs=1e-9)
            assert len(bins) == len(LATENCY_BINS)

    def test_majority_of_servers_in_100_350ms(self, study):
        """Paper take-away (4): the majority of available servers lie
        within the 100-350 ms latency buckets."""
        for title in STUDY_TITLES:
            bins = study.ecosystem.bin_distribution(title.name)
            assert sum(bins[2:5]) > 0.5

    def test_few_low_latency_servers(self, study):
        for title in STUDY_TITLES:
            bins = study.ecosystem.bin_distribution(title.name)
            assert sum(bins[:2]) < 0.2  # "not enough servers with <100ms"


class TestTracker:
    def test_top_rooms_sorted_and_capped(self, study):
        tracker = study.tracker
        rooms = tracker.top_rooms("Counter-Strike 1.6")
        assert len(rooms) == 500
        assert rooms == sorted(rooms, reverse=True)
        assert rooms[0] == 32  # max participation = player cap

    def test_average_participation_close_to_published(self, study):
        for title in STUDY_TITLES:
            measured = study.tracker.average_participation(title.name)
            assert measured == pytest.approx(title.avg_players, rel=0.35, abs=1.2)


class TestMethodology:
    def test_table2_has_ten_rows(self, study):
        rows = study.table2(sessions=3)
        assert len(rows) == 10
        assert {r.game for r in rows} == {t.name for t in STUDY_TITLES}

    def test_measured_latency_close_to_published(self, study):
        """The decreasing-latency walk must land near the published
        average latency column (±10%)."""
        published = {t.name: t for t in STUDY_TITLES}
        for row in study.table2(sessions=3):
            assert row.avg_latency_ms == pytest.approx(
                published[row.game].playable_latency_ms, rel=0.10
            )

    def test_all_latencies_upward_of_230ms(self, study):
        """Paper take-away (1)."""
        rows = study.table2(sessions=3)
        assert min(r.avg_latency_ms for r in rows) >= 225.0

    def test_tickrate_take_away(self, study):
        """Paper take-away (2): only 3 of 10 titles exceed tickrate 30."""
        rows = study.table2(sessions=1)
        assert sum(1 for r in rows if r.tickrate > 30) == 3

    def test_participation_take_away(self, study):
        """Paper take-away (3): ~8 average, 3 titles allow >32 players."""
        t = study.takeaways(sessions=2)
        assert 4.0 <= t["avg_participation"] <= 14.0
        assert t["titles_above_32_players"] == 3

    def test_measurement_walks_servers_in_decreasing_order(self, study):
        row = study.measure_title("Team Fortress 2", sessions=1)
        # Walking from the highest latency down, hundreds of unplayable
        # servers precede the first playable one.
        assert row.attempts > 10
