"""Tests for ledger auditing and the DoomClient↔shim feedback loop."""

import pytest

from repro.analysis import audit_ledger, cross_audit
from repro.blockchain import TxValidationCode
from repro.core import CheatInjector, GameSession, relevant_cheats
from repro.game import AssetId, DoomClient, EventType, GameEvent
from repro.simnet import LAN_1GBPS


@pytest.fixture(scope="module")
def cheated_session():
    session = GameSession(n_peers=4, profile=LAN_1GBPS, n_players=2, seed=31)
    session.setup()
    # Some honest play…
    shim = session.shims[0]
    for seq in (1, 2, 3):
        session.inject_event(GameEvent(
            session.now, shim.player, EventType.SHOOT, {"count": 1}, seq))
        session.run_until_idle()
    # …then a burst of cheating from player 2.
    injector = CheatInjector(session, shim=session.shims[1])
    injector.run_all_relevant()
    return session


class TestAudit:
    def test_audit_accounts_for_every_transaction(self, cheated_session):
        report = audit_ledger(cheated_session.chain.peers[0].ledger)
        assert report.chain_valid
        assert report.total_transactions == sum(report.by_code.values())
        assert report.total_transactions == sum(report.by_creator.values())
        assert report.accepted + report.rejected == report.total_transactions

    def test_audit_pins_cheater(self, cheated_session):
        """The event log is a durable, attributable record of cheating
        attempts (non-repudiation)."""
        report = audit_ledger(cheated_session.chain.peers[0].ledger)
        cheater = cheated_session.shims[1].player
        honest = cheated_session.shims[0].player
        assert len(report.rejections_by(cheater)) == len(relevant_cheats())
        assert report.rejections_by(honest) == []
        for creator, function, code, block in report.rejections_by(cheater):
            assert code == TxValidationCode.CONTRACT_REJECTED
            assert 0 < block < report.height

    def test_cross_audit_agrees(self, cheated_session):
        assert cross_audit(p.ledger for p in cheated_session.chain.peers)

    def test_cross_audit_detects_tampering(self, cheated_session):
        ledgers = [p.ledger for p in cheated_session.chain.peers]
        victim = ledgers[0].block(2).transactions[0]
        original = victim.proposal.args
        object.__setattr__(victim.proposal, "args", ({"forged": 1},))
        try:
            assert not cross_audit(ledgers)
        finally:
            object.__setattr__(victim.proposal, "args", original)
        assert cross_audit(ledgers)

    def test_cross_audit_empty_rejected(self):
        with pytest.raises(ValueError):
            cross_audit([])


class TestClientShimIntegration:
    """The full loop: DoomClient prediction -> shim -> consensus -> ack
    -> reconciliation."""

    def make(self):
        session = GameSession(n_peers=4, profile=LAN_1GBPS, n_players=1, seed=33)
        session.setup()
        shim = session.shims[0]
        client = DoomClient(shim.player, game_map=session.network.game_map)
        shim.on_ack = lambda event, ok, code, lat: client.acknowledge(event.seq, ok)

        def play(event):
            client.apply_event(event)       # optimistic prediction
            shim.on_game_event(event)       # consensus validation
        return session, shim, client, play

    def test_honest_play_confirms_predictions(self):
        session, shim, client, play = self.make()
        for seq in range(1, 6):
            play(GameEvent(session.now, client.player, EventType.SHOOT,
                           {"count": 1}, seq))
            session.run_until_idle()
        assert client.stats.predicted == 5
        assert client.stats.confirmed == 5
        assert client.stats.misprediction_rate == 0.0
        assert client.confirmed[AssetId.AMMUNITION] == 45
        # Client and chain agree exactly.
        from repro.game import asset_key

        chain_ammo = session.chain.peers[0].ledger.state.get(
            asset_key(client.player, AssetId.AMMUNITION)
        )
        assert chain_ammo == 45

    def test_cheat_rolls_back_local_prediction(self):
        """A modified client can render a cheat locally, but the ack
        rolls the authoritative-facing state back — the cheat never
        leaves the cheater's screen."""
        session, shim, client, play = self.make()
        # The client "predicts" an illegal far-item medkit heal.
        play(GameEvent(session.now, client.player, EventType.DAMAGE,
                       {"amount": 40, "t": session.now}, 1))
        session.run_until_idle()
        far = session.network.game_map.items_of_kind("medkit")[0]
        play(GameEvent(session.now, client.player, EventType.PICKUP_MEDKIT,
                       {"item_id": far.item_id, "t": session.now}, 2))
        session.run_until_idle()
        assert client.stats.rolled_back == 1
        assert client.predicted[AssetId.HEALTH]["hp"] == 60  # heal undone
