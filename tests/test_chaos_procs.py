"""Chaos catalog: parallel scenario fan-out is observably serial.

Each chaos scenario builds its own seeded world, so ``--procs N``
spreads the catalog over spawned workers — and must change *nothing*
but wall time: same payloads, same timeline digests, same name order.
"""

from __future__ import annotations

import pytest

from repro.chaos.catalog import run_catalog, select_scenarios
from repro.chaos.scenarios import SCENARIOS


def test_select_scenarios_globs_and_sorts():
    assert select_scenarios(["*"]) == sorted(SCENARIOS)
    assert select_scenarios(["smoke"]) == ["smoke"]
    assert select_scenarios(["no-such-scenario-*"]) == []
    # duplicates across overlapping globs collapse
    assert select_scenarios(["smoke", "smok*"]) == ["smoke"]


def test_run_catalog_rejects_bad_procs():
    with pytest.raises(ValueError):
        run_catalog(["smoke"], seed=7, procs=0)


def _strip_wall(catalog):
    """Wall-clock seconds are the one legitimately nondeterministic field."""
    return {
        name: {k: v for k, v in payload.items() if k != "wall_s"}
        for name, payload in catalog["scenarios"].items()
    }


def test_catalog_procs_is_bit_identical_to_serial():
    serial = run_catalog(["smoke"], seed=42, procs=1)
    parallel = run_catalog(["smoke"], seed=42, procs=2)
    assert serial["procs"] == 1 and parallel["procs"] == 2
    assert _strip_wall(serial) == _strip_wall(parallel)
    payload = parallel["scenarios"]["smoke"]
    assert payload["ok"] is True
    assert payload["timeline_digest"] == serial["scenarios"]["smoke"]["timeline_digest"]


def test_catalog_order_is_name_sorted_regardless_of_procs():
    names = select_scenarios(["smoke"])
    catalog = run_catalog(list(reversed(sorted(names))), seed=42, procs=1)
    assert list(catalog["scenarios"]) == sorted(names)
