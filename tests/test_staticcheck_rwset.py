"""RWSet inference: unit footprints plus the differential test proving
the statically inferred key patterns cover every key the runtime
``StateView.rwset()`` actually touches on a benchmark Doom trace."""

import pytest

from repro.core import DoomContract, MonopolyContract
from repro.game.doom import DoomMap
from repro.game.events import EventType
from repro.game.traces import generate_session
from repro.staticcheck import infer_footprints

from conftest import ContractHarness


@pytest.fixture(scope="module")
def doom_footprints():
    return infer_footprints(DoomContract)


# ----------------------------------------------------------------------
# unit footprints


class TestDoomFootprints:
    def test_all_handlers_discovered(self, doom_footprints):
        assert set(doom_footprints) == set(DoomContract._HANDLERS)

    def test_location_touches_only_own_position(self, doom_footprints):
        fp = doom_footprints[EventType.LOCATION]
        assert fp.write_covers("asset/p1/6")
        assert fp.read_covers("asset/p1/6")
        assert fp.read_covers("game/started")
        # ...and nothing belonging to other asset ids
        assert not fp.write_covers("asset/p1/1")
        assert not fp.write_covers("game/roster")

    def test_shoot_touches_weapon_and_ammo(self, doom_footprints):
        fp = doom_footprints[EventType.SHOOT]
        assert fp.read_covers("asset/p1/3")  # weapon
        assert fp.write_covers("asset/p1/2")  # ammunition
        assert not fp.write_covers("asset/p1/3")

    def test_damage_reaches_cross_player_target(self, doom_footprints):
        fp = doom_footprints[EventType.DAMAGE]
        # target comes from the payload — any player name must be covered
        assert fp.write_covers("asset/other/1")
        assert fp.write_covers("asset/other/4")
        assert fp.read_covers("game/roster")

    def test_pickup_covers_item_marker(self, doom_footprints):
        fp = doom_footprints[EventType.PICKUP_CLIP]
        assert fp.read_covers("item/p1-i3")
        assert fp.write_covers("item/p1-i3")
        assert fp.write_covers("asset/p1/2")

    def test_add_player_covers_roster_and_all_assets(self, doom_footprints):
        fp = doom_footprints["addPlayer"]
        assert fp.write_covers("game/roster")
        for aid in (1, 2, 3, 4, 5, 6, 7, 8):
            assert fp.write_covers(f"asset/p1/{aid}")

    def test_nonce_marker_always_present(self, doom_footprints):
        for fp in doom_footprints.values():
            assert fp.read_covers("~nonce/p1/n1")
            assert fp.write_covers("~nonce/p1/n1")

    def test_footprint_json_roundtrip(self, doom_footprints):
        blob = doom_footprints[EventType.SHOOT].to_json()
        assert blob["handler"] == EventType.SHOOT
        assert isinstance(blob["reads"], list) and isinstance(blob["writes"], list)


class TestMonopolyFootprints:
    def test_roll_writes_per_player_per_round(self):
        fps = infer_footprints(MonopolyContract)
        roll = next(fp for name, fp in fps.items() if "roll" in name.lower())
        assert roll.write_covers("mp/roll/p1/3")


class TestSourceMode:
    def test_generated_source_footprints(self):
        from repro.core.codegen import generate_contract_source
        from repro.core.doomspec import doom_spec

        source = generate_contract_source(doom_spec())
        fps = infer_footprints(source)
        assert "addPlayer" in fps and "startGame" in fps
        assert fps["addPlayer"].write_covers("game/roster")
        assert fps["startGame"].write_covers("game/started")


# ----------------------------------------------------------------------
# differential test: inferred ⊇ runtime on a scripted deathmatch trace


def merged_two_player_map(demo_a, demo_b):
    base = DoomMap.default_map()
    extra = [
        item
        for demo in (demo_a, demo_b)
        for item in demo.game_map.items
        if base.item(item.item_id) is None
    ]
    return DoomMap(
        name="diff-deathmatch",
        width=base.width,
        height=base.height,
        items=list(base.items) + extra,
        spawn_points=list(base.spawn_points),
    )


def replay_and_diff(contract, events, footprints):
    """Replay ``events`` through the runtime and diff each transaction's
    actual RWSet keys against the statically inferred footprint."""
    harness = ContractHarness(contract)
    write_misses, read_misses = [], []
    valid = 0
    for etype, payload, creator, t in events:
        code, rwset = harness.call(etype, payload, creator=creator, t=t)
        assert code == "VALID", f"{etype} by {creator} rejected: {code}"
        valid += 1
        fp = footprints[etype]
        for key in rwset.write_keys():
            if not fp.write_covers(key):
                write_misses.append((etype, key))
        for key, _ in rwset.reads:
            if not fp.read_covers(key):
                read_misses.append((etype, key))
    return valid, write_misses, read_misses


def test_differential_write_and_read_coverage_on_deathmatch_trace():
    """Acceptance criterion: 100% of runtime write keys (and read keys)
    fall inside the inferred patterns over a full scripted session."""
    demo_a = generate_session("diff-a", 90_000.0, seed=7, player="p1",
                              spawn_index=0)
    demo_b = generate_session("diff-b", 60_000.0, seed=11, player="p2",
                              spawn_index=1)
    game_map = merged_two_player_map(demo_a, demo_b)
    contract = DoomContract(game_map=game_map)
    footprints = infer_footprints(DoomContract)

    events = [("addPlayer", {}, "p1", 0.0), ("addPlayer", {}, "p2", 0.0),
              ("startGame", {}, "p1", 0.0)]
    merged = sorted(demo_a.events + demo_b.events, key=lambda e: e.t_ms)
    for e in merged:
        events.append((e.etype, dict(e.payload, t=e.t_ms), e.player, e.t_ms))
    # Cross-player damage: the deathmatch ingredient exercising the
    # payload-addressed target key (asset/{arg:target}/...).
    events.append((EventType.DAMAGE,
                   {"amount": 10, "target": "p2", "t": 91_000.0},
                   "p1", 91_000.0))
    events.append((EventType.DAMAGE,
                   {"amount": 15, "target": "p1", "to_armor": True,
                    "t": 91_100.0},
                   "p2", 91_100.0))

    valid, write_misses, read_misses = replay_and_diff(
        contract, events, footprints
    )
    assert valid == len(events)
    assert valid > 500, "trace too short to be meaningful"
    assert write_misses == [], f"uncovered write keys: {write_misses[:10]}"
    assert read_misses == [], f"uncovered read keys: {read_misses[:10]}"


def test_differential_coverage_monolithic_kvs_ablation():
    """The analyzer also understands the split_kvs=False ablation layout
    (one monolithic key per player) of generated contracts."""
    from repro.core.codegen import compile_contract_source, generate_contract_source
    from repro.core.doomspec import doom_spec

    source = generate_contract_source(doom_spec(), split_kvs=False)
    contract_cls = compile_contract_source(source)
    footprints = infer_footprints(source)
    assert footprints["Shoot"].write_covers("player/p1")
    assert not footprints["Shoot"].write_covers("asset/p1/2")

    events = [
        ("addPlayer", {}, "p1", 0.0),
        ("startGame", {}, "p1", 0.0),
        ("Shoot", {}, "p1", 100.0),
    ]
    valid, write_misses, read_misses = replay_and_diff(
        contract_cls(), events, footprints
    )
    assert valid == 3
    assert write_misses == [] and read_misses == []
