"""Byzantine-behaviour tests: lying voters, duplicate deliveries,
stale queries — the adversarial corners of the peer protocol."""


from repro.blockchain import (
    BlockchainNetwork,
    QueryTxStatus,
    TxValidationCode,
    VoteMsg,
)
from repro.simnet import LAN_1GBPS

from conftest import CounterContract


def make_chain(n_peers=5, seed=0):
    chain = BlockchainNetwork(n_peers=n_peers, profile=LAN_1GBPS, seed=seed)
    chain.install_contract(CounterContract)
    return chain


def submit(chain, client, function, args, touched=("ctr/m",)):
    results = []
    client.invoke("counter", function, args, touched,
                  on_complete=lambda r, l: results.append(r))
    chain.run_until_idle()
    return results[0]


def make_liar(peer):
    """Wrap a peer's send so every outgoing vote is inverted."""
    original_send = peer.send

    def lying_send(dst, payload, size_bytes=256):
        if isinstance(payload, VoteMsg):
            payload = VoteMsg(
                block_number=payload.block_number,
                voter=payload.voter,
                votes=tuple(not v for v in payload.votes),
            )
        original_send(dst, payload, size_bytes=size_bytes)

    peer.send = lying_send


class TestLyingVoters:
    def test_single_liar_outvoted(self):
        chain = make_chain(n_peers=5)
        make_liar(chain.peers[4])
        client = chain.create_client("c0")
        res = submit(chain, client, "init", ("m",))
        assert res.code == TxValidationCode.VALID
        for peer in chain.peers:
            assert peer.ledger.state.get("ctr/m") == 0

    def test_two_of_five_liars_outvoted(self):
        chain = make_chain(n_peers=5)
        make_liar(chain.peers[3])
        make_liar(chain.peers[4])
        client = chain.create_client("c0")
        res = submit(chain, client, "init", ("m",))
        assert res.code == TxValidationCode.VALID

    def test_lying_majority_censors_valid_update(self):
        """Beyond the honest-majority assumption (§3.2) the guarantee is
        gone: a lying majority denies consensus to a legal update.  The
        honest anchor never synchronises the block, so the client's poll
        times out."""
        chain = make_chain(n_peers=5)
        for i in (2, 3, 4):
            make_liar(chain.peers[i])
        client = chain.create_client("c0")
        res = submit(chain, client, "init", ("m",))
        assert res.code == TxValidationCode.TIMEOUT
        # Honest peers refuse to apply the censored write…
        assert chain.peers[0].ledger.state.get("ctr/m") is None
        # …and commit it as consensus-not-reached in their ledgers.
        code, _block = chain.peers[0].ledger.tx_status(res.tx_id)
        assert code == TxValidationCode.CONSENSUS_NOT_REACHED

    def test_lying_majority_cannot_forge_state(self):
        """Even a lying majority cannot make honest peers *apply* an
        illegal write: they vote an invalid tx valid, honest peers mark
        themselves diverged instead of executing what they cannot."""
        chain = make_chain(n_peers=5)
        client = chain.create_client("c0")
        assert submit(chain, client, "init", ("m",)).code == TxValidationCode.VALID
        for i in (2, 3, 4):
            make_liar(chain.peers[i])
        submit(chain, client, "sub", ("m", 99))  # illegal: negative
        # Consensus (of liars) accepted it, but honest peers have no
        # valid execution to apply — state stays legal, divergence is
        # flagged for out-of-band action.
        assert chain.peers[0].ledger.state.get("ctr/m") == 0
        assert chain.peers[0].diverged


class TestProtocolEdges:
    def test_duplicate_block_delivery_is_idempotent(self):
        chain = make_chain(n_peers=3)
        client = chain.create_client("c0")
        assert submit(chain, client, "init", ("m",)).code == TxValidationCode.VALID
        peer = chain.peers[0]
        block = peer.ledger.block(1)
        height_before = peer.ledger.height
        peer._on_block(block)  # replayed delivery
        chain.run_until_idle()
        assert peer.ledger.height == height_before
        assert peer.ledger.state.get("ctr/m") == 0

    def test_query_for_unknown_tx_pending(self):
        chain = make_chain(n_peers=3)
        client = chain.create_client("c0")
        client.send(chain.peers[0], QueryTxStatus("ghost-tx"), size_bytes=64)
        chain.run_until_idle()
        # The reply is PENDING; the client ignores unknown ids silently.
        assert client.pending_count() == 0

    def test_vote_from_stranger_ignored(self):
        chain = make_chain(n_peers=3)
        client = chain.create_client("c0")
        peer = chain.peers[0]
        peer._record_vote(VoteMsg(block_number=1, voter="mallory", votes=(True,)))
        assert "mallory" not in peer._votes.get(1, {})
        assert submit(chain, client, "init", ("m",)).code == TxValidationCode.VALID

    def test_client_poll_stops_when_idle(self):
        chain = make_chain(n_peers=3)
        client = chain.create_client("c0")
        submit(chain, client, "init", ("m",))
        # After completion no poll timer remains scheduled.
        assert client.pending_count() == 0
        pending_before = chain.scheduler.pending
        chain.run(until=chain.now + 10_000.0)
        assert chain.scheduler.events_processed >= 0
        assert chain.scheduler.pending <= pending_before
