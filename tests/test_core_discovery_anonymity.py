"""Tests for peer discovery and the anonymity directory."""

import pytest

from repro.blockchain import CertificateAuthority
from repro.core import (
    Advertisement,
    AnonymityError,
    DiscoveryListener,
    JoinAccepted,
    JoinRejected,
    JoiningPeer,
    build_directory,
)
from repro.simnet import LAN_1GBPS, Network


@pytest.fixture()
def ca():
    return CertificateAuthority()


def make_room(ca, max_peers=4, window_ms=1000.0, on_closed=None):
    net = Network(profile=LAN_1GBPS, seed=0)
    ad = Advertisement(
        game="doom", contract_digest="abc123", consensus_policy="majority",
        listen_window_ms=window_ms,
    )
    listener = net.register(
        DiscoveryListener(
            "initiator", "lan", ad, max_peers,
            validate_certificate=ca.verify, on_closed=on_closed,
        )
    )
    listener.open()
    return net, listener


def make_peer(net, ca, name):
    cert = ca.enroll(name).certificate
    return net.register(JoiningPeer(name, "lan", cert, f"10.0.0.{name[-1]}"))


class TestDiscovery:
    def test_peers_join_within_window(self, ca):
        closed = []
        net, listener = make_room(ca, on_closed=closed.append)
        peers = [make_peer(net, ca, f"peer{i}") for i in range(3)]
        for peer in peers:
            peer.join(listener)
        net.run_until_idle()
        assert all(isinstance(p.outcome, JoinAccepted) for p in peers)
        # Arrival order over the network may differ from send order.
        assert {r.certificate.subject for r in closed[0]} == {p.name for p in peers}

    def test_window_closes_after_duration(self, ca):
        net, listener = make_room(ca, window_ms=100.0)
        late = make_peer(net, ca, "peer9")
        net.scheduler.call_after(200.0, late.join, listener)
        net.run_until_idle()
        assert isinstance(late.outcome, JoinRejected)
        assert "closed" in late.outcome.reason

    def test_room_fills_and_closes(self, ca):
        net, listener = make_room(ca, max_peers=2)
        peers = [make_peer(net, ca, f"peer{i}") for i in range(3)]
        for peer in peers:
            peer.join(listener)
        net.run_until_idle()
        accepted = [p for p in peers if isinstance(p.outcome, JoinAccepted)]
        rejected = [p for p in peers if isinstance(p.outcome, JoinRejected)]
        assert len(accepted) == 2 and len(rejected) == 1

    def test_duplicate_subject_rejected(self, ca):
        net, listener = make_room(ca)
        peer = make_peer(net, ca, "peer1")
        peer.join(listener)
        net.run_until_idle()
        twin = net.register(JoiningPeer("twin", "lan", peer.certificate, "10.0.0.9"))
        twin.join(listener)
        net.run_until_idle()
        assert isinstance(twin.outcome, JoinRejected)

    def test_untrusted_certificate_rejected(self, ca):
        net, listener = make_room(ca)
        evil_ca = CertificateAuthority("evil", seed=42)
        mallory = net.register(
            JoiningPeer("mallory", "lan", evil_ca.enroll("mallory").certificate, "6.6.6.6")
        )
        mallory.join(listener)
        net.run_until_idle()
        assert isinstance(mallory.outcome, JoinRejected)
        assert "certificate" in mallory.outcome.reason

    def test_roster_positions_sequential(self, ca):
        net, listener = make_room(ca)
        peers = [make_peer(net, ca, f"peer{i}") for i in range(3)]
        for peer in peers:
            peer.join(listener)
        net.run_until_idle()
        assert sorted(p.outcome.roster_position for p in peers) == [0, 1, 2]

    def test_zero_slot_room_rejected(self, ca):
        ad = Advertisement("doom", "d", "majority", 100.0)
        with pytest.raises(ValueError):
            DiscoveryListener("x", "lan", ad, 0, ca.verify)


class TestAnonymity:
    def test_directory_bijective(self, ca):
        certs = [ca.enroll(f"peer{i}").certificate for i in range(8)]
        directory = build_directory(certs, session_seed=1)
        players = directory.players()
        assert len(set(players)) == 8
        for cert in certs:
            assert directory.subject_for(directory.player_for(cert.subject)) == cert.subject

    def test_identities_deterministic_per_session(self, ca):
        certs = [ca.enroll(f"peer{i}").certificate for i in range(3)]
        a = build_directory(certs, session_seed=5)
        b = build_directory(certs, session_seed=5)
        assert a.players() == b.players()

    def test_identities_differ_across_sessions(self, ca):
        certs = [ca.enroll(f"peer{i}").certificate for i in range(3)]
        a = build_directory(certs, session_seed=1)
        b = build_directory(certs, session_seed=2)
        assert a.players() != b.players()

    def test_player_ids_do_not_leak_subjects(self, ca):
        certs = [ca.enroll("alice").certificate]
        directory = build_directory(certs)
        assert "alice" not in directory.players()[0]

    def test_unknown_lookups_raise(self, ca):
        certs = [ca.enroll("alice").certificate]
        directory = build_directory(certs)
        with pytest.raises(AnonymityError):
            directory.player_for("bob")
        with pytest.raises(AnonymityError):
            directory.subject_for("player-00000000")

    def test_empty_certificate_list_rejected(self):
        with pytest.raises(AnonymityError):
            build_directory([])
