"""Tests for the Table 1 constraint-specification language."""

import pytest

from repro.core import SpecError, doom_spec, parse_spec
from repro.core.spec import ADDITIVE, MULTIPLICATIVE, PowerSpec

MINIMAL = """
<GameSpec name="Mini">
  <Assets>
    <Asset aId="1" value="100" name="Health">
      <power pwId="0" change="+" factor="-10" />
      <power pwId="1" change="x" factor="2" />
    </Asset>
  </Assets>
  <Players>
    <player pId="1">Player 1</player>
    <player pId="2">Player 2</player>
  </Players>
  <Events>
    <Event eId="1" name="Hit">
      <affects pId="*" aId="1" pwId="0" />
    </Event>
    <Event eId="2" name="Boost">
      <affects pId="self" aId="1" pwId="1" />
    </Event>
  </Events>
</GameSpec>
"""


class TestParsing:
    def test_minimal_spec_parses(self):
        spec = parse_spec(MINIMAL)
        assert spec.name == "Mini"
        assert len(spec.assets) == 1
        assert len(spec.players) == 2
        assert len(spec.events) == 2

    def test_power_modes(self):
        spec = parse_spec(MINIMAL)
        health = spec.asset_by_name("Health")
        assert health.power(0).change == ADDITIVE
        assert health.power(0).factor == -10
        assert health.power(1).change == MULTIPLICATIVE

    def test_power_apply(self):
        assert PowerSpec(0, ADDITIVE, -10).apply(100) == 90
        assert PowerSpec(1, MULTIPLICATIVE, 2).apply(100) == 200

    def test_affects_pid_variants(self):
        spec = parse_spec(MINIMAL)
        hit = spec.event_by_name("Hit")
        boost = spec.event_by_name("Boost")
        assert hit.affects[0].pid == "*"
        assert boost.affects[0].pid == "self"

    def test_unicode_multiplication_sign_accepted(self):
        xml = MINIMAL.replace('change="x"', 'change="×"')
        spec = parse_spec(xml)
        assert spec.asset_by_name("Health").power(1).change == MULTIPLICATIVE

    def test_lookup_errors(self):
        spec = parse_spec(MINIMAL)
        with pytest.raises(SpecError):
            spec.asset_by_name("Mana")
        with pytest.raises(SpecError):
            spec.event_by_name("Jump")


class TestValidation:
    @pytest.mark.parametrize(
        "mutation,why",
        [
            (lambda s: s.replace('value="100"', 'value="-5"'), "negative default"),
            (lambda s: s.replace('change="+"', 'change="?"'), "bad change"),
            (lambda s: s.replace('aId="1" pwId="0"', 'aId="9" pwId="0"'), "unknown asset"),
            (lambda s: s.replace('pId="*" aId="1" pwId="0"', 'pId="*" aId="1" pwId="7"'),
             "unknown power"),
            (lambda s: s.replace('eId="1"', 'eId="0"'), "eId below 1"),
            (lambda s: s.replace('<player pId="2">Player 2</player>',
                                 '<player pId="99">P</player>'), "pId above MaxP"),
            (lambda s: s.replace('value="100"', 'value="abc"'), "non-numeric value"),
            (lambda s: s.replace("<Assets>", "<Resources>").replace("</Assets>", "</Resources>"),
             "missing Assets section"),
        ],
    )
    def test_malformed_specs_rejected(self, mutation, why):
        with pytest.raises(SpecError):
            parse_spec(mutation(MINIMAL))

    def test_duplicate_asset_id_rejected(self):
        xml = MINIMAL.replace(
            "</Assets>",
            '<Asset aId="1" value="0" name="Dup" /></Assets>',
        )
        with pytest.raises(SpecError):
            parse_spec(xml)

    def test_duplicate_event_id_rejected(self):
        xml = MINIMAL.replace(
            "</Events>",
            '<Event eId="1" name="Dup" /></Events>',
        )
        with pytest.raises(SpecError):
            parse_spec(xml)

    def test_malformed_xml_rejected(self):
        with pytest.raises(SpecError):
            parse_spec("<GameSpec><Assets>")

    def test_fixed_pid_must_reference_player(self):
        xml = MINIMAL.replace('pId="*"', 'pId="7"')
        with pytest.raises(SpecError):
            parse_spec(xml)


class TestDoomSpec:
    def test_doom_spec_parses(self):
        spec = doom_spec()
        assert spec.name == "Doom"

    def test_nine_assets_eleven_events_four_players(self):
        spec = doom_spec()
        assert len(spec.assets) == 9
        assert len(spec.events) == 11
        assert len(spec.players) == 4

    def test_fig1_health_powers(self):
        # Fig. 1's Health asset declares powers 0 (damage) and 2 (heal).
        spec = doom_spec()
        health = spec.asset_by_name("Health")
        assert health.power(0).factor < 0
        assert health.power(2).factor > 0

    def test_shoot_event_affects_ammunition(self):
        spec = doom_spec()
        shoot = spec.event_by_name("Shoot")
        ammo = spec.asset_by_name("Ammunition")
        assert any(a.aid == ammo.aid for a in shoot.affects)
