"""Tests for the sharded deployment (§8(5) future-work extension)."""

import pytest

from repro.blockchain import ShardedDeployment, TxValidationCode
from repro.simnet import LAN_1GBPS

from conftest import CounterContract


def make_sharded(n_peers=8, n_shards=2):
    deployment = ShardedDeployment(
        n_peers=n_peers, n_shards=n_shards, profile=LAN_1GBPS, seed=1
    )
    deployment.install_contract(CounterContract)
    return deployment


class TestConstruction:
    def test_peers_partitioned_across_shards(self):
        deployment = make_sharded(10, 3)
        sizes = [len(shard.peers) for shard in deployment.shards]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_peer_names_globally_unique(self):
        deployment = make_sharded(8, 2)
        names = [p.name for shard in deployment.shards for p in shard.peers]
        assert len(names) == len(set(names))

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedDeployment(n_peers=4, n_shards=0)
        with pytest.raises(ValueError):
            ShardedDeployment(n_peers=2, n_shards=3)

    def test_key_routing_stable_and_total(self):
        deployment = make_sharded(8, 2)
        for key in ("ctr/a", "ctr/b", "asset/p1/6", "asset/p2/1"):
            index = deployment.shard_index_for_key(key)
            assert index == deployment.shard_index_for_key(key)
            assert deployment.shard_for_key(key) is deployment.shards[index]


class TestOperation:
    def test_shards_commit_independently(self):
        deployment = make_sharded(8, 2)
        results = []
        clients = []
        for i, shard in enumerate(deployment.shards):
            client = shard.create_client(f"client{i}")
            clients.append(client)
            client.invoke("counter", "init", (f"c{i}",), (f"ctr/c{i}",),
                          on_complete=lambda r, l: results.append(r.code))
        deployment.run_until_idle()
        assert results == [TxValidationCode.VALID] * 2
        # Each shard holds only its own keys.
        assert deployment.shards[0].peers[0].ledger.state.get("ctr/c0") == 0
        assert deployment.shards[0].peers[0].ledger.state.get("ctr/c1") is None
        assert deployment.shards[1].peers[0].ledger.state.get("ctr/c1") == 0
        assert deployment.all_synced()

    def test_shared_clock(self):
        """Both shards live on one simulated network/clock."""
        deployment = make_sharded(8, 2)
        assert deployment.shards[0].net is deployment.shards[1].net
        assert deployment.shards[0].scheduler is deployment.scheduler

    def test_shard_latency_tracks_shard_size_not_room_size(self):
        """The point of sharding: a 16-peer room in 2 shards validates
        like an 8-peer room."""
        def avg_latency(deployment):
            shard = deployment.shards[0]
            client = shard.create_client("probe")
            latencies = []
            client.invoke("counter", "init", ("m",), ("ctr/m",),
                          on_complete=lambda r, l: latencies.append(l))
            deployment.run_until_idle()
            for _ in range(5):
                client.invoke("counter", "add", ("m", 1), ("ctr/m",),
                              on_complete=lambda r, l: latencies.append(l))
                deployment.run_until_idle()
            return sum(latencies) / len(latencies)

        from repro.simnet import INTERNET_US

        sharded = ShardedDeployment(16, 2, profile=INTERNET_US, seed=2)
        sharded.install_contract(CounterContract)
        whole = ShardedDeployment(16, 1, profile=INTERNET_US, seed=2)
        whole.install_contract(CounterContract)
        assert avg_latency(sharded) < avg_latency(whole)
