"""Property-based tests: consensus policy and the batching model."""

from hypothesis import given
from hypothesis import strategies as st

from repro.blockchain import ConsensusPolicy
from repro.core import count_delays
from repro.game import EventType, GameEvent

policies = st.sampled_from(
    ["majority", "all", "any", "atleast(2)", "atleast(5)",
     "majority and any", "all or atleast(3)", "not all",
     "(majority or atleast(4)) and any"]
)


@st.composite
def electorates(draw):
    total = draw(st.integers(1, 12))
    names = [f"p{i}" for i in range(total)]
    votes = {
        name: draw(st.booleans())
        for name in names
        if draw(st.booleans())  # each voter may not have voted yet
    }
    return names, votes


class TestPolicyProperties:
    @given(policies, electorates())
    def test_decided_is_sound(self, expression, electorate):
        """If decided() returns a verdict on partial votes, then *every*
        completion of the missing votes evaluates to that verdict."""
        names, votes = electorate
        policy = ConsensusPolicy(expression)
        verdict = policy.decided(votes, len(names), all_voters=names)
        if verdict is None:
            return
        missing = [n for n in names if n not in votes]
        # Exhaustive over completions (≤ 2^12 worst case, but hypothesis
        # keeps electorates small).
        for mask in range(2 ** len(missing)):
            completed = dict(votes)
            for bit, name in enumerate(missing):
                completed[name] = bool((mask >> bit) & 1)
            assert policy.evaluate(completed, len(names)) == verdict

    @given(policies, electorates())
    def test_full_votes_always_decided(self, expression, electorate):
        names, votes = electorate
        complete = {name: votes.get(name, False) for name in names}
        policy = ConsensusPolicy(expression)
        verdict = policy.decided(complete, len(names), all_voters=names)
        assert verdict == policy.evaluate(complete, len(names))

    @given(policies)
    def test_describe_reparses_equivalently(self, expression):
        policy = ConsensusPolicy(expression)
        again = ConsensusPolicy(policy.describe())
        votes = {"p0": True, "p1": False, "p2": True}
        for total in (3, 5):
            assert policy.evaluate(votes, total) == again.evaluate(votes, total)


@st.composite
def event_streams(draw):
    """Time-ordered per-player event streams with contiguous seqs."""
    n = draw(st.integers(0, 80))
    etypes = st.sampled_from(
        [EventType.LOCATION, EventType.SHOOT, EventType.DAMAGE,
         EventType.WEAPON_CHANGE]
    )
    t = 0.0
    events = []
    for seq in range(1, n + 1):
        t += draw(st.floats(0.0, 60.0))
        events.append(GameEvent(t, "p1", draw(etypes), {"count": 1}, seq))
    return events


class TestBatchingModelProperties:
    @given(event_streams(), st.floats(1.0, 500.0))
    def test_every_event_dispatched_exactly_once(self, events, window):
        report = count_delays(events, window, batching=True)
        assert report.total_events == len(events)
        # Dispatched batches cover every event: singles + batched events.
        singles = report.dispatched_txs - report.batches
        assert singles + report.batched_events == len(events)

    @given(event_streams(), st.floats(1.0, 500.0))
    def test_batching_never_increases_delays(self, events, window):
        with_b = count_delays(events, window, batching=True)
        without = count_delays(events, window, batching=False)
        assert with_b.delayed_events <= without.delayed_events

    @given(event_streams(), st.floats(1.0, 500.0))
    def test_batching_never_increases_txs(self, events, window):
        with_b = count_delays(events, window, batching=True)
        without = count_delays(events, window, batching=False)
        assert with_b.dispatched_txs <= without.dispatched_txs
        assert without.dispatched_txs == len(events)

    @given(event_streams(), st.floats(1.0, 200.0), st.floats(1.5, 4.0))
    def test_wider_window_never_reduces_delays_without_batching(
        self, events, window, factor
    ):
        narrow = count_delays(events, window, batching=False)
        wide = count_delays(events, window * factor, batching=False)
        assert wide.delayed_events >= narrow.delayed_events

    @given(event_streams(), st.floats(1.0, 500.0), st.integers(1, 8))
    def test_max_batch_bound_respected(self, events, window, max_batch):
        report = count_delays(events, window, batching=True, max_batch=max_batch)
        assert report.max_batch_size <= max(max_batch, 1)

    @given(event_streams())
    def test_delays_zero_when_window_tiny(self, events):
        """With a near-zero window and strictly increasing timestamps
        the lane is always free on arrival: nothing queues, every event
        dispatches alone, nothing is delayed."""
        spaced = [
            type(e)(float(i), e.player, e.etype, e.payload, e.seq)
            for i, e in enumerate(events)
        ]
        report = count_delays(spaced, window_ms=1e-9, batching=True)
        assert report.delayed_events == 0
        assert report.dispatched_txs == len(events)
