"""Unit tests for world state, blocks and ledger MVCC semantics."""

import pytest

from repro.blockchain import (
    CertificateAuthority,
    Ledger,
    LedgerError,
    Proposal,
    RWSet,
    Transaction,
    TxExecution,
    TxValidationCode,
    Version,
    WorldState,
    make_genesis_block,
)
from repro.blockchain.block import make_block


@pytest.fixture()
def ca():
    return CertificateAuthority()


@pytest.fixture()
def identity(ca):
    return ca.enroll("client")


def make_tx(identity, tx_id, nonce=None):
    proposal = Proposal(
        tx_id=tx_id,
        contract="c",
        function="f",
        args=(),
        nonce=nonce or tx_id,
        creator=identity.name,
        timestamp=0.0,
    )
    return Transaction(
        proposal=proposal,
        certificate=identity.certificate,
        signature=identity.sign(proposal.digest()),
    )


def fresh_ledger():
    return Ledger(make_genesis_block({"peers": ["p0"]}))


class TestWorldState:
    def test_get_missing_returns_none(self):
        assert WorldState().get("nope") is None

    def test_put_get_roundtrip(self):
        ws = WorldState()
        ws.put("k", 42, Version(1, 0))
        assert ws.get("k") == 42
        assert ws.version_of("k") == Version(1, 0)

    def test_delete(self):
        ws = WorldState()
        ws.put("k", 1, Version(1, 0))
        ws.delete("k")
        assert "k" not in ws

    def test_state_hash_changes_with_content(self):
        a, b = WorldState(), WorldState()
        a.put("k", 1, Version(1, 0))
        b.put("k", 2, Version(1, 0))
        assert a.state_hash() != b.state_hash()

    def test_state_hash_equal_for_equal_states(self):
        a, b = WorldState(), WorldState()
        for ws in (a, b):
            ws.put("x", 1, Version(1, 0))
            ws.put("y", [1, 2], Version(1, 1))
        assert a.state_hash() == b.state_hash()

    def test_copy_is_independent(self):
        a = WorldState()
        a.put("k", 1, Version(1, 0))
        b = a.copy()
        b.put("k", 2, Version(2, 0))
        assert a.get("k") == 1

    def test_version_ordering(self):
        assert Version(1, 5) < Version(2, 0)
        assert Version(2, 0) < Version(2, 1)


class TestLedger:
    def test_genesis_height(self):
        assert fresh_ledger().height == 1

    def test_append_valid_tx_applies_writes(self, identity):
        ledger = fresh_ledger()
        tx = make_tx(identity, "t1")
        block = make_block(1, ledger.last_hash, [tx], timestamp=1.0)
        codes = ledger.append(
            block, [TxExecution(rwset=RWSet(reads=[], writes=[("k", 7)]))]
        )
        assert codes == [TxValidationCode.VALID]
        assert ledger.state.get("k") == 7
        assert ledger.tx_status("t1") == (TxValidationCode.VALID, 1)

    def test_unknown_tx_is_pending(self):
        assert fresh_ledger().tx_status("nope") == (TxValidationCode.PENDING, None)

    def test_mvcc_stale_read_rejected(self, identity):
        ledger = fresh_ledger()
        tx1 = make_tx(identity, "t1")
        block1 = make_block(1, ledger.last_hash, [tx1], timestamp=1.0)
        ledger.append(block1, [TxExecution(rwset=RWSet(writes=[("k", 1)]))])

        # tx2 read "k" before block1 committed (observed version None).
        tx2 = make_tx(identity, "t2")
        block2 = make_block(2, ledger.last_hash, [tx2], timestamp=2.0)
        codes = ledger.append(
            block2,
            [TxExecution(rwset=RWSet(reads=[("k", None)], writes=[("k", 2)]))],
        )
        assert codes == [TxValidationCode.MVCC_READ_CONFLICT]
        assert ledger.state.get("k") == 1

    def test_block_level_kvs_conflict_second_tx_rejected(self, identity):
        """Two updates to the same key in one block: Fabric's block-level
        lock rejects the latter (§6 — two successive SHOOT events)."""
        ledger = fresh_ledger()
        txa, txb = make_tx(identity, "a"), make_tx(identity, "b")
        block = make_block(1, ledger.last_hash, [txa, txb], timestamp=1.0)
        codes = ledger.append(
            block,
            [
                TxExecution(rwset=RWSet(reads=[("k", None)], writes=[("k", 1)])),
                TxExecution(rwset=RWSet(reads=[("k", None)], writes=[("k", 2)])),
            ],
        )
        assert codes == [
            TxValidationCode.VALID,
            TxValidationCode.MVCC_READ_CONFLICT,
        ]
        assert ledger.state.get("k") == 1

    def test_disjoint_keys_in_block_both_commit(self, identity):
        """Per-player-per-asset KVS split (§6 opt. i): disjoint keys do
        not conflict within a block."""
        ledger = fresh_ledger()
        txa, txb = make_tx(identity, "a"), make_tx(identity, "b")
        block = make_block(1, ledger.last_hash, [txa, txb], timestamp=1.0)
        codes = ledger.append(
            block,
            [
                TxExecution(rwset=RWSet(reads=[("p1/ammo", None)], writes=[("p1/ammo", 49)])),
                TxExecution(rwset=RWSet(reads=[("p1/health", None)], writes=[("p1/health", 90)])),
            ],
        )
        assert codes == [TxValidationCode.VALID, TxValidationCode.VALID]

    def test_invalid_execution_not_applied(self, identity):
        ledger = fresh_ledger()
        tx = make_tx(identity, "t1")
        block = make_block(1, ledger.last_hash, [tx], timestamp=1.0)
        codes = ledger.append(
            block,
            [
                TxExecution(
                    rwset=RWSet(writes=[("k", 1)]),
                    code=TxValidationCode.CONTRACT_REJECTED,
                )
            ],
        )
        assert codes == [TxValidationCode.CONTRACT_REJECTED]
        assert ledger.state.get("k") is None

    def test_wrong_block_number_rejected(self, identity):
        ledger = fresh_ledger()
        tx = make_tx(identity, "t1")
        block = make_block(5, ledger.last_hash, [tx], timestamp=1.0)
        with pytest.raises(LedgerError):
            ledger.append(block, [TxExecution(rwset=RWSet())])

    def test_wrong_previous_hash_rejected(self, identity):
        ledger = fresh_ledger()
        tx = make_tx(identity, "t1")
        block = make_block(1, "f" * 64, [tx], timestamp=1.0)
        with pytest.raises(LedgerError):
            ledger.append(block, [TxExecution(rwset=RWSet())])

    def test_execution_count_mismatch_rejected(self, identity):
        ledger = fresh_ledger()
        tx = make_tx(identity, "t1")
        block = make_block(1, ledger.last_hash, [tx], timestamp=1.0)
        with pytest.raises(LedgerError):
            ledger.append(block, [])

    def test_chain_validates_and_detects_tampering(self, identity):
        ledger = fresh_ledger()
        for i in range(3):
            tx = make_tx(identity, f"t{i}")
            block = make_block(i + 1, ledger.last_hash, [tx], timestamp=float(i))
            ledger.append(block, [TxExecution(rwset=RWSet(writes=[(f"k{i}", i)]))])
        assert ledger.validate_chain()

        # Tamper with a committed transaction: the data hash breaks.
        victim = ledger.block(2).transactions[0]
        object.__setattr__(victim.proposal, "args", ("cheat",))
        assert not ledger.validate_chain()

    def test_versions_recorded_per_tx_index(self, identity):
        ledger = fresh_ledger()
        txa, txb = make_tx(identity, "a"), make_tx(identity, "b")
        block = make_block(1, ledger.last_hash, [txa, txb], timestamp=1.0)
        ledger.append(
            block,
            [
                TxExecution(rwset=RWSet(writes=[("x", 1)])),
                TxExecution(rwset=RWSet(writes=[("y", 2)])),
            ],
        )
        assert ledger.state.version_of("x") == Version(1, 0)
        assert ledger.state.version_of("y") == Version(1, 1)
