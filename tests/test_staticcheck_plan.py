"""ConflictPlanner: DAG/lane unit behaviour, the advisory ordering-
service hook, and the two bit-identity contracts (golden chaos record
and session replay) that pin the flag as observation-only."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blockchain.config import FabricConfig
from repro.blockchain.identity import CertificateAuthority
from repro.blockchain.transaction import Proposal, Transaction
from repro.core import DoomContract, GameSession
from repro.staticcheck import ConflictPlanner
from repro.staticcheck.fuzz import _doom_case, _monopoly_case, fuzz_case

_CA = CertificateAuthority(name="plan-test-ca")
_IDENTITIES = {}


def make_tx(function, creator, contract="doom", n=[0]):
    if creator not in _IDENTITIES:
        _IDENTITIES[creator] = _CA.enroll(creator)
    identity = _IDENTITIES[creator]
    n[0] += 1
    proposal = Proposal(
        tx_id=f"pt{n[0]}",
        contract=contract,
        function=function,
        args=({},),
        nonce=f"n{n[0]}",
        creator=creator,
        timestamp=float(n[0]),
    )
    return Transaction(
        proposal=proposal,
        certificate=identity.certificate,
        signature=identity.sign(proposal.digest()),
    )


@pytest.fixture(scope="module")
def planner():
    return ConflictPlanner.for_contract(DoomContract)


class TestMayConflict:
    def test_same_player_conflict_needs_same_creator(self, planner):
        a = make_tx("location", "alice")
        b = make_tx("location", "bob")
        c = make_tx("location", "alice")
        assert not planner.may_conflict(a, b)
        assert planner.may_conflict(a, c)

    def test_disjoint_functions_are_independent(self, planner):
        # location only touches POSITION; shoot touches weapon/ammo.
        a = make_tx("location", "alice")
        b = make_tx("shoot", "alice")
        assert not planner.may_conflict(a, b)

    def test_always_conflicts_cross_players(self, planner):
        # addPlayer writes the shared roster key.
        a = make_tx("addPlayer", "alice")
        b = make_tx("addPlayer", "bob")
        assert planner.may_conflict(a, b)

    def test_unknown_function_is_conservative(self, planner):
        a = make_tx("location", "alice")
        b = make_tx("mystery_fn", "bob")
        assert planner.may_conflict(a, b)

    def test_foreign_contract_is_conservative(self, planner):
        a = make_tx("location", "alice")
        b = make_tx("location", "bob", contract="other")
        assert planner.may_conflict(a, b)


class TestPlanBlock:
    def test_lanes_partition_preserving_block_order(self, planner):
        txs = [
            make_tx("location", "alice"),
            make_tx("location", "bob"),
            make_tx("shoot", "alice"),
            make_tx("location", "carol"),
        ]
        plan = planner.plan_block(txs)
        flat = sorted(i for lane in plan.lanes for i in lane)
        assert flat == [0, 1, 2, 3]
        assert all(lane == sorted(lane) for lane in plan.lanes)
        assert plan.parallelism == 4  # all pairwise independent
        assert plan.edges == []

    def test_edges_connect_lanes(self, planner):
        txs = [
            make_tx("location", "alice"),
            make_tx("location", "alice"),  # same creator: edge
            make_tx("location", "bob"),
        ]
        plan = planner.plan_block(txs)
        assert (0, 1) in plan.edges
        assert plan.lane_of(0) == plan.lane_of(1)
        assert plan.lane_of(2) != plan.lane_of(0)

    def test_to_json_roundtrips_to_plain_data(self, planner):
        plan = planner.plan_block([make_tx("location", "alice")])
        payload = json.loads(json.dumps(plan.to_json()))
        assert payload["lanes"] == [[0]]
        assert payload["tx_ids"] == plan.tx_ids

    def test_empty_block(self, planner):
        plan = planner.plan_block([])
        assert plan.lanes == [] and plan.edges == [] and plan.tx_ids == []


# ----------------------------------------------------------------------
# property: cross-lane transactions never interact at runtime.  The fuzz
# harness executes real traces through the real ledger and records a
# "lanes" violation whenever two transactions from different lanes touch
# a common key — so plan soundness reduces to "no lane violations at any
# seed".


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_lane_partition_matches_runtime_rwsets_doom(seed):
    outcome = fuzz_case(_doom_case(), n_events=30, seed=seed)
    lanes = [v for v in outcome.violations if v.kind == "lanes"]
    independence = [v for v in outcome.violations if v.kind == "independence"]
    assert not lanes, lanes
    assert not independence, independence


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_lane_partition_matches_runtime_rwsets_monopoly(seed):
    outcome = fuzz_case(_monopoly_case(), n_events=30, seed=seed)
    lanes = [v for v in outcome.violations if v.kind == "lanes"]
    assert not lanes, lanes


# ----------------------------------------------------------------------
# the flag is advisory: bit-identical results on or off


class TestFlagEquivalence:
    def test_chaos_golden_record_unchanged_with_planner_on(self):
        import test_chaos_determinism_golden as golden_mod
        from repro.chaos.runner import run_scenario

        result = run_scenario(
            "churn-partition-ddos",
            seed=7,
            config=FabricConfig(conflict_planner=True),
        )
        record = golden_mod._make_record(result)
        with open(golden_mod.GOLDEN_PATH) as handle:
            assert record == json.load(handle)

    def test_session_replay_metrics_identical_and_plans_recorded(self):
        from repro.perf.workloads import _session9_prefix

        demo = _session9_prefix(250)

        def run(flag):
            session = GameSession(
                n_peers=8,
                fabric_config=FabricConfig(
                    max_block_txs=5,
                    mutually_exclusive_blocks=True,
                    conflict_planner=flag,
                ),
                seed=7,
            )
            session.setup()
            session.play_demo(demo)
            session.run_until_idle()
            stats = session.stats()
            peers = session.chain.peers
            metrics = {
                "accepted": stats.accepted_events,
                "rejected": stats.rejected_events,
                "avg_latency_ms": round(stats.avg_latency_ms, 6),
                "sim_now_ms": round(session.now, 6),
                "committed_heights": sorted(
                    {p.committed_height for p in peers}
                ),
                "scheduler_events": session.scheduler.events_processed,
                "ledgers_agree": session.ledgers_agree(),
            }
            plans = [
                b.plan
                for b in session.chain.orderer._cut_blocks
                if b.plan is not None
            ]
            return metrics, plans

        metrics_off, plans_off = run(False)
        metrics_on, plans_on = run(True)
        assert metrics_off == metrics_on
        assert plans_off == []  # flag off: no plan metadata at all
        assert plans_on  # flag on: every cut block carries its plan
        for plan in plans_on:
            indices = sorted(i for lane in plan["lanes"] for i in lane)
            assert indices == list(range(len(plan["tx_ids"])))
