"""Lifecycle-trace properties: span completeness, determinism, exporters.

The span-completeness property is the telemetry system's core contract:
every transaction committed on an 8-peer replay carries the full
``submit → ordering → gossip → endorsement → validation → commit`` chain
at the witness peer, and every MVCC-aborted transaction the same chain
ending in ``validation-abort``.  Alongside it: telemetry must be
invisible to the simulation (identical timeline digests and simulated
metrics with and without), and the exporters must produce parseable,
named-stage output.
"""

import dataclasses
import json

import pytest

from repro.chaos.runner import run_scenario
from repro.chaos.scenarios import get_scenario
from repro.perf.workloads import session_replay
from repro.telemetry import (
    TX_CHAIN_STAGES,
    Telemetry,
    fig2_latency_bins,
    stage_summary,
    trace_records,
    write_trace_jsonl,
)

SEED = 11


@pytest.fixture(scope="module")
def traced_8p():
    """One traced 8-peer fault-free run; the workload's conflicting
    increments guarantee MVCC aborts alongside commits."""
    scenario = dataclasses.replace(
        get_scenario("baseline"),
        name="baseline-8p",
        n_peers=8,
        duration_ms=6000.0,
        settle_ms=1000.0,
    )
    telemetry = Telemetry()
    result = run_scenario(scenario, seed=SEED, telemetry=telemetry)
    return telemetry, result


def _witness_outcomes(telemetry):
    """(committed, aborted) tx-id lists from the e2e/commit spans'
    recorded validation codes at the witness peer."""
    committed, aborted = [], []
    for span in telemetry.tracer.spans:
        if span.host != telemetry.witness:
            continue
        if span.stage == "commit":
            committed.append(span.trace_id)
        elif span.stage == "validation-abort":
            aborted.append(span.trace_id)
    return committed, aborted


def test_span_completeness_committed_8p(traced_8p):
    telemetry, result = traced_8p
    assert result.ok
    committed, aborted = _witness_outcomes(telemetry)
    assert len(committed) > 20, "workload should commit plenty of txs"
    expected = TX_CHAIN_STAGES + ("commit",)
    for tx_id in committed:
        chain = telemetry.tracer.stage_chain(tx_id, host=telemetry.witness)
        core = tuple(s for s in chain if s in expected)
        assert core == expected, f"{tx_id}: incomplete chain {chain}"


def test_span_completeness_aborted_ends_in_validation_abort(traced_8p):
    telemetry, result = traced_8p
    committed, aborted = _witness_outcomes(telemetry)
    assert aborted, "conflict_every workload should produce MVCC aborts"
    expected = TX_CHAIN_STAGES + ("validation-abort",)
    for tx_id in aborted:
        chain = telemetry.tracer.stage_chain(tx_id, host=telemetry.witness)
        core = tuple(s for s in chain if s in expected + ("commit",))
        assert core == expected, f"{tx_id}: aborted tx chain {chain}"


def test_witness_outcomes_match_ledger(traced_8p):
    telemetry, result = traced_8p
    committed, aborted = _witness_outcomes(telemetry)
    # The spans' verdicts are the committed heights the result reports:
    # every tx is accounted for exactly once at the witness.
    assert len(set(committed) & set(aborted)) == 0
    assert result.workload_summary.get("VALID", 0) <= len(committed)


def test_trace_jsonl_round_trips(traced_8p, tmp_path):
    telemetry, _ = traced_8p
    path = tmp_path / "trace.jsonl"
    n = write_trace_jsonl(telemetry, str(path))
    lines = path.read_text().splitlines()
    assert len(lines) == n == len(trace_records(telemetry))
    first = json.loads(lines[0])
    assert {"trace_id", "stage", "host", "t_start", "t_end"} <= set(first)


def test_stage_summary_names_pipeline_stages(traced_8p):
    telemetry, _ = traced_8p
    summary = stage_summary(telemetry)
    for stage in ("submit", "ordering", "gossip", "endorsement",
                  "validation", "commit"):
        assert stage in summary, f"missing stage {stage}"
        assert summary[stage]["count"] > 0
        assert summary[stage]["p50_ms"] <= summary[stage]["p95_ms"]
        assert summary[stage]["p95_ms"] <= summary[stage]["max_ms"]


@pytest.fixture(scope="module")
def traced_replay():
    """A traced shim-stack replay (the Fig. 2 histogram is shim-fed —
    the chaos workload's plain clients never ack game events)."""
    telemetry = Telemetry()
    result = session_replay(n_peers=4, n_events=120, seed=7, telemetry=telemetry)
    return telemetry, result


def test_fig2_bins_cover_all_acked_events(traced_replay):
    telemetry, _ = traced_replay
    bins = fig2_latency_bins(telemetry)
    assert bins["count"] > 0
    assert sum(bins["counts"]) == bins["count"]
    assert sum(bins["fractions"]) == pytest.approx(1.0, abs=0.01)
    assert bins["bins"][:-1] == [50.0, 100.0, 150.0, 250.0, 350.0, 600.0]


# ----------------------------------------------------------------------
# telemetry is invisible to the simulation


def test_chaos_digest_identical_with_and_without_telemetry():
    plain = run_scenario("smoke", seed=7)
    traced = run_scenario("smoke", seed=7, telemetry=Telemetry())
    assert plain.timeline_digest() == traced.timeline_digest()
    assert plain.network_stats == traced.network_stats
    assert plain.workload_summary == traced.workload_summary


def test_replay_sim_metrics_identical_with_and_without_telemetry(traced_replay):
    telemetry, traced = traced_replay
    plain = session_replay(n_peers=4, n_events=120, seed=7)
    assert plain.sim_metrics == traced.sim_metrics
    assert len(telemetry.tracer.spans) > 0
