"""Tests for the shim: lanes, batching, feedback loop, delay accounting,
and equivalence between the live shim and the offline windowed model."""

import pytest

from repro.blockchain import FabricConfig, TxValidationCode
from repro.core import GameSession, ShimConfig, count_delays
from repro.game import EventType, GameEvent, generate_session
from repro.simnet import LAN_1GBPS


def make_session(shim_config=None, fabric=None, n_peers=4, **kwargs):
    session = GameSession(
        n_peers=n_peers,
        profile=LAN_1GBPS,
        fabric_config=fabric,
        shim_config=shim_config,
        n_players=1,
        **kwargs,
    )
    session.setup()
    return session


def ev(session, seq, etype=EventType.SHOOT, **payload):
    payload.setdefault("count", 1)
    return GameEvent(
        t_ms=session.now, player=session.shims[0].player, etype=etype,
        payload=payload, seq=seq,
    )


class TestFeedbackLoop:
    def test_event_is_acked(self):
        acks = []
        session = make_session()
        session.shims[0].on_ack = lambda e, ok, code, lat: acks.append((e.seq, ok, code))
        session.inject_event(ev(session, 1))
        session.run_until_idle()
        assert acks == [(1, True, TxValidationCode.VALID)]

    def test_rejection_propagates_to_ack(self):
        acks = []
        session = make_session()
        session.shims[0].on_ack = lambda e, ok, code, lat: acks.append((ok, code))
        session.inject_event(ev(session, 1, count=500))  # more than the magazine
        session.run_until_idle()
        assert acks == [(False, TxValidationCode.CONTRACT_REJECTED)]

    def test_latency_recorded_per_event(self):
        session = make_session()
        session.inject_event(ev(session, 1))
        session.run_until_idle()
        stats = session.stats()
        assert len(stats.latencies_ms) == 1
        assert stats.latencies_ms[0] > 0

    def test_closed_shim_rejects_events(self):
        session = make_session()
        session.teardown()
        with pytest.raises(RuntimeError):
            session.shims[0].on_game_event(ev(session, 1))


class TestBatching:
    def test_consecutive_shoots_merge(self):
        """Five SHOOTs in flight-shadow become one decrement-by-five
        query object (§4.2.5's worked example)."""
        session = make_session()
        shim = session.shims[0]
        for seq in range(1, 6):
            shim.on_game_event(ev(session, seq))
        session.run_until_idle()
        stats = shim.stats
        assert stats.accepted_events == 5
        # First event dispatched alone; the other four merged into one tx.
        assert stats.txs_dispatched == 2
        assert stats.max_batch_size == 4
        # All four landed in the head-of-queue batch: none missed the
        # current validation window, so none count as delayed.
        assert stats.delayed_events == 0

    def test_interleaved_event_splits_batches(self):
        """A damage event between shoots consumes a sequence number and
        must close the open shoot batch (order preservation, §4.2.5)."""
        session = make_session()
        shim = session.shims[0]
        shim.on_game_event(ev(session, 1))
        shim.on_game_event(ev(session, 2))
        shim.on_game_event(ev(session, 3))
        shim.on_game_event(
            ev(session, 4, etype=EventType.DAMAGE, amount=10, t=session.now)
        )
        shim.on_game_event(ev(session, 5))
        shim.on_game_event(ev(session, 6))
        session.run_until_idle()
        # Shoot batches: [1](immediate) [2,3] [5,6]; seq 4 went to the
        # health lane.  5 cannot merge with [2,3] because 4 intervened.
        assert shim.stats.accepted_events == 6
        shoot_txs = shim.stats.txs_dispatched - 1  # minus the damage tx
        assert shoot_txs == 3

    def test_batching_disabled_queues_individually(self):
        session = make_session(shim_config=ShimConfig(batching=False))
        shim = session.shims[0]
        for seq in range(1, 6):
            shim.on_game_event(ev(session, seq))
        session.run_until_idle()
        assert shim.stats.txs_dispatched == 5
        # Events 3..5 queue behind event 2, missing the current window.
        assert shim.stats.delayed_events == 3

    def test_max_batch_bound(self):
        session = make_session(shim_config=ShimConfig(max_batch=3))
        shim = session.shims[0]
        for seq in range(1, 9):
            shim.on_game_event(ev(session, seq))
        session.run_until_idle()
        assert shim.stats.max_batch_size <= 3
        assert shim.stats.accepted_events == 8

    def test_location_batch_applies_latest(self):
        session = make_session()
        shim = session.shims[0]
        spawn = session.network.game_map.spawn_points[0]
        t0 = session.now
        for i in range(1, 5):
            shim.on_game_event(GameEvent(
                t_ms=t0, player=shim.player, etype=EventType.LOCATION,
                payload={"x": spawn[0] + 2.0 * i, "y": spawn[1], "t": t0 + 28.6 * i},
                seq=i,
            ))
        session.run_until_idle()
        from repro.game import AssetId, asset_key

        pos = session.chain.peers[0].ledger.state.get(
            asset_key(shim.player, AssetId.POSITION)
        )
        assert pos["x"] == spawn[0] + 8.0
        assert shim.stats.accepted_events == 4


class TestLanes:
    def test_multithreaded_lanes_run_concurrently(self):
        """Different asset types dispatch in parallel: a shoot does not
        wait behind an in-flight location update."""
        session = make_session()
        shim = session.shims[0]
        spawn = session.network.game_map.spawn_points[0]
        t0 = session.now
        shim.on_game_event(GameEvent(
            t_ms=t0, player=shim.player, etype=EventType.LOCATION,
            payload={"x": spawn[0] + 1.0, "y": spawn[1], "t": t0}, seq=1,
        ))
        shim.on_game_event(ev(session, 2))
        assert shim.stats.delayed_events == 0
        session.run_until_idle()
        assert shim.stats.accepted_events == 2

    def test_single_threaded_serialises_all_assets(self):
        session = make_session(shim_config=ShimConfig(multithreaded=False))
        shim = session.shims[0]
        spawn = session.network.game_map.spawn_points[0]
        t0 = session.now
        shim.on_game_event(GameEvent(
            t_ms=t0, player=shim.player, etype=EventType.LOCATION,
            payload={"x": spawn[0] + 1.0, "y": spawn[1], "t": t0}, seq=1,
        ))
        shim.on_game_event(ev(session, 2))
        # One lane only: the shoot waits behind the location update.
        assert len(shim._lanes) == 1
        assert shim.pending_events() == 2
        session.run_until_idle()
        assert shim.stats.accepted_events == 2


class TestReplayEndToEnd:
    def test_clean_demo_replay_no_rejections(self):
        demo = generate_session("shimtest", duration_ms=30_000.0, seed=11)
        session = GameSession(
            n_peers=4, profile=LAN_1GBPS,
            fabric_config=FabricConfig(max_block_txs=5, mutually_exclusive_blocks=True),
            game_map=demo.game_map, player_names=[demo.player], n_players=1,
        )
        session.setup()
        session.play_demo(demo)
        session.run_until_idle()
        stats = session.stats()
        assert stats.events_received == len(demo)
        assert stats.rejected_events == 0
        assert stats.events_acked == len(demo)
        assert session.ledgers_agree()

    def test_offline_model_matches_live_shim_delays(self):
        """The windowed model used for the large-scale batching figures
        must agree with the live shim when the window matches the real
        per-batch validation time."""
        demo = generate_session("modelcheck", duration_ms=30_000.0, seed=5)
        fabric = FabricConfig(max_block_txs=5, mutually_exclusive_blocks=True)
        session = GameSession(
            n_peers=4, profile=LAN_1GBPS, fabric_config=fabric,
            game_map=demo.game_map, player_names=[demo.player], n_players=1,
        )
        session.setup()
        session.play_demo(demo)
        session.run_until_idle()
        live = session.stats()

        window = live.avg_latency_ms
        model = count_delays(demo.events, window_ms=window, batching=True)
        assert model.total_events == live.events_received
        # The live pipeline's latency varies per batch while the model
        # uses a fixed window, so allow a coarse tolerance.
        assert model.delayed_events == pytest.approx(live.delayed_events, rel=0.5)

    def test_model_batching_reduces_delays_by_orders_of_magnitude(self):
        demo = generate_session("modelcheck2", duration_ms=120_000.0, seed=6)
        with_b = count_delays(demo.events, window_ms=147.0, batching=True)
        without = count_delays(demo.events, window_ms=147.0, batching=False)
        assert without.delayed_events >= 10 * max(with_b.delayed_events, 1)

    def test_model_rejects_bad_window(self):
        with pytest.raises(ValueError):
            count_delays([], window_ms=0.0)
