"""Unit tests for the block-validation executors.

The differential suite (``test_validation_parallel_diff.py``) proves
whole-simulation bit-identity; these tests pin the executor mechanics in
isolation — lane merge order, malformed-plan degradation, the realized-
footprint audit fallback, worker-pool equivalence, and the cross-peer
execution cache's hit/miss/bypass behaviour — by hand-crafting blocks
with adversarial ``plan`` metadata.
"""

from __future__ import annotations

import pytest

from repro.blockchain import (
    BlockchainNetwork,
    FabricConfig,
    clear_execution_cache,
    execution_stats,
    reset_execution_stats,
)
from repro.blockchain.block import Block, BlockHeader
from repro.blockchain.execution import (
    ParallelValidationExecutor,
    SerialValidationExecutor,
    _valid_lanes,
    make_executor,
)
from repro.chaos.workload import ChaosCounterContract


@pytest.fixture()
def chain():
    clear_execution_cache()
    config = FabricConfig(verify_signatures=True)
    net = BlockchainNetwork(n_peers=2, seed=11, config=config)
    net.install_contract(ChaosCounterContract)
    client = net.create_client("unit")
    for counter in "ab":
        client.invoke(
            "chaoscounter", "init", (counter,),
            touched_keys=(ChaosCounterContract.key(counter),),
        )
        net.run_until_idle()
    # Counters below must reflect only what each test itself executes,
    # not the setup commits above.
    reset_execution_stats()
    clear_execution_cache()
    return net, client


def _craft_block(net, client, specs, plan):
    """A synthetic next block over the current committed state."""
    key = ChaosCounterContract.key
    txs = [
        client.build_transaction(
            "chaoscounter", fn, args, touched_keys=(key(args[0]),)
        )
        for fn, args in specs
    ]
    ledger = net.peers[0].ledger
    header = BlockHeader(
        number=ledger.height,
        previous_hash=ledger.last_hash,
        data_hash="synthetic",
        timestamp=net.now,
    )
    return Block(header=header, transactions=txs, plan=plan)


def _codes_and_writes(executions):
    return [(e.code, sorted(e.rwset.writes)) for e in executions]


INDEPENDENT = [("add", ("a", 1)), ("add", ("b", 2))]
CONFLICTING = [("add", ("a", 1)), ("add", ("a", 2))]


# ----------------------------------------------------------------------
# plan validation


class TestValidLanes:
    def test_accepts_exact_partition(self):
        assert _valid_lanes({"lanes": [[0, 2], [1]]}, 3) == [[0, 2], [1]]

    @pytest.mark.parametrize(
        "plan",
        [
            None,
            "lanes",
            {},
            {"lanes": None},
            {"lanes": [[0], []]},          # empty lane
            {"lanes": [[0], [0, 1]]},      # duplicate index
            {"lanes": [[1, 0]]},           # not increasing
            {"lanes": [[0], [2]]},         # not a partition (missing 1)
            {"lanes": [[0], [1, 3]]},      # out of range
            {"lanes": [[0], [-1, 1]]},     # negative
            {"lanes": [[0], [True]]},      # bool masquerading as int
            {"lanes": [[0], ["1"]]},       # non-int
        ],
        ids=[
            "none", "non-dict", "no-lanes", "lanes-none", "empty-lane",
            "dup", "decreasing", "incomplete", "oob", "negative",
            "bool", "str",
        ],
    )
    def test_rejects_malformed(self, plan):
        assert _valid_lanes(plan, 4) is None

    def test_rejects_non_partition_even_if_sorted(self):
        assert _valid_lanes({"lanes": [[0, 1]]}, 3) is None


# ----------------------------------------------------------------------
# lane execution vs serial


class TestLaneExecution:
    def test_independent_lanes_match_serial(self, chain):
        net, client = chain
        peer = net.peers[0]
        block = _craft_block(net, client, INDEPENDENT, {"lanes": [[0], [1]]})
        serial = SerialValidationExecutor()._execute(peer, block)
        parallel = ParallelValidationExecutor(workers=1)._execute(peer, block)
        assert _codes_and_writes(parallel) == _codes_and_writes(serial)
        assert execution_stats()["lane_blocks"] == 1
        assert execution_stats()["lane_fallbacks"] == 0

    def test_worker_pool_matches_inline(self, chain):
        net, client = chain
        peer = net.peers[0]
        block = _craft_block(net, client, INDEPENDENT, {"lanes": [[0], [1]]})
        inline = ParallelValidationExecutor(workers=1)._execute(peer, block)
        pooled = ParallelValidationExecutor(workers=3)._execute(peer, block)
        assert _codes_and_writes(pooled) == _codes_and_writes(inline)

    def test_unsound_plan_triggers_audit_fallback(self, chain):
        """A plan that (wrongly) claims two same-key writers are
        independent must be caught by the realized-footprint audit and
        re-executed serially — the unsound advice cannot leak into
        results."""
        net, client = chain
        peer = net.peers[0]
        block = _craft_block(net, client, CONFLICTING, {"lanes": [[0], [1]]})
        serial = SerialValidationExecutor()._execute(peer, block)
        parallel = ParallelValidationExecutor(workers=1)._execute(peer, block)
        assert _codes_and_writes(parallel) == _codes_and_writes(serial)
        assert execution_stats()["lane_fallbacks"] == 1

    def test_malformed_plan_degrades_to_serial(self, chain):
        net, client = chain
        peer = net.peers[0]
        block = _craft_block(net, client, INDEPENDENT, {"lanes": [[0], [0, 1]]})
        serial = SerialValidationExecutor()._execute(peer, block)
        degraded = ParallelValidationExecutor(workers=1)._execute(peer, block)
        assert _codes_and_writes(degraded) == _codes_and_writes(serial)
        assert execution_stats()["degraded_plans"] == 1
        assert execution_stats()["lane_blocks"] == 0

    def test_single_lane_takes_serial_path(self, chain):
        net, client = chain
        peer = net.peers[0]
        block = _craft_block(net, client, INDEPENDENT, {"lanes": [[0, 1]]})
        ParallelValidationExecutor(workers=1)._execute(peer, block)
        assert execution_stats()["lane_blocks"] == 0
        assert execution_stats()["serial_blocks"] == 1

    def test_merge_restores_block_order(self, chain):
        net, client = chain
        peer = net.peers[0]
        specs = [("add", ("a", 1)), ("add", ("b", 2)), ("sub", ("a", 1))]
        # Lane layout deliberately interleaves the indices.
        block = _craft_block(net, client, specs, {"lanes": [[0, 2], [1]]})
        serial = SerialValidationExecutor()._execute(peer, block)
        parallel = ParallelValidationExecutor(workers=1)._execute(peer, block)
        assert _codes_and_writes(parallel) == _codes_and_writes(serial)
        assert len(parallel) == 3


# ----------------------------------------------------------------------
# cross-peer execution cache


class TestExecutionCache:
    def test_second_peer_hits_cache(self, chain):
        net, client = chain
        block = _craft_block(net, client, INDEPENDENT, {"lanes": [[0], [1]]})
        executor = SerialValidationExecutor()
        first = executor.execute_block(net.peers[0], block)
        stats = execution_stats()
        assert stats["cache_misses"] == 1 and stats["cache_hits"] == 0
        second = executor.execute_block(net.peers[1], block)
        stats = execution_stats()
        assert stats["cache_hits"] == 1
        assert _codes_and_writes(second) == _codes_and_writes(first)
        # Fresh per-peer wrappers over shared immutable RWSets: codes may
        # be downgraded per peer later, so the TxExecution objects must
        # not be shared.
        for a, b in zip(first, second):
            assert a is not b
            assert a.rwset is b.rwset

    def test_patched_peer_bypasses_cache(self, chain):
        net, client = chain
        block = _craft_block(net, client, INDEPENDENT, {"lanes": [[0], [1]]})
        executor = SerialValidationExecutor()
        baseline = executor.execute_block(net.peers[0], block)
        peer = net.peers[1]
        # Chaos "buggy peer" fixtures instance-patch _execute_one; the
        # cache must stand aside in both directions for such peers.
        peer._execute_one = type(peer)._baseline_execute_one.__get__(peer)
        patched = executor.execute_block(peer, block)
        stats = execution_stats()
        assert stats["cache_bypasses"] == 1
        assert stats["cache_hits"] == 0
        assert _codes_and_writes(patched) == _codes_and_writes(baseline)

    def test_cache_disabled_by_config(self, chain):
        net, client = chain
        for peer in net.peers:
            peer.config.shared_execution_cache = False
        block = _craft_block(net, client, INDEPENDENT, {"lanes": [[0], [1]]})
        executor = SerialValidationExecutor()
        executor.execute_block(net.peers[0], block)
        executor.execute_block(net.peers[1], block)
        stats = execution_stats()
        assert stats["cache_hits"] == 0 and stats["cache_misses"] == 0


# ----------------------------------------------------------------------
# config wiring


class TestMakeExecutor:
    def test_selects_serial_by_default(self):
        assert make_executor(FabricConfig()).mode == "serial"

    def test_selects_parallel(self):
        executor = make_executor(FabricConfig(parallel_validation=True))
        assert executor.mode == "parallel"
        assert executor.workers >= 1

    def test_worker_count_propagated(self):
        executor = make_executor(
            FabricConfig(parallel_validation=True, validation_workers=3)
        )
        assert executor.workers == 3
