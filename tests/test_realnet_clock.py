"""Wall-clock scheduler (`repro.realnet.clock.WallClock`) unit tests.

The clock must satisfy the same scheduling contract as the
deterministic simnet Scheduler — ordering, FIFO tie-break,
cancellation, the inlined hot-path queue shapes — with the one
documented divergence: ``call_at`` in the past fires promptly instead
of raising.
"""

from __future__ import annotations

import heapq

import pytest

from repro.realnet.clock import WallClock
from repro.simnet.clock import SimulationError


@pytest.fixture
def clock():
    c = WallClock()
    yield c
    c.close()


def test_timers_fire_in_deadline_order(clock):
    fired = []
    clock.call_after(30.0, fired.append, "late")
    clock.call_after(5.0, fired.append, "early")
    clock.call_after(15.0, fired.append, "middle")
    clock.run_until_idle(max_wall_ms=5_000)
    assert fired == ["early", "middle", "late"]


def test_same_deadline_fires_fifo(clock):
    fired = []
    when = clock.now + 10.0
    for i in range(5):
        clock.call_at(when, fired.append, i)
    clock.run_until_idle(max_wall_ms=5_000)
    assert fired == [0, 1, 2, 3, 4]


def test_call_at_in_the_past_fires_promptly(clock):
    fired = []
    clock.call_at(clock.now - 500.0, fired.append, "stale")
    clock.call_after(5.0, fired.append, "fresh")
    clock.run_until_idle(max_wall_ms=5_000)
    assert fired == ["stale", "fresh"]


def test_negative_delay_rejected(clock):
    with pytest.raises(SimulationError):
        clock.call_after(-1.0, lambda: None)


def test_cancellation(clock):
    fired = []
    keep = clock.call_after(5.0, fired.append, "keep")
    drop = clock.call_after(5.0, fired.append, "drop")
    drop.cancel()
    clock.run_until_idle(max_wall_ms=5_000)
    assert fired == ["keep"]
    assert keep.fired and not drop.fired
    assert clock.pending == 0


def test_cancelled_timers_compact(clock):
    timers = [clock.call_after(60_000.0, lambda: None) for _ in range(200)]
    for t in timers:
        t.cancel()
    # Compaction keeps the heap from accumulating dead entries.
    assert len(clock._queue) < 200
    assert clock.pending == 0


def test_run_until_wall_deadline(clock):
    fired = []
    clock.call_after(10.0, fired.append, "in-window")
    clock.call_after(60_000.0, fired.append, "beyond")
    clock.run(until=clock.now + 100.0)
    assert fired == ["in-window"]
    assert clock.pending == 1


def test_run_until_idle_raises_on_event_cap(clock):
    def reschedule():
        clock.call_after(0.1, reschedule)

    clock.call_after(0.1, reschedule)
    with pytest.raises(SimulationError):
        clock.run_until_idle(max_events=25)


def test_run_until_idle_raises_on_wall_cap(clock):
    def reschedule():
        clock.call_after(1.0, reschedule)

    clock.call_after(1.0, reschedule)
    with pytest.raises(SimulationError):
        clock.run_until_idle(max_wall_ms=250.0)


def test_inlined_hot_path_push_is_compatible(clock):
    """The engine's fast paths bypass call_at and push raw tuples; the
    wall clock must fire them exactly like the simnet scheduler."""
    fired = []
    when = clock.now + 5.0
    seq = clock._seq
    clock._seq = seq + 1
    heapq.heappush(clock._queue, (when, seq, fired.append, ("inlined",)))
    clock._live += 1
    clock.call_after(10.0, fired.append, "api")
    clock.run_until_idle(max_wall_ms=5_000)
    assert fired == ["inlined", "api"]
    assert clock.events_processed == 2


def test_now_is_monotone_nondecreasing(clock):
    samples = [clock.now for _ in range(100)]
    assert all(b >= a for a, b in zip(samples, samples[1:]))
    assert clock.now == clock._now or clock.now >= samples[-1]


def test_rebase_resets_origin(clock):
    clock.run(until=clock.now + 20.0)
    assert clock.now >= 20.0
    clock.rebase()
    assert clock.now < 20.0


def test_callback_exception_propagates(clock):
    def boom():
        raise RuntimeError("scheduled failure")

    clock.call_after(1.0, boom)
    with pytest.raises(RuntimeError, match="scheduled failure"):
        clock.run_until_idle(max_wall_ms=5_000)
