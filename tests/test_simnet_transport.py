"""Unit tests for network transport, latency profiles and topology."""

import random

import pytest

from repro.simnet import (
    INTERNET_US,
    LAN_1GBPS,
    Host,
    LatencyProfile,
    Network,
    Region,
    place_random,
    place_round_robin,
)


class Recorder(Host):
    """A host that records every delivered payload with its arrival time."""

    def __init__(self, name, region=Region.LAN):
        super().__init__(name, region)
        self.received = []

    def handle_message(self, src, payload):
        self.received.append((self.network.now, src.name, payload))


def make_pair(profile=LAN_1GBPS, regions=(Region.LAN, Region.LAN), seed=0):
    net = Network(profile=profile, seed=seed)
    a = net.register(Recorder("a", regions[0]))
    b = net.register(Recorder("b", regions[1]))
    return net, a, b


def test_message_delivered_with_positive_delay():
    net, a, b = make_pair()
    a.send(b, "hello")
    net.run_until_idle()
    assert len(b.received) == 1
    t, src, payload = b.received[0]
    assert src == "a" and payload == "hello"
    assert t > 0.0


def test_wan_slower_than_lan():
    lan_net, a1, b1 = make_pair(LAN_1GBPS)
    wan_net, a2, b2 = make_pair(
        INTERNET_US, regions=(Region.DALLAS, Region.SAN_JOSE)
    )
    a1.send(b1, "x")
    a2.send(b2, "x")
    lan_net.run_until_idle()
    wan_net.run_until_idle()
    assert b2.received[0][0] > b1.received[0][0]
    assert b2.received[0][0] >= 20.0  # one-way Dallas<->San Jose


def test_fifo_ordering_same_destination():
    net, a, b = make_pair()
    for i in range(20):
        a.send(b, i)
    net.run_until_idle()
    assert [p for (_, _, p) in b.received] == list(range(20))


def test_egress_serialization_linear_in_fanout():
    """Sending a large block to N receivers serialises at the sender NIC,
    so the last receiver gets it ~linearly later — the physical cause of
    the paper's latency growth with peer count."""
    profile = LAN_1GBPS
    net = Network(profile=profile, seed=1)
    src = net.register(Recorder("src"))
    sinks = [net.register(Recorder(f"s{i}")) for i in range(16)]
    block_bytes = 500_000  # 4 ms serialisation at 1 Gbps
    for s in sinks:
        src.send(s, "block", size_bytes=block_bytes)
    net.run_until_idle()
    arrivals = sorted(s.received[0][0] for s in sinks)
    per_send = profile.serialization(block_bytes)
    spread = arrivals[-1] - arrivals[0]
    assert spread == pytest.approx(15 * per_send, rel=0.2)


def test_down_host_drops_messages():
    net, a, b = make_pair()
    net.condition("b").down = True
    a.send(b, "lost")
    net.run_until_idle()
    assert b.received == []
    assert net.stats.messages_dropped == 1


def test_host_down_mid_flight_drops():
    net, a, b = make_pair()
    a.send(b, "in-flight")
    net.condition("b").down = True
    net.run_until_idle()
    assert b.received == []


def test_extra_ingress_latency_applied():
    net, a, b = make_pair()
    a.send(b, "fast")
    net.run_until_idle()
    base = b.received[0][0]

    net2, a2, b2 = make_pair()
    net2.condition("b").extra_ingress_ms = 500.0
    a2.send(b2, "slow")
    net2.run_until_idle()
    assert b2.received[0][0] == pytest.approx(base + 500.0, abs=0.5)


def test_ingress_drop_rate_drops_fraction():
    net, a, b = make_pair(seed=7)
    net.condition("b").ingress_drop_rate = 0.5
    for i in range(400):
        a.send(b, i)
    net.run_until_idle()
    assert 120 < len(b.received) < 280


def test_loss_rate_profile():
    lossy = LatencyProfile(
        name="lossy",
        propagation_ms={},
        intra_region_ms=0.1,
        jitter_ms=0.0,
        bandwidth_mbps=1000.0,
        loss_rate=1.0,
    )
    net, a, b = make_pair(lossy)
    a.send(b, "never")
    net.run_until_idle()
    assert b.received == []


def test_unregistered_host_cannot_send():
    host = Recorder("lonely")
    other = Recorder("other")
    with pytest.raises(RuntimeError):
        host.send(other, "x")


def test_duplicate_host_name_rejected():
    net = Network()
    net.register(Recorder("a"))
    with pytest.raises(ValueError):
        net.register(Recorder("a"))


def test_stats_track_sends():
    net, a, b = make_pair()
    a.send(b, "one", size_bytes=100)
    a.send(b, "two", size_bytes=200)
    net.run_until_idle()
    assert net.stats.messages_sent == 2
    assert net.stats.messages_delivered == 2
    assert net.stats.bytes_sent == 300


def test_determinism_same_seed():
    def arrivals(seed):
        net, a, b = make_pair(INTERNET_US, (Region.DALLAS, Region.TORONTO), seed)
        for i in range(10):
            a.send(b, i)
        net.run_until_idle()
        return [t for (t, _, _) in b.received]

    assert arrivals(3) == arrivals(3)
    assert arrivals(3) != arrivals(4)


def test_profile_symmetric_propagation():
    assert INTERNET_US.propagation(Region.DALLAS, Region.TORONTO) == \
        INTERNET_US.propagation(Region.TORONTO, Region.DALLAS)


def test_profile_default_propagation_for_unknown_pair():
    assert INTERNET_US.propagation("mars", Region.DALLAS) == \
        INTERNET_US.default_propagation_ms


def test_serialization_zero_for_empty_message():
    assert INTERNET_US.serialization(0) == 0.0


def test_one_way_delay_includes_jitter_bounds():
    rng = random.Random(0)
    base = INTERNET_US.propagation(Region.DALLAS, Region.SAN_JOSE)
    for _ in range(100):
        d = INTERNET_US.one_way_delay(Region.DALLAS, Region.SAN_JOSE, 0, rng)
        assert base <= d <= base + INTERNET_US.jitter_ms + INTERNET_US.overhead_ms + 0.001


def test_place_round_robin_cycles_regions():
    placement = place_round_robin(7, Region.US)
    assert placement[0] == placement[3] == placement[6] == Region.US[0]
    assert len(placement) == 7


def test_place_random_deterministic_by_seed():
    assert place_random(10, seed=1) == place_random(10, seed=1)
    assert all(r in Region.US for r in place_random(10, seed=2))


def test_topology_region_lookup():
    net = Network()
    net.register(Recorder("d1", Region.DALLAS))
    net.register(Recorder("d2", Region.DALLAS))
    net.register(Recorder("t1", Region.TORONTO))
    assert {h.name for h in net.topology.in_region(Region.DALLAS)} == {"d1", "d2"}
    assert len(net.topology) == 3
