"""Crash-recovery unit tests: peers restarting mid-block must resync
from their durable ledger and reject stale gossip (PR satellite)."""

from repro.blockchain import BlockchainNetwork, TxValidationCode
from repro.simnet import LAN_1GBPS

from conftest import CounterContract


def make_chain(n_peers=4, seed=0):
    chain = BlockchainNetwork(n_peers=n_peers, profile=LAN_1GBPS, seed=seed)
    chain.install_contract(CounterContract)
    return chain


def submit_and_wait(chain, client, function, args):
    results = []
    client.invoke(
        "counter", function, args, touched_keys=("ctr/main",),
        on_complete=lambda res, lat: results.append(res),
    )
    chain.run_until_idle()
    assert results, "transaction never completed"
    return results[0]


class TestCrashRecovery:
    def test_crashed_peer_misses_blocks_majority_continues(self):
        chain = make_chain()
        client = chain.create_client("c0")
        submit_and_wait(chain, client, "init", ("main",))
        chain.peers[3].crash()
        res = submit_and_wait(chain, client, "add", ("main", 5))
        assert res.code == TxValidationCode.VALID  # 3-of-4 still a majority
        assert chain.peers[3].committed_height == 1
        assert chain.peers[0].committed_height == 2

    def test_restart_resyncs_ledger_to_network_height(self):
        chain = make_chain()
        client = chain.create_client("c0")
        submit_and_wait(chain, client, "init", ("main",))
        chain.peers[3].crash()
        submit_and_wait(chain, client, "add", ("main", 5))
        submit_and_wait(chain, client, "add", ("main", 2))
        chain.peers[3].restart()
        # The next committed block triggers gap detection at the restarted
        # peer, which backfills the range it slept through.
        submit_and_wait(chain, client, "add", ("main", 1))
        revived = chain.peers[3]
        assert revived.committed_height == chain.peers[0].committed_height == 4
        assert revived.synced_height == 4
        assert revived.ledger.state.get("ctr/main") == 8
        assert revived.ledger.validate_chain()
        assert len({p.ledger.state_hash() for p in chain.peers}) == 1
        assert not revived.diverged

    def test_crash_mid_block_loses_volatile_state_keeps_ledger(self):
        chain = make_chain()
        client = chain.create_client("c0")
        submit_and_wait(chain, client, "init", ("main",))
        target = chain.peers[2]
        client.invoke(
            "counter", "add", ("main", 5), touched_keys=("ctr/main",),
        )
        # Let the block reach the execute stage, then pull the plug.
        chain.run(until=chain.now + 1.0)
        target.crash()
        assert target._pending_blocks == {}
        assert target._votes == {}
        assert target.ledger.height == 2  # genesis + init survived on disk
        chain.run_until_idle()
        assert target.committed_height == 1  # nothing applied while down
        target.restart()
        submit_and_wait(chain, client, "add", ("main", 1))
        assert target.committed_height == chain.peers[0].committed_height
        assert target.ledger.state.get("ctr/main") == 6

    def test_callbacks_scheduled_before_crash_are_orphaned(self):
        chain = make_chain()
        client = chain.create_client("c0")
        submit_and_wait(chain, client, "init", ("main",))
        target = chain.peers[1]
        fired = []
        target._compute(5.0, lambda: fired.append(True))
        target.crash()
        chain.run_until_idle()
        assert fired == []  # the work died with the process

    def test_restart_recomputes_heights_from_durable_ledger(self):
        chain = make_chain()
        client = chain.create_client("c0")
        submit_and_wait(chain, client, "init", ("main",))
        submit_and_wait(chain, client, "add", ("main", 3))
        target = chain.peers[0]
        target.crash()
        target.restart()
        assert target.committed_height == 2
        assert target.synced_height == 2
        assert target._executed_height == 2

    def test_repeated_churn_converges(self):
        chain = make_chain(n_peers=5)
        client = chain.create_client("c0")
        submit_and_wait(chain, client, "init", ("main",))
        for round_no in range(3):
            victim = chain.peers[round_no % 5]
            victim.crash()
            submit_and_wait(chain, client, "add", ("main", 1))
            victim.restart()
            submit_and_wait(chain, client, "add", ("main", 1))
        assert chain.peers[0].ledger.state.get("ctr/main") == 6
        assert len({p.ledger.state_hash() for p in chain.peers}) == 1
        assert all(p.synced_height == p.committed_height for p in chain.peers)


class TestStaleGossip:
    def test_duplicate_block_delivery_is_ignored(self):
        chain = make_chain()
        client = chain.create_client("c0")
        submit_and_wait(chain, client, "init", ("main",))
        submit_and_wait(chain, client, "add", ("main", 5))
        peer = chain.peers[0]
        old_block = peer.ledger.block(1)
        peer._on_block(old_block)
        chain.run_until_idle()
        assert peer.committed_height == 2
        assert peer.ledger.state.get("ctr/main") == 5

    def test_stale_vote_answered_not_recorded(self):
        """A vote for an already-committed block must not reopen it; the
        receiver instead answers with its own recorded vote so the
        lagging sender can re-form the quorum it lost."""
        from repro.blockchain.messages import VoteMsg

        chain = make_chain()
        client = chain.create_client("c0")
        submit_and_wait(chain, client, "init", ("main",))
        receiver, sender = chain.peers[0], chain.peers[1]
        committed = receiver.committed_height
        receiver.handle_message(
            sender, VoteMsg(block_number=1, voter=sender.name, votes=(True,))
        )
        chain.run_until_idle()
        assert receiver.committed_height == committed
        assert 1 not in receiver._votes

    def test_vote_reply_is_never_answered(self):
        """Reply ping-pong would flood the network forever; is_reply
        breaks the cycle."""
        from repro.blockchain.messages import VoteMsg

        chain = make_chain()
        client = chain.create_client("c0")
        submit_and_wait(chain, client, "init", ("main",))
        a, b = chain.peers[0], chain.peers[1]
        sent_before = chain.net.stats.messages_sent
        a.handle_message(
            b, VoteMsg(block_number=1, voter=b.name, votes=(True,), is_reply=True)
        )
        chain.run_until_idle()
        assert chain.net.stats.messages_sent == sent_before
