"""Tests for metrics and report rendering."""

import pytest

from repro.analysis import (
    AsciiTable,
    format_series,
    histogram,
    mean,
    median,
    percentile,
    rate_per_second,
    stddev,
)


class TestMetrics:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])

    def test_median_odd_even(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_percentile_interpolates(self):
        assert percentile([0.0, 10.0], 50.0) == 5.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 100.0) == 4.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.0) == 1.0

    def test_percentile_bounds(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)
        with pytest.raises(ValueError):
            percentile([], 50.0)

    def test_stddev(self):
        assert stddev([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == pytest.approx(2.138, abs=0.01)
        assert stddev([5.0]) == 0.0

    def test_histogram(self):
        bins = [(0.0, 10.0), (10.0, 20.0)]
        assert histogram([1.0, 5.0, 15.0, 25.0], bins) == [2, 1]

    def test_rate_per_second(self):
        assert rate_per_second(35, 1000.0) == 35.0
        assert rate_per_second(10, 0.0) == 0.0


class TestReport:
    def test_table_renders_aligned(self):
        table = AsciiTable(["Game", "Latency"], title="Table 2")
        table.row("Doom", 147.25)
        out = table.render()
        assert "Table 2" in out
        assert "Doom" in out and "147.25" in out
        header, sep, data = out.splitlines()[1:4]
        assert len(header) == len(sep) == len(data)

    def test_row_arity_checked(self):
        table = AsciiTable(["a", "b"])
        with pytest.raises(ValueError):
            table.row("only-one")

    def test_chaining(self):
        out = AsciiTable(["x"]).row(1).row(2).render()
        assert out.count("\n") == 3

    def test_format_series(self):
        assert format_series("lat", [1.0, 2.5]) == "lat: 1.0 2.5"
