"""Crypto memo caches across process boundaries.

The verify/keypair caches are pure memos, but a forked worker would
inherit them pre-warmed while a spawned worker starts cold — a timing
(and, if a memo were ever wrong, a verdict) asymmetry between shard
placements.  ``reset_crypto_caches()`` is the equalizer: the
process-parallel shard engine's workers call it at bootstrap so every
placement starts from the same cold state.  Pinned here: the reset
really empties both caches, reports what it dropped, changes no
verdict, and a spawned child observes cold caches on arrival.
"""

from __future__ import annotations

import subprocess
import sys

from repro.blockchain.crypto import (
    crypto_cache_sizes,
    generate_keypair,
    reset_crypto_caches,
)


def _warm():
    pair = generate_keypair("cache-test-seed", bits=256)
    signature = pair.private.sign("hello")
    assert pair.public.verify("hello", signature)
    return pair, signature


def test_reset_empties_both_caches_and_reports_prior_sizes():
    reset_crypto_caches()
    _warm()
    before = crypto_cache_sizes()
    assert before["verify"] >= 1
    assert before["keypair"] >= 1
    dropped = reset_crypto_caches()
    assert dropped == before
    assert crypto_cache_sizes() == {"verify": 0, "keypair": 0}


def test_reset_changes_no_verdict():
    pair, signature = _warm()
    reset_crypto_caches()
    # same key, cold cache: the memo never decided the answer
    assert pair.public.verify("hello", signature)
    assert not pair.public.verify("tampered", signature)
    assert pair.public.verify_uncached("hello", signature)


def test_repeated_reset_is_idempotent():
    reset_crypto_caches()
    assert reset_crypto_caches() == {"verify": 0, "keypair": 0}


def test_spawned_process_starts_with_cold_caches():
    """What shard workers rely on: a fresh interpreter has empty memos,
    and warming the parent cannot leak into the child."""
    _warm()  # parent caches are demonstrably warm now
    assert crypto_cache_sizes()["verify"] >= 1
    script = (
        "from repro.blockchain.crypto import crypto_cache_sizes, "
        "reset_crypto_caches\n"
        "sizes = crypto_cache_sizes()\n"
        "assert sizes == {'verify': 0, 'keypair': 0}, sizes\n"
        "assert reset_crypto_caches() == sizes\n"
        "print('cold')\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, timeout=60,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        cwd=".",
    )
    assert out.returncode == 0, out.stderr
    assert out.stdout.strip() == "cold"
