"""The cross-shard swap protocol: prepare/commit/abort state machines.

Every test ends with :func:`check_conservation` because that is the
protocol's whole contract: whatever the interleaving — happy path,
rejection, timeout, coordinator death on either side of the point of no
return — the asset exists exactly once and no lock survives quiescence.
"""

from repro.blockchain import ShardedDeployment
from repro.blockchain.swaps import (
    OUTCOME_ABORTED,
    OUTCOME_COMMITTED,
    OUTCOME_TIMED_OUT,
    ShardAssetContract,
    SwapCoordinator,
    SwapState,
    asset_key,
    check_conservation,
    lock_key,
)
from repro.simnet import LAN_1GBPS


def make_deployment(n_shards=2, seed=9):
    deployment = ShardedDeployment(
        n_peers=4 * n_shards, n_shards=n_shards, profile=LAN_1GBPS, seed=seed
    )
    deployment.install_contract(ShardAssetContract)
    return deployment


def mint(deployment, shard, asset_id="gem", owner="alice", value=7):
    codes = []
    deployment.client_for_shard(shard, "minter").invoke(
        ShardAssetContract.name, "mint", (asset_id, owner, value),
        touched_keys=(asset_key(asset_id),),
        on_complete=lambda r, _l: codes.append(r.code),
    )
    deployment.run_until_idle()
    assert codes == ["VALID"]
    return {asset_id: value}


class TestHappyPath:
    def test_commit_moves_asset_exactly_once(self):
        deployment = make_deployment()
        minted = mint(deployment, 0)
        coordinator = SwapCoordinator(deployment)
        swap = coordinator.start_swap("sw1", "gem", 0, 1, "bob", 7)
        deployment.run_until_idle()
        assert swap.state is SwapState.COMMITTED
        assert swap.outcome == OUTCOME_COMMITTED
        assert deployment.committed_state_get(0, asset_key("gem")) is None
        record = deployment.committed_state_get(1, asset_key("gem"))
        assert record == {"owner": "bob", "value": 7}
        for shard in (0, 1):
            assert deployment.committed_state_get(shard, lock_key("gem")) is None
        assert check_conservation(deployment, minted, quiescent=True) == []

    def test_same_shard_swap_degenerates_to_transfer(self):
        deployment = make_deployment()
        minted = mint(deployment, 0)
        coordinator = SwapCoordinator(deployment)
        swap = coordinator.start_swap("sw1", "gem", 0, 0, "bob", 7)
        deployment.run_until_idle()
        assert swap.outcome == OUTCOME_COMMITTED
        record = deployment.committed_state_get(0, asset_key("gem"))
        assert record == {"owner": "bob", "value": 7}
        assert check_conservation(deployment, minted, quiescent=True) == []

    def test_outcomes_tally(self):
        deployment = make_deployment()
        minted = mint(deployment, 0)
        coordinator = SwapCoordinator(deployment)
        coordinator.start_swap("sw1", "gem", 0, 1, "bob", 7)
        coordinator.start_swap("sw2", "ghost", 0, 1, "bob", 1)  # no such asset
        deployment.run_until_idle()
        assert coordinator.outcomes() == {"aborted": 1, "committed": 1}
        assert coordinator.unresolved() == []
        assert check_conservation(deployment, minted, quiescent=True) == []


class TestAborts:
    def test_missing_asset_rejects_prepare_and_aborts(self):
        deployment = make_deployment()
        coordinator = SwapCoordinator(deployment)
        swap = coordinator.start_swap("sw1", "nosuch", 0, 1, "bob", 1)
        deployment.run_until_idle()
        assert swap.state is SwapState.ABORTED
        assert swap.outcome == OUTCOME_ABORTED
        assert check_conservation(deployment, {}, quiescent=True) == []

    def test_destination_refusal_releases_source_lock(self):
        deployment = make_deployment()
        mint(deployment, 0)
        # The destination already holds a same-id asset, so prepare_in
        # must reject and the source lock must be rolled back.
        codes = []
        deployment.client_for_shard(1, "minter").invoke(
            ShardAssetContract.name, "mint", ("gem", "eve", 7),
            touched_keys=(asset_key("gem"),),
            on_complete=lambda r, _l: codes.append(r.code),
        )
        deployment.run_until_idle()
        assert codes == ["VALID"]
        coordinator = SwapCoordinator(deployment)
        swap = coordinator.start_swap("sw1", "gem", 0, 1, "bob", 7)
        deployment.run_until_idle()
        assert swap.state is SwapState.ABORTED
        assert swap.outcome == OUTCOME_ABORTED
        # Source copy untouched, still owned by alice, lock released.
        record = deployment.committed_state_get(0, asset_key("gem"))
        assert record == {"owner": "alice", "value": 7}
        assert deployment.committed_state_get(0, lock_key("gem")) is None

    def test_timeout_aborts_and_releases_locks(self):
        deployment = make_deployment()
        minted = mint(deployment, 0)
        # Timer far shorter than a commit round-trip: it fires while the
        # prepare is still in flight, and the late VALID prepare's lock
        # must be released by its own completion callback.
        coordinator = SwapCoordinator(deployment, timeout_ms=1.0)
        swap = coordinator.start_swap("sw1", "gem", 0, 1, "bob", 7)
        deployment.run_until_idle()
        assert swap.state is SwapState.ABORTED
        assert swap.outcome == OUTCOME_TIMED_OUT
        for shard in (0, 1):
            assert deployment.committed_state_get(shard, lock_key("gem")) is None
        record = deployment.committed_state_get(0, asset_key("gem"))
        assert record == {"owner": "alice", "value": 7}
        assert check_conservation(deployment, minted, quiescent=True) == []


class TestCoordinatorCrash:
    def test_crash_between_prepare_and_commit_presumes_abort(self):
        deployment = make_deployment()
        minted = mint(deployment, 0)
        coordinator = SwapCoordinator(deployment)
        # Die at the exact point of maximum danger: both locks committed,
        # commit_out not yet submitted.
        coordinator._begin_commit = lambda swap: coordinator.crash()
        swap = coordinator.start_swap("sw1", "gem", 0, 1, "bob", 7)
        deployment.run_until_idle()
        assert coordinator.crashed
        assert swap.state is SwapState.PREPARED
        assert deployment.committed_state_get(0, lock_key("gem")) is not None
        assert deployment.committed_state_get(1, lock_key("gem")) is not None
        # Mid-crash the asset still exists exactly once (on the source).
        assert check_conservation(deployment, minted, quiescent=False) == []

        coordinator.restart()
        del coordinator.__dict__["_begin_commit"]
        actions = coordinator.recover()
        assert actions == [("sw1", "presumed-abort")]
        deployment.run_until_idle()
        assert swap.state is SwapState.ABORTED
        record = deployment.committed_state_get(0, asset_key("gem"))
        assert record == {"owner": "alice", "value": 7}
        assert check_conservation(deployment, minted, quiescent=True) == []

    def test_crash_after_commit_out_rolls_forward(self):
        deployment = make_deployment()
        minted = mint(deployment, 0)
        coordinator = SwapCoordinator(deployment)
        # Die just past the point of no return: the source tombstone is
        # committed, the value lives only in the destination lock.
        coordinator._submit_commit_in = (
            lambda swap, retries: coordinator.crash()
        )
        swap = coordinator.start_swap("sw1", "gem", 0, 1, "bob", 7)
        deployment.run_until_idle()
        assert coordinator.crashed
        assert deployment.committed_state_get(0, asset_key("gem")) is None
        assert deployment.committed_state_get(1, lock_key("gem")) is not None
        # The in-flight lock still carries the asset — not destroyed.
        assert check_conservation(deployment, minted, quiescent=False) == []

        coordinator.restart()
        del coordinator.__dict__["_submit_commit_in"]
        actions = coordinator.recover()
        assert actions == [("sw1", "roll-forward")]
        deployment.run_until_idle()
        assert swap.state is SwapState.COMMITTED
        assert swap.outcome == OUTCOME_COMMITTED
        record = deployment.committed_state_get(1, asset_key("gem"))
        assert record == {"owner": "bob", "value": 7}
        assert check_conservation(deployment, minted, quiescent=True) == []

    def test_recovery_before_late_prepare_needs_lock_sweep(self):
        deployment = make_deployment()
        minted = mint(deployment, 0)
        coordinator = SwapCoordinator(deployment)
        scheduler = deployment.scheduler

        def crash():
            coordinator.crash()

        def recover():
            coordinator.restart()
            # The prepare is still in flight: no lock is visible yet, so
            # recovery presumes the swap fully aborted...
            assert coordinator.recover() == [("sw1", "already-aborted")]

        start = deployment.now
        scheduler.call_at(start + 0.5, coordinator.start_swap,
                          "sw1", "gem", 0, 1, "bob", 7)
        scheduler.call_at(start + 1.0, crash)
        scheduler.call_at(start + 1.5, recover)
        deployment.run_until_idle()
        # ... but the orphaned prepare then commits, leaking a lock no
        # live state machine owns.
        assert deployment.committed_state_get(0, lock_key("gem")) is not None
        problems = check_conservation(deployment, minted, quiescent=True)
        assert any("leaked lock" in p for p in problems)
        # The janitor releases it; the asset itself was never at risk.
        assert coordinator.sweep_stale_locks() == 1
        deployment.run_until_idle()
        assert coordinator.sweep_stale_locks() == 0
        assert deployment.committed_state_get(0, lock_key("gem")) is None
        assert check_conservation(deployment, minted, quiescent=True) == []
