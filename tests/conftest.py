"""Shared test fixtures and helper contracts."""

from __future__ import annotations


import pytest

from repro.blockchain import Contract, ContractError


class CounterContract(Contract):
    """A minimal contract: named non-negative counters.

    Functions:
        init(name)        create counter at 0
        add(name, delta)  increment (delta must be positive)
        sub(name, delta)  decrement (must not go negative — "cheat")
    """

    name = "counter"

    @staticmethod
    def key(counter: str) -> str:
        return f"ctr/{counter}"

    def invoke(self, ctx, function, args):
        if function == "init":
            (counter,) = args
            if ctx.view.get(self.key(counter)) is not None:
                raise ContractError(f"counter {counter} already exists")
            ctx.view.put(self.key(counter), 0)
        elif function == "add":
            counter, delta = args
            self._apply(ctx, counter, int(delta))
        elif function == "sub":
            counter, delta = args
            self._apply(ctx, counter, -int(delta))
        else:
            raise ContractError(f"unknown function {function}")

    def _apply(self, ctx, counter, delta):
        key = self.key(counter)
        value = ctx.view.get(key)
        if value is None:
            raise ContractError(f"no such counter {counter}")
        if value + delta < 0:
            raise ContractError("counter would go negative")
        ctx.view.put(key, value + delta)

    def functions(self):
        return ["init", "add", "sub"]


class BrokenCounterContract(CounterContract):
    """A tampered contract that rejects everything — models a peer whose
    deployed contract diverges from the advertised one."""

    def invoke(self, ctx, function, args):
        raise ContractError("tampered contract rejects all updates")


@pytest.fixture()
def counter_factory():
    return CounterContract


class ContractHarness:
    """Executes contract calls directly against a world state.

    Lets contract logic be unit-tested without spinning up the network:
    each call goes through the real ``execute_transaction`` path
    (including the nonce replay verifier) and valid writes are applied
    with proper versions.
    """

    def __init__(self, contract):
        from repro.blockchain import CertificateAuthority, WorldState

        self.contract = contract
        self.state = WorldState()
        self.ca = CertificateAuthority(name="harness-ca")
        self._identities = {}
        self._block = 0
        self._nonce = 0

    def identity(self, name):
        if name not in self._identities:
            self._identities[name] = self.ca.enroll(name)
        return self._identities[name]

    def call(self, function, payload=None, creator="p1", t=0.0, nonce=None):
        """Execute one invocation; returns (code, rwset)."""
        from repro.blockchain import Proposal, Transaction, Version
        from repro.blockchain.contracts import execute_transaction

        self._nonce += 1
        identity = self.identity(creator)
        proposal = Proposal(
            tx_id=f"h{self._nonce}",
            contract=self.contract.name,
            function=function,
            args=(payload if payload is not None else {},),
            nonce=nonce if nonce is not None else f"n{self._nonce}",
            creator=creator,
            timestamp=t,
        )
        tx = Transaction(
            proposal=proposal,
            certificate=identity.certificate,
            signature=identity.sign(proposal.digest()),
        )
        execution = execute_transaction(self.contract, tx, self.state)
        if execution.code == "VALID":
            self._block += 1
            for key, value in execution.rwset.writes:
                self.state.put(key, value, Version(self._block, 0))
        return execution.code, execution.rwset

    def ok(self, function, payload=None, creator="p1", t=0.0):
        """Call and assert the invocation was accepted."""
        code, rwset = self.call(function, payload, creator, t)
        assert code == "VALID", f"{function} rejected: {code}"
        return rwset
