"""Tests for the Monopoly case-study rules."""

import pytest

from repro.game import (
    BOARD_SIZE,
    STANDARD_PROPERTIES,
    MonopolyError,
    MonopolyRules,
    initial_player,
)


class TestBoard:
    def test_board_has_40_squares(self):
        assert BOARD_SIZE == 40
        assert all(0 <= sq < BOARD_SIZE for sq in STANDARD_PROPERTIES)

    def test_22_streets_in_8_color_groups(self):
        assert len(STANDARD_PROPERTIES) == 22
        assert len({p.color for p in STANDARD_PROPERTIES.values()}) == 8

    def test_boardwalk_most_expensive(self):
        top = max(STANDARD_PROPERTIES.values(), key=lambda p: p.price)
        assert top.name == "Boardwalk"


class TestMovement:
    def test_valid_roll_sums(self):
        assert MonopolyRules.validate_roll((3, 4)) == 7

    @pytest.mark.parametrize("dice", [(0, 4), (7, 1), (3, -2)])
    def test_impossible_rolls_rejected(self, dice):
        with pytest.raises(MonopolyError):
            MonopolyRules.validate_roll(dice)

    def test_move_advances(self):
        player = initial_player()
        moved = MonopolyRules.move(player, 7)
        assert moved["location"] == 7
        assert moved["currency"] == player["currency"]

    def test_passing_go_pays_salary(self):
        player = initial_player()
        player["location"] = 38
        moved = MonopolyRules.move(player, 5)
        assert moved["location"] == 3
        assert moved["currency"] == player["currency"] + 200

    @pytest.mark.parametrize("steps", [1, 13, 0])
    def test_move_bounds(self, steps):
        with pytest.raises(MonopolyError):
            MonopolyRules.move(initial_player(), steps)


class TestPurchases:
    def test_purchase_on_square(self):
        player = initial_player()
        player["location"] = 39  # Boardwalk
        bought = MonopolyRules.validate_purchase(
            player, STANDARD_PROPERTIES[39], owner=None
        )
        assert bought["currency"] == 1100
        assert 39 in bought["assets"]

    def test_purchase_not_on_square_rejected(self):
        player = initial_player()
        with pytest.raises(MonopolyError):
            MonopolyRules.validate_purchase(player, STANDARD_PROPERTIES[39], None)

    def test_purchase_owned_rejected(self):
        player = initial_player()
        player["location"] = 39
        with pytest.raises(MonopolyError):
            MonopolyRules.validate_purchase(player, STANDARD_PROPERTIES[39], "p2")

    def test_purchase_unaffordable_rejected(self):
        player = initial_player()
        player["location"] = 39
        player["currency"] = 100
        with pytest.raises(MonopolyError):
            MonopolyRules.validate_purchase(player, STANDARD_PROPERTIES[39], None)

    def test_purchase_non_property_rejected(self):
        player = initial_player()
        with pytest.raises(MonopolyError):
            MonopolyRules.validate_purchase(player, None, None)


class TestRentAndTransfers:
    def test_rent_due_on_visit(self):
        visitor = initial_player()
        visitor["location"] = 39
        assert MonopolyRules.rent_due(STANDARD_PROPERTIES[39], "p2", visitor) == 50

    def test_rent_capped_by_funds(self):
        visitor = initial_player()
        visitor["location"] = 39
        visitor["currency"] = 20
        assert MonopolyRules.rent_due(STANDARD_PROPERTIES[39], "p2", visitor) == 20

    def test_rent_elsewhere_rejected(self):
        visitor = initial_player()
        with pytest.raises(MonopolyError):
            MonopolyRules.rent_due(STANDARD_PROPERTIES[39], "p2", visitor)

    def test_transfer_moves_currency(self):
        a, b = initial_player(), initial_player()
        new_a, new_b = MonopolyRules.transfer(a, b, 300)
        assert new_a["currency"] == 1200 and new_b["currency"] == 1800

    def test_transfer_insufficient_rejected(self):
        a, b = initial_player(), initial_player()
        with pytest.raises(MonopolyError):
            MonopolyRules.transfer(a, b, 2000)

    def test_negative_transfer_rejected(self):
        a, b = initial_player(), initial_player()
        with pytest.raises(MonopolyError):
            MonopolyRules.transfer(a, b, -5)
