"""Additional shim and session edge cases."""

import pytest

from repro.blockchain import FabricConfig, TxValidationCode
from repro.core import GameSession, SessionError, ShimConfig
from repro.game import AssetId, EventType, GameEvent, asset_key
from repro.simnet import LAN_1GBPS


def make_session(**kwargs):
    session = GameSession(n_peers=4, profile=LAN_1GBPS, n_players=1, **kwargs)
    session.setup()
    return session


def shoot(session, seq, count=1):
    return GameEvent(session.now, session.shims[0].player, EventType.SHOOT,
                     {"count": count}, seq)


class TestMonolithicShim:
    def test_monolithic_keys_declared(self):
        from repro.core import DoomContract
        from repro.game import DoomMap

        game_map = DoomMap.default_map()
        session = GameSession(
            n_peers=4, profile=LAN_1GBPS, n_players=1,
            shim_config=ShimConfig(split_kvs=False),
            game_map=game_map,
            contract_factory=lambda: DoomContract(game_map=game_map,
                                                  split_kvs=False),
        )
        session.setup()
        shim = session.shims[0]
        keys = shim._touched_keys(EventType.SHOOT, {"count": 1})
        assert keys == (f"player/{shim.player}",)
        session.inject_event(shoot(session, 1))
        session.run_until_idle()
        assert session.stats().accepted_events == 1
        record = session.chain.peers[0].ledger.state.get(f"player/{shim.player}")
        assert record[str(AssetId.AMMUNITION)] == 49


class TestShimAccounting:
    def test_stats_cover_every_event(self):
        session = make_session()
        shim = session.shims[0]
        for seq in range(1, 11):
            shim.on_game_event(shoot(session, seq))
        session.run_until_idle()
        stats = shim.stats
        assert stats.events_received == 10
        assert stats.events_acked == 10
        assert len(stats.latencies_ms) == 10
        assert shim.pending_events() == 0

    def test_throughput_metrics_positive(self):
        session = make_session()
        shim = session.shims[0]
        for seq in range(1, 6):
            shim.on_game_event(shoot(session, seq))
        session.run_until_idle()
        assert shim.stats.throughput_tx_per_s() > 0
        assert shim.stats.throughput_events_per_s() > 0

    def test_empty_stats_safe(self):
        session = make_session()
        stats = session.stats()
        assert stats.avg_latency_ms == 0.0
        assert stats.avg_batch_size == 0.0
        assert stats.throughput_tx_per_s() == 0.0

    def test_shim_for_lookup(self):
        session = make_session()
        player = session.shims[0].player
        assert session.shim_for(player) is session.shims[0]
        with pytest.raises(SessionError):
            session.shim_for("nobody")


class TestOrderingFairness:
    def test_conflicting_txs_eventually_dispatch(self):
        """Mutually-exclusive block cutting must not starve conflicting
        transactions: they go out in subsequent blocks."""
        config = FabricConfig(
            max_block_txs=3, batch_timeout_ms=5.0, mutually_exclusive_blocks=True
        )
        session = make_session(fabric_config=config,
                               shim_config=ShimConfig(batching=False))
        shim = session.shims[0]
        # Ten shoot events: all touch the same ammo key, so each must
        # travel in its own block — but every one must complete.
        for seq in range(1, 11):
            shim.on_game_event(shoot(session, seq))
        session.run_until_idle()
        assert shim.stats.events_acked == 10
        assert shim.stats.rejected_events == 0
        state = session.chain.peers[0].ledger.state
        assert state.get(asset_key(shim.player, AssetId.AMMUNITION)) == 40


class TestTimeoutPath:
    def test_dead_orderer_times_out_cleanly(self):
        """If the ordering service disappears, pending events resolve as
        TIMEOUT rather than hanging the session."""
        from repro.simnet import TakedownAttack

        session = make_session()
        shim = session.shims[0]
        shim.poll_timeout_ms = 2_000.0
        TakedownAttack([session.chain.orderer.name]).apply(session.chain.net)
        acks = []
        shim.on_ack = lambda e, ok, code, lat: acks.append(code)
        shim.on_game_event(shoot(session, 1))
        session.run_until_idle()
        assert acks == [TxValidationCode.TIMEOUT]
        assert shim.stats.rejections_by_code[TxValidationCode.TIMEOUT] == 1
