"""Property-based tests: the cross-process shard codec.

:mod:`repro.blockchain.codec` is the only serialization the
process-parallel shard engine uses — commands, completions, summaries
and every protocol object cross the worker pipe through it.  Its
contract, pinned here over Hypothesis-generated inputs:

* ``decode(encode(x)) == x`` for the whole closed value set (including
  arbitrary-precision ints, exact IEEE-754 doubles, nested containers
  with list/tuple distinction preserved);
* digest preservation — a decoded :class:`Proposal` / :class:`Transaction`
  / :class:`Block` re-derives exactly the digest of the original, so
  signatures made on one side of the pipe verify on the other;
* every wire message round-trips, including the bit-packed
  :class:`VoteMsg` and the swap 2PC command frames the bridge ships;
* anything outside the closed set, and any malformed frame, raises
  :class:`CodecError` rather than falling back to pickle.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blockchain.block import Block, BlockHeader, make_block, make_genesis_block
from repro.blockchain.codec import CodecError, decode, encode
from repro.blockchain.crypto import PublicKey
from repro.blockchain.identity import Certificate, CertificateAuthority
from repro.blockchain.messages import (
    DeliverBlock,
    QueryTxStatus,
    RequestBlocks,
    SubmitTx,
    SyncHashMsg,
    TxStatusReply,
    VoteMsg,
)
from repro.blockchain.transaction import Proposal, Transaction, TxResult

# ---------------------------------------------------------------------
# strategies

# 512-bit RSA moduli and signatures are the codec's headline int case;
# go a bit past that and deep into the negatives.
big_ints = st.integers(min_value=-(2**600), max_value=2**600)
doubles = st.floats(allow_nan=False, width=64)
short_text = st.text(max_size=24)

scalars = st.one_of(
    st.none(),
    st.booleans(),
    big_ints,
    doubles,
    short_text,
    st.binary(max_size=24),
)

#: What may appear in Proposal args/keys: the chain digests proposals
#: with a canonical-JSON hash, which (deliberately) rejects bytes.
json_scalars = st.one_of(st.none(), st.booleans(), big_ints, doubles, short_text)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(short_text, children, max_size=4),
    ),
    max_leaves=20,
)

proposals = st.builds(
    Proposal,
    tx_id=short_text,
    contract=short_text,
    function=short_text,
    args=st.lists(json_scalars, max_size=4).map(tuple),
    nonce=short_text,
    creator=short_text,
    timestamp=doubles,
    touched_keys=st.lists(short_text, max_size=3).map(tuple),
)

certificates = st.builds(
    Certificate,
    subject=short_text,
    public_key=st.builds(
        PublicKey,
        n=st.integers(min_value=1, max_value=2**512),
        e=st.integers(min_value=3, max_value=2**17),
    ),
    issuer=short_text,
    serial=st.integers(min_value=0, max_value=2**32),
    signature=st.integers(min_value=0, max_value=2**512),
)

transactions = st.builds(
    Transaction,
    proposal=proposals,
    certificate=certificates,
    signature=st.integers(min_value=0, max_value=2**512),
)

tx_results = st.builds(
    TxResult,
    tx_id=short_text,
    code=short_text,
    block=st.one_of(st.none(), st.integers(min_value=0, max_value=10**6)),
    votes_for=st.integers(min_value=0, max_value=64),
    votes_against=st.integers(min_value=0, max_value=64),
    detail=short_text,
)

#: The five 2PC steps the SwapCoordinator drives through the bridge.
SWAP_FUNCTIONS = (
    "swap_prepare_out", "swap_prepare_in",
    "swap_commit_out", "swap_commit_in", "swap_abort",
)

swap_payloads = st.fixed_dictionaries(
    {
        "cb": st.one_of(st.none(), st.integers(min_value=1, max_value=10**6)),
        "prefix": st.just("swapcoord"),
        "poll_ms": st.floats(min_value=1.0, max_value=1000.0, allow_nan=False),
        "contract": st.just("shardasset"),
        "function": st.sampled_from(SWAP_FUNCTIONS),
        "args": st.lists(st.one_of(short_text, big_ints), max_size=4).map(tuple),
        "keys": st.lists(short_text, max_size=3).map(tuple),
    }
)


def roundtrip(obj):
    return decode(encode(obj))


# ---------------------------------------------------------------------
# values

@given(values)
@settings(max_examples=300)
def test_value_roundtrip_identity(value):
    out = roundtrip(value)
    assert out == value
    # == treats 1 and True, and -0.0 and 0.0, as equal; the codec must
    # be stricter than that to keep placements bit-identical.
    assert type(out) is type(value)


@given(doubles)
def test_float_roundtrip_is_bit_exact(x):
    out = roundtrip(x)
    assert math.copysign(1.0, out) == math.copysign(1.0, x)
    assert out == x


@given(big_ints)
def test_int_roundtrip_arbitrary_precision(n):
    assert roundtrip(n) == n


@given(st.lists(scalars, max_size=4))
def test_list_and_tuple_stay_distinct(items):
    assert roundtrip(items) == items
    assert roundtrip(tuple(items)) == tuple(items)
    assert isinstance(roundtrip(items), list)
    assert isinstance(roundtrip(tuple(items)), tuple)


# ---------------------------------------------------------------------
# protocol objects + digest preservation

@given(proposals)
@settings(max_examples=100)
def test_proposal_roundtrip_preserves_digest(proposal):
    out = roundtrip(proposal)
    assert out == proposal
    assert out.digest(fresh=True) == proposal.digest(fresh=True)


@given(transactions)
@settings(max_examples=100)
def test_transaction_roundtrip_preserves_digest(tx):
    out = roundtrip(tx)
    assert out == tx
    assert out.digest(fresh=True) == tx.digest(fresh=True)
    assert out.certificate.public_key.n == tx.certificate.public_key.n


@given(tx_results)
def test_tx_result_roundtrip(res):
    assert roundtrip(res) == res


def test_signature_survives_the_wire():
    """A signature made on one side of the pipe verifies on the other."""
    ca = CertificateAuthority(seed=7)
    identity = ca.enroll("wire-player")
    proposal = Proposal(
        tx_id="t0", contract="shardasset", function="swap_prepare_out",
        args=("a0001", "g00001", 100), nonce="n0", creator="wire-player",
        timestamp=12.5, touched_keys=("asset/a0001",),
    )
    tx = Transaction(
        proposal=proposal,
        certificate=identity.certificate,
        signature=identity.sign(proposal.digest()),
    )
    assert roundtrip(tx).verify_signature()


def _sample_block(n_txs: int) -> Block:
    ca = CertificateAuthority(seed=9)
    identity = ca.enroll("blk-player")
    txs = []
    for i in range(n_txs):
        proposal = Proposal(
            tx_id=f"t{i}", contract="c", function="f", args=(i,),
            nonce=f"n{i}", creator="blk-player", timestamp=float(i),
            touched_keys=(f"k{i}",),
        )
        txs.append(
            Transaction(
                proposal=proposal,
                certificate=identity.certificate,
                signature=identity.sign(proposal.digest()),
            )
        )
    genesis = make_genesis_block({"peers": ["p"], "policy": "majority"})
    return make_block(1, genesis.digest(), txs, timestamp=3.25)


@pytest.mark.parametrize("n_txs", [0, 1, 5])
def test_block_roundtrip_preserves_digests(n_txs):
    block = _sample_block(n_txs)
    out = roundtrip(block)
    assert out.digest() == block.digest()
    assert out.data_digest() == block.header.data_hash
    assert [tx.digest() for tx in out.transactions] == [
        tx.digest() for tx in block.transactions
    ]


# ---------------------------------------------------------------------
# wire messages

@given(transactions)
@settings(max_examples=50)
def test_submit_tx_roundtrip(tx):
    assert roundtrip(SubmitTx(tx=tx)) == SubmitTx(tx=tx)


def test_deliver_block_roundtrip():
    msg = DeliverBlock(block=_sample_block(3))
    assert roundtrip(msg).block.digest() == msg.block.digest()


@given(
    st.integers(min_value=0, max_value=10**6),
    short_text,
    st.lists(st.booleans(), max_size=40).map(tuple),
    st.integers(min_value=0, max_value=2**512),
    st.booleans(),
)
@settings(max_examples=200)
def test_vote_msg_bitpacking_roundtrip(number, voter, votes, sig, is_reply):
    msg = VoteMsg(
        block_number=number, voter=voter, votes=votes,
        signature=sig, is_reply=is_reply,
    )
    assert roundtrip(msg) == msg


@given(st.integers(min_value=0, max_value=10**6), short_text, short_text, st.booleans())
def test_sync_hash_roundtrip(number, sender, state_hash, is_reply):
    msg = SyncHashMsg(
        block_number=number, sender=sender,
        state_hash=state_hash, is_reply=is_reply,
    )
    assert roundtrip(msg) == msg


@given(st.integers(min_value=0, max_value=10**6), st.integers(min_value=0, max_value=10**6))
def test_request_blocks_roundtrip(a, b):
    assert roundtrip(RequestBlocks(from_number=a, to_number=b)) == RequestBlocks(
        from_number=a, to_number=b
    )


@given(short_text)
def test_query_tx_status_roundtrip(tx_id):
    assert roundtrip(QueryTxStatus(tx_id=tx_id)) == QueryTxStatus(tx_id=tx_id)


@given(short_text, short_text, st.one_of(st.none(), st.integers(min_value=0, max_value=10**6)))
def test_tx_status_reply_roundtrip(tx_id, code, block):
    msg = TxStatusReply(tx_id=tx_id, code=code, block=block)
    assert roundtrip(msg) == msg


# ---------------------------------------------------------------------
# swap 2PC command frames (what the bridge actually ships)

@given(
    st.integers(min_value=0, max_value=10**6),
    st.floats(min_value=0.0, max_value=10**9, allow_nan=False),
    st.integers(min_value=0, max_value=7),
    swap_payloads,
)
@settings(max_examples=100)
def test_swap_command_frame_roundtrip(seq, effect_time, shard, payload):
    frame = ("epoch", effect_time + 5.0, {shard: [(seq, effect_time, "invoke", payload)]})
    out = roundtrip(frame)
    assert out == frame
    # the command tuple and its payload dict survive structurally
    assert out[2][shard][0][3]["function"] in SWAP_FUNCTIONS


# ---------------------------------------------------------------------
# closed set + malformed frames

@pytest.mark.parametrize("bad", [set(), object(), 3 + 4j, bytearray(b"x")])
def test_types_outside_the_closed_set_are_rejected(bad):
    with pytest.raises(CodecError):
        encode({"k": bad})


def test_trailing_bytes_rejected():
    with pytest.raises(CodecError):
        decode(encode(1) + b"\x00")


def test_truncated_frame_rejected():
    data = encode(("hello", 12345, [1.5, None]))
    for cut in range(1, len(data)):
        with pytest.raises(CodecError):
            decode(data[:cut])


def test_unknown_tag_rejected():
    with pytest.raises(CodecError):
        decode(b"\x7f")
