"""Property-based tests (PR satellite): random interleavings of
commit/abort traffic under injected message reorders and duplicates must
never violate MVCC serializability in ``blockchain.ledger`` — verified
by the chaos harness's independent shadow replay, not by the ledger's
own checks."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blockchain import BlockchainNetwork, FabricConfig, TxValidationCode
from repro.chaos import (
    ChaosCounterContract,
    CounterConservation,
    FaultInjector,
    FaultSchedule,
    InvariantMonitor,
)
from repro.simnet import LAN_1GBPS

COUNTERS = ("a", "b")

# One workload step: (counter, function, amount).  ``sub`` with a large
# amount is an abort (contract rejection); same-time steps on one
# counter become intra-block MVCC conflicts with max_block_txs > 1.
steps = st.lists(
    st.tuples(
        st.sampled_from(COUNTERS),
        st.sampled_from(["add", "add", "sub"]),
        st.integers(min_value=1, max_value=50),
    ),
    min_size=1,
    max_size=20,
)

# Reorder/duplicate windows only: they perturb delivery order without
# losing messages, so every submission still completes.
windows = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=200.0),   # start
        st.floats(min_value=10.0, max_value=150.0),  # duration
        st.floats(min_value=0.1, max_value=0.9),     # rate
        st.sampled_from(["delay", "duplicate"]),
    ),
    max_size=3,
)


def run_interleaving(step_list, window_list, seed):
    chain = BlockchainNetwork(
        n_peers=3, profile=LAN_1GBPS, seed=seed,
        config=FabricConfig(max_block_txs=3),
    )
    chain.install_contract(ChaosCounterContract)
    monitor = InvariantMonitor(
        chain, asset_invariants=(CounterConservation(),)
    ).attach()

    schedule = FaultSchedule(seed=seed)
    for start, duration, rate, kind in window_list:
        if kind == "delay":
            schedule.delay(start, ("*",), duration, rate, 25.0)
        else:
            schedule.duplicate(start, ("*",), duration, rate)
    FaultInjector(chain, schedule).install()

    client = chain.create_client("c0")
    codes = []
    for counter in COUNTERS:
        client.invoke(
            "chaoscounter", "init", (counter,),
            touched_keys=(ChaosCounterContract.key(counter),),
        )
    for index, (counter, function, amount) in enumerate(step_list):
        # Pairs of consecutive steps share a submission instant, so some
        # interleavings race inside one block — and early steps may race
        # the inits themselves (a legal abort: "no such counter").
        chain.scheduler.call_at(
            1.0 + (index // 2) * 10.0,
            client.invoke,
            "chaoscounter", function, (counter, amount),
            (ChaosCounterContract.key(counter),),
            lambda res, lat: codes.append(res.code),
        )
    chain.run_until_idle()
    return chain, monitor, codes


class TestMVCCUnderReorders:
    @settings(max_examples=12, deadline=None)
    @given(steps, windows, st.integers(0, 2**16))
    def test_no_interleaving_violates_mvcc(self, step_list, window_list, seed):
        chain, monitor, codes = run_interleaving(step_list, window_list, seed)
        mvcc = [v for v in monitor.violations if v.invariant == "mvcc"]
        assert mvcc == [], [v.describe() for v in mvcc]
        # The independently replayed conservation law must hold too.
        conservation = [
            v for v in monitor.violations if v.invariant == "counter-conservation"
        ]
        assert conservation == [], [v.describe() for v in conservation]

    @settings(max_examples=8, deadline=None)
    @given(steps, windows, st.integers(0, 2**16))
    def test_all_peers_converge_after_reorders(self, step_list, window_list, seed):
        chain, monitor, codes = run_interleaving(step_list, window_list, seed)
        assert len(codes) == len(step_list)  # nothing lost, only reordered
        assert monitor.check_convergence() == []
        assert len({p.ledger.state_hash() for p in chain.peers}) == 1

    @settings(max_examples=8, deadline=None)
    @given(steps, st.integers(0, 2**16))
    def test_committed_state_equals_replayed_deltas(self, step_list, seed):
        """Whatever interleaving won, the final counters equal the sum of
        the deltas of committed-VALID transactions exactly."""
        chain, monitor, codes = run_interleaving(step_list, [], seed)
        ledger = chain.peers[0].ledger
        expected = {c: 0 for c in COUNTERS}
        for block in ledger.blocks():
            for tx, code in zip(block.transactions, block.validation_codes):
                if code != TxValidationCode.VALID:
                    continue
                if tx.proposal.function == "add":
                    expected[tx.proposal.args[0]] += tx.proposal.args[1]
                elif tx.proposal.function == "sub":
                    expected[tx.proposal.args[0]] -= tx.proposal.args[1]
        for counter in COUNTERS:
            assert ledger.state.get(f"ctr/{counter}") == expected[counter]
