"""The conservative-lookahead time bridge and the bridged shard engine.

Unit layer: :class:`~repro.simnet.bridge.TimeBridge` epoch mechanics
against a scripted in-test shard world — horizon advance, fast-forward
over idle stretches, command/lookahead invariants, callback dispatch.

Integration layer: :class:`~repro.blockchain.shardworker.BridgedShardEngine`
running the sharded replay workload with shard worlds in-process
(``procs=1``) and across spawned worker processes (``procs=2``) —
``sim_metrics`` (ledgers, state hashes, swap outcomes, scheduler event
counts) must be *bit-identical*, the tentpole guarantee of DESIGN.md §14.
"""

from __future__ import annotations

import pytest

from repro.blockchain.shardworker import (
    BridgedShardEngine,
    BridgeSwapPort,
    LocalShardGroupPort,
    shard_specs,
)
from repro.blockchain.swaps import SwapCoordinator
from repro.core.shim import ShardRouter
from repro.simnet.bridge import (
    DEFAULT_LOOKAHEAD_MS,
    BridgeError,
    ShardGroupPort,
    TimeBridge,
)
from repro.simnet.clock import Scheduler

# ---------------------------------------------------------------------
# a scripted shard world for unit-testing the bridge


class ScriptedPort(ShardGroupPort):
    """One fake shard: executes ``invoke`` commands at their effect time
    and immediately emits a completion event carrying the payload."""

    def __init__(self, index: int):
        self.shard_indices = (index,)
        self.index = index
        self.scheduler = Scheduler()
        self.executed = []  # (time, payload)
        self._events = []
        self._seq = 0
        self._stats = None

    def _execute(self, payload):
        self.executed.append((self.scheduler.now, payload))
        self._seq += 1
        self._events.append(
            (self.scheduler.now, self.index, self._seq, "complete", payload)
        )

    def begin_epoch(self, until, commands):
        for command in commands.get(self.index, ()):
            _seq, effect_time, _op, payload = command
            self.scheduler.call_at(effect_time, self._execute, payload)
        self.scheduler.run(until=until)
        events, self._events = self._events, []
        self._stats = (
            events,
            {
                self.index: {
                    "pending": self.scheduler.pending,
                    "next_when": self.scheduler._peek_when(),
                }
            },
        )

    def finish_epoch(self):
        stats, self._stats = self._stats, None
        return stats

    def collect_summaries(self):
        return {self.index: {"executed": len(self.executed)}}

    def close(self):
        pass


def test_lookahead_must_be_positive():
    with pytest.raises(BridgeError):
        TimeBridge([ScriptedPort(0)], lookahead_ms=0.0)


def test_duplicate_shard_rejected():
    with pytest.raises(BridgeError):
        TimeBridge([ScriptedPort(0), ScriptedPort(0)])


def test_submit_unknown_shard_rejected():
    bridge = TimeBridge([ScriptedPort(0)])
    with pytest.raises(BridgeError):
        bridge.submit(3, "invoke", {})


def test_reactive_submit_pays_one_lookahead_window():
    bridge = TimeBridge([ScriptedPort(0)], lookahead_ms=7.0)
    assert bridge.submit(0, "invoke", (1, "cb", None, 0.0)) == 7.0


def test_commands_execute_at_their_effect_times():
    port = ScriptedPort(0)
    bridge = TimeBridge([port], lookahead_ms=5.0)
    for t in (12.0, 3.0, 40.0):
        bridge.submit(0, "invoke", (None, f"p{t}"), effect_time=t)
    bridge.run()
    assert [(t, p[1]) for t, p in port.executed] == [
        (3.0, "p3.0"), (12.0, "p12.0"), (40.0, "p40.0")
    ]
    assert bridge.horizon >= 40.0
    assert bridge.quiescent()


def test_fast_forward_skips_idle_stretches():
    """One far-future command must not cost thousands of 5ms epochs."""
    port = ScriptedPort(0)
    bridge = TimeBridge([port], lookahead_ms=5.0)
    bridge.submit(0, "invoke", (None, "late"), effect_time=100_000.0)
    bridge.run()
    assert port.executed[0][0] == 100_000.0
    assert bridge.rounds <= 3


def test_effect_before_horizon_rejected_at_horizon_allowed():
    port = ScriptedPort(0)
    bridge = TimeBridge([port], lookahead_ms=5.0)
    bridge.submit(0, "invoke", (None, "a"), effect_time=10.0)
    bridge.run()
    horizon = bridge.horizon
    with pytest.raises(BridgeError):
        bridge.submit(0, "invoke", (None, "too-late"), effect_time=horizon - 0.001)
    # the boundary itself is schedulable: shard clocks sit exactly at
    # the horizon between rounds
    bridge.submit(0, "invoke", (None, "boundary"), effect_time=horizon)
    bridge.run()
    assert [p[1] for _t, p in port.executed] == ["a", "boundary"]


def test_completion_callbacks_dispatch_once_on_control_clock():
    port = ScriptedPort(0)
    bridge = TimeBridge([port], lookahead_ms=5.0)
    seen = []
    cb = bridge.register_callback(lambda *args: seen.append((bridge.now, args)))
    bridge.submit(0, "invoke", (cb, "result", 1.5), effect_time=20.0)
    bridge.run()
    assert seen == [(20.0, ("result", 1.5))]
    assert cb not in bridge._callbacks  # one-shot


def test_merge_order_is_placement_independent():
    """Events from different shards at equal times merge by shard index."""
    ports = [ScriptedPort(0), ScriptedPort(1)]
    bridge = TimeBridge(ports, lookahead_ms=5.0)
    order = []
    for shard in (1, 0):  # submit in reverse shard order on purpose
        cb = bridge.register_callback(
            lambda *args, s=shard: order.append(s)
        )
        bridge.submit(shard, "invoke", (cb, "x", 0.0), effect_time=30.0)
    bridge.run()
    assert order == [0, 1]


def test_reactive_resubmission_from_callback_lands_next_round():
    """A callback that submits reactively must not violate the horizon."""
    port = ScriptedPort(0)
    bridge = TimeBridge([port], lookahead_ms=5.0)
    done = []

    def chain(*_args):
        cb2 = bridge.register_callback(lambda *a: done.append(bridge.now))
        bridge.submit(0, "invoke", (cb2, "second", 0.0))  # reactive

    cb1 = bridge.register_callback(chain)
    bridge.submit(0, "invoke", (cb1, "first", 0.0), effect_time=10.0)
    bridge.run()
    assert done == [15.0]  # 10.0 + one lookahead window
    assert bridge.quiescent()


# ---------------------------------------------------------------------
# engine facade + placement bit-identity


ENGINE_KW = dict(n_peers=4, n_shards=2, seed=11)


def test_shard_specs_mirror_deployment_sizing():
    from repro.blockchain.config import FabricConfig

    specs = shard_specs(10, 3, FabricConfig(), seed=5)
    assert [s["n_peers"] for s in specs] == [4, 3, 3]
    assert [s["seed"] for s in specs] == [5, 6, 7]
    assert all(s["ca_seed"] == 5 for s in specs)
    assert [s["name_prefix"] for s in specs] == ["s0-", "s1-", "s2-"]


def test_engine_routes_and_completes():
    with BridgedShardEngine(**ENGINE_KW) as engine:
        shard = engine.shard_index_for_session("g00000")
        results = []
        engine.submit_invoke(
            shard, "mint", ("a1", "g00000", 5),
            touched_keys=("asset/a1",),
            on_complete=lambda res, lat: results.append((res.code, lat)),
            effect_time=0.0,
        )
        engine.run()
        assert results and results[0][0] == "VALID"
        summaries = engine.collect_summaries()
        assert sorted(summaries) == [0, 1]
        assert summaries[shard]["assets"]["a1"]["owner"] == "g00000"


def test_router_detects_bridged_backend():
    with BridgedShardEngine(**ENGINE_KW) as engine:
        router = ShardRouter(engine)
        with pytest.raises(TypeError):
            router.client_for_session("g00000")
        results = []
        router.submit(
            "g00000", "mint", ("a2", "g00000", 7),
            touched_keys=("asset/a2",),
            on_complete=lambda res, lat: results.append(res.code),
            effect_time=0.0,
        )
        engine.run()
        assert results == ["VALID"]


def test_swap_coordinator_requires_exactly_one_backend():
    with pytest.raises(ValueError):
        SwapCoordinator()
    with BridgedShardEngine(**ENGINE_KW) as engine:
        coordinator = SwapCoordinator(port=BridgeSwapPort(engine))
        assert coordinator.deployment is None
        assert coordinator.timeout_ms == engine.config.swap_timeout_ms


def test_bridged_swap_commits_across_shards():
    with BridgedShardEngine(**ENGINE_KW) as engine:
        src = engine.shard_index_for_session("g00000")
        dst = next(
            engine.shard_index_for_session(f"g{i:05d}")
            for i in range(1, 50)
            if engine.shard_index_for_session(f"g{i:05d}") != src
        )
        owner = "g00000"
        engine.submit_invoke(
            src, "mint", ("swapme", owner, 42),
            touched_keys=("asset/swapme",), effect_time=0.0,
        )
        engine.run()
        coordinator = SwapCoordinator(port=BridgeSwapPort(engine))
        engine.call_at(
            engine.now, coordinator.start_swap,
            "s1", "swapme", src, dst, "g00099", 42,
        )
        engine.run()
        assert coordinator.outcomes() == {"committed": 1}
        summaries = engine.collect_summaries()
        assert "swapme" in summaries[dst]["assets"]
        assert "swapme" not in summaries[src]["assets"]
        assert summaries[dst]["locks"] == {} and summaries[src]["locks"] == {}


def test_local_port_roundtrips_frames_through_codec():
    """The in-process placement must exercise the same wire format."""
    from repro.blockchain.config import FabricConfig

    specs = shard_specs(2, 1, FabricConfig(verify_signatures=False), seed=3)
    port = LocalShardGroupPort(specs)
    port.begin_epoch(50.0, {})
    events, stats = port.finish_epoch()
    assert events == []
    assert stats[0]["pending"] == 0
    summaries = port.collect_summaries()
    assert summaries[0]["committed_height"] == 0
    port.close()


SMALL_REPLAY = dict(
    n_shards=2, n_peers=4, n_sessions=8, players_per_session=4,
    n_events=60, swap_fraction=0.05, seed=11,
)


def _replay_metrics(procs: int):
    from repro.perf.workloads import sharded_replay

    return sharded_replay(procs=procs, **SMALL_REPLAY).sim_metrics


def test_procs_placements_are_bit_identical():
    """The tentpole: worker-process execution changes wall time only."""
    serial = _replay_metrics(procs=1)
    parallel = _replay_metrics(procs=2)
    assert serial == parallel
    # and the run did real work end to end
    assert serial["accepted"] == SMALL_REPLAY["n_events"]
    assert serial["swap_outcomes"] == {"committed": 3}
    assert serial["conservation_problems"] == []
    assert all(serial["ledgers_agree"])
    assert len(serial["state_hashes"]) == SMALL_REPLAY["n_shards"]
    assert serial["bridge_rounds"] > 0
