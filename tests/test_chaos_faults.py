"""Unit tests for the FaultSchedule DSL and seeded generation."""

import pytest

from repro.chaos import FaultEvent, FaultKind, FaultSchedule

PEERS = ["peer0", "peer1", "peer2", "peer3"]


class TestBuilder:
    def test_fluent_builders_append_events(self):
        s = (
            FaultSchedule()
            .crash(200.0, "peer1")
            .partition(500.0, ["peer0"], ["peer1", "peer2"])
            .heal(900.0)
            .restart(1000.0, "peer1")
        )
        assert len(s) == 4
        kinds = [e.kind for e in s.sorted().events]
        assert kinds == [
            FaultKind.PEER_CRASH,
            FaultKind.PARTITION,
            FaultKind.HEAL,
            FaultKind.PEER_RESTART,
        ]

    def test_sorted_orders_by_time(self):
        s = FaultSchedule().heal(900.0).crash(100.0, "peer0")
        assert [e.at_ms for e in s.sorted().events] == [100.0, 900.0]

    def test_prefix_keeps_first_k_in_time_order(self):
        s = FaultSchedule().heal(900.0).crash(100.0, "peer0").restart(500.0, "peer0")
        p = s.prefix(2)
        assert [e.kind for e in p.events] == [
            FaultKind.PEER_CRASH,
            FaultKind.PEER_RESTART,
        ]
        assert len(s.prefix(0)) == 0
        assert len(s.prefix(99)) == 3

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSchedule().add(FaultEvent(1.0, "meteor-strike"))

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FaultSchedule().crash(-1.0, "peer0")

    def test_partition_groups_survive_roundtrip(self):
        s = FaultSchedule().partition(10.0, ["peer1", "peer0"], ["peer2"])
        (event,) = s.events
        assert event.params == (("peer0", "peer1"), ("peer2",))

    def test_message_window_params(self):
        s = FaultSchedule().delay(5.0, ["peer0"], 100.0, 0.5, 30.0)
        (event,) = s.events
        assert event.kind == FaultKind.MSG_DELAY
        assert event.params == (100.0, 0.5, 30.0)


class TestDigest:
    def test_equal_schedules_equal_digests(self):
        a = FaultSchedule(seed=3).crash(1.0, "peer0").heal(2.0)
        b = FaultSchedule(seed=3).heal(2.0).crash(1.0, "peer0")
        assert a.digest() == b.digest()  # digest is over the sorted view

    def test_digest_depends_on_events_and_seed(self):
        a = FaultSchedule(seed=3).crash(1.0, "peer0")
        assert a.digest() != FaultSchedule(seed=3).crash(1.5, "peer0").digest()
        assert a.digest() != FaultSchedule(seed=4).crash(1.0, "peer0").digest()


class TestGenerate:
    def test_same_seed_same_schedule(self):
        a = FaultSchedule.generate(42, 10_000.0, PEERS, orderer="orderer")
        b = FaultSchedule.generate(42, 10_000.0, PEERS, orderer="orderer")
        assert a.digest() == b.digest()
        assert [e.as_record() for e in a.events] == [e.as_record() for e in b.events]

    def test_different_seed_different_schedule(self):
        a = FaultSchedule.generate(42, 10_000.0, PEERS)
        b = FaultSchedule.generate(43, 10_000.0, PEERS)
        assert a.digest() != b.digest()

    def test_crash_and_restart_come_paired(self):
        s = FaultSchedule.generate(7, 10_000.0, PEERS, churn=3,
                                   partitions=0, ddos_bursts=0, message_windows=0)
        crashes = [e for e in s.events if e.kind == FaultKind.PEER_CRASH]
        restarts = [e for e in s.events if e.kind == FaultKind.PEER_RESTART]
        assert len(crashes) == len(restarts) == 3
        for crash in crashes:
            mates = [r for r in restarts if r.targets == crash.targets
                     and r.at_ms > crash.at_ms]
            assert mates, f"no restart for {crash.describe()}"

    def test_partition_keeps_orderer_with_majority(self):
        for seed in range(5):
            s = FaultSchedule.generate(seed, 10_000.0, PEERS, orderer="orderer",
                                       churn=0, partitions=1, ddos_bursts=0,
                                       message_windows=0)
            (part,) = [e for e in s.events if e.kind == FaultKind.PARTITION]
            majority, minority = part.params
            assert "orderer" in majority
            assert len(majority) > len(minority)

    def test_faults_land_inside_the_run(self):
        s = FaultSchedule.generate(11, 10_000.0, PEERS, orderer="orderer",
                                   churn=2, partitions=1, ddos_bursts=1,
                                   message_windows=3, orderer_failovers=1)
        assert all(0.0 <= e.at_ms <= 10_000.0 for e in s.events)
