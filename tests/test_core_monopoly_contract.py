"""Tests for the Monopoly contract + distributed dice (§7.3 ii)."""

import pytest

from repro.blockchain import TxValidationCode
from repro.core import MonopolyContract, player_key, property_key
from repro.rng import DistributedDice

from conftest import ContractHarness

VALID = TxValidationCode.VALID
REJECTED = TxValidationCode.CONTRACT_REJECTED


@pytest.fixture()
def harness():
    h = ContractHarness(MonopolyContract())
    h.ok("addPlayer", creator="alice")
    h.ok("addPlayer", creator="bob")
    h.ok("startGame", creator="alice")
    return h


def move_to(harness, player, square, round_id):
    """Force a player onto a square for test setup."""
    from repro.blockchain import Version

    state = dict(harness.state.get(player_key(player)))
    state["location"] = square
    harness.state.put(player_key(player), state, Version(98, 0))


class TestLifecycle:
    def test_two_players_required(self):
        h = ContractHarness(MonopolyContract())
        h.ok("addPlayer", creator="alice")
        code, _ = h.call("startGame", creator="alice")
        assert code == REJECTED

    def test_players_start_with_1500(self, harness):
        assert harness.state.get(player_key("alice"))["currency"] == 1500


class TestRolls:
    def test_roll_moves_player(self, harness):
        harness.ok("roll", {"dice": [3, 4], "round": 1}, creator="alice")
        assert harness.state.get(player_key("alice"))["location"] == 7

    def test_impossible_dice_rejected(self, harness):
        code, _ = harness.call("roll", {"dice": [0, 9], "round": 1}, creator="alice")
        assert code == REJECTED

    def test_round_cannot_be_consumed_twice(self, harness):
        """Non-repudiation: one RNG round, one move — a player cannot
        claim two different outcomes for the same round."""
        harness.ok("roll", {"dice": [3, 4], "round": 1}, creator="alice")
        code, _ = harness.call("roll", {"dice": [6, 6], "round": 1}, creator="alice")
        assert code == REJECTED

    def test_roll_without_round_rejected(self, harness):
        code, _ = harness.call("roll", {"dice": [3, 4]}, creator="alice")
        assert code == REJECTED

    def test_roll_logged_for_audit(self, harness):
        harness.ok("roll", {"dice": [2, 5], "round": 1}, creator="alice")
        log = harness.state.get("mp/roll/alice/1")
        assert log["dice"] == [2, 5]

    def test_distributed_dice_feed_valid_rolls(self, harness):
        dice = DistributedDice(["alice", "bob"], seed=4)
        for round_id in range(1, 6):
            harness.ok(
                "roll", {"dice": list(dice.roll()), "round": round_id},
                creator="alice",
            )


class TestPurchasesAndRent:
    def test_buy_on_unowned_property(self, harness):
        move_to(harness, "alice", 39, 1)
        harness.ok("buy", creator="alice")
        assert harness.state.get(property_key(39))["owner"] == "alice"
        assert harness.state.get(player_key("alice"))["currency"] == 1100

    def test_buy_owned_property_rejected(self, harness):
        move_to(harness, "alice", 39, 1)
        harness.ok("buy", creator="alice")
        move_to(harness, "bob", 39, 1)
        code, _ = harness.call("buy", creator="bob")
        assert code == REJECTED

    def test_buy_non_property_square_rejected(self, harness):
        move_to(harness, "alice", 0, 1)  # GO
        code, _ = harness.call("buy", creator="alice")
        assert code == REJECTED

    def test_rent_transfers_currency(self, harness):
        move_to(harness, "alice", 39, 1)
        harness.ok("buy", creator="alice")
        move_to(harness, "bob", 39, 2)
        harness.ok("payRent", creator="bob")
        assert harness.state.get(player_key("bob"))["currency"] == 1450
        assert harness.state.get(player_key("alice"))["currency"] == 1150

    def test_no_rent_on_own_property(self, harness):
        move_to(harness, "alice", 39, 1)
        harness.ok("buy", creator="alice")
        code, _ = harness.call("payRent", creator="alice")
        assert code == REJECTED

    def test_no_rent_on_unowned(self, harness):
        move_to(harness, "bob", 39, 1)
        code, _ = harness.call("payRent", creator="bob")
        assert code == REJECTED


class TestEndToEndOnChain:
    def test_monopoly_session_on_blockchain(self):
        """Full pipeline: Monopoly over the blockchain with distributed
        dice; all peers agree on the final state."""
        from repro.blockchain import BlockchainNetwork
        from repro.simnet import LAN_1GBPS

        chain = BlockchainNetwork(n_peers=4, profile=LAN_1GBPS, seed=6)
        chain.install_contract(MonopolyContract)
        alice = chain.create_client("alice")
        bob = chain.create_client("bob")

        results = []
        track = lambda r, l: results.append(r.code)  # noqa: E731
        for client in (alice, bob):
            client.invoke("monopoly", "addPlayer", ({},), ("mp/roster",), track)
            chain.run_until_idle()
        alice.invoke("monopoly", "startGame", ({},), ("mp/started",), track)
        chain.run_until_idle()

        dice = DistributedDice(["alice", "bob"], seed=9)
        for round_id in (1, 2):
            alice.invoke(
                "monopoly", "roll",
                ({"dice": list(dice.roll()), "round": round_id},),
                (player_key("alice"),), track,
            )
            chain.run_until_idle()
        assert all(code == VALID for code in results)
        hashes = {p.ledger.state_hash() for p in chain.peers}
        assert len(hashes) == 1
