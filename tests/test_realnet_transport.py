"""RealNetwork behaviour tests: delivery, crash semantics, partitions,
fault injection, and connect retry/backoff — all over real localhost
sockets driven by the wall clock."""

from __future__ import annotations

import pytest

from repro.realnet import RealNetwork
from repro.simnet.topology import Host


class Sink(Host):
    """Records every payload it receives."""

    def __init__(self, name: str):
        super().__init__(name)
        self.received = []

    def handle_message(self, src, payload):
        self.received.append((src.name, payload))


@pytest.fixture
def net():
    network = RealNetwork(seed=1)
    yield network
    network.close()


def _drain(net, max_wall_ms=10_000):
    net.run_until_idle(max_wall_ms=max_wall_ms)


def test_basic_delivery_and_stats(net):
    a, b = net.register(Sink("a")), net.register(Sink("b"))
    net.start()
    a.send(b, {"op": "hello", "n": 1}, size_bytes=64)
    a.send(b, ("tuple", 2), size_bytes=64)
    _drain(net)
    assert b.received == [("a", {"op": "hello", "n": 1}), ("a", ["tuple", 2])] or \
        b.received == [("a", {"op": "hello", "n": 1}), ("a", ("tuple", 2))]
    stats = net.stats.as_dict()
    assert stats["messages_sent"] == 2
    assert stats["messages_delivered"] == 2
    assert net.connects >= 1


def test_broadcast_send_many(net):
    a = net.register(Sink("a"))
    sinks = [net.register(Sink(f"s{i}")) for i in range(3)]
    net.start()
    a.send_many(sinks, "fanout")
    _drain(net)
    assert all(s.received == [("a", "fanout")] for s in sinks)


def test_down_host_drops_and_restart_revives(net):
    a, b = net.register(Sink("a")), net.register(Sink("b"))
    net.start()
    net.condition("b").down = True
    a.send(b, "lost")
    _drain(net)
    assert b.received == []
    assert net.stats.messages_dropped >= 1

    net.condition("b").down = False
    a.send(b, "after-restart")
    _drain(net)
    assert b.received == [("a", "after-restart")]


def test_partition_blocks_cross_group_traffic(net):
    a, b, c = (net.register(Sink(n)) for n in "abc")
    net.start()
    net.partition(["a"], ["b", "c"])
    assert net.partitioned
    a.send(b, "blocked")
    b.send(c, "same-side")
    _drain(net)
    assert b.received == []
    assert c.received == [("b", "same-side")]
    assert net.stats.messages_dropped_partition == 1

    net.heal()
    a.send(b, "healed")
    _drain(net)
    assert b.received == [("a", "healed")]


def test_fault_injector_drop_duplicate_delay(net):
    a, b = net.register(Sink("a")), net.register(Sink("b"))
    net.start()

    def injector(msg, deliver_at):
        if msg.payload == "drop-me":
            return []
        if msg.payload == "dup-me":
            return [deliver_at, deliver_at]
        if msg.payload == "delay-me":
            return [deliver_at + 30.0]
        return [deliver_at]

    net.fault_injector = injector
    a.send(b, "drop-me")
    a.send(b, "dup-me")
    a.send(b, "delay-me")
    a.send(b, "clean")
    _drain(net)
    payloads = [p for _, p in b.received]
    assert "drop-me" not in payloads
    assert payloads.count("dup-me") == 2
    assert payloads.count("delay-me") == 1
    assert payloads.count("clean") == 1
    assert net.stats.messages_dropped_fault == 1
    assert net.stats.messages_duplicated == 1
    assert net.stats.messages_delayed_fault == 1


def test_ingress_condition_drop_and_delay(net):
    a, b = net.register(Sink("a")), net.register(Sink("b"))
    net.start()
    net.condition("b").ingress_drop_rate = 1.0
    a.send(b, "eaten")
    _drain(net)
    assert b.received == []

    net.condition("b").ingress_drop_rate = 0.0
    net.condition("b").extra_ingress_ms = 20.0
    before = net.now
    a.send(b, "slow")
    _drain(net)
    assert b.received == [("a", "slow")]
    assert net.now - before >= 20.0


def test_connect_retry_backoff_refused_then_listening(net):
    """A peer whose listener is down refuses connections; the channel
    retries with exponential backoff and delivers once it is back."""
    a, b = net.register(Sink("a")), net.register(Sink("b"))
    net.start()
    net.suspend_listener("b")
    a.send(b, "patience")
    # Let a few refused connects and backoff sleeps happen.
    net.run(until=net.now + 60.0)
    channel = net._channels[("a", "b")]
    assert channel.connect_attempts > 0
    assert channel.last_backoff_ms >= net.retry_base_ms
    assert b.received == []

    net.resume_listener("b")
    _drain(net)
    assert b.received == [("a", "patience")]


def test_connect_gives_up_after_max_attempts(net):
    a, b = net.register(Sink("a")), net.register(Sink("b"))
    net.start()
    net.suspend_listener("b")
    a.send(b, "doomed")
    # Worst case: sum of capped backoffs, then the queue is dropped.
    _drain(net, max_wall_ms=30_000)
    channel = net._channels[("a", "b")]
    assert channel.connect_attempts >= net.max_connect_attempts
    assert net.stats.messages_dropped >= 1
    assert b.received == []


def test_late_registration_gets_listener(net):
    a = net.register(Sink("a"))
    net.start()
    b = net.register(Sink("late"))
    a.send(b, "hi")
    _drain(net)
    assert b.received == [("a", "hi")]


def test_handler_exception_surfaces_from_run(net):
    a = net.register(Sink("a"))

    class Bomb(Host):
        def handle_message(self, src, payload):
            raise RuntimeError("handler blew up")

    b = net.register(Bomb("b"))
    net.start()
    a.send(b, "trigger")
    with pytest.raises(RuntimeError, match="handler blew up"):
        _drain(net)


def test_crash_via_peer_condition_closes_listener(net):
    a, b = net.register(Sink("a")), net.register(Sink("b"))
    net.start()
    port_before = net.port_of("b")
    assert port_before is not None
    net.condition("b").down = True
    assert net.port_of("b") is None
    net.condition("b").down = False
    assert net.port_of("b") is not None
    a.send(b, "again")
    _drain(net)
    assert b.received == [("a", "again")]
