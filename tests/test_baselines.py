"""Tests for the C/S, lockstep and RACS baselines + the Table 3 matrix."""

import pytest

from repro.baselines import (
    CSClient,
    GameServer,
    LockstepGame,
    LockstepPlayer,
    MECHANISMS,
    NOT_APPLICABLE,
    NOT_PREVENTED,
    PAPER_TABLE3,
    PREVENTED,
    RacsPeer,
    Referee,
    matrix_lookup,
    our_approach_matches_cs,
)
from repro.game import EventType, GameEvent, generate_session
from repro.simnet import (
    INTERNET_US,
    LAN_1GBPS,
    Network,
    Region,
    TakedownAttack,
)


def make_cs(profile=LAN_1GBPS, game_map=None):
    net = Network(profile=profile, seed=0)
    server = net.register(GameServer(game_map=game_map))
    server.add_player("p1")
    client = net.register(CSClient("c1", server.region, server))
    return net, server, client


def shoot(seq, count=1, player="p1", t=0.0):
    return GameEvent(t, player, EventType.SHOOT, {"count": count}, seq)


class TestClientServer:
    def test_valid_event_acked(self):
        net, server, client = make_cs()
        client.send_event(shoot(1))
        net.run_until_idle()
        assert client.accepted == 1
        assert client.avg_latency_ms > 0

    def test_cheat_rejected_same_rules_as_contract(self):
        net, server, client = make_cs()
        client.send_event(shoot(1, count=500))
        net.run_until_idle()
        assert client.rejected == 1
        assert "ammo" in client.rejection_reasons[0]

    def test_cs_and_contract_agree_on_full_replay(self):
        """§4's parity claim, checked mechanically: the trusted server
        and the smart contract accept/reject the same event stream."""
        demo = generate_session("parity", duration_ms=20_000.0, seed=13)
        net, server, client = make_cs(game_map=demo.game_map)
        for event in demo.events:
            server.validate_and_apply(event)  # direct, order-preserving
        assert server.events_rejected == 0
        assert server.events_validated == len(demo)

    def test_server_under_ddos_stops_acking(self):
        """One takedown target suffices against C/S (§5, DDoS)."""
        net, server, client = make_cs()
        client.send_event(shoot(1))
        net.run_until_idle()
        TakedownAttack([server.name]).apply(net)
        client.send_event(shoot(2))
        net.run_until_idle()
        assert client.accepted == 1
        assert client.pending() == 1  # never answered

    def test_room_capacity(self):
        net, server, client = make_cs()
        for i in range(2, 5):
            server.add_player(f"p{i}")
        with pytest.raises(ValueError):
            server.add_player("p5")

    def test_duplicate_player(self):
        net, server, _ = make_cs()
        with pytest.raises(ValueError):
            server.add_player("p1")

    def test_unknown_player_rejected(self):
        net, server, client = make_cs()
        client.send_event(shoot(1, player="ghost"))
        net.run_until_idle()
        assert client.rejected == 1


class TestLockstep:
    def make_game(self, n_players=4, rounds=3, liar=None, profile=INTERNET_US):
        net = Network(profile=profile, seed=1)
        players = []
        regions = [Region.DALLAS, Region.SAN_JOSE, Region.TORONTO]
        for i in range(n_players):
            player = LockstepPlayer(
                f"lp{i}", regions[i % 3], lie=(liar == i)
            )
            net.register(player)
            players.append(player)
        game = LockstepGame(players, rounds=rounds)
        return net, game

    def test_honest_game_agrees(self):
        net, game = self.make_game()
        game.run(net)
        assert game.all_agree()
        assert all(len(p.completed_rounds) == 3 for p in game.players)

    def test_round_latency_at_least_two_rtts(self):
        net, game = self.make_game(rounds=2)
        game.run(net)
        # Two message phases across WAN: > 2 * max one-way (~31 ms).
        assert game.avg_round_latency_ms() > 60.0

    def test_reveal_mismatch_detected(self):
        net, game = self.make_game(liar=0)
        game.run(net)
        honest = game.players[1]
        assert any(cheater == "lp0" for _, cheater in honest.cheaters_detected)
        # The liar's move is excluded from the agreed set.
        assert "lp0" not in honest.completed_rounds[1]

    def test_lockstep_stalls_when_player_down(self):
        """Lockstep's pathology: one unreachable player halts the round
        for everyone (the blockchain approach just outvotes it)."""
        net, game = self.make_game(rounds=2)
        TakedownAttack(["lp3"]).apply(net)
        for player in game.players:
            player.start_round()
        net.run(until=10_000.0)
        assert all(1 not in p.completed_rounds for p in game.players[:3])

    def test_rounds_validation(self):
        net, game = self.make_game()
        with pytest.raises(ValueError):
            LockstepGame(game.players, rounds=0)


class TestRacs:
    def test_referee_arbitrates_and_peers_render_optimistically(self):
        net = Network(profile=LAN_1GBPS, seed=2)
        referee = net.register(Referee())
        referee.add_player("r1")
        referee.add_player("r2")
        peers = [net.register(RacsPeer(f"r{i}", Region.LAN, referee)) for i in (1, 2)]
        for peer in peers:
            peer.connect(peers)

        peers[0].send_event(shoot(1, player="r1"))
        net.run_until_idle()
        assert peers[1].peer_updates[0].seq == 1  # rendered P2P
        assert peers[0].verdicts[1] is True  # referee verdict arrived

    def test_referee_squelches_cheat(self):
        net = Network(profile=LAN_1GBPS, seed=2)
        referee = net.register(Referee())
        referee.add_player("r1")
        referee.add_player("r2")
        peers = [net.register(RacsPeer(f"r{i}", Region.LAN, referee)) for i in (1, 2)]
        for peer in peers:
            peer.connect(peers)
        peers[0].send_event(shoot(1, player="r1", count=500))
        net.run_until_idle()
        assert peers[0].verdicts[1] is False
        # ...but the victim already rendered it — RACS's optimism window.
        assert len(peers[1].peer_updates) == 1


class TestTable3Matrix:
    def test_matrix_covers_all_rows_and_columns(self):
        assert len(PAPER_TABLE3) == 11
        assert all(len(v) == len(MECHANISMS) for v in PAPER_TABLE3.values())

    def test_lookup(self):
        assert matrix_lookup("collusion", "our-approach") == NOT_PREVENTED
        assert matrix_lookup("undo", "our-approach") == PREVENTED
        assert matrix_lookup("undo", "c/s") == NOT_APPLICABLE
        assert matrix_lookup("bots", "pb/vac") == PREVENTED

    def test_lookup_errors(self):
        with pytest.raises(KeyError):
            matrix_lookup("teleport", "c/s")
        with pytest.raises(KeyError):
            matrix_lookup("bug", "magic")

    def test_no_mechanism_beats_collusion_or_proxies(self):
        """The paper: collusion and infrastructure reflex enhancers are
        open problems for every mechanism."""
        assert all(v == NOT_PREVENTED for v in PAPER_TABLE3["collusion"])
        assert all(v == NOT_PREVENTED for v in PAPER_TABLE3["proxy"])

    def test_our_approach_no_worse_than_cs(self):
        assert our_approach_matches_cs()
