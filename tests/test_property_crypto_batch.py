"""Property-based tests: batch signature verification.

:func:`repro.blockchain.verify_batch` is the amortised pass the peers'
block-validation path uses; its contract is verdict-for-verdict
equivalence with calling :meth:`PublicKey.verify` in a loop, for every
mix of valid, corrupted and structurally-bogus signatures, with and
without the process-wide verdict cache (``fresh=True``) and down both
the per-item and randomized-product code paths (``force_product``).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blockchain import generate_keypair, verify_batch
from repro.blockchain.crypto import _VERIFY_CACHE

# Small keys keep the modexps fast; generate_keypair memoises per
# (seed, bits), so each distinct seed pays the prime search only once
# across the whole Hypothesis run.
KEY_BITS = 256
N_KEYS = 4

keypairs = [generate_keypair(f"batch-prop-{i}", KEY_BITS) for i in range(N_KEYS)]

messages = st.text(max_size=32)


@st.composite
def signed_batches(draw):
    """A batch of (key, message, signature) triples plus the expected
    loop-verification verdicts: a random mix of honestly signed items,
    bit-corrupted signatures, cross-key replays, and structural junk."""
    n = draw(st.integers(min_value=0, max_value=12))
    items = []
    for _ in range(n):
        pair = keypairs[draw(st.integers(0, N_KEYS - 1))]
        message = draw(messages)
        kind = draw(st.sampled_from(["ok", "corrupt", "wrong-key", "junk"]))
        if kind == "ok":
            sig = pair.sign(message)
        elif kind == "corrupt":
            sig = pair.sign(message) ^ (1 << draw(st.integers(0, KEY_BITS - 2)))
        elif kind == "wrong-key":
            other = keypairs[draw(st.integers(0, N_KEYS - 1))]
            sig = other.sign(message)
        else:
            sig = draw(
                st.one_of(
                    st.just(0),
                    st.just(-5),
                    st.integers(min_value=1, max_value=1 << KEY_BITS),
                    st.just("not-an-int"),
                )
            )
        items.append((pair.public, message, sig))
    return items


def _loop_verdicts(items):
    return [key.verify(message, sig) for key, message, sig in items]


class TestBatchEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(signed_batches())
    def test_batch_equals_loop(self, items):
        assert verify_batch(items) == _loop_verdicts(items)

    @settings(max_examples=40, deadline=None)
    @given(signed_batches())
    def test_fresh_bypass_equals_loop(self, items):
        before = dict(_VERIFY_CACHE)
        assert verify_batch(items, fresh=True) == _loop_verdicts(items)
        # The audit bypass must leave the memo untouched for the items
        # it saw (the loop above may add entries; fresh itself may not).
        for key, message, sig in items:
            try:
                cache_key = (key.n, key.e, message, sig)
            except AttributeError:
                continue
            if not isinstance(sig, int):
                continue
            if cache_key not in before:
                assert _VERIFY_CACHE.get(cache_key) in (None, True, False)

    @settings(max_examples=30, deadline=None)
    @given(signed_batches())
    def test_product_path_equals_loop(self, items):
        expected = _loop_verdicts(items)
        assert verify_batch(items, force_product=True) == expected
        assert verify_batch(items, force_product=False) == expected

    @settings(max_examples=30, deadline=None)
    @given(signed_batches())
    def test_cold_and_warm_cache_agree(self, items):
        # Warm run may be served entirely from the verdict cache; it must
        # still agree with a fully fresh pass.
        warm = verify_batch(items)
        assert verify_batch(items) == warm
        assert verify_batch(items, fresh=True) == warm


class TestCorruptionAttribution:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=2, max_value=10),
        st.data(),
    )
    def test_minority_corruption_attributed_exactly(self, n, data):
        """Corrupting a strict minority of an all-one-key batch must
        flag exactly the corrupted indices — the product test's per-item
        fallback may not smear blame across the batch."""
        pair = keypairs[0]
        msgs = [f"msg-{i}" for i in range(n)]
        items = [(pair.public, m, pair.sign(m)) for m in msgs]
        n_bad = data.draw(st.integers(1, max(1, n // 2)))
        bad = sorted(
            data.draw(
                st.sets(st.integers(0, n - 1), min_size=n_bad, max_size=n_bad)
            )
        )
        for i in bad:
            key, m, sig = items[i]
            items[i] = (key, m, sig ^ (1 << data.draw(st.integers(0, KEY_BITS - 2))))
        for force in (None, True, False):
            verdicts = verify_batch(items, fresh=True) if force is None else \
                verify_batch(items, force_product=force)
            flagged = [i for i, ok in enumerate(verdicts) if not ok]
            # A corrupted signature is invalid with overwhelming
            # probability; equality both ways pins exact attribution.
            assert flagged == bad

    @settings(max_examples=20, deadline=None)
    @given(st.data())
    def test_single_valid_item_batches(self, data):
        pair = keypairs[data.draw(st.integers(0, N_KEYS - 1))]
        message = data.draw(messages)
        sig = pair.sign(message)
        assert verify_batch([(pair.public, message, sig)]) == [True]
        assert verify_batch([(pair.public, message, sig)], fresh=True) == [True]

    def test_empty_batch(self):
        assert verify_batch([]) == []
        assert verify_batch([], fresh=True) == []
