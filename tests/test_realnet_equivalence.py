"""Backend equivalence: one scripted session, two transports.

The same 8-peer deployment code runs the same scripted counter session
on the deterministic simnet and on real localhost sockets.  Wall-clock
timestamps and therefore transaction ids differ by construction
(DESIGN.md §15), so equivalence is checked at the level the spec pins:
per-operation validation codes, final committed counter state, and
full convergence of every peer within each backend.
"""

from __future__ import annotations

import pytest

from repro.blockchain.config import FabricConfig
from repro.blockchain.network import BlockchainNetwork
from repro.chaos.workload import ChaosCounterContract

PEERS = 8

# (function, args): arguments use distinct amounts so any lost,
# duplicated or re-ordered *effect* shows up in the final counters.
SCRIPT_INIT = [("init", ("a",)), ("init", ("b",)), ("init", ("c",))]
SCRIPT_UPDATES = [
    ("add", ("a", 7)),
    ("add", ("b", 11)),
    ("add", ("c", 13)),
    ("add", ("a", 17)),
    ("sub", ("b", 5)),
    ("add", ("c", 19)),
    ("sub", ("a", 3)),
    ("add", ("b", 23)),
    ("sub", ("c", 50)),  # exceeds 13+19: goes negative, CONTRACT_REJECTED
    ("add", ("a", 31)),
]


def _drain(chain):
    if chain.config.backend == "realnet":
        chain.net.run_until_idle(max_wall_ms=30_000)
    else:
        chain.net.run_until_idle()


def _run_session(backend: str):
    config = FabricConfig(max_block_txs=1, backend=backend)
    chain = BlockchainNetwork(PEERS, config=config, seed=11)
    if backend == "realnet":
        chain.net.start()
    chain.install_contract(ChaosCounterContract)
    client = chain.create_client("scripted")

    codes = []
    def record(result, latency_ms):
        codes.append(result.code)

    for function, args in SCRIPT_INIT:
        client.invoke(
            ChaosCounterContract.name, function, args,
            touched_keys=(ChaosCounterContract.key(args[0]),),
            on_complete=record,
        )
    _drain(chain)
    for function, args in SCRIPT_UPDATES:
        client.invoke(
            ChaosCounterContract.name, function, args,
            touched_keys=(ChaosCounterContract.key(args[0]),),
            on_complete=record,
        )
    _drain(chain)

    counters = {
        name: chain.peers[0].ledger.state.get(ChaosCounterContract.key(name))
        for name in ("a", "b", "c")
    }
    heights = {p.ledger.height for p in chain.peers}
    state_hashes = {p.ledger.state_hash() for p in chain.peers}
    chains_valid = all(p.ledger.validate_chain() for p in chain.peers)
    if backend == "realnet":
        chain.net.close()
    return {
        "codes": codes,
        "counters": counters,
        "heights": heights,
        "state_hashes": state_hashes,
        "chains_valid": chains_valid,
        "synced": len({p.synced_height for p in chain.peers}) == 1,
    }


@pytest.fixture(scope="module")
def results():
    return {b: _run_session(b) for b in ("simnet", "realnet")}


def test_each_backend_converges(results):
    for backend, r in results.items():
        assert len(r["heights"]) == 1, backend
        assert len(r["state_hashes"]) == 1, backend
        assert r["chains_valid"], backend
        assert r["synced"], backend


def test_validation_codes_identical(results):
    sim, real = results["simnet"]["codes"], results["realnet"]["codes"]
    assert len(sim) == len(real) == len(SCRIPT_INIT) + len(SCRIPT_UPDATES)
    assert sim == real
    assert sim.count("CONTRACT_REJECTED") == 1  # the oversized sub


def test_final_counters_identical(results):
    assert results["simnet"]["counters"] == results["realnet"]["counters"]
    # And both match the arithmetic of the committed-valid script.
    assert results["simnet"]["counters"] == {
        "a": 7 + 17 - 3 + 31,   # all four a-ops commit
        "b": 11 - 5 + 23,       # all three b-ops commit
        "c": 13 + 19,           # the oversized sub is rejected
    }


def test_committed_heights_identical(results):
    # max_block_txs=1: every VALID or rejected-but-ordered tx is its own
    # block, so both backends commit the same number of blocks.
    assert results["simnet"]["heights"] == results["realnet"]["heights"]
