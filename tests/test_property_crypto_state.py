"""Property-based tests: crypto, world state and the ledger."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blockchain import (
    Version,
    WorldState,
    canonical_digest,
    generate_keypair,
    merkle_root,
    sha256_hex,
)

keys = st.text(string.ascii_lowercase + "/", min_size=1, max_size=12)
values = st.one_of(
    st.integers(-10**9, 10**9),
    st.text(max_size=20),
    st.lists(st.integers(-100, 100), max_size=5),
)


class TestHashProperties:
    @given(st.binary(max_size=256))
    def test_sha256_deterministic(self, data):
        assert sha256_hex(data) == sha256_hex(data)

    @given(st.binary(max_size=64), st.binary(max_size=64))
    def test_sha256_injective_in_practice(self, a, b):
        if a != b:
            assert sha256_hex(a) != sha256_hex(b)

    @given(st.lists(st.text(max_size=16), max_size=16))
    def test_merkle_deterministic(self, leaves):
        assert merkle_root(leaves) == merkle_root(list(leaves))

    @given(st.lists(st.text(max_size=8), min_size=2, max_size=10), st.data())
    def test_merkle_detects_any_single_mutation(self, leaves, data):
        index = data.draw(st.integers(0, len(leaves) - 1))
        replacement = data.draw(st.text(max_size=8))
        if replacement == leaves[index]:
            return
        mutated = list(leaves)
        mutated[index] = replacement
        assert merkle_root(mutated) != merkle_root(leaves)

    @given(
        st.dictionaries(st.text(max_size=6), st.integers(-100, 100), max_size=6)
    )
    def test_canonical_digest_order_invariant(self, mapping):
        reversed_items = dict(reversed(list(mapping.items())))
        assert canonical_digest(mapping) == canonical_digest(reversed_items)


class TestSignatureProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.text(max_size=64), st.text(max_size=64))
    def test_sign_verify_and_tamper(self, message, other):
        kp = generate_keypair("prop-test")
        signature = kp.sign(message)
        assert kp.verify(message, signature)
        if other != message:
            assert not kp.verify(other, signature)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**64))
    def test_distinct_seeds_distinct_keys(self, seed):
        a = generate_keypair(f"a{seed}")
        b = generate_keypair(f"b{seed}")
        assert a.public.n != b.public.n


class TestWorldStateProperties:
    @given(st.lists(st.tuples(keys, values), max_size=30))
    def test_last_write_wins(self, writes):
        state = WorldState()
        expected = {}
        for i, (key, value) in enumerate(writes):
            state.put(key, value, Version(i + 1, 0))
            expected[key] = value
        for key, value in expected.items():
            assert state.get(key) == value
        assert len(state) == len(expected)

    @given(st.lists(st.tuples(keys, values), max_size=20))
    def test_state_hash_is_content_function(self, writes):
        """Two states built by different write orders but identical final
        content (values and versions) hash identically."""
        a, b = WorldState(), WorldState()
        final = {}
        for i, (key, value) in enumerate(writes):
            final[key] = (value, Version(i + 1, 0))
        for key, (value, version) in final.items():
            a.put(key, value, version)
        for key, (value, version) in reversed(list(final.items())):
            b.put(key, value, version)
        assert a.state_hash() == b.state_hash()

    @given(st.lists(st.tuples(keys, values), min_size=1, max_size=20))
    def test_copy_isolated(self, writes):
        state = WorldState()
        for i, (key, value) in enumerate(writes):
            state.put(key, value, Version(i + 1, 0))
        clone = state.copy()
        clone.put("clone-only", 1, Version(99, 0))
        first_key = writes[0][0]
        clone.put(first_key, "mutated", Version(99, 1))
        assert "clone-only" not in state
        assert state.get(first_key) != "mutated" or writes[0][1] == "mutated"
        assert state.state_hash() != clone.state_hash()
