"""Taint rules (CHT001–CHT004): seeded-vulnerable fixtures must flag
their intended rule, shipped contracts must stay finding-free, and the
waiver mechanism must report-not-drop."""

import pytest

from repro.core import DoomContract, MonopolyContract
from repro.core.cheats import relevant_cheats
from repro.core.codegen import generate_contract_source
from repro.core.doomspec import doom_spec
from repro.staticcheck import (
    CHT_RULES,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    analyze_source,
    taint_contract,
    taint_source,
)
from repro.staticcheck.vulnfixtures import (
    CHEAT_RULE_MAP,
    FIXTURES,
    RUNTIME_ONLY_CHEATS,
)

FIXTURE_BY_NAME = {fixture.name: fixture for fixture in FIXTURES}


def rule_codes(report):
    return sorted({d.code for d in report.diagnostics})


# ----------------------------------------------------------------------
# true positives: each seeded vulnerability trips its intended rule


class TestSeededVulnerabilities:
    @pytest.mark.parametrize(
        "fixture", [f for f in FIXTURES if not f.name.startswith("waived")],
        ids=lambda f: f.name,
    )
    def test_fixture_flags_intended_rule(self, fixture):
        report = taint_source(fixture.source, class_name=fixture.class_name)
        assert fixture.rule in rule_codes(report), (
            f"{fixture.name} should trip {fixture.rule}, "
            f"got {rule_codes(report)}"
        )

    def test_unguarded_grant_is_error_per_handler(self):
        fixture = FIXTURE_BY_NAME["unguarded-grant"]
        report = taint_source(fixture.source, class_name=fixture.class_name)
        cht1 = [d for d in report.diagnostics if d.code == "CHT001"]
        # one finding per vulnerable handler (health, weapon, power-up)
        assert len(cht1) >= 3
        assert all(d.severity == SEVERITY_ERROR for d in cht1)

    def test_teleport_bounds_finding_is_warning(self):
        fixture = FIXTURE_BY_NAME["teleport-no-bounds"]
        report = taint_source(fixture.source, class_name=fixture.class_name)
        cht2 = [d for d in report.diagnostics if d.code == "CHT002"]
        assert cht2 and all(d.severity == SEVERITY_WARNING for d in cht2)
        # the existence guard means this is NOT a CHT001
        assert "CHT001" not in rule_codes(report)

    def test_mint_flags_non_conservation_as_error(self):
        fixture = FIXTURE_BY_NAME["ammo-mint"]
        report = taint_source(fixture.source, class_name=fixture.class_name)
        cht3 = [d for d in report.diagnostics if d.code == "CHT003"]
        assert cht3 and all(d.severity == SEVERITY_ERROR for d in cht3)

    def test_unauthenticated_target_flags_key_taint(self):
        fixture = FIXTURE_BY_NAME["unauthenticated-target"]
        report = taint_source(fixture.source, class_name=fixture.class_name)
        assert "CHT004" in rule_codes(report)


# ----------------------------------------------------------------------
# zero false positives on every shipped contract


class TestShippedContractsAreClean:
    def test_doom_contract_clean(self):
        report = taint_contract(DoomContract)
        assert report.diagnostics == [], [str(d) for d in report.diagnostics]

    def test_monopoly_contract_clean(self):
        report = taint_contract(MonopolyContract)
        assert report.diagnostics == [], [str(d) for d in report.diagnostics]

    @pytest.mark.parametrize("split_kvs", [True, False])
    def test_generated_contract_clean(self, split_kvs):
        source = generate_contract_source(doom_spec(), split_kvs=split_kvs)
        report = taint_source(source)
        assert report.diagnostics == [], [str(d) for d in report.diagnostics]


# ----------------------------------------------------------------------
# waivers: reported, never dropped; integrated into the full report


class TestWaivers:
    def test_waived_findings_move_to_waived_list(self):
        fixture = FIXTURE_BY_NAME["waived-mint"]
        report = taint_source(fixture.source, class_name=fixture.class_name)
        assert report.diagnostics == []
        assert {d.code for d in report.waived} == {"CHT002", "CHT003"}
        assert "CHT003" in report.waivers

    def test_waiver_only_covers_named_codes(self):
        # A waiver for CHT003 must not silence an unrelated CHT001.
        source = FIXTURE_BY_NAME["unguarded-grant"].source.replace(
            'name = "vuln-grant"',
            'name = "vuln-grant"\n'
            '    STATICCHECK_WAIVERS = {"CHT003": "not the rule that fires"}',
        )
        report = taint_source(source, class_name="UnguardedGrantContract")
        assert "CHT001" in rule_codes(report)

    def test_analyze_source_carries_waived_and_gates_on_active(self):
        fixture = FIXTURE_BY_NAME["waived-mint"]
        report = analyze_source(fixture.source, class_name=fixture.class_name)
        assert report.ok
        assert {d.code for d in report.waived} == {"CHT002", "CHT003"}
        assert report.to_json()["waived"]

    def test_analyze_source_fails_on_active_taint_finding(self):
        fixture = FIXTURE_BY_NAME["unguarded-grant"]
        report = analyze_source(fixture.source, class_name=fixture.class_name)
        assert not report.ok
        assert any(d.code == "CHT001" for d in report.failures())


# ----------------------------------------------------------------------
# the cheat taxonomy is fully accounted for


class TestCheatRuleMap:
    def test_every_relevant_cheat_is_mapped(self):
        mapped = set(CHEAT_RULE_MAP)
        taxonomy = {cheat.code for cheat in relevant_cheats()}
        assert taxonomy <= mapped, taxonomy - mapped

    def test_mapped_rules_exist(self):
        for code, rule in CHEAT_RULE_MAP.items():
            if rule is not None:
                assert rule in CHT_RULES, f"{code} maps to unknown {rule}"

    def test_every_static_rule_has_a_fixture_and_cheat(self):
        by_rule = {}
        for fixture in FIXTURES:
            by_rule.setdefault(fixture.rule, []).append(fixture)
        for rule in CHT_RULES:
            assert rule in by_rule, f"no seeded fixture exercises {rule}"
        for code, rule in CHEAT_RULE_MAP.items():
            if rule is None:
                assert code in RUNTIME_ONLY_CHEATS
            else:
                assert any(
                    code in fixture.cheats for fixture in by_rule[rule]
                ) or code in RUNTIME_ONLY_CHEATS, (
                    f"cheat {code} mapped to {rule} but no fixture models it"
                )
