"""Unit tests for the perf harness's baseline regression gate.

``repro.perf --check`` must fail with an actionable message — never a
KeyError — when the checked-in baseline predates the current suite or is
malformed, must *skip* (and report) workloads the baseline does not
cover, and must keep enforcing the sim-metric / timing / scaling gates
for the workloads both sides share.
"""

from __future__ import annotations

from repro.perf.runner import check_against_baseline, scaling_report


def _entry(wall_s=1.0, normalized=10.0, sim=None, params=None):
    return {
        "wall_s": wall_s,
        "normalized": normalized,
        "sim_metrics": sim if sim is not None else {"accepted": 5},
        "params": params if params is not None else {"n": 1},
    }


def _record(**workloads):
    return {"schema": "repro.perf/1", "workloads": workloads}


class TestStaleOrMalformedBaseline:
    def test_workload_missing_from_baseline_is_skipped_not_failed(self):
        current = _record(old=_entry(), new=_entry())
        baseline = _record(old=_entry())
        ok, problems, skipped = check_against_baseline(current, baseline)
        assert ok and problems == []
        assert any("new" in s and "not in baseline" in s for s in skipped)

    def test_malformed_baseline_is_flagged_not_raised(self):
        current = _record(wl=_entry())
        for baseline in ({}, {"workloads": None}, {"workloads": [1, 2]}):
            ok, problems, _skipped = check_against_baseline(current, baseline)
            assert not ok
            assert len(problems) == 1
            assert "malformed" in problems[0]

    def test_workload_missing_from_current_still_flagged(self):
        current = _record()
        baseline = _record(wl=_entry())
        ok, problems, _skipped = check_against_baseline(current, baseline)
        assert not ok
        assert any("missing from current run" in p for p in problems)


class TestWorkloadFilter:
    """A filtered run (--workloads/--only) gates only what it ran."""

    def test_baseline_entries_outside_filter_are_skipped(self):
        current = _record(a=_entry())
        baseline = _record(a=_entry(), b=_entry(), c=_entry())
        ok, problems, skipped = check_against_baseline(
            current, baseline, only=["a"]
        )
        assert ok and problems == []
        assert sorted(s.split(":")[0] for s in skipped) == ["b", "c"]
        assert all("excluded by the workload filter" in s for s in skipped)

    def test_baseline_entry_inside_filter_but_not_run_still_fails(self):
        current = _record(a=_entry())
        baseline = _record(a=_entry(), b=_entry())
        ok, problems, _skipped = check_against_baseline(
            current, baseline, only=["a", "b"]
        )
        assert not ok
        assert any(p.startswith("b: missing from current run") for p in problems)

    def test_filtered_run_still_gates_what_it_ran(self):
        current = _record(a=_entry(sim={"accepted": 4}))
        baseline = _record(a=_entry(sim={"accepted": 5}), b=_entry())
        ok, problems, _skipped = check_against_baseline(
            current, baseline, only=["a"]
        )
        assert not ok
        assert any("simulated metrics diverged" in p for p in problems)


class TestGates:
    def test_identical_records_pass(self):
        ok, problems, skipped = check_against_baseline(
            _record(wl=_entry()), _record(wl=_entry())
        )
        assert ok and problems == [] and skipped == []

    def test_sim_metric_divergence_fails(self):
        ok, problems, _ = check_against_baseline(
            _record(wl=_entry(sim={"accepted": 4})),
            _record(wl=_entry(sim={"accepted": 5})),
        )
        assert not ok
        assert any("simulated metrics diverged" in p for p in problems)

    def test_timing_regression_fails_beyond_tolerance(self):
        ok, problems, _ = check_against_baseline(
            _record(wl=_entry(normalized=20.0)),
            _record(wl=_entry(normalized=10.0)),
            tolerance=0.25,
        )
        assert not ok
        assert any("regression" in p for p in problems)

    def test_tiny_workloads_skip_timing_gate(self):
        ok, problems, _ = check_against_baseline(
            _record(wl=_entry(wall_s=0.01, normalized=20.0)),
            _record(wl=_entry(wall_s=0.01, normalized=10.0)),
        )
        assert ok and problems == []

    def test_param_change_requires_regeneration(self):
        ok, problems, _ = check_against_baseline(
            _record(wl=_entry(params={"n": 2})),
            _record(wl=_entry(params={"n": 1})),
        )
        assert not ok
        assert any("params changed" in p for p in problems)


class TestScalingGate:
    @staticmethod
    def _sharded(eps_by_shards):
        return {
            f"sharded-replay-{n}s": _entry(sim={"throughput_eps": eps})
            for n, eps in eps_by_shards.items()
        }

    def test_report_computes_speedup_and_efficiency(self):
        report = scaling_report(self._sharded({1: 100.0, 4: 300.0, 8: 500.0}))
        assert report["speedup"] == {"4": 3.0, "8": 5.0}
        assert report["efficiency"] == {"4": 0.75, "8": 0.625}

    def test_report_needs_single_shard_base(self):
        assert scaling_report(self._sharded({4: 300.0, 8: 500.0})) is None
        assert scaling_report(self._sharded({1: 100.0})) is None
        assert scaling_report({"replay-4p": _entry()}) is None

    def test_efficiency_below_floor_fails_check(self):
        workloads = self._sharded({1: 100.0, 8: 200.0})  # efficiency 0.25
        current = {
            "schema": "repro.perf/1",
            "workloads": workloads,
            "scaling": scaling_report(workloads),
        }
        baseline = {"schema": "repro.perf/1", "workloads": workloads}
        ok, problems, _ = check_against_baseline(current, baseline)
        assert not ok
        assert any("efficiency" in p and "floor" in p for p in problems)

    def test_efficiency_above_floor_passes(self):
        workloads = self._sharded({1: 100.0, 8: 400.0})  # efficiency 0.5
        current = {
            "schema": "repro.perf/1",
            "workloads": workloads,
            "scaling": scaling_report(workloads),
        }
        baseline = {"schema": "repro.perf/1", "workloads": workloads}
        ok, problems, _ = check_against_baseline(current, baseline)
        assert ok and problems == []
