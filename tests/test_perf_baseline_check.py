"""Unit tests for the perf harness's baseline regression gate.

``repro.perf --check`` must fail with an actionable message — never a
KeyError — when the checked-in baseline predates the current suite
(missing workloads) or is malformed, and must keep enforcing the
sim-metric / timing gates for the workloads both sides share.
"""

from __future__ import annotations

from repro.perf.runner import check_against_baseline


def _entry(wall_s=1.0, normalized=10.0, sim=None, params=None):
    return {
        "wall_s": wall_s,
        "normalized": normalized,
        "sim_metrics": sim if sim is not None else {"accepted": 5},
        "params": params if params is not None else {"n": 1},
    }


def _record(**workloads):
    return {"schema": "repro.perf/1", "workloads": workloads}


class TestStaleOrMalformedBaseline:
    def test_workload_missing_from_baseline_is_flagged(self):
        current = _record(old=_entry(), new=_entry())
        baseline = _record(old=_entry())
        ok, problems = check_against_baseline(current, baseline)
        assert not ok
        assert any(
            "new" in p and "missing from baseline" in p and "regenerate" in p
            for p in problems
        )

    def test_malformed_baseline_is_flagged_not_raised(self):
        current = _record(wl=_entry())
        for baseline in ({}, {"workloads": None}, {"workloads": [1, 2]}):
            ok, problems = check_against_baseline(current, baseline)
            assert not ok
            assert len(problems) == 1
            assert "malformed" in problems[0]

    def test_workload_missing_from_current_still_flagged(self):
        current = _record()
        baseline = _record(wl=_entry())
        ok, problems = check_against_baseline(current, baseline)
        assert not ok
        assert any("missing from current run" in p for p in problems)


class TestGates:
    def test_identical_records_pass(self):
        ok, problems = check_against_baseline(_record(wl=_entry()), _record(wl=_entry()))
        assert ok and problems == []

    def test_sim_metric_divergence_fails(self):
        ok, problems = check_against_baseline(
            _record(wl=_entry(sim={"accepted": 4})),
            _record(wl=_entry(sim={"accepted": 5})),
        )
        assert not ok
        assert any("simulated metrics diverged" in p for p in problems)

    def test_timing_regression_fails_beyond_tolerance(self):
        ok, problems = check_against_baseline(
            _record(wl=_entry(normalized=20.0)),
            _record(wl=_entry(normalized=10.0)),
            tolerance=0.25,
        )
        assert not ok
        assert any("regression" in p for p in problems)

    def test_tiny_workloads_skip_timing_gate(self):
        ok, problems = check_against_baseline(
            _record(wl=_entry(wall_s=0.01, normalized=20.0)),
            _record(wl=_entry(wall_s=0.01, normalized=10.0)),
        )
        assert ok and problems == []

    def test_param_change_requires_regeneration(self):
        ok, problems = check_against_baseline(
            _record(wl=_entry(params={"n": 2})),
            _record(wl=_entry(params={"n": 1})),
        )
        assert not ok
        assert any("params changed" in p for p in problems)
