"""Unit tests for the perf harness's baseline regression gate.

``repro.perf --check`` must fail with an actionable message — never a
KeyError — when the checked-in baseline predates the current suite or is
malformed, must *skip* (and report) workloads the baseline does not
cover, and must keep enforcing the sim-metric / timing / scaling gates
for the workloads both sides share.
"""

from __future__ import annotations

from repro.perf.runner import check_against_baseline, scaling_report


def _entry(wall_s=1.0, normalized=10.0, sim=None, params=None):
    return {
        "wall_s": wall_s,
        "normalized": normalized,
        "sim_metrics": sim if sim is not None else {"accepted": 5},
        "params": params if params is not None else {"n": 1},
    }


def _record(**workloads):
    return {"schema": "repro.perf/1", "workloads": workloads}


class TestStaleOrMalformedBaseline:
    def test_workload_missing_from_baseline_is_skipped_not_failed(self):
        current = _record(old=_entry(), new=_entry())
        baseline = _record(old=_entry())
        ok, problems, skipped = check_against_baseline(current, baseline)
        assert ok and problems == []
        assert any("new" in s and "not in baseline" in s for s in skipped)

    def test_malformed_baseline_is_flagged_not_raised(self):
        current = _record(wl=_entry())
        for baseline in ({}, {"workloads": None}, {"workloads": [1, 2]}):
            ok, problems, _skipped = check_against_baseline(current, baseline)
            assert not ok
            assert len(problems) == 1
            assert "malformed" in problems[0]

    def test_workload_missing_from_current_still_flagged(self):
        current = _record()
        baseline = _record(wl=_entry())
        ok, problems, _skipped = check_against_baseline(current, baseline)
        assert not ok
        assert any("missing from current run" in p for p in problems)


class TestWorkloadFilter:
    """A filtered run (--workloads/--only) gates only what it ran."""

    def test_baseline_entries_outside_filter_are_skipped(self):
        current = _record(a=_entry())
        baseline = _record(a=_entry(), b=_entry(), c=_entry())
        ok, problems, skipped = check_against_baseline(
            current, baseline, only=["a"]
        )
        assert ok and problems == []
        assert sorted(s.split(":")[0] for s in skipped) == ["b", "c"]
        assert all("excluded by the workload filter" in s for s in skipped)

    def test_baseline_entry_inside_filter_but_not_run_still_fails(self):
        current = _record(a=_entry())
        baseline = _record(a=_entry(), b=_entry())
        ok, problems, _skipped = check_against_baseline(
            current, baseline, only=["a", "b"]
        )
        assert not ok
        assert any(p.startswith("b: missing from current run") for p in problems)

    def test_filtered_run_still_gates_what_it_ran(self):
        current = _record(a=_entry(sim={"accepted": 4}))
        baseline = _record(a=_entry(sim={"accepted": 5}), b=_entry())
        ok, problems, _skipped = check_against_baseline(
            current, baseline, only=["a"]
        )
        assert not ok
        assert any("simulated metrics diverged" in p for p in problems)


class TestGates:
    def test_identical_records_pass(self):
        ok, problems, skipped = check_against_baseline(
            _record(wl=_entry()), _record(wl=_entry())
        )
        assert ok and problems == [] and skipped == []

    def test_sim_metric_divergence_fails(self):
        ok, problems, _ = check_against_baseline(
            _record(wl=_entry(sim={"accepted": 4})),
            _record(wl=_entry(sim={"accepted": 5})),
        )
        assert not ok
        assert any("simulated metrics diverged" in p for p in problems)

    def test_timing_regression_fails_beyond_tolerance(self):
        ok, problems, _ = check_against_baseline(
            _record(wl=_entry(normalized=20.0)),
            _record(wl=_entry(normalized=10.0)),
            tolerance=0.25,
        )
        assert not ok
        assert any("regression" in p for p in problems)

    def test_tiny_workloads_skip_timing_gate(self):
        ok, problems, _ = check_against_baseline(
            _record(wl=_entry(wall_s=0.01, normalized=20.0)),
            _record(wl=_entry(wall_s=0.01, normalized=10.0)),
        )
        assert ok and problems == []

    def test_param_change_requires_regeneration(self):
        ok, problems, _ = check_against_baseline(
            _record(wl=_entry(params={"n": 2})),
            _record(wl=_entry(params={"n": 1})),
        )
        assert not ok
        assert any("params changed" in p for p in problems)


class TestScalingGate:
    @staticmethod
    def _sharded(eps_by_shards):
        return {
            f"sharded-replay-{n}s": _entry(sim={"throughput_eps": eps})
            for n, eps in eps_by_shards.items()
        }

    def test_report_computes_speedup_and_efficiency(self):
        report = scaling_report(self._sharded({1: 100.0, 4: 300.0, 8: 500.0}))
        assert report["speedup"] == {"4": 3.0, "8": 5.0}
        assert report["efficiency"] == {"4": 0.75, "8": 0.625}

    def test_report_needs_single_shard_base(self):
        assert scaling_report(self._sharded({4: 300.0, 8: 500.0})) is None
        assert scaling_report(self._sharded({1: 100.0})) is None
        assert scaling_report({"replay-4p": _entry()}) is None

    def test_efficiency_below_floor_fails_check(self):
        workloads = self._sharded({1: 100.0, 8: 200.0})  # efficiency 0.25
        current = {
            "schema": "repro.perf/1",
            "workloads": workloads,
            "scaling": scaling_report(workloads),
        }
        baseline = {"schema": "repro.perf/1", "workloads": workloads}
        ok, problems, _ = check_against_baseline(current, baseline)
        assert not ok
        assert any("efficiency" in p and "floor" in p for p in problems)

    def test_efficiency_above_floor_passes(self):
        workloads = self._sharded({1: 100.0, 8: 400.0})  # efficiency 0.5
        current = {
            "schema": "repro.perf/1",
            "workloads": workloads,
            "scaling": scaling_report(workloads),
        }
        baseline = {"schema": "repro.perf/1", "workloads": workloads}
        ok, problems, _ = check_against_baseline(current, baseline)
        assert ok and problems == []


class TestHostContext:
    """Satellite: host metadata rides on records and mismatch messages."""

    def test_host_metadata_reports_cpu_and_load(self):
        from repro.perf.runner import host_metadata

        meta = host_metadata()
        assert isinstance(meta["cpu_count"], int) and meta["cpu_count"] >= 1
        assert meta["loadavg_1m"] is None or meta["loadavg_1m"] >= 0.0

    def test_run_context_formats_placement(self):
        from repro.perf.runner import run_context

        record = {
            "host": {"cpu_count": 8, "loadavg_1m": 1.25},
            "executor": "parallel",
            "procs": 4,
        }
        assert run_context(record) == (
            "cpus=8, load1m=1.25, executor=parallel, procs=4"
        )
        assert run_context({}) == "no host metadata"

    def test_mismatch_messages_carry_both_hosts(self):
        current = _record(w=_entry(sim={"accepted": 5}))
        current["host"] = {"cpu_count": 1, "loadavg_1m": 3.5}
        current["procs"] = 8
        baseline = _record(w=_entry(sim={"accepted": 6}))
        baseline["host"] = {"cpu_count": 16, "loadavg_1m": 0.1}
        ok, problems, _ = check_against_baseline(current, baseline)
        assert not ok
        message = next(p for p in problems if "diverged" in p)
        assert "current: cpus=1, load1m=3.5, procs=8" in message
        assert "baseline: cpus=16, load1m=0.1" in message

    def test_timing_regression_carries_context(self):
        current = _record(w=_entry(wall_s=9.0, normalized=90.0))
        current["host"] = {"cpu_count": 2, "loadavg_1m": None}
        baseline = _record(w=_entry(wall_s=1.0, normalized=10.0))
        ok, problems, _ = check_against_baseline(current, baseline)
        assert not ok
        assert any("regression" in p and "cpus=2" in p for p in problems)


class TestBackendAndPlacementContext:
    """Satellite: records carry their transport backend; the gate
    refuses cross-backend comparisons and surfaces placement drift."""

    def test_run_context_includes_backend(self):
        from repro.perf.runner import run_context

        assert run_context({"backend": "simnet"}) == "backend=simnet"

    def test_cross_backend_check_refused(self):
        current = _record(w=_entry())
        current["backend"] = "realnet"
        baseline = _record(w=_entry())
        baseline["backend"] = "simnet"
        ok, problems, _ = check_against_baseline(current, baseline)
        assert not ok
        assert len(problems) == 1
        assert "backend mismatch" in problems[0]
        assert "'realnet'" in problems[0] and "'simnet'" in problems[0]

    def test_missing_backend_defaults_to_simnet(self):
        # Old baselines predate the tag; they gate against simnet runs.
        current = _record(w=_entry())
        current["backend"] = "simnet"
        baseline = _record(w=_entry())
        ok, problems, skipped = check_against_baseline(current, baseline)
        assert ok and problems == [] and skipped == []

    def test_executor_difference_warns_via_skipped(self):
        current = _record(w=_entry())
        current["executor"] = "parallel"
        baseline = _record(w=_entry())
        ok, problems, skipped = check_against_baseline(current, baseline)
        assert ok and problems == []  # identical results: not a failure
        assert any(
            "executor differs" in s and "'parallel'" in s for s in skipped
        )

    def test_procs_difference_warns_via_skipped(self):
        current = _record(w=_entry())
        current["procs"] = 4
        baseline = _record(w=_entry())
        baseline["procs"] = 1
        ok, problems, skipped = check_against_baseline(current, baseline)
        assert ok and problems == []
        assert any("procs differs" in s and "current=4" in s for s in skipped)

    def test_matching_placement_emits_no_warning(self):
        current = _record(w=_entry())
        current["executor"], current["procs"] = "parallel", 4
        baseline = _record(w=_entry())
        baseline["executor"], baseline["procs"] = "parallel", 4
        ok, problems, skipped = check_against_baseline(current, baseline)
        assert ok and problems == [] and skipped == []

    def test_run_suite_records_are_tagged(self):
        from repro.perf.runner import run_suite

        # An empty selection skips every workload but still builds the
        # record envelope run_suite stamps.
        record = run_suite(quick=True, only=[], verbose=False)
        assert record["backend"] == "simnet"
        assert record["workloads"] == {}


class TestOverwriteGuard:
    """Satellite: the CLI refuses to clobber a full record with less."""

    @staticmethod
    def _write_record(path, mode="full", workloads=("a", "b")):
        import json

        record = {
            "schema": "repro.perf/1",
            "mode": mode,
            "workloads": {name: _entry() for name in workloads},
        }
        path.write_text(json.dumps(record))
        return record

    @staticmethod
    def _stub_suite(monkeypatch, calls):
        from repro.perf import __main__ as cli

        def fake_run_suite(**kwargs):
            calls.append(kwargs)
            return {
                "schema": "repro.perf/1",
                "mode": "quick" if kwargs.get("quick") else "full",
                "host": {"cpu_count": 1, "loadavg_1m": None},
                "workloads": {"a": _entry()},
            }

        monkeypatch.setattr(cli, "run_suite", fake_run_suite)
        return cli

    def test_quick_run_refuses_to_clobber_full_record(
        self, tmp_path, monkeypatch, capsys
    ):
        out = tmp_path / "BENCH.json"
        before = self._write_record(out, mode="full")
        calls = []
        cli = self._stub_suite(monkeypatch, calls)
        assert cli.main(["--quick", "--out", str(out)]) == 2
        assert calls == []  # refused before spending time on the suite
        import json

        assert json.loads(out.read_text()) == before
        assert "refusing to overwrite" in capsys.readouterr().err

    def test_filtered_run_dropping_workloads_refused(
        self, tmp_path, monkeypatch, capsys
    ):
        out = tmp_path / "BENCH.json"
        self._write_record(out, mode="full", workloads=("a", "b"))
        calls = []
        cli = self._stub_suite(monkeypatch, calls)
        assert cli.main(["--only", "a", "--out", str(out)]) == 2
        assert calls == []
        assert "dropping ['b']" in capsys.readouterr().err

    def test_force_allows_the_overwrite(self, tmp_path, monkeypatch):
        out = tmp_path / "BENCH.json"
        self._write_record(out, mode="full")
        calls = []
        cli = self._stub_suite(monkeypatch, calls)
        assert cli.main(["--quick", "--force", "--out", str(out)]) == 0
        assert len(calls) == 1
        import json

        assert json.loads(out.read_text())["mode"] == "quick"

    def test_quick_over_quick_record_is_fine(self, tmp_path, monkeypatch):
        out = tmp_path / "BENCH.json"
        self._write_record(out, mode="quick")
        calls = []
        cli = self._stub_suite(monkeypatch, calls)
        assert cli.main(["--quick", "--out", str(out)]) == 0
        assert len(calls) == 1

    def test_full_unfiltered_run_may_replace_full_record(
        self, tmp_path, monkeypatch
    ):
        out = tmp_path / "BENCH.json"
        self._write_record(out, mode="full")
        calls = []
        cli = self._stub_suite(monkeypatch, calls)
        assert cli.main(["--out", str(out)]) == 0
        assert len(calls) == 1
