"""End-to-end chaos over the sharded deployment.

The catalog's ``cross-shard-swap`` scenario is the acceptance test for
the whole swap stack: churn + a partition through in-flight swaps + a
coordinator crash between prepare and commit, with global asset
conservation checked mid-run and at quiescence.  Runs must also stay
bit-identical per seed — the chaos subsystem's core promise.
"""

from dataclasses import replace

import pytest

from repro.chaos import get_scenario, run_scenario
from repro.chaos.sharded import run_sharded_scenario

SCENARIO = get_scenario("cross-shard-swap")

#: A trimmed copy for the repeated-run tests (same shape, shorter).
MINI = replace(
    SCENARIO, name="mini-cross-shard", duration_ms=8_000.0,
    coordinator_crash_ms=3_050.0, coordinator_recover_ms=2_000.0,
    settle_ms=1_500.0, swap_interval_ms=700.0,
)


class TestCrossShardSwapScenario:
    def test_catalog_run_all_green(self):
        result = run_scenario("cross-shard-swap", seed=7)
        assert result.ok, [v.describe() for v in result.violations]
        assert result.probe_codes == ["VALID", "VALID", "VALID"]
        assert result.faults_applied == result.faults_in_schedule > 0
        summary = result.workload_summary
        # The run must actually exercise the interesting machinery:
        # committed swaps AND a coordinator outage that skipped some.
        assert summary.get("swap_committed", 0) > 0
        assert summary.get("swap_skipped_while_crashed", 0) > 0
        kinds = {entry[0] for entry in result.timeline}
        assert "coordinator-crash" in kinds
        assert "coordinator-recover" in kinds
        assert "swap" in kinds
        assert "conservation" in kinds

    def test_dispatched_through_run_scenario(self):
        # n_shards > 1 in the scenario is all it takes — callers keep
        # using the ordinary entry point.
        direct = run_sharded_scenario(MINI, seed=3)
        routed = run_scenario(MINI, seed=3)
        assert routed.timeline_digest() == direct.timeline_digest()

    def test_same_seed_is_bit_identical(self):
        a = run_scenario(MINI, seed=7)
        b = run_scenario(MINI, seed=7)
        assert a.timeline_digest() == b.timeline_digest()
        assert a.workload_summary == b.workload_summary

    def test_different_seeds_differ(self):
        a = run_scenario(MINI, seed=7)
        b = run_scenario(MINI, seed=8)
        assert a.timeline_digest() != b.timeline_digest()

    def test_many_seeds_conserve_assets(self):
        for seed in (1, 2, 3):
            result = run_scenario(MINI, seed=seed, record_timeline=False)
            assert result.ok, (seed, [v.describe() for v in result.violations])

    def test_wall_budget_truncates(self):
        result = run_scenario(MINI, seed=7, max_wall_s=1e-9)
        assert result.truncated
        # A truncated run is not judged: no convergence/liveness verdict.
        assert result.violations == []


class TestGuards:
    def test_single_shard_scenario_rejected(self):
        with pytest.raises(ValueError):
            run_sharded_scenario(get_scenario("smoke"), seed=1)

    def test_unknown_buggy_fixture_rejected(self):
        with pytest.raises(KeyError):
            run_scenario(MINI, seed=1, buggy="no-such-bug")
