"""Tests for ordering-service details and the §8(2) priority extension."""


from repro.blockchain import BlockchainNetwork, FabricConfig, TxValidationCode
from repro.simnet import LAN_1GBPS

from conftest import CounterContract


def make_chain(config):
    chain = BlockchainNetwork(n_peers=2, profile=LAN_1GBPS, config=config, seed=0)
    chain.install_contract(CounterContract)
    client = chain.create_client("c0")
    done = []
    client.invoke("counter", "init", ("m",), ("ctr/m",),
                  on_complete=lambda r, l: done.append(r))
    chain.run_until_idle()
    assert done[0].code == TxValidationCode.VALID
    return chain, client


class TestBlockCutting:
    def test_timeout_cuts_partial_block(self):
        chain, client = make_chain(FabricConfig(max_block_txs=10, batch_timeout_ms=8.0))
        results = []
        client.invoke("counter", "add", ("m", 1), ("ctr/m",),
                      on_complete=lambda r, l: results.append(r))
        chain.run_until_idle()
        assert results[0].code == TxValidationCode.VALID
        # The block was cut by timeout, with a single transaction.
        block = chain.peers[0].ledger.block(2)
        assert len(block.transactions) == 1

    def test_full_batch_cuts_immediately(self):
        chain, client = make_chain(FabricConfig(max_block_txs=2, batch_timeout_ms=10_000.0))
        results = []
        for name in ("a", "b"):
            client.invoke("counter", "init", (name,), (f"ctr/{name}",),
                          on_complete=lambda r, l: results.append(r))
        chain.run_until_idle()
        assert [r.code for r in results] == [TxValidationCode.VALID] * 2
        block = chain.peers[0].ledger.block(2)
        assert len(block.transactions) == 2

    def test_orderer_counts_work(self):
        chain, client = make_chain(FabricConfig())
        assert chain.orderer.blocks_cut == 1
        assert chain.orderer.txs_ordered == 1


class TestPriorityOrdering:
    def _submit_pair(self, config):
        """Submit an 'add' then a 'sub' that land in one block; returns
        the in-block function order."""
        chain, client = make_chain(config.with_options(
            max_block_txs=2, batch_timeout_ms=50.0
        ))
        results = []
        client.invoke("counter", "add", ("m", 5), ("ctr/m",),
                      on_complete=lambda r, l: results.append(r))
        client.invoke("counter", "sub", ("m", 1), ("ctr/m2",),
                      on_complete=lambda r, l: results.append(r))
        chain.run_until_idle()
        block = chain.peers[0].ledger.block(2)
        assert len(block.transactions) == 2
        return [tx.proposal.function for tx in block.transactions]

    def test_default_order_is_by_timestamp(self):
        assert self._submit_pair(FabricConfig()) == ["add", "sub"]

    def test_priority_function_jumps_ahead(self):
        """The §8(2) extension: a prioritised function is ordered first
        within the block even when submitted later."""
        order = self._submit_pair(FabricConfig(priority_functions=("sub",)))
        assert order == ["sub", "add"]

    def test_priority_changes_conflict_winner(self):
        """With the block-level KVS lock, priority decides which of two
        conflicting updates survives."""
        def winner(config):
            chain, client = make_chain(config.with_options(
                max_block_txs=2, batch_timeout_ms=50.0
            ))
            seeded = []
            client.invoke("counter", "add", ("m", 10), ("ctr/m",),
                          on_complete=lambda r, l: seeded.append(r.code))
            chain.run_until_idle()
            assert seeded == [TxValidationCode.VALID]
            results = {}
            client.invoke("counter", "add", ("m", 5), ("ctr/m",),
                          on_complete=lambda r, l: results.setdefault("add", r.code))
            client.invoke("counter", "sub", ("m", 1), ("ctr/m",),
                          on_complete=lambda r, l: results.setdefault("sub", r.code))
            chain.run_until_idle()
            return results

        plain = winner(FabricConfig())
        assert plain["add"] == TxValidationCode.VALID
        assert plain["sub"] == TxValidationCode.MVCC_READ_CONFLICT

        prioritised = winner(FabricConfig(priority_functions=("sub",)))
        assert prioritised["sub"] == TxValidationCode.VALID
        assert prioritised["add"] == TxValidationCode.MVCC_READ_CONFLICT
