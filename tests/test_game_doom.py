"""Unit tests for Doom rules, assets and the default map."""

import pytest

from repro.game import (
    ASSETS,
    AssetId,
    DoomMap,
    DoomRules,
    RuleViolation,
    WeaponId,
    asset_key,
    initial_assets,
)


@pytest.fixture()
def game_map():
    return DoomMap.default_map()


class TestAssets:
    def test_nine_assets_defined(self):
        assert len(ASSETS) == 9
        assert set(ASSETS) == set(AssetId.ALL)

    def test_asset_key_per_player_per_asset(self):
        assert asset_key("p1", AssetId.HEALTH) != asset_key("p1", AssetId.ARMOR)
        assert asset_key("p1", AssetId.HEALTH) != asset_key("p2", AssetId.HEALTH)

    def test_bounds(self):
        health = ASSETS[AssetId.HEALTH]
        assert health.in_bounds(100)
        assert not health.in_bounds(-1)
        assert not health.in_bounds(201)

    def test_initial_assets_complete(self):
        init = initial_assets()
        assert set(init) == set(AssetId.ALL)
        assert init[AssetId.HEALTH]["hp"] == 100
        assert init[AssetId.AMMUNITION] == 50
        assert WeaponId.PISTOL in init[AssetId.WEAPON]["owned"]


class TestMovement:
    def test_normal_move_accepted(self, game_map):
        pos = {"x": 500.0, "y": 500.0, "t": 0.0}
        new = DoomRules.validate_move(pos, 520.0, 500.0, 28.6, game_map)
        assert new == {"x": 520.0, "y": 500.0, "t": 28.6}

    def test_teleport_rejected(self, game_map):
        pos = {"x": 500.0, "y": 500.0, "t": 0.0}
        with pytest.raises(RuleViolation):
            DoomRules.validate_move(pos, 3000.0, 3000.0, 28.6, game_map)

    def test_out_of_bounds_rejected(self, game_map):
        pos = {"x": 500.0, "y": 500.0, "t": 0.0}
        with pytest.raises(RuleViolation):
            DoomRules.validate_move(pos, -10.0, 500.0, 28.6, game_map)

    def test_time_travel_rejected(self, game_map):
        pos = {"x": 500.0, "y": 500.0, "t": 100.0}
        with pytest.raises(RuleViolation):
            DoomRules.validate_move(pos, 501.0, 500.0, 50.0, game_map)

    def test_long_pause_allows_proportional_distance(self, game_map):
        pos = {"x": 500.0, "y": 500.0, "t": 0.0}
        new = DoomRules.validate_move(pos, 1500.0, 500.0, 1000.0, game_map)
        assert new["x"] == 1500.0


class TestShooting:
    def test_shoot_consumes_ammo(self):
        weapon = {"current": WeaponId.PISTOL, "owned": [WeaponId.PISTOL]}
        assert DoomRules.validate_shoot(weapon, 50, 3) == 47

    def test_shoot_without_ammo_rejected(self):
        weapon = {"current": WeaponId.PISTOL, "owned": [WeaponId.PISTOL]}
        with pytest.raises(RuleViolation):
            DoomRules.validate_shoot(weapon, 0, 1)

    def test_batched_shots_all_accounted(self):
        weapon = {"current": WeaponId.PISTOL, "owned": [WeaponId.PISTOL]}
        assert DoomRules.validate_shoot(weapon, 5, 5) == 0
        with pytest.raises(RuleViolation):
            DoomRules.validate_shoot(weapon, 5, 6)

    def test_melee_needs_no_ammo(self):
        weapon = {"current": WeaponId.CHAINSAW, "owned": [WeaponId.CHAINSAW]}
        assert DoomRules.validate_shoot(weapon, 0, 4) == 0

    def test_bfg_costs_40(self):
        weapon = {"current": WeaponId.BFG9000, "owned": [WeaponId.BFG9000]}
        assert DoomRules.validate_shoot(weapon, 80, 2) == 0
        with pytest.raises(RuleViolation):
            DoomRules.validate_shoot(weapon, 39, 1)

    def test_nonpositive_count_rejected(self):
        weapon = {"current": WeaponId.PISTOL, "owned": [WeaponId.PISTOL]}
        with pytest.raises(RuleViolation):
            DoomRules.validate_shoot(weapon, 50, 0)

    def test_weapon_change_requires_ownership(self):
        weapon = {"current": WeaponId.PISTOL, "owned": [WeaponId.PISTOL]}
        with pytest.raises(RuleViolation):
            DoomRules.validate_weapon_change(weapon, WeaponId.BFG9000)
        new = DoomRules.validate_weapon_change(
            {"current": 2, "owned": [2, 3]}, 3
        )
        assert new["current"] == 3


class TestDamage:
    def test_plain_damage_reduces_health(self):
        health, armor, absorbed = DoomRules.apply_damage(
            {"hp": 100, "invuln_until": 0.0}, 0, 30, t_ms=0.0
        )
        assert health["hp"] == 70 and armor == 0 and not absorbed

    def test_armor_absorbs_a_third(self):
        health, armor, absorbed = DoomRules.apply_damage(
            {"hp": 100, "invuln_until": 0.0}, 50, 30, t_ms=0.0
        )
        assert health["hp"] == 80 and armor == 40 and absorbed

    def test_armor_cannot_go_negative(self):
        health, armor, _ = DoomRules.apply_damage(
            {"hp": 100, "invuln_until": 0.0}, 2, 30, t_ms=0.0
        )
        assert armor == 0
        assert health["hp"] == 72

    def test_health_floors_at_zero(self):
        health, _, _ = DoomRules.apply_damage(
            {"hp": 10, "invuln_until": 0.0}, 0, 100, t_ms=0.0
        )
        assert health["hp"] == 0

    def test_invulnerability_blocks_damage(self):
        health, armor, _ = DoomRules.apply_damage(
            {"hp": 100, "invuln_until": 5000.0}, 10, 50, t_ms=1000.0
        )
        assert health["hp"] == 100 and armor == 10

    def test_invulnerability_expires(self):
        health, _, _ = DoomRules.apply_damage(
            {"hp": 100, "invuln_until": 5000.0}, 0, 50, t_ms=6000.0
        )
        assert health["hp"] == 50

    def test_negative_damage_rejected(self):
        with pytest.raises(RuleViolation):
            DoomRules.apply_damage({"hp": 100, "invuln_until": 0.0}, 0, -5, 0.0)


class TestPickups:
    def test_pickup_in_range_accepted(self, game_map):
        item = game_map.items_of_kind("medkit")[0]
        pos = {"x": item.x + 10.0, "y": item.y, "t": 0.0}
        DoomRules.validate_pickup(item, None, pos, t_ms=0.0)  # no raise

    def test_pickup_out_of_range_rejected(self, game_map):
        item = game_map.items_of_kind("medkit")[0]
        pos = {"x": item.x + 500.0, "y": item.y, "t": 0.0}
        with pytest.raises(RuleViolation):
            DoomRules.validate_pickup(item, None, pos, t_ms=0.0)

    def test_pickup_before_respawn_rejected(self, game_map):
        item = game_map.items_of_kind("medkit")[0]
        pos = {"x": item.x, "y": item.y, "t": 0.0}
        with pytest.raises(RuleViolation):
            DoomRules.validate_pickup(item, {"taken_at": 0.0}, pos, t_ms=10_000.0)
        DoomRules.validate_pickup(item, {"taken_at": 0.0}, pos, t_ms=31_000.0)

    def test_missing_item_rejected(self):
        with pytest.raises(RuleViolation):
            DoomRules.validate_pickup(None, None, {"x": 0, "y": 0, "t": 0}, 0.0)

    def test_heal_caps_at_100(self):
        healed = DoomRules.heal({"hp": 90, "invuln_until": 0.0}, 25)
        assert healed["hp"] == 100

    def test_ammo_caps_at_maximum(self):
        assert DoomRules.add_ammo(395, 10) == 400


class TestMap:
    def test_default_map_deterministic(self):
        a, b = DoomMap.default_map(), DoomMap.default_map()
        assert [(i.kind, i.x, i.y) for i in a.items] == [
            (i.kind, i.x, i.y) for i in b.items
        ]

    def test_contains_chainsaw_for_idchoppers(self, game_map):
        assert game_map.items_of_kind(f"weapon:{WeaponId.CHAINSAW}")

    def test_item_lookup(self, game_map):
        first = game_map.items[0]
        assert game_map.item(first.item_id) is first
        assert game_map.item("nope") is None

    def test_all_items_in_bounds(self, game_map):
        assert all(game_map.in_bounds(i.x, i.y) for i in game_map.items)

    def test_four_spawn_points(self, game_map):
        assert len(game_map.spawn_points) == 4
