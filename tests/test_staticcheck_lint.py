"""Unit tests for the determinism lint rules (positive and negative
fixtures per rule) and the codegen compile gate."""

import pytest

from repro.core import DoomContract, MonopolyContract
from repro.core.codegen import compile_contract_source
from repro.staticcheck import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    StaticCheckError,
    gate,
    lint_contract,
    lint_source,
)


def codes(diagnostics):
    return sorted({d.code for d in diagnostics})


def contract_with(body, extra_top=""):
    """Wrap a handler body into a minimal contract class source."""
    indented = "\n".join("        " + line for line in body.splitlines())
    return (
        f"{extra_top}\n"
        "class FixtureContract:\n"
        "    name = 'fixture'\n"
        "    def on_event(self, ctx, payload):\n"
        f"{indented}\n"
    )


# ----------------------------------------------------------------------
# DET001 — nondeterministic value sources


class TestDet001Randomness:
    def test_random_call_flagged(self):
        diags = lint_source(contract_with("ctx.view.put('k', random.random())"))
        assert "DET001" in codes(diags)
        assert any(d.severity == SEVERITY_ERROR for d in diags)

    def test_uuid_call_flagged(self):
        diags = lint_source(contract_with("ctx.view.put('k', str(uuid.uuid4()))"))
        assert "DET001" in codes(diags)

    def test_hash_builtin_flagged(self):
        diags = lint_source(contract_with("ctx.view.put('k', hash(ctx.creator))"))
        assert "DET001" in codes(diags)

    def test_id_builtin_flagged(self):
        diags = lint_source(contract_with("ctx.view.put('k', id(payload))"))
        assert "DET001" in codes(diags)

    def test_os_environ_flagged(self):
        diags = lint_source(contract_with("ctx.view.put('k', os.environ['HOME'])"))
        assert "DET001" in codes(diags)

    def test_plain_arithmetic_not_flagged(self):
        diags = lint_source(contract_with("ctx.view.put('k', 1 + 2)"))
        assert diags == []


# ----------------------------------------------------------------------
# DET002 — wall-clock reads


class TestDet002WallClock:
    def test_time_time_flagged(self):
        diags = lint_source(contract_with("ctx.view.put('k', time.time())"))
        assert "DET002" in codes(diags)

    def test_datetime_now_flagged(self):
        diags = lint_source(contract_with("ctx.view.put('k', datetime.now())"))
        assert "DET002" in codes(diags)

    def test_ctx_timestamp_is_fine(self):
        diags = lint_source(contract_with("ctx.view.put('k', ctx.timestamp)"))
        assert diags == []


# ----------------------------------------------------------------------
# DET003 — unordered iteration


class TestDet003UnorderedIteration:
    def test_set_iteration_writing_state_is_error(self):
        body = "for p in {'a', 'b'}:\n    ctx.view.put(p, 1)"
        diags = lint_source(contract_with(body))
        det3 = [d for d in diags if d.code == "DET003"]
        assert det3 and det3[0].severity == SEVERITY_ERROR

    def test_set_iteration_without_write_is_warning(self):
        body = "total = 0\nfor p in set(payload):\n    total += 1"
        diags = lint_source(contract_with(body))
        det3 = [d for d in diags if d.code == "DET003"]
        assert det3 and det3[0].severity == SEVERITY_WARNING

    def test_sorted_set_iteration_is_fine(self):
        body = "for p in sorted({'a', 'b'}):\n    ctx.view.put(p, 1)"
        diags = lint_source(contract_with(body))
        assert "DET003" not in codes(diags)

    def test_dict_iteration_is_fine(self):
        # Python dicts iterate in insertion order — deterministic.
        body = "for k, v in payload.items():\n    ctx.view.put(str(k), v)"
        diags = lint_source(contract_with(body))
        assert "DET003" not in codes(diags)

    def test_set_pop_flagged(self):
        diags = lint_source(contract_with("x = {'a', 'b'}.pop()"))
        assert "DET003" in codes(diags)


class TestDet003Comprehensions:
    """Comprehensions iterate exactly like for-loops — a set-fed
    generator must trip DET003 whether it builds a list, dict, set or
    generator expression."""

    def test_list_comprehension_over_set_is_warning(self):
        diags = lint_source(contract_with("names = [p for p in {'a', 'b'}]"))
        det3 = [d for d in diags if d.code == "DET003"]
        assert det3 and det3[0].severity == SEVERITY_WARNING

    def test_list_comprehension_writing_state_is_error(self):
        body = "_ = [ctx.view.put(p, 1) for p in {'a', 'b'}]"
        diags = lint_source(contract_with(body))
        det3 = [d for d in diags if d.code == "DET003"]
        assert det3 and det3[0].severity == SEVERITY_ERROR

    def test_dict_comprehension_over_set_call_flagged(self):
        body = "d = {p: 1 for p in set(payload)}"
        diags = lint_source(contract_with(body))
        assert "DET003" in codes(diags)

    def test_generator_expression_over_set_flagged(self):
        body = "total = sum(1 for p in {'a', 'b'})"
        diags = lint_source(contract_with(body))
        assert "DET003" in codes(diags)

    def test_nested_generator_over_set_flagged(self):
        body = "pairs = [(a, b) for a in payload.get('xs', []) for b in {'l', 'r'}]"
        diags = lint_source(contract_with(body))
        assert "DET003" in codes(diags)

    def test_sorted_set_comprehension_is_fine(self):
        body = "names = [p for p in sorted({'a', 'b'})]"
        diags = lint_source(contract_with(body))
        assert "DET003" not in codes(diags)

    def test_set_comprehension_over_list_is_fine(self):
        # Building a set is deterministic; only *iterating* one isn't.
        body = "s = {p for p in payload.get('names', [])}"
        diags = lint_source(contract_with(body))
        assert "DET003" not in codes(diags)


class TestDetRulesInNestedConstructs:
    """The visitor must reach code hidden inside walrus expressions and
    nested function definitions."""

    def test_walrus_random_flagged(self):
        body = "if (r := random.random()) > 0.5:\n    ctx.view.put('k', r)"
        diags = lint_source(contract_with(body))
        assert "DET001" in codes(diags)

    def test_walrus_plain_assignment_is_fine(self):
        body = "if (n := payload.get('n', 0)) > 0:\n    ctx.view.put('k', n)"
        diags = lint_source(contract_with(body))
        assert diags == []

    def test_nested_function_wall_clock_flagged(self):
        body = (
            "def stamp():\n"
            "    return time.time()\n"
            "ctx.view.put('k', stamp())"
        )
        diags = lint_source(contract_with(body))
        assert "DET002" in codes(diags)

    def test_nested_function_set_loop_flagged(self):
        body = (
            "def fanout():\n"
            "    for p in {'a', 'b'}:\n"
            "        ctx.view.put(p, 1)\n"
            "fanout()"
        )
        diags = lint_source(contract_with(body))
        det3 = [d for d in diags if d.code == "DET003"]
        assert det3 and det3[0].severity == SEVERITY_ERROR

    def test_lambda_with_hash_builtin_flagged(self):
        body = "key = (lambda v: hash(v))(ctx.creator)"
        diags = lint_source(contract_with(body))
        assert "DET001" in codes(diags)


# ----------------------------------------------------------------------
# DET004 — I/O


class TestDet004Io:
    def test_open_is_error(self):
        diags = lint_source(contract_with("data = open('f').read()"))
        det4 = [d for d in diags if d.code == "DET004"]
        assert det4 and det4[0].severity == SEVERITY_ERROR

    def test_print_is_warning(self):
        diags = lint_source(contract_with("print('debug')"))
        det4 = [d for d in diags if d.code == "DET004"]
        assert det4 and det4[0].severity == SEVERITY_WARNING

    def test_socket_call_is_error(self):
        diags = lint_source(contract_with("s = socket.socket()"))
        assert "DET004" in codes(diags)


# ----------------------------------------------------------------------
# DET005 — cross-invocation state


class TestDet005SharedState:
    def test_global_statement_flagged(self):
        body = "global counter\ncounter = 1"
        diags = lint_source(contract_with(body))
        assert "DET005" in codes(diags)

    def test_class_attribute_assignment_flagged(self):
        diags = lint_source(contract_with("FixtureContract.cache = payload"))
        assert "DET005" in codes(diags)

    def test_self_mutation_in_handler_is_warning(self):
        diags = lint_source(contract_with("self.last_seen = ctx.creator"))
        det5 = [d for d in diags if d.code == "DET005"]
        assert det5 and det5[0].severity == SEVERITY_WARNING

    def test_self_assignment_in_init_is_fine(self):
        source = (
            "class FixtureContract:\n"
            "    def __init__(self):\n"
            "        self.split_kvs = True\n"
        )
        assert lint_source(source) == []


# ----------------------------------------------------------------------
# DET006 — float accumulation


class TestDet006FloatAccumulation:
    def test_float_augassign_in_loop_is_warning(self):
        body = "total = 0.0\nfor v in payload.get('vals', []):\n    total += 0.1"
        diags = lint_source(contract_with(body))
        det6 = [d for d in diags if d.code == "DET006"]
        assert det6 and det6[0].severity == SEVERITY_WARNING

    def test_integer_accumulation_is_fine(self):
        body = "total = 0\nfor v in payload.get('vals', []):\n    total += 1"
        diags = lint_source(contract_with(body))
        assert "DET006" not in codes(diags)


# ----------------------------------------------------------------------
# DET007 — imports


class TestDet007Imports:
    def test_import_random_flagged(self):
        diags = lint_source("import random\n")
        assert "DET007" in codes(diags)

    def test_from_time_import_flagged(self):
        diags = lint_source("from time import time\n")
        assert "DET007" in codes(diags)

    def test_repro_imports_fine(self):
        diags = lint_source("from repro.blockchain.contracts import Contract\n")
        assert diags == []

    def test_math_import_fine(self):
        assert lint_source("import math\n") == []


# ----------------------------------------------------------------------
# gate semantics + shipped contracts


class TestGate:
    def test_strict_fails_on_warnings(self):
        diags = lint_source(contract_with("print('x')"))
        assert gate(diags, strict=True) and not gate(diags, strict=False)

    def test_errors_always_fail(self):
        diags = lint_source(contract_with("ctx.view.put('k', random.random())"))
        assert gate(diags, strict=False)


class TestShippedContracts:
    def test_doom_contract_is_clean_in_strict_mode(self):
        assert gate(lint_contract(DoomContract), strict=True) == []

    def test_monopoly_contract_is_clean_in_strict_mode(self):
        assert gate(lint_contract(MonopolyContract), strict=True) == []


# ----------------------------------------------------------------------
# codegen compile gate


HAZARDOUS_SOURCE = '''
from repro.blockchain.contracts import Contract, ContractError
import random


class RiggedContract(Contract):
    name = "rigged"

    def invoke(self, ctx, function, args):
        ctx.view.put("dice", random.randint(1, 6))
'''


class TestCompileGate:
    def test_hazardous_source_rejected(self):
        with pytest.raises(StaticCheckError) as excinfo:
            compile_contract_source(HAZARDOUS_SOURCE)
        assert any(d.code in ("DET001", "DET007") for d in excinfo.value.diagnostics)

    def test_escape_hatch_compiles_anyway(self):
        cls = compile_contract_source(HAZARDOUS_SOURCE, strict=None)
        assert cls.__name__ == "RiggedContract"

    def test_escape_hatch_counts_waived_findings(self):
        from repro.staticcheck.metrics import REGISTRY

        def counter_value(mode):
            return sum(
                m.value
                for m in REGISTRY.collect()
                if m.name == "staticcheck_waivers_total"
                and ("mode", mode) in m.labels
            )

        before = counter_value("gate-skipped")
        compile_contract_source(HAZARDOUS_SOURCE, strict=None)
        assert counter_value("gate-skipped") > before

        # strict=False waives warnings only (print is a DET004 warning)
        noisy = HAZARDOUS_SOURCE.replace(
            "ctx.view.put(\"dice\", random.randint(1, 6))", "print('x')"
        ).replace("import random\n", "")
        before = counter_value("no-strict")
        compile_contract_source(noisy, strict=False)
        assert counter_value("no-strict") > before

    def test_strict_compile_does_not_touch_the_counter(self):
        from repro.core.codegen import generate_contract_source
        from repro.core.doomspec import doom_spec
        from repro.staticcheck.metrics import REGISTRY

        def total():
            return sum(
                m.value
                for m in REGISTRY.collect()
                if m.name == "staticcheck_waivers_total"
            )

        before = total()
        compile_contract_source(generate_contract_source(doom_spec()))
        assert total() == before

    def test_clean_generated_source_passes(self):
        from repro.core.codegen import generate_contract_source
        from repro.core.doomspec import doom_spec

        cls = compile_contract_source(generate_contract_source(doom_spec()))
        assert cls.name == "doom"
