"""Routing properties: stable crc32 sharding and the session router.

The router is the only thing standing between "session events go to the
right shard" and silent cross-shard state corruption, so its mapping
must be (a) deterministic across runs/platforms (crc32, never salted
``hash()``), (b) reasonably uniform so no shard becomes the hot spot,
and (c) session-colocating: every key of one session lands on one shard.
"""

import zlib

from repro.blockchain import ShardedDeployment, TxValidationCode
from repro.blockchain.sharding import session_shard_key, shard_index_for_key
from repro.blockchain.swaps import ShardAssetContract, session_key
from repro.core import ShardRouter
from repro.simnet import LAN_1GBPS


class TestShardIndexForKey:
    def test_matches_crc32_exactly(self):
        # Pin the function, not just its distribution: routing must be
        # crc32 (RFC 1950) so every platform and run agrees.
        for key in ("sess/g00042", "asset/sword", "", "üñí☃", "a" * 500):
            for n in (1, 2, 7, 64):
                expected = zlib.crc32(key.encode("utf-8")) % n
                assert shard_index_for_key(key, n) == expected

    def test_deterministic_across_calls(self):
        keys = [f"sess/g{i:05d}" for i in range(200)]
        first = [shard_index_for_key(k, 8) for k in keys]
        second = [shard_index_for_key(k, 8) for k in keys]
        assert first == second

    def test_uniformity_within_20_percent(self):
        # 10k synthetic session keys over 8 shards: each bucket within
        # ±20% of the ideal 1250.
        n_keys, n_shards = 10_000, 8
        counts = [0] * n_shards
        for i in range(n_keys):
            counts[shard_index_for_key(session_shard_key(f"g{i:05d}"), n_shards)] += 1
        ideal = n_keys / n_shards
        for shard, count in enumerate(counts):
            assert abs(count - ideal) <= 0.2 * ideal, (
                f"shard {shard} got {count}, ideal {ideal}"
            )

    def test_rejects_zero_shards(self):
        import pytest

        with pytest.raises(ValueError):
            shard_index_for_key("k", 0)


class TestSessionColocation:
    def test_all_keys_of_a_session_share_a_shard(self):
        deployment = ShardedDeployment(8, 4, profile=LAN_1GBPS, seed=3)
        for sid in (f"g{i:04d}" for i in range(50)):
            home = deployment.shard_index_for_session(sid)
            for pid in ("p0", "p1", "p99"):
                key = session_key(sid, pid)
                # Player keys share the session prefix, so prefix-routing
                # must put them on the session's shard.
                assert key.startswith(session_shard_key(sid) + "/")
                assert deployment.shard_index_for_key(session_shard_key(sid)) == home


class TestShardRouter:
    def make(self, n_shards=2):
        deployment = ShardedDeployment(
            n_peers=4 * n_shards, n_shards=n_shards, profile=LAN_1GBPS, seed=5
        )
        deployment.install_contract(ShardAssetContract)
        return deployment, ShardRouter(deployment)

    def test_routes_to_owning_shard_and_commits(self):
        deployment, router = self.make()
        codes = []
        targets = []
        for i in range(12):
            sid = f"g{i:02d}"
            shard_index, _tx = router.submit_session_event(
                sid, "p0", 1, on_complete=lambda r, _l: codes.append(r.code)
            )
            assert shard_index == deployment.shard_index_for_session(sid)
            targets.append((sid, shard_index))
        deployment.run_until_idle()
        assert codes == [TxValidationCode.VALID] * 12
        for sid, shard_index in targets:
            # The event's write is on its shard, and only there.
            key = session_key(sid, "p0")
            assert deployment.committed_state_get(shard_index, key) == 1
            for other in range(deployment.n_shards):
                if other != shard_index:
                    assert deployment.committed_state_get(other, key) is None

    def test_per_shard_submission_counters(self):
        deployment, router = self.make(n_shards=3)
        for i in range(30):
            router.submit_session_event(f"g{i:02d}", "p0", 1)
        assert sum(router.submitted_by_shard) == 30
        expected = [0, 0, 0]
        for i in range(30):
            expected[deployment.shard_index_for_session(f"g{i:02d}")] += 1
        assert router.submitted_by_shard == expected
