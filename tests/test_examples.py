"""Smoke tests: every example script runs cleanly end-to-end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_examples_directory_has_at_least_three():
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"


def test_quickstart_reports_prevention():
    script = next(p for p in EXAMPLES if p.name == "quickstart.py")
    result = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True, timeout=180
    )
    assert "PREVENTED" in result.stdout
