"""Integration tests: session lifecycle and cheat prevention (§7.2.2)."""

import pytest

from repro.blockchain import TxValidationCode
from repro.core import (
    CheatInjector,
    DOOM_CHEATS,
    PROTOCOL_CHEATS,
    GameSession,
    SessionError,
    relevant_cheats,
)
from repro.game import AssetId, asset_key
from repro.simnet import LAN_1GBPS


@pytest.fixture(scope="module")
def lan_session():
    session = GameSession(n_peers=4, profile=LAN_1GBPS, n_players=4, seed=3)
    session.setup()
    return session


class TestLifecycle:
    def test_setup_joins_all_players(self, lan_session):
        roster = lan_session.chain.peers[0].ledger.state.get("game/roster")
        assert roster == [shim.player for shim in lan_session.shims]

    def test_setup_twice_rejected(self, lan_session):
        with pytest.raises(SessionError):
            lan_session.setup()

    def test_replay_before_setup_rejected(self):
        session = GameSession(n_peers=2, profile=LAN_1GBPS, n_players=1)
        from repro.game import generate_session

        demo = generate_session("x", 1000.0)
        with pytest.raises(SessionError):
            session.play_demo(demo)

    def test_teardown_closes_shims(self):
        session = GameSession(n_peers=2, profile=LAN_1GBPS, n_players=1)
        session.setup()
        session.teardown()
        assert session.ended
        from repro.game import EventType, GameEvent

        with pytest.raises(SessionError):
            session.inject_event(
                GameEvent(0.0, session.shims[0].player, EventType.SHOOT, {}, 1)
            )

    def test_anonymity_directory_covers_all_players(self, lan_session):
        directory = lan_session.network.directory
        assert len(directory) == 4
        for shim in lan_session.shims:
            player_id = directory.player_for(shim.identity.certificate.subject)
            assert directory.subject_for(player_id) == shim.identity.certificate.subject


class TestCheatTaxonomy:
    def test_fifteen_built_in_cheats(self):
        assert len(DOOM_CHEATS) == 15

    def test_ten_relevant_five_client_only(self):
        assert len(relevant_cheats()) == 10
        client_only = [c for c in DOOM_CHEATS if not c.relevant]
        assert len(client_only) == 5
        assert all(c.injector is None for c in client_only)

    def test_client_only_cheat_cannot_be_injected(self, lan_session):
        injector = CheatInjector(lan_session)
        automap = next(c for c in DOOM_CHEATS if c.code == "IDBEHOLDA")
        with pytest.raises(ValueError):
            injector.run(automap)


class TestCheatPrevention:
    """Every relevant built-in cheat must be prevented, within the
    paper's 34 ms LAN bound (§7.2.2)."""

    @pytest.fixture(scope="class")
    def results(self):
        session = GameSession(n_peers=4, profile=LAN_1GBPS, n_players=4, seed=7)
        session.setup()
        injector = CheatInjector(session)
        return session, injector.run_all_relevant()

    def test_all_relevant_cheats_prevented(self, results):
        _, outcomes = results
        assert len(outcomes) == 10
        failed = [r.cheat.code for r in outcomes if not r.prevented]
        assert failed == []

    def test_prevention_latency_within_lan_bound(self, results):
        _, outcomes = results
        for outcome in outcomes:
            assert outcome.prevention_latency_ms is not None
            assert outcome.prevention_latency_ms < 34.0, outcome.cheat.code

    def test_cheats_left_no_state_damage(self, results):
        session, _ = results
        state = session.chain.peers[0].ledger.state
        cheater = session.shims[0].player
        # Ammo untouched, no weapons gained, no power-ups active.
        assert state.get(asset_key(cheater, AssetId.AMMUNITION)) == 50
        weapon = state.get(asset_key(cheater, AssetId.WEAPON))
        assert set(weapon["owned"]) == {0, 2}
        assert state.get(asset_key(cheater, AssetId.RADIATION_SUIT)) == 0.0
        assert state.get(asset_key(cheater, AssetId.BERSERK)) == 0.0

    def test_ledgers_stay_consistent(self, results):
        session, _ = results
        assert session.ledgers_agree()


class TestProtocolCheats:
    def test_replay_attack_prevented(self):
        session = GameSession(n_peers=4, profile=LAN_1GBPS, n_players=1, seed=9)
        session.setup()
        injector = CheatInjector(session)
        replay = next(c for c in PROTOCOL_CHEATS if c.code == "REPLAY")
        outcome = injector.run(replay)
        assert outcome.prevented
        assert outcome.validation_code == TxValidationCode.DUPLICATE_NONCE

    def test_spoofing_prevented(self):
        session = GameSession(n_peers=4, profile=LAN_1GBPS, n_players=1, seed=10)
        session.setup()
        injector = CheatInjector(session)
        spoof = next(c for c in PROTOCOL_CHEATS if c.code == "SPOOF")
        outcome = injector.run(spoof)
        assert outcome.prevented
        assert outcome.validation_code == TxValidationCode.BAD_SIGNATURE
