"""Tests for the demo format and the calibrated trace generator."""

import io

import pytest

from repro.game import (
    Category,
    Demo,
    EventType,
    GameEvent,
    TraceProfile,
    generate_session,
    load_demo,
    paper_dataset,
    save_demo,
    scale_tickrate,
    ten_longest,
)


@pytest.fixture(scope="module")
def session():
    return generate_session("test", duration_ms=120_000.0, seed=7)


@pytest.fixture(scope="module")
def dataset():
    return paper_dataset(count=25)


class TestGenerator:
    def test_deterministic(self):
        a = generate_session("x", 30_000.0, seed=1)
        b = generate_session("x", 30_000.0, seed=1)
        assert [e.to_dict() for e in a] == [e.to_dict() for e in b]

    def test_seed_changes_output(self):
        a = generate_session("x", 30_000.0, seed=1)
        b = generate_session("x", 30_000.0, seed=2)
        assert [e.to_dict() for e in a] != [e.to_dict() for e in b]

    def test_events_time_ordered_with_increasing_seq_timestamps(self, session):
        times = [e.t_ms for e in session]
        assert times == sorted(times)
        assert all(0 <= t <= 120_000.0 for t in times)

    def test_location_dominates(self, session):
        assert session.category_share(Category.LOCATION) > 0.90

    def test_location_max_frequency_is_tickrate(self, session):
        # Stable 35/s plateaus while moving (Fig. 3a).
        assert session.max_frequency(Category.LOCATION) == 35

    def test_shoot_events_present_and_bursty(self):
        demo = generate_session("fights", 600_000.0, seed=3)
        shoot = demo.max_frequency(Category.SHOOT)
        assert shoot >= 5  # bursts well above the sparse background

    def test_movement_respects_speed_limit(self, session):
        from repro.game import DoomRules

        prev = None
        for event in session:
            if event.etype != EventType.LOCATION:
                continue
            if prev is not None:
                dt = event.t_ms - prev.t_ms
                if 0 < dt <= 2000.0:
                    import math

                    dist = math.hypot(
                        event.payload["x"] - prev.payload["x"],
                        event.payload["y"] - prev.payload["y"],
                    )
                    assert dist <= DoomRules.MAX_SPEED_PER_MS * max(
                        dt, DoomRules.TICK_MS
                    ) + 1e-6
            prev = event

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            generate_session("x", 0.0)

    def test_profile_overrides(self):
        quiet = generate_session(
            "quiet", 60_000.0, seed=1,
            profile=TraceProfile(fight_probability=0.0, pickups_per_minute=0.0,
                                 weapon_changes_per_minute=0.0),
        )
        counts = quiet.category_counts()
        assert counts.get(Category.SHOOT, 0) == 0
        assert counts.get(Category.WEAPON, 0) == 0


class TestPaperDataset:
    def test_25_sessions(self, dataset):
        assert len(dataset) == 25

    def test_over_six_hours_total(self, dataset):
        hours = sum(d.duration_ms for d in dataset) / 3.6e6
        assert 5.5 <= hours <= 7.0

    def test_around_350k_events(self, dataset):
        total = sum(len(d) for d in dataset)
        assert 300_000 <= total <= 420_000

    def test_session_9_is_longest_24min_25k_events(self, dataset):
        longest = max(dataset, key=lambda d: d.duration_ms)
        assert longest.session_id == "#9"
        assert 22.0 <= longest.duration_minutes <= 24.5
        assert 20_000 <= len(longest) <= 30_000

    def test_session_9_location_share_matches_paper(self, dataset):
        longest = max(dataset, key=lambda d: d.duration_ms)
        # Paper: location updates accounted for ~99.3% of total events;
        # the synthetic generator lands at ~98% (see EXPERIMENTS.md).
        assert longest.category_share(Category.LOCATION) >= 0.97

    def test_ten_longest_sorted(self, dataset):
        top = ten_longest(dataset)
        assert len(top) == 10
        durations = [d.duration_ms for d in top]
        assert durations == sorted(durations, reverse=True)
        assert top[0].session_id == "#9"

    def test_count_bounds(self):
        with pytest.raises(ValueError):
            paper_dataset(count=0)
        with pytest.raises(ValueError):
            paper_dataset(count=26)


class TestDemoIO:
    def test_save_load_roundtrip(self, session):
        buf = io.StringIO()
        save_demo(session, buf)
        buf.seek(0)
        loaded = load_demo(buf)
        assert loaded.session_id == session.session_id
        assert len(loaded) == len(session)
        assert loaded.events[10].to_dict() == session.events[10].to_dict()

    def test_truncated_file_detected(self, session):
        buf = io.StringIO()
        save_demo(session, buf)
        lines = buf.getvalue().splitlines()[: len(session) // 2]
        with pytest.raises(ValueError):
            load_demo(io.StringIO("\n".join(lines) + "\n"))

    def test_empty_file_rejected(self):
        with pytest.raises(ValueError):
            load_demo(io.StringIO(""))

    def test_demo_sorts_unordered_events(self):
        events = [
            GameEvent(200.0, "p1", EventType.LOCATION, {"x": 1, "y": 1}, 2),
            GameEvent(100.0, "p1", EventType.LOCATION, {"x": 0, "y": 0}, 1),
        ]
        demo = Demo("unordered", events)
        assert [e.t_ms for e in demo] == [100.0, 200.0]

    def test_slice_prefix(self, session):
        head = session.slice(10_000.0)
        assert head.duration_ms <= 10_000.0
        assert len(head) < len(session)


class TestTickrateScaling:
    def test_scaling_increases_location_rate(self, session):
        fast = scale_tickrate(session, 90)
        assert fast.max_frequency(Category.LOCATION) > 80
        assert fast.tickrate == 90

    def test_non_location_events_preserved(self, session):
        fast = scale_tickrate(session, 60)
        orig = {
            k: v for k, v in session.category_counts().items() if k != "location"
        }
        scaled = {
            k: v for k, v in fast.category_counts().items() if k != "location"
        }
        assert orig == scaled

    def test_same_rate_is_identity(self, session):
        assert scale_tickrate(session, 35) is session

    def test_downscale_rejected(self, session):
        with pytest.raises(ValueError):
            scale_tickrate(session, 30)
