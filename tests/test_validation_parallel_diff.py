"""Differential layer: parallel block validation is bit-identical to serial.

``FabricConfig.parallel_validation`` must be a pure host-side switch —
the paper's consensus scheme rests on every honest peer deriving the
identical validation outcome, so the lane-parallel executor (and the
cross-peer execution cache and the batched signature pass riding with
it) is required to reproduce the serial executor's results *exactly*.

Every test here replays the same seeded scenario once per executor mode
and compares full fingerprints: ledger chain hashes, per-block
validation codes, world-state hashes, scheduler event counts, shim
accept/reject tallies, and (for the instrumented replays) the complete
telemetry span list.  Any divergence, however small, is a determinism
bug in the executor, not a tolerable perf artefact.
"""

from __future__ import annotations

import pytest

from repro.blockchain import (
    FabricConfig,
    clear_execution_cache,
    execution_stats,
    reset_execution_stats,
)
from repro.chaos.runner import run_scenario
from repro.core import GameSession
from repro.perf.workloads import _session9_prefix
from repro.telemetry import Telemetry


# ----------------------------------------------------------------------
# fingerprint helpers


def _ledger_fingerprint(chain) -> list:
    """Per-peer ledger digest: chain head, state hash, per-block tx codes.

    Codes are read back from each peer's own tx index (``tx_status``)
    rather than ``block.validation_codes`` — block objects are shared
    between in-process peers, so the attribute only reflects the last
    appender.
    """
    out = []
    for peer in chain.peers:
        ledger = peer.ledger
        codes = []
        for number in range(1, ledger.height):  # skip genesis
            block = ledger.block(number)
            codes.append(
                [ledger.tx_status(tx.tx_id)[0] for tx in block.transactions]
            )
        out.append(
            {
                "peer": peer.name,
                "height": ledger.height,
                "head": ledger.last_hash,
                "state": ledger.state_hash(),
                "codes": codes,
            }
        )
    return out


def _span_fingerprint(telemetry) -> list:
    return [
        (s.trace_id, s.stage, s.host, round(s.t_start, 6), round(s.t_end, 6))
        for s in telemetry.tracer.spans
    ]


def _replay_fingerprint(
    n_peers: int,
    n_events: int,
    executor: str,
    workers: int = 0,
    shared_cache: bool = True,
    with_telemetry: bool = False,
) -> dict:
    """Replay a session-#9 prefix and fingerprint everything observable."""
    clear_execution_cache()
    demo = _session9_prefix(n_events)
    config = FabricConfig(
        max_block_txs=5,
        mutually_exclusive_blocks=True,
        parallel_validation=(executor == "parallel"),
        validation_workers=workers,
        shared_execution_cache=shared_cache,
    )
    session = GameSession(n_peers=n_peers, fabric_config=config, seed=7)
    telemetry = Telemetry() if with_telemetry else None
    if telemetry is not None:
        telemetry.instrument_session(session)
    session.setup()
    session.play_demo(demo)
    session.run_until_idle()
    stats = session.stats()
    fingerprint = {
        "accepted": stats.accepted_events,
        "rejected": stats.rejected_events,
        "latencies": [round(x, 6) for x in stats.latencies_ms],
        "sim_now": round(session.now, 6),
        "scheduler_events": session.scheduler.events_processed,
        "ledgers_agree": session.ledgers_agree(),
        "ledgers": _ledger_fingerprint(session.chain),
    }
    if telemetry is not None:
        fingerprint["spans"] = _span_fingerprint(telemetry)
    return fingerprint


def _assert_same(serial: dict, parallel: dict) -> None:
    # Key-by-key first for a readable failure, then the full dict.
    for key in serial:
        assert parallel[key] == serial[key], f"fingerprint field {key!r} diverged"
    assert parallel == serial


# ----------------------------------------------------------------------
# seeded replays, 4/16/32 peers


@pytest.mark.parametrize(
    "n_peers,n_events",
    [(4, 300), (16, 200), (32, 150)],
    ids=["4p", "16p", "32p"],
)
def test_replay_bit_identical(n_peers: int, n_events: int) -> None:
    serial = _replay_fingerprint(n_peers, n_events, "serial", with_telemetry=True)
    parallel = _replay_fingerprint(n_peers, n_events, "parallel", with_telemetry=True)
    _assert_same(serial, parallel)
    assert serial["accepted"] + serial["rejected"] > 0  # the replay did work


def test_replay_identical_with_worker_pool() -> None:
    serial = _replay_fingerprint(4, 200, "serial")
    pooled = _replay_fingerprint(4, 200, "parallel", workers=2)
    _assert_same(serial, pooled)


def test_replay_identical_without_shared_cache() -> None:
    serial = _replay_fingerprint(4, 200, "serial", shared_cache=False)
    parallel = _replay_fingerprint(4, 200, "parallel", shared_cache=False)
    _assert_same(serial, parallel)
    # And disabling the cache must not change results either.
    cached = _replay_fingerprint(4, 200, "serial", shared_cache=True)
    _assert_same(serial, cached)


# ----------------------------------------------------------------------
# chaos-fault schedule


def _chaos_record(config: FabricConfig) -> dict:
    clear_execution_cache()
    res = run_scenario("churn-partition-ddos", seed=7, config=config)
    return {
        "timeline": res.timeline,
        "faults_applied": res.faults_applied,
        "violations": [[v.at_ms, v.invariant, v.peer] for v in res.violations],
        "workload_summary": res.workload_summary,
        "probe_codes": res.probe_codes,
        "submitted": res.submitted,
        "committed_height": res.committed_height,
        "network_stats": res.network_stats,
    }


def test_chaos_schedule_bit_identical() -> None:
    serial = _chaos_record(FabricConfig())
    parallel = _chaos_record(FabricConfig(parallel_validation=True))
    for key in serial:
        assert parallel[key] == serial[key], f"chaos record field {key!r} diverged"
    assert serial["violations"] == []


# ----------------------------------------------------------------------
# burst traffic: multi-transaction blocks that actually exercise lanes


def _burst_ledgers(parallel: bool, workers: int = 0) -> tuple:
    """Replay the same demo through *every* player shim at once.

    Four creators moving simultaneously plus a long batch timeout give
    the orderer multi-transaction blocks whose ``location`` events are
    pairwise SAME_PLAYER-independent, so the planner emits real
    multi-lane plans and the parallel executor takes the lane path
    (seeded single-shim replays stay single-tx-per-block and never do).
    """
    clear_execution_cache()
    reset_execution_stats()
    demo = _session9_prefix(150)
    config = FabricConfig(
        max_block_txs=8,
        batch_timeout_ms=120.0,
        parallel_validation=parallel,
        validation_workers=workers,
        conflict_planner=True,
    )
    session = GameSession(n_peers=4, fabric_config=config, seed=7)
    session.setup()
    for shim in session.shims:
        session.play_demo(demo, shim=shim)
    session.run_until_idle()
    fingerprint = {
        "ledgers": _ledger_fingerprint(session.chain),
        "ledgers_agree": session.ledgers_agree(),
        "scheduler_events": session.scheduler.events_processed,
        "shims": [
            (shim.stats.accepted_events, shim.stats.rejected_events)
            for shim in session.shims
        ],
    }
    return fingerprint, execution_stats()


def test_burst_blocks_exercise_lanes_and_match() -> None:
    serial_fp, serial_stats = _burst_ledgers(parallel=False)
    parallel_fp, stats = _burst_ledgers(parallel=True)
    assert parallel_fp == serial_fp
    assert stats["lane_blocks"] > 0, "burst blocks never took the lane path"
    assert serial_stats["lane_blocks"] == 0  # serial mode never lanes
    assert serial_fp["ledgers_agree"]


def test_burst_blocks_with_pool_match() -> None:
    serial_fp, _ = _burst_ledgers(parallel=False)
    pooled_fp, stats = _burst_ledgers(parallel=True, workers=3)
    assert pooled_fp == serial_fp
    assert stats["lane_blocks"] > 0
