"""Tests for the hand-written Doom contract (developer logic layer)."""

import pytest

from repro.blockchain import TxValidationCode
from repro.core import DoomContract
from repro.game import AssetId, DoomMap, EventType, WeaponId, asset_key

from conftest import ContractHarness

VALID = TxValidationCode.VALID
REJECTED = TxValidationCode.CONTRACT_REJECTED


@pytest.fixture()
def game_map():
    return DoomMap.default_map()


@pytest.fixture()
def harness(game_map):
    h = ContractHarness(DoomContract(game_map=game_map))
    h.ok("addPlayer", creator="p1")
    h.ok("addPlayer", creator="p2")
    h.ok("startGame", creator="p1")
    return h


def player_asset(harness, player, aid):
    return harness.state.get(asset_key(player, aid))


def place_player_at(harness, player, x, y, t=0.0):
    """Teleport a player for test setup (writes state directly)."""
    from repro.blockchain import Version

    harness.state.put(
        asset_key(player, AssetId.POSITION), {"x": x, "y": y, "t": t}, Version(99, 0)
    )


class TestLifecycle:
    def test_add_player_assigns_spawn_by_roster_position(self, harness, game_map):
        p1 = player_asset(harness, "p1", AssetId.POSITION)
        p2 = player_asset(harness, "p2", AssetId.POSITION)
        assert (p1["x"], p1["y"]) == game_map.spawn_points[0]
        assert (p2["x"], p2["y"]) == game_map.spawn_points[1]

    def test_fifth_player_rejected(self, harness):
        harness.ok("addPlayer", creator="p3")
        harness.ok("addPlayer", creator="p4")
        code, _ = harness.call("addPlayer", creator="p5")
        assert code == REJECTED

    def test_event_before_start_rejected(self, game_map):
        h = ContractHarness(DoomContract(game_map=game_map))
        h.ok("addPlayer", creator="p1")
        code, _ = h.call(EventType.SHOOT, {"count": 1}, creator="p1")
        assert code == REJECTED


class TestShootAndWeapons:
    def test_shoot_spends_ammo(self, harness):
        harness.ok(EventType.SHOOT, {"count": 3}, creator="p1")
        assert player_asset(harness, "p1", AssetId.AMMUNITION) == 47

    def test_batched_shoot_spends_total(self, harness):
        harness.ok(EventType.SHOOT, {"count": 50}, creator="p1")
        code, _ = harness.call(EventType.SHOOT, {"count": 1}, creator="p1")
        assert code == REJECTED

    def test_weapon_change_to_unowned_rejected(self, harness):
        code, _ = harness.call(
            EventType.WEAPON_CHANGE, {"wid": WeaponId.BFG9000}, creator="p1"
        )
        assert code == REJECTED

    def test_weapon_change_to_owned(self, harness):
        harness.ok(EventType.WEAPON_CHANGE, {"wid": WeaponId.FIST}, creator="p1")
        assert player_asset(harness, "p1", AssetId.WEAPON)["current"] == WeaponId.FIST


class TestDamage:
    def test_self_reported_damage(self, harness):
        harness.ok(EventType.DAMAGE, {"amount": 30, "t": 10.0}, creator="p1")
        assert player_asset(harness, "p1", AssetId.HEALTH)["hp"] == 70

    def test_damage_to_target(self, harness):
        harness.ok(
            EventType.DAMAGE, {"amount": 20, "target": "p2", "t": 10.0}, creator="p1"
        )
        assert player_asset(harness, "p2", AssetId.HEALTH)["hp"] == 80

    def test_damage_to_stranger_rejected(self, harness):
        code, _ = harness.call(
            EventType.DAMAGE, {"amount": 20, "target": "mallory"}, creator="p1"
        )
        assert code == REJECTED

    def test_negative_damage_rejected(self, harness):
        code, _ = harness.call(EventType.DAMAGE, {"amount": -5}, creator="p1")
        assert code == REJECTED


class TestMovement:
    def test_legal_move_updates_position(self, harness, game_map):
        spawn = game_map.spawn_points[0]
        harness.ok(
            EventType.LOCATION,
            {"x": spawn[0] + 20.0, "y": spawn[1], "t": 28.6},
            creator="p1",
        )
        assert player_asset(harness, "p1", AssetId.POSITION)["x"] == spawn[0] + 20.0

    def test_teleport_rejected(self, harness, game_map):
        spawn = game_map.spawn_points[0]
        code, _ = harness.call(
            EventType.LOCATION,
            {"x": spawn[0] + 2000.0, "y": spawn[1], "t": 28.6},
            creator="p1",
        )
        assert code == REJECTED


class TestPickups:
    def test_pickup_requires_item_binding_when_strict(self, harness):
        code, _ = harness.call(EventType.PICKUP_CLIP, {"t": 1.0}, creator="p1")
        assert code == REJECTED

    def test_lenient_mode_allows_unbound_pickup(self, game_map):
        h = ContractHarness(DoomContract(game_map=game_map, strict_pickups=False))
        h.ok("addPlayer", creator="p1")
        h.ok("startGame", creator="p1")
        h.ok(EventType.PICKUP_CLIP, {"t": 1.0}, creator="p1")
        assert h.state.get(asset_key("p1", AssetId.AMMUNITION)) == 60

    def test_nearby_pickup_accepted(self, harness, game_map):
        item = game_map.items_of_kind("medkit")[0]
        place_player_at(harness, "p1", item.x + 5.0, item.y, t=100.0)
        harness.ok(EventType.DAMAGE, {"amount": 50, "t": 100.0}, creator="p1")
        harness.ok(
            EventType.PICKUP_MEDKIT, {"item_id": item.item_id, "t": 100.0},
            creator="p1",
        )
        assert player_asset(harness, "p1", AssetId.HEALTH)["hp"] == 75

    def test_far_pickup_rejected(self, harness, game_map):
        item = max(
            game_map.items_of_kind("medkit"),
            key=lambda i: abs(i.x - game_map.spawn_points[0][0])
            + abs(i.y - game_map.spawn_points[0][1]),
        )
        code, _ = harness.call(
            EventType.PICKUP_MEDKIT, {"item_id": item.item_id, "t": 10.0},
            creator="p1",
        )
        assert code == REJECTED

    def test_wrong_item_kind_rejected(self, harness, game_map):
        item = game_map.items_of_kind("clip")[0]
        place_player_at(harness, "p1", item.x, item.y, t=5.0)
        code, _ = harness.call(
            EventType.PICKUP_MEDKIT, {"item_id": item.item_id, "t": 5.0},
            creator="p1",
        )
        assert code == REJECTED

    def test_respawn_window_enforced(self, harness, game_map):
        item = game_map.items_of_kind("clip")[0]
        place_player_at(harness, "p1", item.x, item.y, t=5.0)
        harness.ok(
            EventType.PICKUP_CLIP, {"item_id": item.item_id, "t": 5.0}, creator="p1"
        )
        code, _ = harness.call(
            EventType.PICKUP_CLIP, {"item_id": item.item_id, "t": 10_000.0},
            creator="p1",
        )
        assert code == REJECTED
        harness.ok(
            EventType.PICKUP_CLIP,
            {"item_id": item.item_id, "t": 5.0 + 31_000.0},
            creator="p1",
        )

    def test_weapon_pickup_grants_weapon_and_ammo(self, harness, game_map):
        item = game_map.items_of_kind(f"weapon:{WeaponId.SHOTGUN}")[0]
        place_player_at(harness, "p1", item.x, item.y, t=5.0)
        harness.ok(
            EventType.PICKUP_WEAPON,
            {"wid": WeaponId.SHOTGUN, "item_id": item.item_id, "t": 5.0},
            creator="p1",
        )
        weapon = player_asset(harness, "p1", AssetId.WEAPON)
        assert weapon["current"] == WeaponId.SHOTGUN
        assert player_asset(harness, "p1", AssetId.AMMUNITION) == 70

    def test_invuln_pickup_blocks_subsequent_damage(self, harness, game_map):
        item = game_map.items_of_kind("invuln")[0]
        place_player_at(harness, "p1", item.x, item.y, t=5.0)
        harness.ok(
            EventType.PICKUP_INVULN, {"item_id": item.item_id, "t": 5.0},
            creator="p1",
        )
        harness.ok(EventType.DAMAGE, {"amount": 90, "t": 100.0}, creator="p1")
        assert player_asset(harness, "p1", AssetId.HEALTH)["hp"] == 100

    def test_berserk_heals(self, harness, game_map):
        item = game_map.items_of_kind("berserk")[0]
        harness.ok(EventType.DAMAGE, {"amount": 60, "t": 1.0}, creator="p1")
        place_player_at(harness, "p1", item.x, item.y, t=5.0)
        harness.ok(
            EventType.PICKUP_BERSERK, {"item_id": item.item_id, "t": 5.0},
            creator="p1",
        )
        assert player_asset(harness, "p1", AssetId.HEALTH)["hp"] == 100
        assert player_asset(harness, "p1", AssetId.BERSERK) > 0


class TestMonolithicLayout:
    def test_monolithic_layout_equivalent_logic(self, game_map):
        h = ContractHarness(DoomContract(game_map=game_map, split_kvs=False))
        h.ok("addPlayer", creator="p1")
        h.ok("startGame", creator="p1")
        h.ok(EventType.SHOOT, {"count": 5}, creator="p1")
        record = h.state.get("player/p1")
        assert record[str(AssetId.AMMUNITION)] == 45
