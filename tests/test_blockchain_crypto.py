"""Unit tests for hashing, Merkle trees, RSA keys and certificates."""

import pytest

from repro.blockchain import (
    CertificateAuthority,
    MembershipProvider,
    canonical_digest,
    generate_keypair,
    merkle_root,
    sha256_hex,
)


class TestHashing:
    def test_sha256_known_vector(self):
        assert sha256_hex("abc") == (
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    def test_str_and_bytes_agree(self):
        assert sha256_hex("abc") == sha256_hex(b"abc")

    def test_canonical_digest_key_order_invariant(self):
        assert canonical_digest({"a": 1, "b": 2}) == canonical_digest({"b": 2, "a": 1})

    def test_canonical_digest_differs_on_value(self):
        assert canonical_digest({"a": 1}) != canonical_digest({"a": 2})

    def test_merkle_root_empty(self):
        assert merkle_root([]) == sha256_hex(b"")

    def test_merkle_root_order_sensitive(self):
        assert merkle_root(["a", "b"]) != merkle_root(["b", "a"])

    def test_merkle_root_odd_leaf_count(self):
        # Odd levels duplicate the last node; must not raise and must be
        # distinct from the even-sized prefix.
        assert merkle_root(["a", "b", "c"]) != merkle_root(["a", "b"])

    def test_merkle_root_deterministic(self):
        leaves = [f"leaf{i}" for i in range(7)]
        assert merkle_root(leaves) == merkle_root(list(leaves))


class TestRSA:
    def test_sign_verify_roundtrip(self):
        kp = generate_keypair("alice")
        sig = kp.sign("attack at dawn")
        assert kp.verify("attack at dawn", sig)

    def test_verify_rejects_tampered_message(self):
        kp = generate_keypair("alice")
        sig = kp.sign("attack at dawn")
        assert not kp.verify("attack at dusk", sig)

    def test_verify_rejects_other_key(self):
        alice, bob = generate_keypair("alice"), generate_keypair("bob")
        sig = alice.sign("hello")
        assert not bob.verify("hello", sig)

    def test_deterministic_from_seed(self):
        assert generate_keypair("s1").public == generate_keypair("s1").public
        assert generate_keypair("s1").public != generate_keypair("s2").public

    def test_verify_rejects_garbage_signature(self):
        kp = generate_keypair("alice")
        assert not kp.verify("hello", 12345)
        assert not kp.verify("hello", 0)
        assert not kp.verify("hello", kp.public.n + 1)

    def test_fingerprint_stable_and_distinct(self):
        a, b = generate_keypair("a"), generate_keypair("b")
        assert a.public.fingerprint() == a.public.fingerprint()
        assert a.public.fingerprint() != b.public.fingerprint()

    def test_key_size_floor(self):
        with pytest.raises(ValueError):
            generate_keypair("x", bits=32)

    def test_public_key_serialization_roundtrip(self):
        from repro.blockchain import PublicKey

        pk = generate_keypair("ser").public
        assert PublicKey.from_dict(pk.to_dict()) == pk


class TestCertificates:
    def test_enroll_and_verify(self):
        ca = CertificateAuthority()
        identity = ca.enroll("peer0")
        assert ca.verify(identity.certificate)

    def test_duplicate_enrollment_rejected(self):
        ca = CertificateAuthority()
        ca.enroll("peer0")
        with pytest.raises(ValueError):
            ca.enroll("peer0")

    def test_msp_validates_trusted_ca(self):
        ca = CertificateAuthority()
        msp = MembershipProvider()
        msp.trust_ca(ca)
        cert = ca.enroll("peer0").certificate
        assert msp.validate(cert)

    def test_msp_rejects_untrusted_issuer(self):
        good, evil = CertificateAuthority("good"), CertificateAuthority("evil", seed=9)
        msp = MembershipProvider()
        msp.trust_ca(good)
        assert not msp.validate(evil.enroll("mallory").certificate)

    def test_msp_rejects_forged_subject(self):
        import dataclasses

        ca = CertificateAuthority()
        msp = MembershipProvider()
        msp.trust_ca(ca)
        cert = ca.enroll("peer0").certificate
        forged = dataclasses.replace(cert, subject="admin")
        assert not msp.validate(forged)

    def test_msp_verify_signature_end_to_end(self):
        ca = CertificateAuthority()
        msp = MembershipProvider()
        msp.trust_ca(ca)
        identity = ca.enroll("peer0")
        sig = identity.sign("payload")
        assert msp.verify_signature(identity.certificate, "payload", sig)
        assert not msp.verify_signature(identity.certificate, "other", sig)

    def test_serial_numbers_increase(self):
        ca = CertificateAuthority()
        c1 = ca.enroll("a").certificate
        c2 = ca.enroll("b").certificate
        assert c2.serial > c1.serial
