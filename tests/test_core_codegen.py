"""Tests for the smart-contract code generator."""

import pytest

from repro.blockchain import TxValidationCode
from repro.core import (
    doom_spec,
    generate_contract,
    generate_contract_source,
    parse_spec,
)

from conftest import ContractHarness
from test_core_spec import MINIMAL


@pytest.fixture(scope="module")
def doom_cls():
    return generate_contract(doom_spec())


def make_harness(cls=None, split_kvs=True, spec=None):
    if cls is None:
        cls = generate_contract(spec or doom_spec(), split_kvs=split_kvs)
    return ContractHarness(cls())


class TestGeneration:
    def test_source_is_valid_python(self):
        source = generate_contract_source(doom_spec())
        compile(source, "<test>", "exec")

    def test_source_mentions_every_event(self):
        source = generate_contract_source(doom_spec())
        for event in doom_spec().events.values():
            assert f"on_{event.name.lower()}" in source

    def test_class_name_override(self):
        cls = generate_contract(doom_spec(), class_name="CustomName")
        assert cls.__name__ == "CustomName"

    def test_contract_lists_public_apis(self, doom_cls):
        functions = doom_cls().functions()
        assert "addPlayer" in functions
        assert "startGame" in functions
        assert "Shoot" in functions
        assert len(functions) == 13  # 11 events + 2 lifecycle APIs


class TestLifecycle:
    def test_add_player_initialises_assets(self):
        harness = make_harness()
        harness.ok("addPlayer", creator="alice")
        assert harness.state.get("game/roster") == ["alice"]
        assert harness.state.get("asset/alice/1") == 100.0  # Health default
        assert harness.state.get("asset/alice/2") == 50.0  # Ammunition

    def test_double_join_rejected(self):
        harness = make_harness()
        harness.ok("addPlayer", creator="alice")
        code, _ = harness.call("addPlayer", creator="alice")
        assert code == TxValidationCode.CONTRACT_REJECTED

    def test_room_capacity_enforced(self):
        harness = make_harness()
        for i in range(4):
            harness.ok("addPlayer", creator=f"p{i}")
        code, _ = harness.call("addPlayer", creator="p5")
        assert code == TxValidationCode.CONTRACT_REJECTED

    def test_events_require_started_game(self):
        harness = make_harness()
        harness.ok("addPlayer", creator="alice")
        code, _ = harness.call("Shoot", creator="alice")
        assert code == TxValidationCode.CONTRACT_REJECTED
        harness.ok("startGame", creator="alice")
        harness.ok("Shoot", creator="alice")

    def test_start_requires_players(self):
        harness = make_harness()
        code, _ = harness.call("startGame", creator="alice")
        assert code == TxValidationCode.CONTRACT_REJECTED

    def test_unknown_function_rejected(self):
        harness = make_harness()
        code, _ = harness.call("fireTheLasers", creator="alice")
        assert code == TxValidationCode.CONTRACT_REJECTED


class TestConstraintEngine:
    def _started(self, **kwargs):
        harness = make_harness(**kwargs)
        harness.ok("addPlayer", creator="alice")
        harness.ok("startGame", creator="alice")
        return harness

    def test_shoot_decrements_ammo(self):
        harness = self._started()
        harness.ok("Shoot", creator="alice")
        assert harness.state.get("asset/alice/2") == 49.0

    def test_ammo_cannot_go_negative(self):
        """The generated bound check alone prevents the unlimited-ammo
        cheat: the 51st shot from a 50-round magazine is rejected."""
        harness = self._started()
        for _ in range(50):
            harness.ok("Shoot", creator="alice")
        code, _ = harness.call("Shoot", creator="alice")
        assert code == TxValidationCode.CONTRACT_REJECTED
        assert harness.state.get("asset/alice/2") == 0.0

    def test_medkit_heals_within_cap(self):
        harness = self._started()
        for _ in range(4):
            harness.ok("Damage", creator="alice")  # -1 per Fig. 1 power 0
        harness.ok("PickupMedkit", creator="alice")
        assert harness.state.get("asset/alice/1") == 121.0

    def test_health_cap_enforced(self):
        harness = self._started()
        for _ in range(4):
            harness.ok("PickupMedkit", creator="alice")
        code, _ = harness.call("PickupMedkit", creator="alice")
        assert code == TxValidationCode.CONTRACT_REJECTED

    def test_multiplicative_power(self):
        spec = parse_spec(MINIMAL)
        harness = make_harness(spec=spec)
        harness.ok("addPlayer", creator="alice")
        harness.ok("startGame", creator="alice")
        harness.ok("Boost", creator="alice")
        assert harness.state.get("asset/alice/1") == 200.0

    def test_star_pid_requires_target(self):
        spec = parse_spec(MINIMAL)
        harness = make_harness(spec=spec)
        harness.ok("addPlayer", creator="alice")
        harness.ok("addPlayer", creator="bob")
        harness.ok("startGame", creator="alice")
        code, _ = harness.call("Hit", creator="alice")
        assert code == TxValidationCode.CONTRACT_REJECTED
        harness.ok("Hit", {"target": "bob"}, creator="alice")
        assert harness.state.get("asset/bob/1") == 90.0

    def test_uninitialised_player_rejected(self):
        harness = self._started()
        code, _ = harness.call("Shoot", creator="mallory")
        assert code == TxValidationCode.CONTRACT_REJECTED


class TestKVSLayouts:
    def test_split_layout_uses_per_asset_keys(self):
        harness = make_harness(split_kvs=True)
        harness.ok("addPlayer", creator="alice")
        assert "asset/alice/1" in harness.state
        assert "player/alice" not in harness.state

    def test_monolithic_layout_uses_single_key(self):
        harness = make_harness(split_kvs=False)
        harness.ok("addPlayer", creator="alice")
        assert "player/alice" in harness.state
        assert "asset/alice/1" not in harness.state

    def test_layouts_apply_identical_logic(self):
        split = make_harness(split_kvs=True)
        mono = make_harness(split_kvs=False)
        for harness in (split, mono):
            harness.ok("addPlayer", creator="alice")
            harness.ok("startGame", creator="alice")
            for _ in range(3):
                harness.ok("Shoot", creator="alice")
        assert split.state.get("asset/alice/2") == 47.0
        assert mono.state.get("player/alice")["2"] == 47.0

    def test_split_layout_touches_disjoint_keys(self):
        """The point of §6 opt. i: a shoot and a damage touch different
        keys under the split layout but the same key monolithically."""
        split = make_harness(split_kvs=True)
        split.ok("addPlayer", creator="alice")
        split.ok("startGame", creator="alice")
        shoot_keys = set(split.ok("Shoot", creator="alice").write_keys())
        damage_keys = set(split.ok("Damage", creator="alice").write_keys())
        shoot_keys = {k for k in shoot_keys if not k.startswith("~nonce")}
        damage_keys = {k for k in damage_keys if not k.startswith("~nonce")}
        assert shoot_keys.isdisjoint(damage_keys)

        mono = make_harness(split_kvs=False)
        mono.ok("addPlayer", creator="alice")
        mono.ok("startGame", creator="alice")
        shoot_keys = set(mono.ok("Shoot", creator="alice").write_keys())
        damage_keys = set(mono.ok("Damage", creator="alice").write_keys())
        assert "player/alice" in shoot_keys & damage_keys


class TestReplayDefence:
    def test_duplicate_nonce_rejected_by_boilerplate(self):
        harness = make_harness()
        harness.ok("addPlayer", creator="alice")
        harness.ok("startGame", creator="alice")
        code1, _ = harness.call("Shoot", creator="alice", nonce="fixed")
        code2, _ = harness.call("Shoot", creator="alice", nonce="fixed")
        assert code1 == TxValidationCode.VALID
        assert code2 == TxValidationCode.DUPLICATE_NONCE
