"""Property-based tests: Doom rules, spec/codegen, RNG and the enclave."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blockchain import FabricConfig
from repro.core import generate_contract, parse_spec
from repro.enclave import SecureEnclave, with_enclave
from repro.game import DoomMap, DoomRules, RuleViolation, WeaponId
from repro.rng import Participant, distributed_random


class TestDoomRuleProperties:
    @given(st.integers(0, 200), st.integers(0, 200), st.integers(0, 500))
    def test_damage_conserves_bounds(self, hp, armor, amount):
        health, new_armor, _ = DoomRules.apply_damage(
            {"hp": hp, "invuln_until": 0.0}, armor, amount, t_ms=0.0
        )
        assert 0 <= health["hp"] <= hp
        assert 0 <= new_armor <= armor
        # Armour soaks at most a third of the hit.
        soaked = armor - new_armor
        assert soaked <= amount // DoomRules.ARMOR_ABSORB
        # Total absorbed never exceeds the damage dealt.
        assert (hp - health["hp"]) + soaked <= amount

    @given(st.integers(0, 400), st.integers(1, 100))
    def test_shoot_never_negative(self, ammo, count):
        weapon = {"current": WeaponId.PISTOL, "owned": [WeaponId.PISTOL]}
        try:
            remaining = DoomRules.validate_shoot(weapon, ammo, count)
        except RuleViolation:
            assert count > ammo
        else:
            assert remaining == ammo - count
            assert remaining >= 0

    @given(st.integers(0, 400), st.integers(0, 500))
    def test_add_ammo_caps(self, ammo, amount):
        assert 0 <= DoomRules.add_ammo(ammo, amount) <= 400

    @given(
        st.floats(0.0, 4096.0), st.floats(0.0, 4096.0),
        st.floats(0.0, 4096.0), st.floats(0.0, 4096.0),
        st.floats(0.1, 5000.0),
    )
    def test_move_validation_matches_speed_bound(self, x0, y0, x1, y1, dt):
        game_map = DoomMap.default_map()
        pos = {"x": x0, "y": y0, "t": 0.0}
        dist = math.hypot(x1 - x0, y1 - y0)
        allowed = DoomRules.MAX_SPEED_PER_MS * max(dt, DoomRules.TICK_MS)
        try:
            DoomRules.validate_move(pos, x1, y1, dt, game_map)
        except RuleViolation:
            assert dist > allowed
        else:
            assert dist <= allowed + 1e-9


class TestSpecCodegenProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(1, 5),  # number of assets
        st.integers(1, 4),  # number of events
        st.data(),
    )
    def test_generated_contracts_apply_powers_exactly(self, n_assets, n_events, data):
        """For any small random spec, the generated contract's handlers
        apply exactly the specified power arithmetic (within bounds)."""
        assets_xml, events_xml = [], []
        factors = {}
        for aid in range(1, n_assets + 1):
            factor = data.draw(st.integers(-5, 5))
            factors[aid] = factor
            assets_xml.append(
                f'<Asset aId="{aid}" value="100" name="A{aid}">'
                f'<power pwId="0" change="+" factor="{factor}" /></Asset>'
            )
        for eid in range(1, n_events + 1):
            target_aid = data.draw(st.integers(1, n_assets))
            events_xml.append(
                f'<Event eId="{eid}" name="E{eid}">'
                f'<affects pId="self" aId="{target_aid}" pwId="0" /></Event>'
            )
        xml = (
            '<GameSpec name="Prop"><Assets>' + "".join(assets_xml) + "</Assets>"
            "<Players><player pId=\"1\">P</player></Players>"
            "<Events>" + "".join(events_xml) + "</Events></GameSpec>"
        )
        spec = parse_spec(xml)
        contract_cls = generate_contract(spec)

        from conftest import ContractHarness

        harness = ContractHarness(contract_cls())
        harness.ok("addPlayer", creator="p")
        harness.ok("startGame", creator="p")
        expected = {aid: 100.0 for aid in factors}
        for eid in range(1, n_events + 1):
            event = spec.events[eid]
            aid = event.affects[0].aid
            new_value = expected[aid] + factors[aid]
            code, _ = harness.call(f"E{eid}", creator="p")
            if new_value < 0:
                assert code == "CONTRACT_REJECTED"
            else:
                assert code == "VALID"
                expected[aid] = new_value
        for aid, value in expected.items():
            assert harness.state.get(f"asset/p/{aid}") == value


class TestRngProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 6), st.integers(0, 1000))
    def test_any_single_seed_change_changes_output(self, n, seed):
        base = [Participant(f"p{i}", seed=seed) for i in range(n)]
        flipped = [
            Participant(f"p{i}", seed=seed if i else seed + 1) for i in range(n)
        ]
        v1, _ = distributed_random(base)
        v2, _ = distributed_random(flipped)
        assert v1 != v2

    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 6), st.integers(0, 50), st.data())
    def test_cheater_contribution_fully_excluded(self, n, seed, data):
        honest = [Participant(f"p{i}", seed=seed) for i in range(n)]
        bias = data.draw(st.integers(0, 2**32))
        liar = Participant("liar", seed=seed, bias_value=bias)
        with_liar, cheaters = distributed_random(honest + [liar])
        without, _ = distributed_random(
            [Participant(f"p{i}", seed=seed) for i in range(n)]
        )
        assert cheaters == ["liar"]
        assert with_liar == without


class TestEnclaveProperties:
    @given(st.floats(0.0, 1.0), st.floats(0.0, 2.0))
    def test_overhead_scaling_monotone(self, overhead, crypto):
        base = FabricConfig()
        scaled = with_enclave(base, overhead=overhead, crypto_ms=crypto)
        assert scaled.exec_ms_per_tx >= base.exec_ms_per_tx
        assert scaled.vote_verify_ms >= base.vote_verify_ms
        assert scaled.commit_ms_per_tx >= base.commit_ms_per_tx

    @given(
        st.lists(
            st.dictionaries(st.text(max_size=5), st.integers(-100, 100), max_size=4),
            min_size=1, max_size=8,
        )
    )
    def test_only_latest_seal_unseals(self, states):
        enclave = SecureEnclave("prop")
        blobs = [enclave.seal(state) for state in states]
        assert enclave.unseal(blobs[-1]) == states[-1]
        for stale in blobs[:-1]:
            import pytest

            from repro.enclave import RollbackError

            with pytest.raises(RollbackError):
                enclave.unseal(stale)


class TestDemoFormatProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.integers(0, 3))
    def test_save_load_roundtrip_any_session(self, duration_s, seed):
        import io

        from repro.game import generate_session, load_demo, save_demo

        demo = generate_session(
            f"prop{seed}", duration_ms=max(1.0, duration_s * 10.0), seed=seed
        )
        buffer = io.StringIO()
        save_demo(demo, buffer)
        buffer.seek(0)
        loaded = load_demo(buffer)
        assert len(loaded) == len(demo)
        assert [e.to_dict() for e in loaded] == [e.to_dict() for e in demo]
        assert loaded.game_map is not None
        assert len(loaded.game_map.items) == len(demo.game_map.items)

    @settings(max_examples=10, deadline=None)
    @given(st.sampled_from([45, 60, 90, 144]))
    def test_scaled_tickrate_hits_target_rate(self, tickrate):
        from repro.game import Category, generate_session, scale_tickrate

        demo = generate_session("scaleprop", duration_ms=90_000.0, seed=4)
        scaled = scale_tickrate(demo, tickrate)
        peak = scaled.max_frequency(Category.LOCATION)
        assert tickrate * 0.85 <= peak <= tickrate * 1.1
