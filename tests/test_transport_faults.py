"""Transport-level fault hooks: injector callback, stats counters and
partition/heal stats events (PR satellite for ``simnet.transport``)."""

from repro.simnet import LAN_1GBPS, Host, Network, Region


class Recorder(Host):
    def __init__(self, name, region=Region.LAN):
        super().__init__(name, region)
        self.received = []

    def handle_message(self, src, payload):
        self.received.append((self.network.now, src.name, payload))


def make_net(n=3, seed=0):
    net = Network(profile=LAN_1GBPS, seed=seed)
    hosts = [net.register(Recorder(f"h{i}")) for i in range(n)]
    return net, hosts


class TestFaultInjectorHook:
    def test_empty_times_drops_message(self):
        net, (a, b, _) = make_net()
        net.fault_injector = lambda msg, deliver_at: []
        a.send(b, "gone")
        net.run_until_idle()
        assert b.received == []
        assert net.stats.messages_dropped_fault == 1
        assert net.stats.messages_dropped == 1

    def test_multiple_times_duplicate_message(self):
        net, (a, b, _) = make_net()
        net.fault_injector = lambda msg, deliver_at: [deliver_at, deliver_at + 5.0]
        a.send(b, "twice")
        net.run_until_idle()
        assert [p for (_, _, p) in b.received] == ["twice", "twice"]
        assert net.stats.messages_duplicated == 1
        assert net.stats.messages_delivered == 2

    def test_later_time_delays_message(self):
        net, (a, b, _) = make_net()
        a.send(b, "baseline")
        net.run_until_idle()
        base = b.received[0][0]

        net2, (a2, b2, _) = make_net()
        net2.fault_injector = lambda msg, deliver_at: [deliver_at + 50.0]
        a2.send(b2, "late")
        net2.run_until_idle()
        assert b2.received[0][0] >= base + 50.0
        assert net2.stats.messages_delayed_fault == 1

    def test_injected_delay_counts_reorder(self):
        net, (a, b, _) = make_net()
        first = [True]

        def delay_first(msg, deliver_at):
            if first[0]:
                first[0] = False
                return [deliver_at + 50.0]
            return [deliver_at]

        net.fault_injector = delay_first
        a.send(b, "one")  # delayed past "two"
        net.run(until=1.0)  # "two" is sent strictly later than "one"
        a.send(b, "two")
        net.run_until_idle()
        assert [p for (_, _, p) in b.received] == ["two", "one"]
        assert net.stats.messages_reordered == 1

    def test_no_injector_means_no_fault_counters(self):
        net, (a, b, _) = make_net()
        a.send(b, "clean")
        net.run_until_idle()
        assert net.stats.messages_dropped_fault == 0
        assert net.stats.messages_duplicated == 0
        assert net.stats.messages_delayed_fault == 0


class TestPartitionStats:
    def test_partition_and_heal_emit_stats_events(self):
        net, (a, b, c) = make_net()
        events = []
        net.on_stats_event = lambda kind, detail: events.append((kind, detail))
        net.partition(["h0"], ["h1", "h2"])
        net.heal()
        kinds = [k for k, _ in events]
        assert kinds == ["partition", "heal"]
        assert events[0][1]["groups"] == [["h0"], ["h1", "h2"]]
        assert net.stats.partitions_started == 1
        assert net.stats.partitions_healed == 1

    def test_cross_partition_sends_counted_as_partition_drops(self):
        net, (a, b, c) = make_net()
        net.partition(["h0"], ["h1", "h2"])
        a.send(b, "blocked")
        b.send(c, "same-side")
        net.run_until_idle()
        assert b.received == []
        assert len(c.received) == 1
        assert net.stats.messages_dropped_partition == 1
        net.heal()
        a.send(b, "open-again")
        net.run_until_idle()
        assert len(b.received) == 1
        assert net.stats.messages_dropped_partition == 1

    def test_stats_as_dict_has_all_counters(self):
        net, (a, b, _) = make_net()
        a.send(b, "x")
        net.run_until_idle()
        d = net.stats.as_dict()
        for key in (
            "messages_sent",
            "messages_delivered",
            "messages_dropped",
            "messages_dropped_partition",
            "messages_dropped_fault",
            "messages_duplicated",
            "messages_delayed_fault",
            "messages_reordered",
            "partitions_started",
            "partitions_healed",
        ):
            assert key in d
        assert d["messages_sent"] == 1
