"""The repo's own gate: every shipped contract must pass the static
analyzer in strict mode, and the CLI must agree (tier-1)."""

import json
import os
import subprocess
import sys

import pytest

from repro.core import DoomContract, MonopolyContract
from repro.core.codegen import generate_contract_source
from repro.core.doomspec import doom_spec
from repro.staticcheck import analyze_contract, analyze_source

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")

ALL_CONTRACTS = [DoomContract, MonopolyContract]


@pytest.mark.parametrize("cls", ALL_CONTRACTS, ids=lambda c: c.__name__)
def test_registered_contract_passes_strict_gate(cls):
    report = analyze_contract(cls, strict=True)
    assert report.ok, [str(d) for d in report.failures()]
    assert report.footprints, "expected at least one handler footprint"


def test_generated_doom_source_passes_strict_gate():
    report = analyze_source(generate_contract_source(doom_spec()))
    assert report.ok, [str(d) for d in report.failures()]
    assert "addPlayer" in report.footprints


@pytest.mark.parametrize("cls", ALL_CONTRACTS, ids=lambda c: c.__name__)
def test_report_renders_and_serializes(cls):
    report = analyze_contract(cls)
    rendered = report.render()
    assert "Verdict: PASS" in rendered
    blob = report.to_json()
    assert blob["ok"] is True and blob["contract"] == cls.__name__


# ----------------------------------------------------------------------
# CLI


def run_cli(*argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.staticcheck", *argv],
        capture_output=True,
        text=True,
        env=env,
    )


class TestCli:
    def test_doom_contract_exits_zero_in_strict_mode(self):
        proc = run_cli("repro.core.doom_contract:DoomContract")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "Verdict: PASS" in proc.stdout

    def test_json_report_has_per_event_footprints(self):
        proc = run_cli("repro.core.doom_contract:DoomContract", "--json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        blob = json.loads(proc.stdout)
        assert blob["ok"] is True
        assert "location" in blob["footprints"]
        fp = blob["footprints"]["location"]
        assert fp["reads"] and fp["writes"]

    def test_monopoly_contract_exits_zero(self):
        proc = run_cli("repro.core.monopoly_contract:MonopolyContract")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_hazardous_contract_exits_one(self, tmp_path):
        (tmp_path / "hazmod.py").write_text(
            "import random\n"
            "class HazardContract:\n"
            "    name = 'haz'\n"
            "    def on_roll(self, ctx, payload):\n"
            "        ctx.view.put('dice', random.randint(1, 6))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(tmp_path) + os.pathsep + SRC + os.pathsep + env.get("PYTHONPATH", "")
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro.staticcheck", "hazmod:HazardContract"],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 1
        assert "DET" in proc.stdout

    def test_usage_error_exits_two(self):
        proc = run_cli("not-a-target")
        assert proc.returncode == 2
