"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.simnet import Scheduler, SimulationError


def test_starts_at_zero():
    assert Scheduler().now == 0.0


def test_call_after_advances_clock():
    sched = Scheduler()
    fired = []
    sched.call_after(10.0, fired.append, "a")
    sched.run()
    assert fired == ["a"]
    assert sched.now == 10.0


def test_events_fire_in_time_order():
    sched = Scheduler()
    fired = []
    sched.call_after(30.0, fired.append, 3)
    sched.call_after(10.0, fired.append, 1)
    sched.call_after(20.0, fired.append, 2)
    sched.run()
    assert fired == [1, 2, 3]


def test_same_time_events_fire_fifo():
    sched = Scheduler()
    fired = []
    for i in range(10):
        sched.call_after(5.0, fired.append, i)
    sched.run()
    assert fired == list(range(10))


def test_cancel_prevents_firing():
    sched = Scheduler()
    fired = []
    timer = sched.call_after(5.0, fired.append, "x")
    timer.cancel()
    sched.run()
    assert fired == []
    assert timer.cancelled and not timer.fired


def test_cancel_is_idempotent():
    sched = Scheduler()
    timer = sched.call_after(5.0, lambda: None)
    timer.cancel()
    timer.cancel()
    assert timer.cancelled


def test_cannot_schedule_in_the_past():
    sched = Scheduler()
    sched.call_after(10.0, lambda: None)
    sched.run()
    with pytest.raises(SimulationError):
        sched.call_at(5.0, lambda: None)


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Scheduler().call_after(-1.0, lambda: None)


def test_run_until_stops_before_later_events():
    sched = Scheduler()
    fired = []
    sched.call_after(10.0, fired.append, "early")
    sched.call_after(100.0, fired.append, "late")
    sched.run(until=50.0)
    assert fired == ["early"]
    assert sched.now == 50.0
    sched.run()
    assert fired == ["early", "late"]


def test_run_until_advances_clock_even_with_empty_queue():
    sched = Scheduler()
    sched.run(until=42.0)
    assert sched.now == 42.0


def test_events_scheduled_during_run_are_processed():
    sched = Scheduler()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sched.call_after(1.0, chain, n + 1)

    sched.call_after(1.0, chain, 0)
    sched.run()
    assert fired == [0, 1, 2, 3]
    assert sched.now == 4.0


def test_step_returns_false_on_empty_queue():
    assert Scheduler().step() is False


def test_run_until_idle_backstop():
    sched = Scheduler()

    def forever():
        sched.call_after(1.0, forever)

    sched.call_after(1.0, forever)
    with pytest.raises(SimulationError):
        sched.run_until_idle(max_events=100)


def test_pending_excludes_cancelled():
    sched = Scheduler()
    t1 = sched.call_after(1.0, lambda: None)
    sched.call_after(2.0, lambda: None)
    t1.cancel()
    assert sched.pending == 1


def test_events_processed_counter():
    sched = Scheduler()
    for _ in range(5):
        sched.call_after(1.0, lambda: None)
    sched.run()
    assert sched.events_processed == 5


def test_timer_active_lifecycle():
    sched = Scheduler()
    timer = sched.call_after(1.0, lambda: None)
    assert timer.active
    sched.run()
    assert timer.fired and not timer.active
