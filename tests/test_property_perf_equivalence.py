"""Property tests: the hot-path optimisations are *invisible*.

The incremental bucketed state hash, the copy-on-write ``copy()``, the
overlay view and the digest/signature memos must all be pure
optimisations — every observable value equals what the unoptimised
computation produces.  These tests drive each mechanism with
hypothesis-generated operation sequences and compare against a
from-scratch recomputation.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blockchain.crypto import canonical_digest, generate_keypair, sha256_hex
from repro.blockchain.state import (
    STATE_HASH_BUCKETS,
    Version,
    WorldState,
    _bucket_of,
    _entry_digest,
)

# ----------------------------------------------------------------------
# operation sequences over the world state

_KEYS = st.sampled_from(
    [f"asset/p{i}/{j}" for i in range(4) for j in range(3)]
    + [f"player/p{i}" for i in range(4)]
    + ["~nonce/p0/n1", "ctr/a", "ctr/b"]
)

_VALUES = st.one_of(
    st.integers(-1000, 1000),
    st.text(max_size=8),
    st.fixed_dictionaries({"hp": st.integers(0, 200)}),
    st.none(),
)

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("put"), _KEYS, _VALUES, st.integers(0, 50), st.integers(0, 4)),
        st.tuples(st.just("delete"), _KEYS),
    ),
    max_size=60,
)


def _apply(state: WorldState, ops) -> None:
    for op in ops:
        if op[0] == "put":
            _, key, value, block, tx = op
            state.put(key, value, Version(block, tx))
        else:
            state.delete(op[1])


def _hash_from_scratch(state: WorldState) -> str:
    """Recompute the bucketed digest with no incremental machinery."""
    buckets = [{} for _ in range(STATE_HASH_BUCKETS)]
    for key, entry in state.items():
        buckets[_bucket_of(key)][key] = _entry_digest(key, entry)
    digests = []
    for bucket in buckets:
        if bucket:
            digests.append(sha256_hex("\x00".join(bucket[k] for k in sorted(bucket))))
        else:
            digests.append("")
    return sha256_hex("\x01".join(digests))


@settings(max_examples=60, deadline=None)
@given(ops=_OPS)
def test_incremental_hash_matches_from_scratch(ops):
    """After any put/delete sequence (with interleaved hash calls), the
    incremental root equals a full from-scratch recomputation."""
    state = WorldState()
    for i, op in enumerate(ops):
        _apply(state, [op])
        if i % 7 == 0:  # interleave: dirty-set bookkeeping must survive
            state.state_hash()
    assert state.state_hash() == _hash_from_scratch(state)


@settings(max_examples=40, deadline=None)
@given(ops=_OPS, more=_OPS)
def test_hash_is_content_defined_not_history_defined(ops, more):
    """Two states holding identical content hash identically, no matter
    how they got there (different op orders, deletes, COW copies)."""
    a = WorldState()
    _apply(a, ops)
    _apply(a, more)
    b = WorldState()
    _apply(b, ops + more)
    # replay into a fresh state from the final content only
    c = WorldState()
    for key, entry in a.items():
        c.put(key, entry.value, entry.version)
    assert a.state_hash() == b.state_hash() == c.state_hash()


@settings(max_examples=40, deadline=None)
@given(ops=_OPS, ours=_OPS, theirs=_OPS)
def test_cow_copy_is_fully_independent(ops, ours, theirs):
    """Mutating either side of a copy() never leaks into the other, and
    both sides' hashes stay correct."""
    base = WorldState()
    _apply(base, ops)
    base_hash = base.state_hash()
    clone = base.copy()
    assert clone.state_hash() == base_hash
    _apply(clone, theirs)
    assert base.state_hash() == base_hash  # clone writes invisible
    _apply(base, ours)
    assert base.state_hash() == _hash_from_scratch(base)
    assert clone.state_hash() == _hash_from_scratch(clone)


@settings(max_examples=40, deadline=None)
@given(ops=_OPS, local=_OPS)
def test_overlay_commit_equals_direct_application(ops, local):
    """overlay() + commit_to_base() is equivalent to applying the same
    writes directly, and discard() leaves no trace."""
    direct = WorldState()
    _apply(direct, ops)
    overlaid = WorldState()
    _apply(overlaid, ops)

    probe = overlaid.overlay()
    _apply(probe, local)  # overlay has the same put/delete API
    probe.discard()
    assert overlaid.state_hash() == direct.state_hash()

    view = overlaid.overlay()
    _apply(view, local)
    _apply(direct, local)
    view.commit_to_base()
    assert overlaid.state_hash() == direct.state_hash()
    assert overlaid.snapshot() == direct.snapshot()


def test_overlay_speculative_reads_keep_committed_versions():
    """put_speculative overlays the value but readers observe the base's
    committed version — Fabric's execution-stage semantics."""
    state = WorldState()
    state.put("k", 1, Version(3, 0))
    view = state.overlay()
    view.put_speculative("k", 2)
    view.put_speculative("fresh", 9)
    assert view.get("k") == 2
    assert view.version_of("k") == Version(3, 0)
    assert view.get("fresh") == 9
    assert view.version_of("fresh") is None
    assert state.get("k") == 1  # base untouched


# ----------------------------------------------------------------------
# digest / signature memoisation

@settings(max_examples=30, deadline=None)
@given(
    payload=st.recursive(
        st.one_of(st.integers(), st.text(max_size=6), st.booleans(), st.none()),
        lambda children: st.one_of(
            st.lists(children, max_size=3),
            st.dictionaries(st.text(max_size=4), children, max_size=3),
        ),
        max_leaves=8,
    )
)
def test_canonical_digest_deterministic_on_native_types(payload):
    assert canonical_digest(payload) == canonical_digest(payload)


def test_canonical_digest_rejects_non_native_types():
    import pytest

    class Weird:
        def __str__(self):
            return "weird"

    with pytest.raises(TypeError):
        canonical_digest({"x": Weird()})
    with pytest.raises(TypeError):
        canonical_digest(object())


def test_signature_memo_matches_uncached():
    kp = generate_keypair("perf-eq-test")
    sig = kp.sign("hello")
    for message, signature in [("hello", sig), ("tampered", sig), ("hello", sig + 1)]:
        assert kp.public.verify(message, signature) == kp.public.verify_uncached(
            message, signature
        )
        # second call hits the memo; verdict must be stable
        assert kp.public.verify(message, signature) == kp.public.verify_uncached(
            message, signature
        )


def test_digest_memo_matches_fresh_and_detects_tampering():
    from repro.blockchain.block import make_block
    from repro.blockchain.identity import CertificateAuthority
    from repro.blockchain.transaction import Proposal, Transaction

    ca = CertificateAuthority(seed=77)
    identity = ca.enroll("prover")
    proposal = Proposal(
        tx_id="t1",
        contract="c",
        function="f",
        args=(1, "a"),
        nonce="n1",
        creator="prover",
        timestamp=1.0,
    )
    tx = Transaction(
        proposal=proposal,
        certificate=identity.certificate,
        signature=identity.sign(proposal.digest()),
    )
    block = make_block(1, "0" * 64, [tx], timestamp=2.0)

    # memoised == fresh on untouched objects
    assert proposal.digest() == proposal.digest(fresh=True)
    assert tx.digest() == tx.digest(fresh=True)
    assert block.digest() == block.digest(fresh=True)
    assert block.data_digest() == block.data_digest(fresh=True)
    assert identity.certificate.tbs() == identity.certificate.tbs(fresh=True)

    # the fresh path sees in-place tampering the memo (by design) misses
    memo_before = proposal.digest()
    object.__setattr__(proposal, "args", ("cheat",))
    assert proposal.digest() == memo_before
    assert proposal.digest(fresh=True) != memo_before
