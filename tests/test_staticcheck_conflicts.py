"""Conflict predictor: static pairwise verdicts, checked against the
real ledger's MVCC behaviour when the predicted pairs are batched into
one block."""

import pytest

from repro.blockchain import (
    CertificateAuthority,
    Proposal,
    Transaction,
)
from repro.blockchain.block import make_block, make_genesis_block
from repro.blockchain.contracts import execute_transaction
from repro.blockchain.ledger import Ledger, TxExecution
from repro.core import DoomContract
from repro.game.events import EventType
from repro.staticcheck import ConflictLevel, infer_footprints, predict_conflicts


@pytest.fixture(scope="module")
def matrix():
    return predict_conflicts(infer_footprints(DoomContract))


# ----------------------------------------------------------------------
# static verdicts


class TestPredictedLevels:
    def test_shoot_vs_shoot_same_player_only(self, matrix):
        # Two shots write the shooter's own ammo key — the paper's §6
        # "two successive bullets" example.  Distinct players write
        # distinct asset/{player}/2 keys, so cross-player is fine.
        assert matrix.level(EventType.SHOOT, EventType.SHOOT) == ConflictLevel.SAME_PLAYER

    def test_location_vs_shoot_conflict_free(self, matrix):
        # position (aid 6) vs weapon/ammo (aids 3, 2): disjoint keys.
        assert matrix.level(EventType.LOCATION, EventType.SHOOT) == ConflictLevel.NONE

    def test_location_vs_location_same_player_only(self, matrix):
        assert matrix.level(EventType.LOCATION, EventType.LOCATION) == ConflictLevel.SAME_PLAYER

    def test_damage_is_always_against_same_asset_handlers(self, matrix):
        # damage writes asset/{arg:target}/1 — the target is payload-
        # addressed, so two players can name the same victim...
        assert matrix.level(EventType.DAMAGE, EventType.DAMAGE) == ConflictLevel.ALWAYS
        # ...including a victim concurrently healing (same health key).
        assert (
            matrix.level(EventType.DAMAGE, EventType.PICKUP_MEDKIT)
            == ConflictLevel.ALWAYS
        )
        # But position (aid 6) is disjoint from health/armor (aids 1, 4):
        # the analyzer is precise enough to keep this pair conflict-free.
        assert matrix.level(EventType.DAMAGE, EventType.LOCATION) == ConflictLevel.NONE

    def test_add_player_is_always(self, matrix):
        # game/roster is one shared key.
        assert matrix.level("addPlayer", "addPlayer") == ConflictLevel.ALWAYS
        assert matrix.level("addPlayer", EventType.DAMAGE) == ConflictLevel.ALWAYS

    def test_pickups_collide_via_item_key(self, matrix):
        # item/{arg:item_id}: two players may race for the same item.
        assert (
            matrix.level(EventType.PICKUP_CLIP, EventType.PICKUP_CLIP)
            == ConflictLevel.ALWAYS
        )

    def test_matrix_is_symmetric(self, matrix):
        for a in matrix.events:
            for b in matrix.events:
                assert matrix.level(a, b) == matrix.level(b, a)

    def test_witness_names_the_colliding_patterns(self, matrix):
        witness = matrix.witnesses[(EventType.SHOOT, EventType.SHOOT)]
        assert any("asset/" in w for w in witness)

    def test_json_and_table_render(self, matrix):
        blob = matrix.to_json()
        assert set(blob) == {"events", "conflicts"}
        rendered = matrix.to_table().render()
        for event in matrix.events:
            assert event in rendered


# ----------------------------------------------------------------------
# differential: predictions vs the real ledger's MVCC check


class LedgerPairRunner:
    """Executes two invocations against a prepared game state, batches
    them into ONE block, and returns the ledger's validation codes."""

    def __init__(self):
        self.ca = CertificateAuthority(name="conflict-ca")
        self._identities = {}
        self._nonce = 0

    def _identity(self, name):
        if name not in self._identities:
            self._identities[name] = self.ca.enroll(name)
        return self._identities[name]

    def _tx(self, contract, function, payload, creator, t=1000.0):
        self._nonce += 1
        identity = self._identity(creator)
        proposal = Proposal(
            tx_id=f"c{self._nonce}",
            contract=contract.name,
            function=function,
            args=(payload,),
            nonce=f"cn{self._nonce}",
            creator=creator,
            timestamp=t,
        )
        return Transaction(
            proposal=proposal,
            certificate=identity.certificate,
            signature=identity.sign(proposal.digest()),
        )

    def run_pair(self, call_a, call_b, players=("p1", "p2")):
        """Each call is (function, payload, creator).  Returns the two
        validation codes after committing both txs in one block."""
        contract = DoomContract(strict_pickups=False)
        ledger = Ledger(make_genesis_block({"peers": ["p0"]}))

        # Setup: join + start, one block per tx (no artificial conflicts).
        for function, payload, creator in (
            [("addPlayer", {}, p) for p in players] + [("startGame", {}, players[0])]
        ):
            tx = self._tx(contract, function, payload, creator)
            execution = execute_transaction(contract, tx, ledger.state)
            codes = ledger.append(
                make_block(ledger.height, ledger.last_hash, [tx], 0.0),
                [TxExecution(rwset=execution.rwset, code=execution.code)],
            )
            assert codes == ["VALID"], f"setup {function} failed: {codes}"

        # The pair under test: both executed against the SAME snapshot,
        # then ordered into the same block — exactly the §6 scenario.
        txs, execs = [], []
        for function, payload, creator in (call_a, call_b):
            tx = self._tx(contract, function, payload, creator)
            execution = execute_transaction(contract, tx, ledger.state)
            assert execution.code == "VALID"
            txs.append(tx)
            execs.append(TxExecution(rwset=execution.rwset, code=execution.code))
        return ledger.append(
            make_block(ledger.height, ledger.last_hash, txs, 1000.0), execs
        )


@pytest.fixture()
def runner():
    return LedgerPairRunner()


SHOOT = (EventType.SHOOT, {"count": 1, "t": 1000.0})


def move_payload(creator):
    """A legal location update: step back onto the player's own spawn."""
    from repro.game.doom import DoomMap

    spawns = DoomMap.default_map().spawn_points
    spawn = spawns[0] if creator == "p1" else spawns[1 % len(spawns)]
    return {"x": spawn[0], "y": spawn[1], "t": 1000.0}


class TestLedgerAgreement:
    def test_same_player_pair_conflicts_on_ledger(self, runner, matrix):
        assert matrix.level(EventType.SHOOT, EventType.SHOOT) != ConflictLevel.NONE
        codes = runner.run_pair(
            (SHOOT[0], SHOOT[1], "p1"), (SHOOT[0], SHOOT[1], "p1")
        )
        assert codes == ["VALID", "MVCC_READ_CONFLICT"]

    def test_same_player_pair_is_clean_across_players(self, runner, matrix):
        # SAME_PLAYER (not ALWAYS) promises cross-player batches commit.
        assert (
            matrix.level(EventType.SHOOT, EventType.SHOOT)
            == ConflictLevel.SAME_PLAYER
        )
        codes = runner.run_pair(
            (SHOOT[0], SHOOT[1], "p1"), (SHOOT[0], SHOOT[1], "p2")
        )
        assert codes == ["VALID", "VALID"]

    def test_none_pair_never_conflicts(self, runner, matrix):
        assert matrix.level(EventType.LOCATION, EventType.SHOOT) == ConflictLevel.NONE
        for creators in (("p1", "p1"), ("p1", "p2")):
            codes = runner.run_pair(
                (EventType.LOCATION, move_payload(creators[0]), creators[0]),
                (SHOOT[0], SHOOT[1], creators[1]),
            )
            assert codes == ["VALID", "VALID"], creators

    def test_always_pair_conflicts_across_players(self, runner, matrix):
        # Two players damaging the same victim collide on the victim's
        # health key even though the creators differ.
        assert matrix.level(EventType.DAMAGE, EventType.DAMAGE) == ConflictLevel.ALWAYS
        codes = runner.run_pair(
            (EventType.DAMAGE, {"amount": 5, "target": "p1", "t": 1000.0}, "p1"),
            (EventType.DAMAGE, {"amount": 5, "target": "p1", "t": 1000.0}, "p2"),
        )
        assert codes == ["VALID", "MVCC_READ_CONFLICT"]

    def test_soundness_no_none_pair_ever_conflicts(self, runner, matrix):
        """The predictor's sound direction: a NONE verdict guarantees
        the ledger never reports a conflict for that pair (checked for
        every NONE pair that is cheap to stage)."""
        def stage(etype, creator):
            if etype == EventType.LOCATION:
                return move_payload(creator)
            return {
                EventType.SHOOT: {"count": 1, "t": 1000.0},
                EventType.WEAPON_CHANGE: {"wid": 0, "t": 1000.0},
            }[etype]

        stageable = {EventType.SHOOT, EventType.LOCATION, EventType.WEAPON_CHANGE}
        none_pairs = [
            (a, b)
            for (a, b) in matrix.pairs(ConflictLevel.NONE)
            if a in stageable and b in stageable
        ]
        assert none_pairs, "expected at least one stageable NONE pair"
        for a, b in none_pairs:
            for creators in (("p1", "p1"), ("p1", "p2")):
                codes = runner.run_pair(
                    (a, stage(a, creators[0]), creators[0]),
                    (b, stage(b, creators[1]), creators[1]),
                )
                assert codes == ["VALID", "VALID"], (a, b, creators)
