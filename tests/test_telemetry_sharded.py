"""Sharded telemetry, pinned against a golden Prometheus export.

One deterministic two-shard run exercises every terminal swap outcome
(committed / aborted / timed_out); the sharded metric families the run
produces — the swap-outcome counter and the per-shard progress gauges —
must match ``tests/golden/sharded_telemetry.prom`` byte for byte.  The
golden file is small on purpose: it freezes label names, label values
and counts, which is exactly what dashboards scrape.
"""

from pathlib import Path

from repro.blockchain import ShardedDeployment
from repro.blockchain.swaps import ShardAssetContract, SwapCoordinator, asset_key
from repro.simnet import LAN_1GBPS
from repro.telemetry import Telemetry
from repro.telemetry.export import prometheus_text, trace_records

GOLDEN = Path(__file__).parent / "golden" / "sharded_telemetry.prom"

#: The metric families this subsystem owns (all other families on the
#: export — pipeline histograms, net gauges — are covered elsewhere).
SHARDED_FAMILIES = (
    "cross_shard_swaps_total",
    "shard_committed_height",
    "shard_throughput_txs_per_s",
)


def run_instrumented():
    deployment = ShardedDeployment(
        n_peers=8, n_shards=2, profile=LAN_1GBPS, seed=4
    )
    deployment.install_contract(ShardAssetContract)
    telemetry = Telemetry().instrument_sharded(deployment)
    for j, home in ((0, 0), (1, 1)):
        deployment.client_for_shard(home, "minter").invoke(
            ShardAssetContract.name, "mint", (f"a{j}", "alice", 5 + j),
            touched_keys=(asset_key(f"a{j}"),),
        )
    deployment.run_until_idle()
    coordinator = SwapCoordinator(deployment, telemetry=telemetry)
    coordinator.start_swap("s1", "a0", 0, 1, "bob", 5)     # commits
    coordinator.start_swap("s2", "nope", 0, 1, "bob", 1)   # aborts
    deployment.run_until_idle()
    # A second coordinator whose timer is shorter than a commit
    # round-trip: its swap must time out.
    slow = SwapCoordinator(
        deployment, telemetry=telemetry, timeout_ms=1.0, name="slowcoord"
    )
    slow.start_swap("s3", "a1", 1, 0, "carol", 6)          # times out
    deployment.run_until_idle()
    return telemetry


def sharded_lines(telemetry):
    return "".join(
        line + "\n"
        for line in prometheus_text(telemetry).splitlines()
        if any(family in line for family in SHARDED_FAMILIES)
    )


def test_prometheus_export_matches_golden():
    assert sharded_lines(run_instrumented()) == GOLDEN.read_text()


def test_jsonl_trace_carries_swap_spans():
    records = trace_records(run_instrumented())
    stages = {
        record["stage"]
        for record in records
        if record.get("host") == "swap-coordinator"
    }
    # The committed swap contributes prepare+commit spans; the aborted
    # and timed-out swaps contribute abort spans.
    assert {"swap-prepare", "swap-commit", "swap-abort"} <= stages
