"""Frame-layer fuzz tests: malformed wire input must error cleanly.

A realnet listener reads length-prefixed codec frames from anyone who
connects.  Truncated, oversized, garbage and wrong-shape frames must
close the offending connection (counting ``frame_errors`` for protocol
violations), never hang a reader, and never take the network down for
well-behaved peers.
"""

from __future__ import annotations

import asyncio
import random
import struct

import pytest

from repro.blockchain.codec import encode
from repro.realnet import RealNetwork
from repro.simnet.topology import Host

_LEN = struct.Struct(">I")


class Sink(Host):
    def __init__(self, name: str):
        super().__init__(name)
        self.received = []

    def handle_message(self, src, payload):
        self.received.append((src.name, payload))


@pytest.fixture
def net():
    network = RealNetwork(seed=3)
    network.register(Sink("victim"))
    network.start()
    yield network
    network.close()


def _inject(net, raw: bytes, run_ms: float = 300.0) -> None:
    """Open a raw connection to the victim's port, write ``raw``, close,
    and give the reader a slice of wall time to chew on it."""
    port = net.port_of("victim")
    assert port is not None

    async def go():
        _reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(raw)
        await writer.drain()
        writer.close()

    net.scheduler.call_at(net.scheduler.now, lambda: net.scheduler.loop.create_task(go()))
    net.run(until=net.scheduler.now + run_ms)


def _frame(payload_obj) -> bytes:
    data = encode(payload_obj)
    return _LEN.pack(len(data)) + data


def test_garbage_bytes_counted_and_survived(net):
    _inject(net, _LEN.pack(12) + b"\xde\xad\xbe\xef not-codec")
    assert net.frame_errors == 1
    assert net.host("victim").received == []


def test_oversized_length_prefix_rejected(net):
    _inject(net, _LEN.pack(net.max_frame_bytes + 1))
    assert net.frame_errors == 1


def test_truncated_frame_closes_without_error(net):
    # Header promises 100 bytes; the connection dies after 10.  That is
    # an EOF mid-frame — connection teardown, not a protocol error.
    _inject(net, _LEN.pack(100) + b"0123456789")
    assert net.frame_errors == 0
    assert net.host("victim").received == []


def test_wrong_shape_frame_rejected(net):
    _inject(net, _frame({"not": "a triple"}))
    _inject(net, _frame(("src", "dst")))
    assert net.frame_errors == 2


def test_non_string_addresses_rejected(net):
    _inject(net, _frame((1, 2, "payload")))
    assert net.frame_errors == 1


def test_unknown_destination_dropped_not_fatal(net):
    dropped_before = net.stats.messages_dropped
    _inject(net, _frame(("ghost-src", "ghost-dst", "hello")))
    assert net.frame_errors == 0
    assert net.stats.messages_dropped == dropped_before + 1


def test_random_fuzz_never_hangs_reader(net):
    rng = random.Random(0)
    blob = b""
    for _ in range(20):
        blob += rng.randbytes(rng.randrange(1, 40))
    _inject(net, blob, run_ms=500.0)
    # Whatever the bytes decoded to, the loop is alive and the listener
    # still serves well-formed frames from a fresh connection.
    _inject(net, _frame(("fuzzer", "victim", {"ok": True})))
    assert net.host("victim").received == [("fuzzer", {"ok": True})]


def test_valid_frame_after_poison_neighbour(net):
    """A malformed connection must not poison a concurrent good one."""
    _inject(net, _LEN.pack(7) + b"garbage")
    _inject(net, _frame(("peer", "victim", [1, 2, 3])))
    assert net.frame_errors == 1
    assert net.host("victim").received == [("peer", [1, 2, 3])]
