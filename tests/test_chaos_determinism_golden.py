"""Golden-file determinism regression for the chaos harness.

The engine optimisations (incremental state hashing, digest/signature
memoisation, COW world state, scheduler and transport fast paths) are
required to be *behaviour-preserving*: a pinned-seed chaos run must
produce the exact same simulated history before and after.  The golden
record in ``tests/golden/chaos_determinism_8p.json`` was captured from
the pre-optimisation engine; this test replays the same scenario and
asserts the full record — commit timeline, fault applications, workload
outcomes, probe results and network statistics — is bit-identical.

If a deliberate, behaviour-changing engine modification lands (e.g. a
different latency model), regenerate the golden with the snippet in
this file's ``_make_record`` docstring rather than loosening asserts.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.chaos.runner import run_scenario

GOLDEN_PATH = Path(__file__).parent / "golden" / "chaos_determinism_8p.json"


def _make_record(res) -> dict:
    """Build the comparison record exactly as the golden was generated::

        res = run_scenario("churn-partition-ddos", seed=7)
        json.dump(_make_record(res), open(GOLDEN_PATH, "w"),
                  indent=1, sort_keys=True)
    """
    return {
        "scenario": res.scenario,
        "seed": res.seed,
        "faults_in_schedule": res.faults_in_schedule,
        "faults_applied": res.faults_applied,
        # Commit entries carry a state-hash in position 4; the hash scheme
        # changed with the incremental bucketed hasher, so the golden pins
        # the scheme-independent prefix [kind, t, peer, height].
        "timeline": [e[:4] if e[0] == "commit" else e for e in res.timeline],
        "violations": [[v.at_ms, v.invariant, v.peer] for v in res.violations],
        "workload_summary": res.workload_summary,
        "probe_codes": res.probe_codes,
        "submitted": res.submitted,
        "committed_height": res.committed_height,
        "network_stats": res.network_stats,
    }


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def replayed() -> dict:
    res = run_scenario("churn-partition-ddos", seed=7)
    # Round-trip through JSON so tuples/lists and int/float widths compare
    # on the same footing as the stored golden.
    return json.loads(json.dumps(_make_record(res)))


@pytest.fixture(scope="module")
def replayed_parallel() -> dict:
    """Same scenario with the lane-parallel block-validation executor.

    The executor is a host-side switch with a bit-identity contract, so
    the parallel run is pinned against the *same* golden record that was
    captured from the serial pre-optimisation engine — no second golden
    file, no loosened asserts.
    """
    from repro.blockchain import FabricConfig, clear_execution_cache

    clear_execution_cache()
    res = run_scenario(
        "churn-partition-ddos",
        seed=7,
        config=FabricConfig(parallel_validation=True),
    )
    return json.loads(json.dumps(_make_record(res)))


def test_run_is_clean_and_makes_progress(replayed):
    assert replayed["violations"] == []
    assert replayed["submitted"] > 0
    assert replayed["committed_height"] > 0


def test_timeline_matches_golden(golden, replayed):
    assert len(replayed["timeline"]) == len(golden["timeline"])
    for i, (got, want) in enumerate(zip(replayed["timeline"], golden["timeline"])):
        assert got == want, f"timeline diverges at event {i}: {got!r} != {want!r}"


def test_full_record_matches_golden(golden, replayed):
    assert replayed == golden


def test_parallel_validation_matches_same_golden(golden, replayed_parallel):
    assert replayed_parallel == golden
