"""Tests for the commit-reveal distributed RNG."""

import pytest

from repro.rng import (
    CommitRevealRound,
    DistributedDice,
    Participant,
    RngError,
    distributed_random,
)


class TestCommitReveal:
    def test_honest_round_produces_value(self):
        participants = [Participant(f"p{i}", seed=1) for i in range(4)]
        value, cheaters = distributed_random(participants)
        assert cheaters == []
        assert isinstance(value, int)

    def test_deterministic_given_seeds(self):
        a, _ = distributed_random([Participant("p0", seed=1), Participant("p1", seed=1)])
        b, _ = distributed_random([Participant("p0", seed=1), Participant("p1", seed=1)])
        assert a == b

    def test_single_honest_participant_randomises_output(self):
        """XOR combination: changing one participant's contribution
        changes the result — no coalition of the others controls it."""
        base = [Participant("p0", seed=1), Participant("p1", seed=1)]
        alt = [Participant("p0", seed=1), Participant("p1", seed=2)]
        v1, _ = distributed_random(base)
        v2, _ = distributed_random(alt)
        assert v1 != v2

    def test_mis_reveal_detected_and_excluded(self):
        honest = [Participant(f"p{i}", seed=1) for i in range(3)]
        liar = Participant("liar", seed=1, bias_value=12345)
        value_with_liar, cheaters = distributed_random(honest + [liar])
        assert cheaters == ["liar"]
        value_without, _ = distributed_random(honest)
        assert value_with_liar == value_without  # liar contributed nothing

    def test_modulus_applied(self):
        participants = [Participant("p0", seed=3)]
        value, _ = distributed_random(participants, modulus=36)
        assert 0 <= value < 36

    def test_empty_participants_rejected(self):
        with pytest.raises(RngError):
            distributed_random([])

    def test_duplicate_commit_rejected(self):
        round_ = CommitRevealRound()
        p = Participant("p0", seed=1)
        round_.submit_commit(p.commit())
        with pytest.raises(RngError):
            round_.submit_commit(p.commit())

    def test_commit_after_close_rejected(self):
        round_ = CommitRevealRound()
        round_.submit_commit(Participant("p0", seed=1).commit())
        round_.close_commits()
        with pytest.raises(RngError):
            round_.submit_commit(Participant("p1", seed=1).commit())

    def test_combine_before_close_rejected(self):
        round_ = CommitRevealRound()
        round_.submit_commit(Participant("p0", seed=1).commit())
        with pytest.raises(RngError):
            round_.combine()

    def test_withheld_reveal_excluded(self):
        round_ = CommitRevealRound()
        honest = Participant("honest", seed=1)
        silent = Participant("silent", seed=1)
        c1, c2 = honest.commit(), silent.commit()
        round_.submit_commit(c1)
        round_.submit_commit(c2)
        round_.close_commits()
        honest.reveal(c1)  # silent never reveals
        round_.combine()
        assert round_.cheaters == ["silent"]

    def test_min_honest_enforced(self):
        round_ = CommitRevealRound()
        silent = Participant("silent", seed=1)
        c = silent.commit()
        round_.submit_commit(c)
        round_.close_commits()
        with pytest.raises(RngError):
            round_.combine(min_honest=1)


class TestDistributedDice:
    def test_rolls_in_range(self):
        dice = DistributedDice(["a", "b", "c"], seed=1)
        for _ in range(100):
            d1, d2 = dice.roll()
            assert 1 <= d1 <= 6 and 1 <= d2 <= 6

    def test_rolls_vary(self):
        dice = DistributedDice(["a", "b"], seed=1)
        rolls = {dice.roll() for _ in range(30)}
        assert len(rolls) > 5

    def test_rolls_roughly_uniform(self):
        dice = DistributedDice(["a", "b"], seed=2)
        counts = [0] * 13
        n = 1200
        for _ in range(n):
            d1, d2 = dice.roll()
            counts[d1 + d2] += 1
        # Seven is the most likely sum for two dice (6/36).
        assert counts[7] == max(counts)
        assert abs(counts[7] / n - 6 / 36) < 0.05

    def test_deterministic_sequence(self):
        a = DistributedDice(["a", "b"], seed=3)
        b = DistributedDice(["a", "b"], seed=3)
        assert [a.roll() for _ in range(5)] == [b.roll() for _ in range(5)]

    def test_needs_players(self):
        with pytest.raises(RngError):
            DistributedDice([])
