#!/usr/bin/env python3
"""A four-player Internet deathmatch with a cheater in the room.

Four players join a game room whose peers are spread across the paper's
three data-centre regions (Dallas / San Jose / Toronto).  Three players
play honestly — moving, shooting at each other, picking up items — while
the fourth runs every relevant built-in Doom cheat.  Peer consensus
validates every asset update; the cheater's updates fail consensus while
the honest crossfire lands.

Run:  python examples/doom_deathmatch.py
"""

from repro.analysis import AsciiTable
from repro.blockchain import FabricConfig
from repro.core import CheatInjector, GameSession
from repro.game import AssetId, DoomRules, EventType, GameEvent, asset_key
from repro.simnet import INTERNET_US


def main() -> None:
    session = GameSession(
        n_peers=4,
        profile=INTERNET_US,
        fabric_config=FabricConfig(max_block_txs=5, mutually_exclusive_blocks=True),
        n_players=4,
        seed=42,
    )
    session.setup()
    p1, p2, p3, cheater = [shim.player for shim in session.shims]
    print(f"players: {p1}, {p2}, {p3} + cheater {cheater}")
    directory = session.network.directory
    print("anonymous identities:",
          ", ".join(directory.player_for(s.identity.certificate.subject)
                    for s in session.shims))

    # --- honest crossfire -------------------------------------------------
    seq = {player: 0 for player in (p1, p2, p3, cheater)}

    def fire(shooter_index: int, target: str, damage: int) -> None:
        shim = session.shims[shooter_index]
        seq[shim.player] += 1
        shim.on_game_event(GameEvent(
            session.now, shim.player, EventType.SHOOT, {"count": 1},
            seq[shim.player]))
        seq[shim.player] += 1
        shim.on_game_event(GameEvent(
            session.now, shim.player, EventType.DAMAGE,
            {"amount": damage, "target": target, "t": session.now},
            seq[shim.player]))
        session.run_until_idle()

    fire(0, p2, 25)   # p1 shoots p2
    fire(1, p3, 15)   # p2 shoots p3
    fire(2, p1, 35)   # p3 shoots p1

    state = session.chain.peers[0].ledger.state
    table = AsciiTable(["player", "health", "ammo"], title="After the crossfire")
    for player in (p1, p2, p3, cheater):
        health = state.get(asset_key(player, AssetId.HEALTH))["hp"]
        ammo = state.get(asset_key(player, AssetId.AMMUNITION))
        table.row(player, health, ammo)
    table.print()

    # --- the cheater goes to work -----------------------------------------
    injector = CheatInjector(session, shim=session.shims[3])
    results = injector.run_all_relevant()
    table = AsciiTable(["cheat", "outcome", "latency (ms)"],
                       title="Built-in cheats attempted by the cheater")
    for result in results:
        table.row(
            result.cheat.code,
            "prevented" if result.prevented else "MISSED",
            f"{result.prevention_latency_ms:.1f}",
        )
    table.print()
    prevented = sum(1 for r in results if r.prevented)
    print(f"{prevented}/{len(results)} cheats prevented; "
          f"ledgers agree: {session.ledgers_agree()}")

    # The cheater's authoritative state is untouched by the attempts.
    ammo = state.get(asset_key(cheater, AssetId.AMMUNITION))
    weapons = state.get(asset_key(cheater, AssetId.WEAPON))["owned"]
    print(f"cheater still has ammo={ammo}, weapons={sorted(weapons)} "
          f"(pistol + fist only)")

    session.teardown()


if __name__ == "__main__":
    main()
