#!/usr/bin/env python3
"""The paper's §7.3(i) case study: legitimate game customisation.

"We made a weapon that never ran out of ammunition by disabling the
reduction in ammunition in the smart contract, and a weapon with
maximum damage by increasing the damage quantifier."

Instead of patching the game binary (which violates IP and defeats
built-in security), the community edits the *constraint specification*
and regenerates the smart contract.  Every peer deploys the same modded
contract — advertised a priori — so all players start on the same
footing and the custom rules are still consensus-enforced.

Run:  python examples/custom_weapon_mod.py
"""

from repro.blockchain import BlockchainNetwork, TxValidationCode
from repro.core import (
    DOOM_SPEC_XML,
    generate_contract,
    generate_contract_source,
    parse_spec,
)
from repro.simnet import LAN_1GBPS

#: The community mod: Shoot no longer touches ammunition (power factor 0
#: — infinite ammo), and Damage hits ten times harder.
MODDED_SPEC = (
    DOOM_SPEC_XML
    .replace(
        """<Event eId="1" name="Shoot">
      <affects pId="self" aId="2" pwId="0" />
    </Event>""",
        """<Event eId="1" name="Shoot">
    </Event>""",
    )
    .replace(
        '<Asset aId="1" value="100" name="Health" min="0" max="200">\n      <power pwId="0" change="+" factor="-1" />',
        '<Asset aId="1" value="100" name="Health" min="0" max="200">\n      <power pwId="0" change="+" factor="-10" />',
    )
)


def play(contract_cls, shots: int):
    chain = BlockchainNetwork(n_peers=4, profile=LAN_1GBPS, seed=5)
    chain.install_contract(contract_cls)
    client = chain.create_client("modder")
    codes = []
    track = lambda r, l: codes.append(r.code)  # noqa: E731
    name = contract_cls.name
    client.invoke(name, "addPlayer", ({},), ("game/roster",), track)
    chain.run_until_idle()
    client.invoke(name, "startGame", ({},), ("game/started",), track)
    chain.run_until_idle()
    for _ in range(shots):
        client.invoke(name, "Shoot", ({},), ("asset/modder/2",), track)
        chain.run_until_idle()
    state = chain.peers[0].ledger.state
    rejected = sum(1 for c in codes if c != TxValidationCode.VALID)
    return state.get("asset/modder/2"), rejected


def main() -> None:
    stock_spec = parse_spec(DOOM_SPEC_XML)
    modded_spec = parse_spec(MODDED_SPEC)
    print("regenerating the contract from the modded specification...")
    source = generate_contract_source(modded_spec, class_name="ModdedDoomContract")
    print(f"  generated {len(source.splitlines())} lines of contract code")

    stock = generate_contract(stock_spec, class_name="StockDoomContract")
    modded = generate_contract(modded_spec, class_name="ModdedDoomContract")

    shots = 60  # a pistol magazine holds 50
    ammo, rejected = play(stock, shots)
    print(f"\nstock contract:  {shots} shots -> ammo {ammo:.0f}, "
          f"{rejected} rejected (magazine ran dry)")

    ammo, rejected = play(modded, shots)
    print(f"modded contract: {shots} shots -> ammo {ammo:.0f}, "
          f"{rejected} rejected (the gun never runs out)")

    stock_damage = stock_spec.asset_by_name("Health").power(0).factor
    mod_damage = modded_spec.asset_by_name("Health").power(0).factor
    print(f"\ndamage quantifier: {stock_damage} (stock) -> {mod_damage} (modded)")
    print("no game binary was modified: only the spec changed, and every")
    print("peer runs the same regenerated contract (§7.3 i).")


if __name__ == "__main__":
    main()
