#!/usr/bin/env python3
"""Quickstart: a blockchain-backed Doom session in ~40 lines.

Creates a four-peer game room on a simulated 1 Gbps LAN, replays thirty
seconds of gameplay through the shim, then tries the IDCHOPPERS cheat
(claiming a chainsaw from across the map) and shows peer consensus
rejecting it in real time.

Run:  python examples/quickstart.py
"""

from repro.blockchain import FabricConfig
from repro.core import CheatInjector, DOOM_CHEATS, GameSession
from repro.game import generate_session
from repro.simnet import LAN_1GBPS


def main() -> None:
    # A short synthetic session (the trace generator stands in for the
    # community demo files; see DESIGN.md).
    demo = generate_session("quickstart", duration_ms=30_000.0, seed=1)
    print(f"demo: {len(demo)} events over {demo.duration_minutes:.1f} min")

    # One blockchain peer per player, all optimisations on (block size 5,
    # mutually exclusive blocks, multithreaded batching shim).
    session = GameSession(
        n_peers=4,
        profile=LAN_1GBPS,
        fabric_config=FabricConfig(max_block_txs=5, mutually_exclusive_blocks=True),
        game_map=demo.game_map,
        player_names=[demo.player],
        n_players=1,
    )
    session.setup()

    session.play_demo(demo)
    session.run_until_idle()

    stats = session.stats()
    print(f"replayed {stats.events_acked} events, "
          f"{stats.rejected_events} rejected, "
          f"avg validation latency {stats.avg_latency_ms:.1f} ms "
          f"(simulated), avg batch size {stats.avg_batch_size:.1f}")
    assert session.ledgers_agree(), "peers diverged?!"

    # Now cheat: IDCHOPPERS — a chainsaw without walking to it.
    idchoppers = next(c for c in DOOM_CHEATS if c.code == "IDCHOPPERS")
    outcome = CheatInjector(session).run(idchoppers)
    verdict = "PREVENTED" if outcome.prevented else "MISSED"
    print(f"IDCHOPPERS: {verdict} in {outcome.prevention_latency_ms:.1f} ms "
          f"({outcome.validation_code})")

    session.teardown()
    print("session torn down — the blockchain is ephemeral (§4.2.6)")


if __name__ == "__main__":
    main()
