#!/usr/bin/env python3
"""Auditing a finished session: the ledger as tamper-evident match record.

Because every asset update — accepted or rejected — is a transaction on
an append-only hash chain, anyone holding a peer's ledger can verify
after the fact exactly what happened: who played, who cheated, what the
verdicts were, and that nobody rewrote history.  This is the
non-repudiation property the paper's §7.3(ii) case study is built on,
applied to a Doom deathmatch.

Run:  python examples/spectator_audit.py
"""

from repro.analysis import AsciiTable, audit_ledger, cross_audit
from repro.core import CheatInjector, GameSession
from repro.game import EventType, GameEvent
from repro.simnet import LAN_1GBPS


def main() -> None:
    # --- the match ---------------------------------------------------------
    session = GameSession(n_peers=4, profile=LAN_1GBPS, n_players=2, seed=99)
    session.setup()
    honest, cheater = session.shims

    for seq in range(1, 9):
        session.inject_event(GameEvent(
            session.now, honest.player, EventType.SHOOT, {"count": 1}, seq),
            shim=honest)
        session.run_until_idle()
    CheatInjector(session, shim=cheater).run_all_relevant()
    session.teardown()

    # --- the audit ---------------------------------------------------------
    ledger = session.chain.peers[0].ledger
    report = audit_ledger(ledger)

    print(f"chain valid: {report.chain_valid}; height {report.height} blocks; "
          f"{report.total_transactions} transactions "
          f"({report.accepted} accepted, {report.rejected} rejected)")

    table = AsciiTable(["player", "transactions", "rejections"],
                       title="Per-player record")
    for creator, count in sorted(report.by_creator.items()):
        table.row(creator, count, len(report.rejections_by(creator)))
    table.print()

    table = AsciiTable(["player", "function", "verdict", "block"],
                       title="Every cheating attempt, attributably on record")
    for creator, function, code, block in report.rejections:
        table.row(creator, function, code, block)
    table.print()

    ledgers = [p.ledger for p in session.chain.peers]
    print(f"all {len(ledgers)} peers agree bit-for-bit: {cross_audit(ledgers)}")

    # --- tamper-evidence ----------------------------------------------------
    victim = ledger.block(2).transactions[0]
    original = victim.proposal.args
    object.__setattr__(victim.proposal, "args", ({"revised": "history"},))
    print(f"after rewriting one committed transaction, "
          f"chain valid: {audit_ledger(ledger).chain_valid}, "
          f"cross-audit: {cross_audit(ledgers)}")
    object.__setattr__(victim.proposal, "args", original)


if __name__ == "__main__":
    main()
