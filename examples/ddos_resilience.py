#!/usr/bin/env python3
"""DDoS resilience: client-server versus blockchain P2P (§2.2, §7.2.4).

The same event workload runs against (a) a classic trusted game server
and (b) an eight-peer blockchain game room.  The attacker then does what
real game-network attackers do: takes down the single C/S server, and
takes down 12.5-37.5% of the P2P peers.  The C/S game dies instantly;
the P2P game keeps validating events at full rate until the attacker
controls a majority.

Run:  python examples/ddos_resilience.py
"""

from repro.analysis import AsciiTable
from repro.baselines import CSClient, GameServer
from repro.blockchain import FabricConfig
from repro.core import GameSession
from repro.game import EventType, GameEvent
from repro.simnet import INTERNET_US, Network, TakedownAttack


def run_cs(n_events: int, attack_at: int) -> tuple:
    net = Network(profile=INTERNET_US, seed=1)
    server = net.register(GameServer())
    server.add_player("p1")
    client = net.register(CSClient("c1", server.region, server))
    attack = TakedownAttack([server.name])
    for i in range(1, n_events + 1):
        if i == attack_at:
            attack.apply(net)
        client.send_event(GameEvent(net.now, "p1", EventType.SHOOT, {"count": 1}, i))
        net.run(until=net.now + 100.0)
    net.run_until_idle()
    return client.accepted, n_events - client.accepted


def run_p2p(n_events: int, attack_at: int, down_fraction: float) -> tuple:
    session = GameSession(
        n_peers=8,
        profile=INTERNET_US,
        fabric_config=FabricConfig(max_block_txs=5, mutually_exclusive_blocks=True),
        n_players=1,
        seed=2,
    )
    session.setup()
    shim = session.shims[0]
    # The paper's fractions are of the full room; keep the shim's anchor
    # peer reachable so we observe consensus (not connectivity) effects.
    all_peers = [p.name for p in session.chain.peers]
    count = int(len(all_peers) * down_fraction)
    candidates = [n for n in all_peers if n != shim.anchor_peer.name]
    victims = candidates[:count]
    attack = TakedownAttack(victims)
    for i in range(1, n_events + 1):
        if i == attack_at:
            attack.apply(session.chain.net)
        shim.on_game_event(GameEvent(
            session.now, shim.player, EventType.SHOOT, {"count": 1},
            1_000 + i))
        session.run(until=session.now + 100.0)
    session.run(until=session.now + 5_000.0)
    stats = session.stats()
    return stats.events_acked, stats.events_received - stats.events_acked, victims


def main() -> None:
    n_events, attack_at = 40, 20

    cs_ok, cs_lost = run_cs(n_events, attack_at)
    table = AsciiTable(
        ["deployment", "attack", "events validated", "events lost"],
        title=f"{n_events} shoot events, attack launched at event {attack_at}",
    )
    table.row("client-server", "server taken down", cs_ok, cs_lost)

    for fraction in (0.125, 0.25, 0.375):
        ok, lost, victims = run_p2p(n_events, attack_at, fraction)
        table.row(
            "blockchain P2P",
            f"{fraction:.1%} of peers down ({len(victims)})",
            ok, lost,
        )

    # Past a majority, even P2P halts — the attacker must own the room.
    ok, lost, victims = run_p2p(n_events, attack_at, 0.75)
    table.row("blockchain P2P", f"75% of peers down ({len(victims)})", ok, lost)
    table.print()

    print("To kill the C/S game the attacker needed one target; to merely")
    print("stall the P2P room it needed a majority of its peers (§5).")


if __name__ == "__main__":
    main()
