#!/usr/bin/env python3
"""The paper's §7.3(ii) case study: Monopoly with non-repudiation.

Dice rolls come from a robust distributed RNG (commit-reveal among the
players, so no one can bias a roll); every move, purchase and rent
payment is a blockchain transaction, making all claims verifiable from
the event log.  The example also shows the two Monopoly "cheats" the
design kills: claiming a different outcome for an already-consumed RNG
round, and rolling impossible dice.

Run:  python examples/monopoly_nonrepudiation.py
"""

from repro.analysis import AsciiTable
from repro.blockchain import BlockchainNetwork, TxValidationCode
from repro.core import MonopolyContract, player_key, property_key
from repro.game import STANDARD_PROPERTIES
from repro.rng import DistributedDice
from repro.simnet import INTERNET_US


def main() -> None:
    chain = BlockchainNetwork(n_peers=4, profile=INTERNET_US, seed=7)
    chain.install_contract(MonopolyContract)
    players = {
        name: chain.create_client(name, anchor=chain.peers[i])
        for i, name in enumerate(("alice", "bob", "carol"))
    }

    outcomes = []
    def submit(client, function, payload, keys):
        client.invoke("monopoly", function, (payload,), keys,
                      on_complete=lambda r, l: outcomes.append((function, r.code, l)))
        chain.run_until_idle()
        return outcomes[-1]

    for name, client in players.items():
        submit(client, "addPlayer", {}, ("mp/roster",))
    submit(players["alice"], "startGame", {}, ("mp/started",))

    # --- verifiable dice ---------------------------------------------------
    dice = DistributedDice(list(players), seed=11)
    table = AsciiTable(["round", "player", "dice", "verdict"],
                       title="Distributed dice rolls, committed on chain")
    round_no = 0
    for turn in range(6):
        name = list(players)[turn % 3]
        round_no += 1
        roll = dice.roll()
        _, code, _ = submit(players[name], "roll",
                            {"dice": list(roll), "round": round_no},
                            (player_key(name),))
        table.row(round_no, name, f"{roll[0]}+{roll[1]}", code)
    table.print()

    # --- property trade ----------------------------------------------------
    state = chain.peers[0].ledger.state
    alice_square = state.get(player_key("alice"))["location"]
    prop = STANDARD_PROPERTIES.get(alice_square)
    if prop is not None:
        _, code, _ = submit(players["alice"], "buy", {},
                            (player_key("alice"), property_key(alice_square)))
        print(f"alice buys {prop.name} on square {alice_square}: {code}")
    else:
        print(f"alice landed on square {alice_square} (not purchasable)")

    # --- non-repudiation in action ------------------------------------------
    print("\ncheat 1: bob re-claims round 2 with a luckier outcome")
    _, code, latency = submit(players["bob"], "roll",
                              {"dice": [6, 6], "round": 2}, (player_key("bob"),))
    print(f"  -> {code} in {latency:.0f} ms (round already consumed on chain)")

    print("cheat 2: carol rolls a seven on one die")
    _, code, latency = submit(players["carol"], "roll",
                              {"dice": [7, 1], "round": 99}, (player_key("carol"),))
    print(f"  -> {code} in {latency:.0f} ms")

    # --- audit: every claim is verifiable from the ledger --------------------
    roll_log = sorted(
        key for key in state.keys() if key.startswith("mp/roll/")
    )
    print(f"\naudit log: {len(roll_log)} rolls recorded on the ledger")
    for key in roll_log[:4]:
        print(f"  {key} -> {state.get(key)['dice']}")
    valid = sum(1 for _, code, _ in outcomes if code == TxValidationCode.VALID)
    print(f"{valid}/{len(outcomes)} transactions reached consensus; "
          f"chain valid: {chain.peers[0].ledger.validate_chain()}")


if __name__ == "__main__":
    main()
