"""ASCII table/series rendering for the benchmark harness.

Every bench prints the same rows/series the paper reports, through
these helpers, so ``pytest benchmarks/ --benchmark-only`` output reads
like the paper's tables.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

__all__ = ["AsciiTable", "format_series", "banner", "render_conflict_matrix"]


class AsciiTable:
    """A minimal fixed-width table renderer."""

    def __init__(self, headers: Sequence[str], title: Optional[str] = None):
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    def row(self, *cells) -> "AsciiTable":
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append([_fmt(c) for c in cells])
        return self

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:
        print("\n" + self.render() + "\n")


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_series(label: str, values: Sequence[float], fmt: str = "{:.1f}") -> str:
    """One labelled series line, e.g. for figure data dumps."""
    return f"{label}: " + " ".join(fmt.format(v) for v in values)


def banner(text: str) -> None:
    line = "=" * max(len(text), 8)
    print(f"\n{line}\n{text}\n{line}")


def render_conflict_matrix(
    labels: Sequence[str],
    cell: Callable[[str, str], str],
    title: Optional[str] = None,
) -> AsciiTable:
    """A square matrix table, e.g. the static analyzer's predicted
    MVCC-conflict matrix (``cell(row, col)`` returns the glyph)."""
    table = AsciiTable([""] + list(labels), title=title)
    for row in labels:
        table.row(row, *[cell(row, col) for col in labels])
    return table
