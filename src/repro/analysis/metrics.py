"""Statistics helpers shared by benches and tests."""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

__all__ = ["mean", "median", "percentile", "stddev", "histogram", "rate_per_second"]


def mean(values: Sequence[float]) -> float:
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def median(values: Sequence[float]) -> float:
    return percentile(values, 50.0)


def percentile(values: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile, p in [0, 100]."""
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    ordered = sorted(values)
    if not ordered:
        raise ValueError("percentile of empty sequence")
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


def stddev(values: Sequence[float]) -> float:
    values = list(values)
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))


def histogram(
    values: Iterable[float], bins: Sequence[Tuple[float, float]]
) -> List[int]:
    """Counts per [low, high) bin; values outside all bins are dropped."""
    counts = [0] * len(bins)
    for value in values:
        for i, (low, high) in enumerate(bins):
            if low <= value < high:
                counts[i] += 1
                break
    return counts


def rate_per_second(count: int, span_ms: float) -> float:
    if span_ms <= 0:
        return 0.0
    return count / (span_ms / 1000.0)
