"""Metrics, ledger auditing and report rendering."""

from .audit import AuditReport, audit_ledger, cross_audit
from .metrics import histogram, mean, median, percentile, rate_per_second, stddev
from .report import AsciiTable, banner, format_series

__all__ = [
    "AuditReport",
    "audit_ledger",
    "cross_audit",
    "histogram",
    "mean",
    "median",
    "percentile",
    "rate_per_second",
    "stddev",
    "AsciiTable",
    "banner",
    "format_series",
]
