"""Ledger auditing: the non-repudiation pay-off of the design.

"We apply our approach to C/S-based Monopoly, a full information
multi-player game where all claims can be verified through the
blockchain's event log" (§7.3 ii) — and the same holds for Doom: every
accepted and every *rejected* (cheating) asset update is durably
recorded with its verdict.  :func:`audit_ledger` extracts that record;
:func:`cross_audit` checks that a set of peers hold bit-identical
histories.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from ..blockchain.ledger import Ledger
from ..blockchain.transaction import TxValidationCode

__all__ = ["AuditReport", "audit_ledger", "cross_audit"]


@dataclass
class AuditReport:
    """What one peer's ledger attests to."""

    chain_valid: bool
    height: int
    total_transactions: int
    by_code: Dict[str, int] = field(default_factory=dict)
    by_creator: Dict[str, int] = field(default_factory=dict)
    by_function: Dict[str, int] = field(default_factory=dict)
    #: (creator, function, code, block) for every non-VALID transaction:
    #: the durable record of attempted cheats.
    rejections: List[Tuple[str, str, str, int]] = field(default_factory=list)
    state_hash: str = ""

    @property
    def accepted(self) -> int:
        return self.by_code.get(TxValidationCode.VALID, 0)

    @property
    def rejected(self) -> int:
        return self.total_transactions - self.accepted

    def rejections_by(self, creator: str) -> List[Tuple[str, str, str, int]]:
        return [r for r in self.rejections if r[0] == creator]


def audit_ledger(ledger: Ledger) -> AuditReport:
    """Walk the chain and account for every transaction."""
    report = AuditReport(
        chain_valid=ledger.validate_chain(),
        height=ledger.height,
        total_transactions=0,
        state_hash=ledger.state_hash(),
    )
    for number in range(1, ledger.height):
        block = ledger.block(number)
        codes = block.validation_codes or [TxValidationCode.PENDING] * len(
            block.transactions
        )
        for tx, code in zip(block.transactions, codes):
            report.total_transactions += 1
            creator = tx.proposal.creator
            function = tx.proposal.function
            report.by_code[code] = report.by_code.get(code, 0) + 1
            report.by_creator[creator] = report.by_creator.get(creator, 0) + 1
            report.by_function[function] = report.by_function.get(function, 0) + 1
            if code != TxValidationCode.VALID:
                report.rejections.append((creator, function, code, number))
    return report


def cross_audit(ledgers: Iterable[Ledger]) -> bool:
    """True iff every ledger is internally valid and all agree on both
    the chain head and the world state."""
    ledgers = list(ledgers)
    if not ledgers:
        raise ValueError("nothing to audit")
    if not all(ledger.validate_chain() for ledger in ledgers):
        return False
    heads = {ledger.last_hash for ledger in ledgers}
    states = {ledger.state_hash() for ledger in ledgers}
    return len(heads) == 1 and len(states) == 1
