"""Comparison systems: C/S server, lockstep P2P, RACS, and the Table 3
anti-cheat mechanism capability matrix."""

from .clientserver import AckMsg, CSClient, EventMsg, GameServer
from .lockstep import Commitment, LockstepGame, LockstepPlayer, Reveal
from .mechanisms import (
    CHEAT_ROWS,
    MECHANISMS,
    NOT_APPLICABLE,
    NOT_PREVENTED,
    PAPER_TABLE3,
    PREVENTED,
    CheatRow,
    matrix_lookup,
    our_approach_matches_cs,
)
from .racs import RacsPeer, Referee

__all__ = [
    "AckMsg",
    "CSClient",
    "EventMsg",
    "GameServer",
    "Commitment",
    "LockstepGame",
    "LockstepPlayer",
    "Reveal",
    "CHEAT_ROWS",
    "MECHANISMS",
    "NOT_APPLICABLE",
    "NOT_PREVENTED",
    "PAPER_TABLE3",
    "PREVENTED",
    "CheatRow",
    "matrix_lookup",
    "our_approach_matches_cs",
    "RacsPeer",
    "Referee",
]
