"""Table 3: anti-cheat mechanism capability matrix (adapted from [80]).

The paper compares its approach against six mechanism families across
eleven cheat rows.  The matrix below is the paper's published table;
the Table 3 bench (``benchmarks/bench_table3_cheat_matrix.py``)
additionally *verifies by live simulation* every "Our Approach" and
"C/S" cell that our substrates can exercise, and reports which cells
were checked versus quoted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "PREVENTED",
    "NOT_PREVENTED",
    "NOT_APPLICABLE",
    "MECHANISMS",
    "CHEAT_ROWS",
    "PAPER_TABLE3",
    "CheatRow",
    "matrix_lookup",
]

PREVENTED = "yes"
NOT_PREVENTED = "no"
NOT_APPLICABLE = "n/a"

#: Column order of Table 3.
MECHANISMS = (
    "our-approach",
    "c/s",
    "pb/vac",  # PunkBuster / Valve Anti-Cheat (client-side monitoring)
    "as",  # cheat-proof playout (Baughman et al.)
    "neo/sea",  # low-latency event ordering / secure event agreement
    "racs",  # referee anti-cheat scheme
    "p2p-rc",  # cheat-resistant P2P (Kabus et al.)
)


@dataclass(frozen=True)
class CheatRow:
    key: str
    category: str
    label: str
    #: whether our simulation can exercise this row end-to-end
    verifiable: bool = False


CHEAT_ROWS: Tuple[CheatRow, ...] = (
    CheatRow("bug", "game", "Bug", verifiable=True),
    CheatRow("rmt", "game", "RMT/Power Leveling"),
    CheatRow("invalid-commands", "application",
             "Information Exposure / Invalid Commands", verifiable=True),
    CheatRow("bots", "application", "Bots/Reflex Enhancers"),
    CheatRow("protocol-timing", "protocol",
             "Suppressed update / Timestamp / Fixed delay / Inconsistency"),
    CheatRow("collusion", "protocol", "Collusion"),
    CheatRow("spoofing-replay", "protocol", "Spoofing / Replay", verifiable=True),
    CheatRow("undo", "protocol", "Undo", verifiable=True),
    CheatRow("blind-opponent", "protocol", "Blind opponent"),
    CheatRow("infra-exposure", "infrastructure", "Information Exposure"),
    CheatRow("proxy", "infrastructure", "Proxy/Reflex Enhancers"),
)

#: The published matrix, row key → per-mechanism verdict, column order
#: per :data:`MECHANISMS`.
PAPER_TABLE3: Dict[str, Tuple[str, ...]] = {
    "bug": (PREVENTED, PREVENTED, NOT_PREVENTED, PREVENTED, PREVENTED,
            PREVENTED, PREVENTED),
    "rmt": (PREVENTED, PREVENTED, NOT_PREVENTED, NOT_PREVENTED,
            NOT_PREVENTED, PREVENTED, PREVENTED),
    "invalid-commands": (PREVENTED, PREVENTED, NOT_PREVENTED, NOT_PREVENTED,
                         NOT_PREVENTED, PREVENTED, PREVENTED),
    "bots": (NOT_PREVENTED, NOT_PREVENTED, PREVENTED, NOT_PREVENTED,
             NOT_PREVENTED, NOT_PREVENTED, NOT_PREVENTED),
    "protocol-timing": (NOT_APPLICABLE, PREVENTED, NOT_PREVENTED, PREVENTED,
                        PREVENTED, PREVENTED, PREVENTED),
    "collusion": (NOT_PREVENTED, NOT_PREVENTED, NOT_PREVENTED, NOT_PREVENTED,
                  NOT_PREVENTED, NOT_PREVENTED, NOT_PREVENTED),
    "spoofing-replay": (PREVENTED, PREVENTED, NOT_PREVENTED, NOT_PREVENTED,
                        PREVENTED, PREVENTED, PREVENTED),
    "undo": (PREVENTED, NOT_APPLICABLE, NOT_PREVENTED, PREVENTED,
             NOT_PREVENTED, NOT_APPLICABLE, NOT_APPLICABLE),
    "blind-opponent": (PREVENTED, NOT_APPLICABLE, NOT_PREVENTED,
                       NOT_APPLICABLE, NOT_APPLICABLE, PREVENTED,
                       NOT_APPLICABLE),
    "infra-exposure": (PREVENTED, PREVENTED, PREVENTED, NOT_PREVENTED,
                       NOT_PREVENTED, PREVENTED, PREVENTED),
    "proxy": (NOT_PREVENTED, NOT_PREVENTED, NOT_PREVENTED, NOT_PREVENTED,
              NOT_PREVENTED, NOT_PREVENTED, NOT_PREVENTED),
}


def matrix_lookup(row_key: str, mechanism: str) -> str:
    """The published Table 3 verdict for one (cheat, mechanism) cell."""
    try:
        row = PAPER_TABLE3[row_key]
    except KeyError:
        raise KeyError(f"unknown cheat row {row_key!r}") from None
    try:
        column = MECHANISMS.index(mechanism)
    except ValueError:
        raise KeyError(f"unknown mechanism {mechanism!r}") from None
    return row[column]


def our_approach_matches_cs() -> bool:
    """The paper's §4 claim: our approach "does no worse cheat detection
    than the standard C/S architecture" — every cheat the C/S column
    prevents, our column prevents too (rows where C/S is N/A excluded).
    """
    ours_idx = MECHANISMS.index("our-approach")
    cs_idx = MECHANISMS.index("c/s")
    for verdicts in PAPER_TABLE3.values():
        if verdicts[cs_idx] == PREVENTED and verdicts[ours_idx] not in (
            PREVENTED, NOT_APPLICABLE
        ):
            return False
    return True
