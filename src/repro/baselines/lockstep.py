"""Lockstep P2P baseline (Baughman et al., NEO/SEA family — §9.1).

"P2P games run the exact simulation on each client, passing identical
commands … Prior work implement this Lockstep technique and its
variants."  In lockstep, each round every player (1) broadcasts a
cryptographic commitment to its move, (2) after receiving *all*
commitments, broadcasts the reveal.  No player can base its move on
another's (lookahead cheating), and a reveal that does not match its
commitment is caught.

The cost is the property the paper's approach avoids: the round
advances at the pace of the slowest player (2 × max RTT per round), and
there is no semantic validation — lockstep guarantees agreement on the
*inputs*, not that the resulting state transition is legal.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..simnet.topology import Host

__all__ = ["Commitment", "Reveal", "LockstepPlayer", "LockstepGame"]


def _commit(move: str, salt: str) -> str:
    return hashlib.sha256(f"{salt}:{move}".encode()).hexdigest()


@dataclass(frozen=True)
class Commitment:
    round_no: int
    sender: str
    digest: str


@dataclass(frozen=True)
class Reveal:
    round_no: int
    sender: str
    move: str
    salt: str


class LockstepPlayer(Host):
    """One lockstep participant.

    ``move_source`` supplies the move for each round; ``lie`` makes the
    player reveal a different move than committed (caught by peers).
    """

    def __init__(self, name: str, region: str, move_source=None, lie: bool = False):
        super().__init__(name, region)
        self.move_source = move_source or (lambda round_no: f"move-{round_no}")
        self.lie = lie
        self.peers: List["LockstepPlayer"] = []
        self.round_no = 0
        self._commitments: Dict[int, Dict[str, str]] = {}
        self._reveals: Dict[int, Dict[str, Reveal]] = {}
        self._pending_move: Dict[int, Tuple[str, str]] = {}
        self.completed_rounds: Dict[int, Dict[str, str]] = {}
        self.round_started_at: Dict[int, float] = {}
        self.round_completed_at: Dict[int, float] = {}
        self.cheaters_detected: List[Tuple[int, str]] = []
        self.max_rounds: Optional[int] = None

    def connect(self, players: List["LockstepPlayer"]) -> None:
        self.peers = [p for p in players if p.name != self.name]

    # ------------------------------------------------------------------
    # protocol

    def start_round(self) -> None:
        self.round_no += 1
        round_no = self.round_no
        self.round_started_at[round_no] = self.network.scheduler.now
        move = str(self.move_source(round_no))
        salt = f"{self.name}:{round_no}"
        self._pending_move[round_no] = (move, salt)
        commitment = Commitment(round_no, self.name, _commit(move, salt))
        self._commitments.setdefault(round_no, {})[self.name] = commitment.digest
        for peer in self.peers:
            self.send(peer, commitment, size_bytes=96)
        self._maybe_reveal(round_no)

    def handle_message(self, src: Host, payload) -> None:
        if isinstance(payload, Commitment):
            self._commitments.setdefault(payload.round_no, {})[payload.sender] = (
                payload.digest
            )
            self._maybe_reveal(payload.round_no)
        elif isinstance(payload, Reveal):
            self._reveals.setdefault(payload.round_no, {})[payload.sender] = payload
            self._maybe_complete(payload.round_no)
        else:
            raise TypeError(f"lockstep player cannot handle {type(payload).__name__}")

    def _maybe_reveal(self, round_no: int) -> None:
        """Reveal only once every player's commitment arrived (this is
        the anti-lookahead property)."""
        if round_no != self.round_no or round_no not in self._pending_move:
            return
        commitments = self._commitments.get(round_no, {})
        if len(commitments) < len(self.peers) + 1:
            return
        move, salt = self._pending_move.pop(round_no)
        revealed = f"{move}-LIE" if self.lie else move
        reveal = Reveal(round_no, self.name, revealed, salt)
        self._reveals.setdefault(round_no, {})[self.name] = reveal
        for peer in self.peers:
            self.send(peer, reveal, size_bytes=96)
        self._maybe_complete(round_no)

    def _maybe_complete(self, round_no: int) -> None:
        if round_no in self.completed_rounds:
            return
        reveals = self._reveals.get(round_no, {})
        commitments = self._commitments.get(round_no, {})
        if len(reveals) < len(self.peers) + 1:
            return
        moves: Dict[str, str] = {}
        for sender, reveal in reveals.items():
            expected = commitments.get(sender)
            if expected is None or _commit(reveal.move, reveal.salt) != expected:
                self.cheaters_detected.append((round_no, sender))
                continue
            moves[sender] = reveal.move
        self.completed_rounds[round_no] = moves
        self.round_completed_at[round_no] = self.network.scheduler.now
        if self.max_rounds is None or self.round_no < self.max_rounds:
            self.start_round()

    # ------------------------------------------------------------------
    # metrics

    def round_latencies_ms(self) -> List[float]:
        return [
            self.round_completed_at[r] - self.round_started_at[r]
            for r in sorted(self.round_completed_at)
            if r in self.round_started_at
        ]


class LockstepGame:
    """Drives a lockstep session over a simulated network."""

    def __init__(self, players: List[LockstepPlayer], rounds: int):
        if rounds < 1:
            raise ValueError("need at least one round")
        self.players = players
        for player in players:
            player.connect(players)
            player.max_rounds = rounds
        self.rounds = rounds

    def run(self, network) -> None:
        for player in self.players:
            player.start_round()
        network.run_until_idle()

    def avg_round_latency_ms(self) -> float:
        latencies = [l for p in self.players for l in p.round_latencies_ms()]
        return sum(latencies) / len(latencies) if latencies else 0.0

    def all_agree(self) -> bool:
        """Every honest player saw the same move set every round."""
        reference = self.players[0].completed_rounds
        return all(p.completed_rounds == reference for p in self.players[1:])
