"""The client-server baseline: a trusted game server.

This is the architecture the paper compares against throughout: the
server holds definitive state, validates every client event against the
same game rules the smart contract encodes, and acknowledges per event.
It detects the same cheat class ("reported client state inconsistent
with the observed state at the server") but is a central point of
failure under DDoS (§2.2, §7.2.4(3)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..game.assets import AssetId
from ..game.doom import DoomMap, DoomRules, RuleViolation, WEAPONS, initial_assets
from ..game.events import EventType, GameEvent
from ..simnet.latency import Region
from ..simnet.topology import Host

__all__ = ["EventMsg", "AckMsg", "GameServer", "CSClient"]


@dataclass(frozen=True)
class EventMsg:
    event: GameEvent


@dataclass(frozen=True)
class AckMsg:
    seq: int
    accepted: bool
    reason: str = ""


class GameServer(Host):
    """A trusted C/S game server running the Doom rules.

    Server-side validation mirrors ``repro.core.doom_contract`` exactly
    (both call into :class:`~repro.game.doom.DoomRules`), so cheat
    coverage is identical by construction — the paper's claim that the
    blockchain approach "does no worse cheat detection than the standard
    C/S architecture" (§4) is checked test-by-test in
    ``tests/test_baselines.py``.
    """

    def __init__(
        self,
        name: str = "server",
        region: str = Region.DALLAS,
        game_map: Optional[DoomMap] = None,
        compute_ms_per_event: float = 0.25,
        strict_pickups: bool = True,
    ):
        super().__init__(name, region)
        self.map = game_map if game_map is not None else DoomMap.default_map()
        self.compute_ms = compute_ms_per_event
        self.strict_pickups = strict_pickups
        self.players: Dict[str, Dict[int, object]] = {}
        self.items_taken: Dict[str, Dict] = {}
        self.started = False
        self.events_validated = 0
        self.events_rejected = 0
        self._cpu_free_at = 0.0

    # ------------------------------------------------------------------
    # lifecycle

    def add_player(self, player: str) -> None:
        if player in self.players:
            raise ValueError(f"player {player} already joined")
        if len(self.players) >= 4:
            raise ValueError("Doom supports at most four players")
        spawn = self.map.spawn_points[len(self.players) % len(self.map.spawn_points)]
        self.players[player] = initial_assets(spawn)
        self.started = True

    # ------------------------------------------------------------------
    # message handling

    def handle_message(self, src: Host, payload) -> None:
        if not isinstance(payload, EventMsg):
            raise TypeError(f"server cannot handle {type(payload).__name__}")
        sched = self.network.scheduler
        start = max(sched.now, self._cpu_free_at)
        done = start + self.compute_ms
        self._cpu_free_at = done
        sched.call_at(done, self._process, src, payload.event)

    def _process(self, src: Host, event: GameEvent) -> None:
        accepted, reason = self.validate_and_apply(event)
        self.send(src, AckMsg(seq=event.seq, accepted=accepted, reason=reason),
                  size_bytes=64)

    # ------------------------------------------------------------------
    # validation (same rules as the smart contract)

    def validate_and_apply(self, event: GameEvent) -> Tuple[bool, str]:
        try:
            self._apply(event)
        except RuleViolation as violation:
            self.events_rejected += 1
            return False, str(violation)
        self.events_validated += 1
        return True, ""

    def _apply(self, event: GameEvent) -> None:
        state = self.players.get(event.player)
        if state is None:
            raise RuleViolation(f"unknown player {event.player}")
        payload, t = event.payload, event.t_ms
        etype = event.etype
        if etype == EventType.LOCATION:
            state[AssetId.POSITION] = DoomRules.validate_move(
                state[AssetId.POSITION], payload["x"], payload["y"],
                payload.get("t", t), self.map,
            )
        elif etype == EventType.SHOOT:
            state[AssetId.AMMUNITION] = DoomRules.validate_shoot(
                state[AssetId.WEAPON], state[AssetId.AMMUNITION],
                payload.get("count", 1),
            )
        elif etype == EventType.WEAPON_CHANGE:
            state[AssetId.WEAPON] = DoomRules.validate_weapon_change(
                state[AssetId.WEAPON], payload["wid"]
            )
        elif etype == EventType.DAMAGE:
            target = self.players.get(payload.get("target", event.player))
            if target is None:
                raise RuleViolation("damage target not in this game")
            health, armor, _ = DoomRules.apply_damage(
                target[AssetId.HEALTH], target[AssetId.ARMOR],
                payload["amount"], payload.get("t", t),
            )
            target[AssetId.HEALTH] = health
            target[AssetId.ARMOR] = armor
        elif etype.startswith("pickup_"):
            self._apply_pickup(state, event)
        else:
            raise RuleViolation(f"unknown event type {etype}")

    def _apply_pickup(self, state: Dict, event: GameEvent) -> None:
        payload, t = event.payload, event.payload.get("t", event.t_ms)
        item_id = payload.get("item_id")
        if item_id is None:
            if self.strict_pickups:
                raise RuleViolation("pickup does not name a map item")
        else:
            item = self.map.item(item_id)
            DoomRules.validate_pickup(
                item, self.items_taken.get(item_id), state[AssetId.POSITION], t
            )
            self.items_taken[item_id] = {"taken_at": t}
        etype = event.etype
        if etype == EventType.PICKUP_CLIP:
            state[AssetId.AMMUNITION] = DoomRules.add_ammo(
                state[AssetId.AMMUNITION], DoomRules.CLIP_AMMO
            )
        elif etype == EventType.PICKUP_MEDKIT:
            state[AssetId.HEALTH] = DoomRules.heal(
                state[AssetId.HEALTH], DoomRules.MEDKIT_HEAL
            )
        elif etype == EventType.PICKUP_WEAPON:
            wid = payload["wid"]
            if wid not in WEAPONS:
                raise RuleViolation(f"no such weapon {wid}")
            weapon = dict(state[AssetId.WEAPON])
            owned = list(weapon.get("owned", []))
            if wid not in owned:
                owned.append(wid)
            weapon["owned"] = owned
            weapon["current"] = wid
            state[AssetId.WEAPON] = weapon
            state[AssetId.AMMUNITION] = DoomRules.add_ammo(
                state[AssetId.AMMUNITION], DoomRules.WEAPON_PICKUP_AMMO
            )
        elif etype == EventType.PICKUP_RADSUIT:
            state[AssetId.RADIATION_SUIT] = t + DoomRules.POWERUP_DURATION_MS
        elif etype == EventType.PICKUP_INVIS:
            state[AssetId.INVISIBILITY] = t + DoomRules.POWERUP_DURATION_MS
        elif etype == EventType.PICKUP_INVULN:
            health = dict(state[AssetId.HEALTH])
            health["invuln_until"] = t + DoomRules.POWERUP_DURATION_MS
            state[AssetId.HEALTH] = health
        elif etype == EventType.PICKUP_BERSERK:
            state[AssetId.BERSERK] = t + DoomRules.POWERUP_DURATION_MS
            state[AssetId.HEALTH] = DoomRules.heal(state[AssetId.HEALTH], 100)
        else:
            raise RuleViolation(f"unknown pickup {etype}")


class CSClient(Host):
    """A C/S game client: sends events, records per-event ack latency."""

    def __init__(self, name: str, region: str, server: GameServer):
        super().__init__(name, region)
        self.server = server
        self._sent_at: Dict[int, float] = {}
        self.latencies_ms: List[float] = []
        self.accepted = 0
        self.rejected = 0
        self.rejection_reasons: List[str] = []
        self.on_ack: Optional[Callable[[AckMsg, float], None]] = None

    def send_event(self, event: GameEvent) -> None:
        self._sent_at[event.seq] = self.network.scheduler.now
        self.send(self.server, EventMsg(event), size_bytes=128)

    def handle_message(self, src: Host, payload) -> None:
        if not isinstance(payload, AckMsg):
            raise TypeError(f"client cannot handle {type(payload).__name__}")
        sent = self._sent_at.pop(payload.seq, None)
        latency = self.network.scheduler.now - sent if sent is not None else 0.0
        self.latencies_ms.append(latency)
        if payload.accepted:
            self.accepted += 1
        else:
            self.rejected += 1
            self.rejection_reasons.append(payload.reason)
        if self.on_ack is not None:
            self.on_ack(payload, latency)

    @property
    def avg_latency_ms(self) -> float:
        return sum(self.latencies_ms) / len(self.latencies_ms) if self.latencies_ms else 0.0

    def pending(self) -> int:
        return len(self._sent_at)
