"""RACS baseline: Referee Anti-Cheat Scheme (Webb et al., NOSSDAV '07).

RACS is a hybrid: clients exchange updates peer-to-peer for
responsiveness, while a trusted *referee* receives every update,
simulates the game and arbitrates conflicts.  It detects the same
state-inconsistency cheats a C/S server does (the referee runs the
rules) but reintroduces a trusted intermediary — the design point the
paper's blockchain approach removes (§9.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..game.doom import DoomMap
from ..game.events import GameEvent
from ..simnet.latency import Region
from ..simnet.topology import Host
from .clientserver import AckMsg, EventMsg, GameServer

__all__ = ["Referee", "RacsPeer"]


class Referee(GameServer):
    """The RACS referee: rule validation identical to a C/S server."""

    def __init__(self, name: str = "referee", region: str = Region.DALLAS,
                 game_map: Optional[DoomMap] = None):
        super().__init__(name=name, region=region, game_map=game_map)


@dataclass(frozen=True)
class PeerUpdate:
    event: GameEvent


class RacsPeer(Host):
    """A RACS client: broadcasts updates to peers *and* to the referee.

    Peers render each other's updates optimistically as they arrive
    (low latency); the referee's verdict is authoritative and arrives
    later.  ``peer_updates`` records what this peer rendered before
    arbitration — the window in which a cheat is visible but not yet
    squelched.
    """

    def __init__(self, name: str, region: str, referee: Referee):
        super().__init__(name, region)
        self.referee = referee
        self.peers: List["RacsPeer"] = []
        self.peer_updates: List[GameEvent] = []
        self.verdicts: Dict[int, bool] = {}
        self.latencies_ms: Dict[int, float] = {}
        self._sent_at: Dict[int, float] = {}

    def connect(self, peers: List["RacsPeer"]) -> None:
        self.peers = [p for p in peers if p.name != self.name]

    def send_event(self, event: GameEvent) -> None:
        self._sent_at[event.seq] = self.network.scheduler.now
        for peer in self.peers:
            self.send(peer, PeerUpdate(event), size_bytes=128)
        self.send(self.referee, EventMsg(event), size_bytes=128)

    def handle_message(self, src: Host, payload) -> None:
        if isinstance(payload, PeerUpdate):
            self.peer_updates.append(payload.event)
        elif isinstance(payload, AckMsg):
            self.verdicts[payload.seq] = payload.accepted
            sent = self._sent_at.pop(payload.seq, None)
            if sent is not None:
                self.latencies_ms[payload.seq] = self.network.scheduler.now - sent
        else:
            raise TypeError(f"RACS peer cannot handle {type(payload).__name__}")
