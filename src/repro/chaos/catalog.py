"""Catalog runs: every scenario, optionally across worker processes.

A scenario run is a pure function of ``(scenario, seed)`` — each builds
its own simulated world — so catalog entries are embarrassingly
parallel: ``--procs N`` spreads them over N spawned workers and the
per-scenario results (timeline digests included) are identical to a
serial catalog.  This lives in a real module (not ``__main__``) because
spawn-based pickling resolves worker functions by import path.
"""

from __future__ import annotations

import fnmatch
from typing import Any, Dict, List, Optional, Tuple

from .runner import run_scenario
from .scenarios import SCENARIOS, get_scenario

__all__ = ["result_payload", "run_catalog", "select_scenarios"]


def result_payload(result) -> Dict[str, Any]:
    """The machine-readable form of one scenario result."""
    return {
        "scenario": result.scenario,
        "seed": result.seed,
        "buggy": result.buggy,
        "ok": result.ok,
        "truncated": result.truncated,
        "wall_s": result.wall_s,
        "faults_in_schedule": result.faults_in_schedule,
        "faults_applied": result.faults_applied,
        "submitted": result.submitted,
        "workload_summary": result.workload_summary,
        "probe_codes": result.probe_codes,
        "committed_height": result.committed_height,
        "timeline_digest": result.timeline_digest(),
        "network_stats": result.network_stats,
        "violations": [v.describe() for v in result.violations],
    }


def select_scenarios(patterns: List[str]) -> List[str]:
    """Scenario names matching any shell-style glob, in name order."""
    return sorted(
        name for name in SCENARIOS
        if any(fnmatch.fnmatch(name, pattern) for pattern in patterns)
    )


def _run_entry(item: Tuple[str, int, Optional[float]]) -> Dict[str, Any]:
    name, seed, max_wall_s = item
    result = run_scenario(get_scenario(name), seed, max_wall_s=max_wall_s)
    return result_payload(result)


def run_catalog(
    names: List[str],
    seed: int,
    procs: int = 1,
    max_wall_s: Optional[float] = None,
) -> Dict[str, Any]:
    """Run the named scenarios and return the catalog record.

    The record maps scenario name to its result payload, in name order
    regardless of ``procs`` or worker completion order.
    """
    if procs < 1:
        raise ValueError("need at least one process")
    items = [(name, seed, max_wall_s) for name in sorted(names)]
    if procs > 1:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        # spawn (not fork): workers start from clean interpreters, so a
        # parallel catalog cannot inherit warmed caches or scheduler
        # state the serial catalog would not have.
        ctx = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(
            max_workers=min(procs, len(items)), mp_context=ctx
        ) as pool:
            # pool.map preserves submission order: output stays sorted
            # by scenario name no matter which worker finishes first.
            payloads = list(pool.map(_run_entry, items))
    else:
        payloads = [_run_entry(item) for item in items]
    return {
        "seed": seed,
        "procs": procs,
        "scenarios": {p["scenario"]: p for p in payloads},
    }
