"""The chaos scenario runner: build, injure, heal, verify, shrink.

One :func:`run_scenario` call is a complete experiment:

1. build a fresh deployment (:class:`BlockchainNetwork`) from the seed;
2. install the deterministic counter workload and the
   :class:`~repro.chaos.invariants.InvariantMonitor`;
3. optionally break a peer with a fixture from :mod:`repro.chaos.buggy`;
4. draw the scenario's :class:`FaultSchedule` from the seed and inject
   it through the :class:`~repro.chaos.injector.FaultInjector`;
5. at the fault horizon, lift everything, submit liveness probes and
   run the network to quiescence;
6. check convergence and report every violation plus a canonical digest
   of the run's event timeline (the determinism witness).

When a run fails, :func:`shrink_failing_schedule` replays ever-shorter
fault prefixes to find the *minimal* failing one, and the CLI prints the
exact command that reproduces it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from ..blockchain.config import FabricConfig
from ..blockchain.crypto import canonical_digest
from ..blockchain.network import BlockchainNetwork
from ..blockchain.transaction import TxValidationCode
from .buggy import install_catchup_corruption, install_mvcc_bypass
from .faults import FaultSchedule
from .injector import FaultInjector
from .invariants import CounterConservation, InvariantMonitor, Violation
from .scenarios import Scenario, get_scenario
from .workload import CounterWorkload

__all__ = ["ChaosResult", "ShrinkReport", "BUGGY_FIXTURES",
           "run_scenario", "shrink_failing_schedule", "replay_command"]


#: Named intentionally-buggy deployments: fixture name -> installer that
#: receives the freshly built chain.
BUGGY_FIXTURES: Dict[str, Callable[[BlockchainNetwork], None]] = {
    # A platform-wide MVCC regression: every peer skips conflict checks.
    "mvcc-bypass": lambda chain: [
        install_mvcc_bypass(peer) for peer in chain.peers
    ],
    # One peer whose gap-recovery path re-applies rejected writes; only
    # observable once a fault forces it through catch-up.
    "catchup-corruption": lambda chain: install_catchup_corruption(chain.peers[1]),
}


@dataclass
class ChaosResult:
    """Everything one chaos run produced."""

    scenario: str
    seed: int
    buggy: Optional[str]
    faults_in_schedule: int
    faults_applied: int
    violations: List[Violation]
    timeline: List[list] = field(default_factory=list)
    workload_summary: Dict[str, int] = field(default_factory=dict)
    probe_codes: List[str] = field(default_factory=list)
    submitted: int = 0
    committed_height: int = 0
    network_stats: Dict[str, int] = field(default_factory=dict)
    schedule: Optional[FaultSchedule] = None
    #: True when a ``max_wall_s`` budget expired before the scenario
    #: finished — the run's results are partial and not comparable.
    truncated: bool = False
    #: Host wall-clock seconds the simulation loop consumed (only
    #: measured when a ``max_wall_s`` budget was given, else 0.0).
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def timeline_digest(self) -> str:
        """Canonical digest of the full event timeline — two runs are
        *the same run* iff their digests match."""
        return canonical_digest({"seed": self.seed, "timeline": self.timeline})

    def describe(self) -> List[str]:
        lines = [
            f"scenario={self.scenario} seed={self.seed}"
            + (f" buggy={self.buggy}" if self.buggy else "")
            + (f" TRUNCATED after {self.wall_s:.1f}s wall" if self.truncated else ""),
            f"faults: {self.faults_applied}/{self.faults_in_schedule} applied",
            f"workload: {self.submitted} submitted, outcomes {self.workload_summary}",
            f"probes: {self.probe_codes}",
            f"committed height: {self.committed_height}",
            f"timeline: {len(self.timeline)} events, digest {self.timeline_digest()[:16]}",
        ]
        if self.ok:
            lines.append("invariants: all green")
        else:
            lines.append(f"invariants: {len(self.violations)} violation(s)")
            lines.extend(f"  {v.describe()}" for v in self.violations)
        return lines


#: Events fired between wall-clock checks under a ``max_wall_s`` budget.
#: Large enough that the ``perf_counter`` call is noise, small enough
#: that overshoot past the budget stays well under a second.
_WALL_CHECK_EVERY = 20_000

#: Backstop matching :meth:`Scheduler.run_until_idle`'s default.
_MAX_TOTAL_EVENTS = 10_000_000


def _run_budgeted(scheduler, deadline: float, until: Optional[float]) -> bool:
    """Run the scheduler in event chunks, checking the wall clock between
    chunks.  Returns True when the phase completed (queue drained or
    ``until`` reached), False when the ``deadline`` expired first.

    Only used when a budget was requested: the unbudgeted path stays the
    exact event loop the golden determinism record was taken on (the sim
    results are identical either way — chunking never reorders events —
    but the unchunked loop is faster and simpler to reason about).
    """
    total = 0
    while True:
        if time.perf_counter() >= deadline:
            return False
        before = scheduler.events_processed
        scheduler.run(until=until, max_events=_WALL_CHECK_EVERY)
        fired = scheduler.events_processed - before
        total += fired
        if fired < _WALL_CHECK_EVERY:
            return True  # run() hit its natural end, not the chunk cap
        if total >= _MAX_TOTAL_EVENTS:
            raise RuntimeError(
                f"simulation did not quiesce within {_MAX_TOTAL_EVENTS} events"
            )


def run_scenario(
    scenario: Union[str, Scenario],
    seed: int,
    max_faults: Optional[int] = None,
    buggy: Optional[str] = None,
    record_timeline: bool = True,
    telemetry=None,
    max_wall_s: Optional[float] = None,
    config: Optional[FabricConfig] = None,
) -> ChaosResult:
    """Run one seeded chaos experiment end to end.

    Args:
        scenario: catalog name or an explicit :class:`Scenario`.
        seed: drives deployment placement, workload and fault schedule.
        max_faults: truncate the schedule to its first ``max_faults``
            injections — the replay/shrink hook.
        buggy: name of a :data:`BUGGY_FIXTURES` entry to install.
        record_timeline: keep the per-event timeline (disabled inside the
            shrinker's inner loop, where only pass/fail matters).
        telemetry: optional :class:`repro.telemetry.Telemetry` to wire
            through the deployment and the injector.  Purely host-side:
            the simulated results are identical with and without.
        max_wall_s: host wall-clock budget in seconds.  When it expires
            the run stops in-process and returns with ``truncated=True``
            and whatever was recorded so far; convergence/liveness are
            not judged on a partial run.
        config: override the :class:`FabricConfig` (the scenario's
            ``max_block_txs`` is applied on top).  Used e.g. to pin that
            the advisory ``conflict_planner`` flag cannot change results.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    if scenario.n_shards > 1:
        # Multi-shard scenarios swap the deployment and workload for
        # their sharded twins; imported lazily so single-chain runs
        # never load the sharding stack.
        from .sharded import run_sharded_scenario

        return run_sharded_scenario(
            scenario, seed,
            max_faults=max_faults, buggy=buggy,
            record_timeline=record_timeline, telemetry=telemetry,
            max_wall_s=max_wall_s, config=config,
        )
    if buggy is not None and buggy not in BUGGY_FIXTURES:
        known = ", ".join(sorted(BUGGY_FIXTURES))
        raise KeyError(f"unknown buggy fixture {buggy!r}; known: {known}")

    if config is None:
        config = FabricConfig(max_block_txs=scenario.max_block_txs)
    else:
        config = config.with_options(max_block_txs=scenario.max_block_txs)
    chain = BlockchainNetwork(
        n_peers=scenario.n_peers,
        seed=seed,
        config=config,
    )
    if telemetry is not None:
        # Before the workload installs: its clients then inherit the
        # telemetry through BlockchainNetwork.create_client.
        telemetry.instrument_chain(chain)
    timeline: List[list] = []

    def record(kind: str, *fields) -> None:
        if record_timeline:
            timeline.append([kind, round(chain.now, 3), *fields])

    workload = CounterWorkload(
        chain,
        duration_ms=scenario.duration_ms,
        interval_ms=scenario.workload_interval_ms,
        n_counters=scenario.n_counters,
        conflict_every=scenario.conflict_every,
        seed=seed,
    ).install()

    monitor = InvariantMonitor(
        chain,
        asset_invariants=(CounterConservation(),),
        deep=True,
        on_commit=lambda t, peer, height, state_hash: record(
            "commit", peer, height, state_hash
        ),
    ).attach()

    if buggy is not None:
        BUGGY_FIXTURES[buggy](chain)

    schedule = scenario.build_schedule(seed, chain.peer_names(), chain.orderer.name)
    if max_faults is not None:
        schedule = schedule.prefix(max_faults)
    injector = FaultInjector(
        chain,
        schedule,
        on_fault=lambda t, kind, targets: record("fault", kind, list(targets)),
    ).install()
    if telemetry is not None:
        injector.telemetry = telemetry

    # Fault phase, then heal-and-settle, then liveness probes.
    truncated = False
    wall_start = time.perf_counter()
    if max_wall_s is None:
        chain.run(until=scenario.duration_ms)
        injector.lift_all()
        chain.run(until=scenario.duration_ms + scenario.settle_ms)
        workload.submit_probes()
        chain.run_until_idle()
    else:
        deadline = wall_start + max_wall_s
        sched = chain.net.scheduler
        if _run_budgeted(sched, deadline, until=scenario.duration_ms):
            injector.lift_all()
            if _run_budgeted(
                sched, deadline, until=scenario.duration_ms + scenario.settle_ms
            ):
                workload.submit_probes()
                truncated = not _run_budgeted(sched, deadline, until=None)
            else:
                truncated = True
        else:
            truncated = True
    wall_s = time.perf_counter() - wall_start

    if not truncated:
        # Convergence and liveness are end-of-run judgements; a
        # wall-clock-truncated run never reached its end.
        monitor.check_convergence()
        for index, code in enumerate(workload.probe_codes):
            if code != TxValidationCode.VALID:
                monitor._record(
                    "liveness", "wl-probe",
                    f"post-heal probe {index} ended {code}, expected VALID",
                )
        if len(workload.probe_codes) < 3:
            monitor._record(
                "liveness", "wl-probe",
                f"only {len(workload.probe_codes)} of 3 probes completed",
            )

    return ChaosResult(
        scenario=scenario.name,
        seed=seed,
        buggy=buggy,
        faults_in_schedule=len(schedule),
        faults_applied=injector.faults_applied,
        violations=list(monitor.violations),
        timeline=timeline,
        workload_summary=workload.summary(),
        probe_codes=list(workload.probe_codes),
        submitted=workload.submitted,
        committed_height=max(p.committed_height for p in chain.peers),
        network_stats=chain.net.stats.as_dict(),
        schedule=schedule,
        truncated=truncated,
        wall_s=round(wall_s, 3) if max_wall_s is not None else 0.0,
    )


def replay_command(
    scenario: str, seed: int, faults: Optional[int] = None,
    buggy: Optional[str] = None,
) -> str:
    """The exact CLI invocation that reproduces a run."""
    cmd = f"python -m repro.chaos --seed {seed} --scenario {scenario}"
    if faults is not None:
        cmd += f" --faults {faults}"
    if buggy is not None:
        cmd += f" --buggy {buggy}"
    return cmd


@dataclass
class ShrinkReport:
    """Outcome of shrinking a failing schedule to a minimal prefix."""

    scenario: str
    seed: int
    buggy: Optional[str]
    full_faults: int
    #: None when the full run already passed (nothing to shrink).
    minimal_faults: Optional[int]
    minimal_schedule: Optional[FaultSchedule]
    violations: List[Violation]
    runs: int

    @property
    def failed(self) -> bool:
        return self.minimal_faults is not None

    def replay(self) -> Optional[str]:
        if not self.failed:
            return None
        return replay_command(
            self.scenario, self.seed, faults=self.minimal_faults, buggy=self.buggy
        )

    def describe(self) -> List[str]:
        if not self.failed:
            return ["nothing to shrink: full schedule passed"]
        lines = [
            f"minimal failing prefix: {self.minimal_faults} of "
            f"{self.full_faults} fault(s) ({self.runs} replays)",
        ]
        if self.minimal_schedule is not None:
            lines.extend(f"  {line}" for line in self.minimal_schedule.describe())
        lines.append(f"replay: {self.replay()}")
        return lines


def shrink_failing_schedule(
    scenario: Union[str, Scenario],
    seed: int,
    buggy: Optional[str] = None,
    full_result: Optional[ChaosResult] = None,
) -> ShrinkReport:
    """Find the smallest fault prefix that still fails.

    Replays the scenario with ``prefix(k)`` for ``k = 0, 1, …`` and
    returns the first failing ``k`` — by construction the minimal
    failing prefix under the schedule's time order.  ``k = 0`` failing
    means the bug needs no faults at all.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    runs = 0
    if full_result is None:
        full_result = run_scenario(
            scenario, seed, buggy=buggy, record_timeline=False
        )
        runs += 1
    total = full_result.faults_in_schedule
    if full_result.ok:
        return ShrinkReport(
            scenario=scenario.name, seed=seed, buggy=buggy, full_faults=total,
            minimal_faults=None, minimal_schedule=None, violations=[], runs=runs,
        )
    minimal, violations, schedule = total, full_result.violations, full_result.schedule
    for k in range(total):
        result = run_scenario(
            scenario, seed, max_faults=k, buggy=buggy, record_timeline=False
        )
        runs += 1
        if not result.ok:
            minimal, violations, schedule = k, result.violations, result.schedule
            break
    return ShrinkReport(
        scenario=scenario.name, seed=seed, buggy=buggy, full_faults=total,
        minimal_faults=minimal, minimal_schedule=schedule,
        violations=list(violations), runs=runs,
    )
