"""Deterministic chaos harness for the execute-order-validate pipeline.

Seeded fault schedules (:mod:`repro.chaos.faults`) are injected into a
live simulated deployment (:mod:`repro.chaos.injector`) while safety and
liveness invariants are checked independently of the implementation
under test (:mod:`repro.chaos.invariants`).  The scenario runner
(:mod:`repro.chaos.runner`, CLI via ``python -m repro.chaos``) shrinks a
failing schedule to a minimal fault prefix and prints the command that
replays it.
"""

from .faults import FaultEvent, FaultKind, FaultSchedule
from .injector import FaultInjector
from .invariants import (
    AssetInvariant,
    CounterConservation,
    DoomAssetBounds,
    InvariantMonitor,
    MonopolyConservation,
    Violation,
)
from .runner import (
    BUGGY_FIXTURES,
    ChaosResult,
    ShrinkReport,
    replay_command,
    run_scenario,
    shrink_failing_schedule,
)
from .scenarios import SCENARIOS, Scenario, get_scenario
from .workload import ChaosCounterContract, CounterWorkload

__all__ = [
    "FaultEvent",
    "FaultKind",
    "FaultSchedule",
    "FaultInjector",
    "AssetInvariant",
    "CounterConservation",
    "DoomAssetBounds",
    "MonopolyConservation",
    "InvariantMonitor",
    "Violation",
    "BUGGY_FIXTURES",
    "ChaosResult",
    "ShrinkReport",
    "replay_command",
    "run_scenario",
    "shrink_failing_schedule",
    "SCENARIOS",
    "Scenario",
    "get_scenario",
    "ChaosCounterContract",
    "CounterWorkload",
]
