"""CLI entry point: ``python -m repro.chaos --seed 42 --scenario churn-partition-ddos``.

Runs one seeded chaos experiment, prints the injected schedule, the
invariant verdict and the timeline digest.  On failure it automatically
shrinks the schedule to a minimal failing prefix (unless ``--faults``
was given — that *is* the replay mode) and prints the replay command.
Exit status is 0 iff every invariant held.
"""

from __future__ import annotations

import argparse
import json
import sys

from .runner import (
    BUGGY_FIXTURES,
    replay_command,
    run_scenario,
    shrink_failing_schedule,
)
from .scenarios import SCENARIOS, get_scenario


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Seeded chaos testing for the execute-order-validate "
        "pipeline: fault injection, invariant checking, schedule shrinking.",
    )
    parser.add_argument("--seed", type=int, default=42, help="run seed")
    parser.add_argument(
        "--scenario", default="churn-partition-ddos",
        help="scenario name (see --list)",
    )
    parser.add_argument(
        "--faults", type=int, default=None, metavar="K",
        help="replay only the first K faults of the schedule",
    )
    parser.add_argument(
        "--buggy", default=None, choices=sorted(BUGGY_FIXTURES),
        help="install an intentionally-buggy peer fixture",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="on failure, skip shrinking to a minimal prefix",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="machine-readable result on stdout",
    )
    parser.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(SCENARIOS):
            scenario = SCENARIOS[name]
            print(f"{name:22s} {scenario.description}")
        return 0

    try:
        scenario = get_scenario(args.scenario)
    except KeyError as exc:
        parser.error(str(exc))

    result = run_scenario(
        scenario, args.seed, max_faults=args.faults, buggy=args.buggy
    )

    if args.as_json:
        payload = {
            "scenario": result.scenario,
            "seed": result.seed,
            "buggy": result.buggy,
            "ok": result.ok,
            "faults_in_schedule": result.faults_in_schedule,
            "faults_applied": result.faults_applied,
            "submitted": result.submitted,
            "workload_summary": result.workload_summary,
            "probe_codes": result.probe_codes,
            "committed_height": result.committed_height,
            "timeline_digest": result.timeline_digest(),
            "network_stats": result.network_stats,
            "violations": [v.describe() for v in result.violations],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"# schedule ({result.faults_in_schedule} faults)")
        for line in result.schedule.describe():
            print(f"  {line}")
        print("# result")
        for line in result.describe():
            print(f"  {line}")

    if result.ok:
        return 0

    if args.faults is None and not args.no_shrink:
        print("# shrinking failing schedule ...", file=sys.stderr)
        report = shrink_failing_schedule(
            scenario, args.seed, buggy=args.buggy, full_result=result
        )
        for line in report.describe():
            print(f"  {line}", file=sys.stderr)
    else:
        print(
            "  replay: "
            + replay_command(
                result.scenario, result.seed, faults=args.faults, buggy=args.buggy
            ),
            file=sys.stderr,
        )
    return 1


if __name__ == "__main__":
    sys.exit(main())
