"""CLI entry point: ``python -m repro.chaos --seed 42 --scenario churn-partition-ddos``.

Runs one seeded chaos experiment, prints the injected schedule, the
invariant verdict and the timeline digest.  On failure it automatically
shrinks the schedule to a minimal failing prefix (unless ``--faults``
was given — that *is* the replay mode) and prints the replay command.

``--catalog [GLOB ...]`` runs every matching scenario instead, one
status/digest line each; ``--procs N`` spreads the catalog over N
spawned worker processes with bit-identical digests (scenarios are
independent seeded worlds, so this is embarrassingly parallel).

Exit status:

* ``0`` — every invariant held;
* ``1`` — at least one invariant violation (or bad usage via argparse's
  own ``2``);
* ``3`` — the ``--max-wall-s`` budget expired before the scenario
  finished.  The run is *truncated*, not failed: no verdict was
  reached, shrinking is skipped, and CI should treat it as an
  infrastructure timeout rather than a regression.
"""

from __future__ import annotations

import argparse
import json
import sys

from .catalog import result_payload, run_catalog, select_scenarios
from .runner import (
    BUGGY_FIXTURES,
    replay_command,
    run_scenario,
    shrink_failing_schedule,
)
from .scenarios import SCENARIOS, get_scenario

#: Exit status for a run stopped by ``--max-wall-s`` (see module doc).
EXIT_TRUNCATED = 3


def _catalog_main(args, parser) -> int:
    names = select_scenarios(args.catalog if args.catalog else ["*"])
    if not names:
        parser.error(f"no scenario matches {args.catalog} (see --list)")
    catalog = run_catalog(
        names, args.seed, procs=args.procs, max_wall_s=args.max_wall_s
    )
    payloads = [catalog["scenarios"][name] for name in names]
    if args.record is not None:
        with open(args.record, "w", encoding="utf-8") as fh:
            json.dump(catalog, fh, indent=2, sort_keys=True)
    if args.as_json:
        print(json.dumps(catalog, indent=2, sort_keys=True))
    else:
        width = max(len(p["scenario"]) for p in payloads)
        for p in payloads:
            status = (
                "TRUNCATED" if p["truncated"] else "ok" if p["ok"] else "FAIL"
            )
            print(
                f"{p['scenario']:<{width}s}  {status:<9s} "
                f"faults={p['faults_applied']:<3d} "
                f"digest={p['timeline_digest']}"
            )
    if any(p["truncated"] for p in payloads):
        return EXIT_TRUNCATED
    return 0 if all(p["ok"] for p in payloads) else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Seeded chaos testing for the execute-order-validate "
        "pipeline: fault injection, invariant checking, schedule shrinking.",
    )
    parser.add_argument("--seed", type=int, default=42, help="run seed")
    parser.add_argument(
        "--scenario", default="churn-partition-ddos",
        help="scenario name (see --list)",
    )
    parser.add_argument(
        "--faults", type=int, default=None, metavar="K",
        help="replay only the first K faults of the schedule",
    )
    parser.add_argument(
        "--buggy", default=None, choices=sorted(BUGGY_FIXTURES),
        help="install an intentionally-buggy peer fixture",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="on failure, skip shrinking to a minimal prefix",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="machine-readable result on stdout",
    )
    parser.add_argument(
        "--record", default=None, metavar="PATH",
        help="write the machine-readable result to PATH as JSON "
        "(CI uploads it as an artifact on failure)",
    )
    parser.add_argument(
        "--trace", nargs="?", const="chaos_trace.jsonl", default=None,
        metavar="PATH",
        help="enable telemetry and dump the lifecycle trace as JSON "
        "Lines (default: chaos_trace.jsonl)",
    )
    parser.add_argument(
        "--max-wall-s", type=float, default=None, metavar="S",
        help="stop the run in-process after S wall-clock seconds and "
        f"exit {EXIT_TRUNCATED} (replaces wrapping the CLI in a shell "
        "timeout, which loses the partial record)",
    )
    parser.add_argument(
        "--catalog", nargs="*", default=None, metavar="GLOB",
        help="run every scenario matching the shell-style globs (all "
        "scenarios when no glob is given) instead of a single "
        "--scenario; prints one status/digest line per scenario in "
        "name order and exits non-zero if any failed",
    )
    parser.add_argument(
        "--procs", type=int, default=1, metavar="N",
        help="with --catalog: run scenarios across N spawned worker "
        "processes; results (digests included) are identical to a "
        "serial catalog, only wall time changes (default: 1)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(SCENARIOS):
            scenario = SCENARIOS[name]
            print(f"{name:22s} {scenario.description}")
        return 0

    if args.catalog is not None:
        return _catalog_main(args, parser)
    if args.procs != 1:
        parser.error("--procs requires --catalog (one scenario is one world)")

    try:
        scenario = get_scenario(args.scenario)
    except KeyError as exc:
        parser.error(str(exc))

    telemetry = None
    if args.trace is not None:
        from ..telemetry import Telemetry

        telemetry = Telemetry()

    result = run_scenario(
        scenario, args.seed, max_faults=args.faults, buggy=args.buggy,
        telemetry=telemetry, max_wall_s=args.max_wall_s,
    )

    if telemetry is not None:
        from ..telemetry import format_stage_summary, stage_summary, write_trace_jsonl

        n_records = write_trace_jsonl(telemetry, args.trace)
        print(f"# trace: {n_records} records -> {args.trace}", file=sys.stderr)
        for line in format_stage_summary(stage_summary(telemetry)):
            print(f"  {line}", file=sys.stderr)

    if args.record is not None:
        with open(args.record, "w", encoding="utf-8") as fh:
            json.dump(result_payload(result), fh, indent=2, sort_keys=True)

    if args.as_json:
        print(json.dumps(result_payload(result), indent=2, sort_keys=True))
    else:
        print(f"# schedule ({result.faults_in_schedule} faults)")
        for line in result.schedule.describe():
            print(f"  {line}")
        print("# result")
        for line in result.describe():
            print(f"  {line}")

    if result.truncated:
        print(
            f"# truncated by --max-wall-s {args.max_wall_s} after "
            f"{result.wall_s:.1f}s; no invariant verdict",
            file=sys.stderr,
        )
        return EXIT_TRUNCATED

    if result.ok:
        return 0

    if args.faults is None and not args.no_shrink:
        print("# shrinking failing schedule ...", file=sys.stderr)
        report = shrink_failing_schedule(
            scenario, args.seed, buggy=args.buggy, full_result=result
        )
        for line in report.describe():
            print(f"  {line}", file=sys.stderr)
    else:
        print(
            "  replay: "
            + replay_command(
                result.scenario, result.seed, faults=args.faults, buggy=args.buggy
            ),
            file=sys.stderr,
        )
    return 1


if __name__ == "__main__":
    sys.exit(main())
