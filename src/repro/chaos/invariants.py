"""Safety and liveness invariants checked while chaos runs.

The :class:`InvariantMonitor` hooks every peer's ledger (the
``Ledger.on_append`` observer) and re-derives, independently of the
implementation under test:

* **ledger prefix consistency** — all peers that committed height ``h``
  committed the *identical* block, and arrived at the identical
  post-commit state hash;
* **MVCC serializability** — no committed-valid transaction read a key
  at a version other than the one produced by the previous blocks, nor a
  key written earlier in its own block (a shadow version map is replayed
  per peer, so a ledger whose own MVCC check was broken is caught);
* **asset conservation** — pluggable per-game checks
  (:class:`CounterConservation`, :class:`DoomAssetBounds`,
  :class:`MonopolyConservation`) that replay committed transactions by
  the *rules* of the game and compare against the world state, mapping
  directly onto the paper's cheat classes (illegal asset mutation);
* **eventual convergence** — after faults are lifted and the network
  quiesces, every reachable peer agrees on height and state
  (:meth:`InvariantMonitor.check_convergence`).

Violations are collected, not raised: a chaos run always completes and
then reports everything it saw, which is what the shrinker needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..blockchain.state import Version, WorldState
from ..blockchain.transaction import TxValidationCode
from ..game.assets import ASSETS
from ..game.monopoly import BOARD_SIZE, GO_SALARY, STARTING_CURRENCY

__all__ = [
    "Violation",
    "AssetInvariant",
    "CounterConservation",
    "DoomAssetBounds",
    "MonopolyConservation",
    "InvariantMonitor",
]


@dataclass(frozen=True)
class Violation:
    """One observed invariant breach."""

    at_ms: float
    invariant: str
    peer: str
    detail: str

    def describe(self) -> str:
        return f"t={self.at_ms:.1f} [{self.invariant}] {self.peer}: {self.detail}"


class AssetInvariant:
    """Base for per-game conservation checks.

    ``on_append`` is called for every committed block at every peer and
    returns a human-readable breach description, or None when the
    invariant holds.  Implementations keep per-peer replay state keyed
    by peer name, because each peer commits its own stream.
    """

    name = "asset"

    def on_append(self, peer_name: str, peer, block, executions, codes) -> Optional[str]:
        raise NotImplementedError


class CounterConservation(AssetInvariant):
    """Counters equal the sum of their committed-valid deltas.

    Replays ``init/add/sub`` *arguments* — not the contract — so a
    tampered contract (or a ledger applying rejected writes) shows up as
    a mismatch between the replayed total and the world state.
    """

    name = "counter-conservation"

    def __init__(self, contract: str = "chaoscounter", key_prefix: str = "ctr/"):
        self.contract = contract
        self.key_prefix = key_prefix
        self._expected: Dict[str, Dict[str, int]] = {}

    def on_append(self, peer_name, peer, block, executions, codes) -> Optional[str]:
        expected = self._expected.setdefault(peer_name, {})
        for tx, code in zip(block.transactions, codes):
            if code != TxValidationCode.VALID:
                continue
            if tx.proposal.contract != self.contract:
                continue
            function = tx.proposal.function
            args = tx.proposal.args
            if function == "init":
                expected[f"{self.key_prefix}{args[0]}"] = 0
            elif function == "add":
                expected[f"{self.key_prefix}{args[0]}"] += int(args[1])
            elif function == "sub":
                expected[f"{self.key_prefix}{args[0]}"] -= int(args[1])
        for key, value in expected.items():
            if value < 0:
                return f"counter {key} replay went negative ({value})"
            actual = peer.ledger.state.get(key)
            if actual != value:
                return f"counter {key} is {actual}, committed deltas say {value}"
        return None


class DoomAssetBounds(AssetInvariant):
    """Committed Doom state stays inside the legal asset envelope:
    health/armor/ammo within the bounds of :data:`repro.game.assets.ASSETS`
    (the envelope every built-in Doom cheat violates)."""

    name = "doom-asset-bounds"

    def on_append(self, peer_name, peer, block, executions, codes) -> Optional[str]:
        state = peer.ledger.state
        for key in state.keys():
            if not key.startswith("asset/"):
                continue
            try:
                aid = int(key.rsplit("/", 1)[1])
            except ValueError:
                continue
            definition = ASSETS.get(aid)
            if definition is None:
                continue
            value = state.get(key)
            if aid == 1:  # health: structured {"hp": ...}
                value = value.get("hp") if isinstance(value, dict) else value
            if not isinstance(value, (int, float)):
                continue
            if not definition.in_bounds(value):
                return (
                    f"{key}={value} outside [{definition.minimum}, "
                    f"{definition.maximum}]"
                )
        return None


class MonopolyConservation(AssetInvariant):
    """Money is conserved: currency only enters the game via GO salaries
    and only leaves into purchased property.

    Replays committed-valid ``addPlayer``/``roll`` transactions to count
    players and GO crossings, then checks::

        sum(currency) + sum(owned property prices)
            == players * 1500 + crossings * 200

    Rent is a pure transfer and cancels out; a duplicated, dropped or
    re-applied transaction breaks the identity immediately.
    """

    name = "monopoly-conservation"

    def __init__(self):
        self._replay: Dict[str, Dict] = {}

    def on_append(self, peer_name, peer, block, executions, codes) -> Optional[str]:
        replay = self._replay.setdefault(
            peer_name, {"players": 0, "crossings": 0, "location": {}}
        )
        for tx, code in zip(block.transactions, codes):
            if code != TxValidationCode.VALID or tx.proposal.contract != "monopoly":
                continue
            function = tx.proposal.function
            creator = tx.proposal.creator
            if function == "addPlayer":
                replay["players"] += 1
                replay["location"][creator] = 0
            elif function == "roll":
                payload = dict(tx.proposal.args[0]) if tx.proposal.args else {}
                dice = tuple(payload.get("dice", ()))
                if len(dice) != 2:
                    continue
                steps = sum(dice)
                old = replay["location"].get(creator, 0)
                new = (old + steps) % BOARD_SIZE
                if new < old:
                    replay["crossings"] += 1
                replay["location"][creator] = new

        state = peer.ledger.state
        currency = 0
        locked_in_property = 0
        for key in state.keys():
            if key.startswith("mp/player/"):
                currency += state.get(key)["currency"]
                if state.get(key)["currency"] < 0:
                    return f"{key} has negative currency"
            elif key.startswith("mp/property/"):
                record = state.get(key)
                if record and record.get("owner") is not None:
                    locked_in_property += record.get("price", 0)
        expected = (
            replay["players"] * STARTING_CURRENCY + replay["crossings"] * GO_SALARY
        )
        if currency + locked_in_property != expected:
            return (
                f"money not conserved: currency={currency} + "
                f"property={locked_in_property} != expected={expected} "
                f"({replay['players']} players, {replay['crossings']} GO crossings)"
            )
        return None


class InvariantMonitor:
    """Watches every peer's commits and records invariant breaches.

    Args:
        chain: the :class:`~repro.blockchain.network.BlockchainNetwork`.
        asset_invariants: extra per-game conservation checks.
        deep: also compare post-commit state hashes across peers at every
            height (O(state) per commit; exactly what catches a peer
            whose ledger silently diverged).
        on_commit: optional observer ``(sim_ms, peer, height, state_hash)``
            for timeline recording.
    """

    def __init__(
        self,
        chain,
        asset_invariants: Tuple[AssetInvariant, ...] = (),
        deep: bool = True,
        on_commit=None,
    ):
        self.chain = chain
        self.asset_invariants = tuple(asset_invariants)
        self.deep = deep
        self.on_commit = on_commit
        self.violations: List[Violation] = []
        self.commits_checked = 0
        #: Per-peer shadow ledger: a version-only :class:`WorldState`
        #: replayed independently of the implementation under test.
        self._shadow: Dict[str, WorldState] = {}
        self._block_digest_at: Dict[int, str] = {}
        self._state_hash_at: Dict[int, str] = {}
        self._attached = False

    # ------------------------------------------------------------------

    def attach(self) -> "InvariantMonitor":
        if self._attached:
            raise RuntimeError("monitor already attached")
        self._attached = True
        for peer in self.chain.peers:
            self._shadow[peer.name] = WorldState()
            peer.ledger.on_append = self._make_hook(peer)
        return self

    def _make_hook(self, peer):
        def hook(block, executions, codes):
            self._on_append(peer, block, executions, codes)

        return hook

    @property
    def ok(self) -> bool:
        return not self.violations

    def _record(self, invariant: str, peer: str, detail: str) -> None:
        self.violations.append(
            Violation(self.chain.now, invariant, peer, detail)
        )

    # ------------------------------------------------------------------
    # per-commit checks

    def _on_append(self, peer, block, executions, codes) -> None:
        self.commits_checked += 1
        name = peer.name

        # 1. prefix consistency: same height ⇒ same block, everywhere.
        digest = block.digest()
        first = self._block_digest_at.setdefault(block.number, digest)
        if digest != first:
            self._record(
                "prefix-consistency", name,
                f"block {block.number} digest {digest[:12]} != first-seen {first[:12]}",
            )

        # 2. MVCC serializability against an independently replayed
        #    shadow ledger: a version-only WorldState per peer, with the
        #    current block's writes staged in a copy-on-write overlay so
        #    the read checks witness the pre-block committed versions.
        shadow = self._shadow.setdefault(name, WorldState())
        overlay = shadow.overlay()
        written: Dict[str, int] = {}
        for index, (execution, code) in enumerate(zip(executions, codes)):
            if code != TxValidationCode.VALID:
                continue
            for key, observed in execution.rwset.reads:
                if overlay.has_local(key):
                    self._record(
                        "mvcc", name,
                        f"block {block.number} tx {index} read {key!r} written by "
                        f"tx {written[key]} of the same block",
                    )
                else:
                    committed = shadow.version_of(key)
                    committed_t = (
                        committed.to_tuple() if committed is not None else None
                    )
                    if committed_t != observed:
                        self._record(
                            "mvcc", name,
                            f"block {block.number} tx {index} read {key!r} at "
                            f"version {observed}, shadow ledger says {committed_t}",
                        )
            for key, _ in execution.rwset.writes:
                if overlay.has_local(key):
                    self._record(
                        "mvcc", name,
                        f"block {block.number} tx {index} rewrote {key!r} already "
                        f"written by tx {written[key]} of the same block",
                    )
            # Only now make this transaction's writes visible to the ones
            # after it: the read checks above must see the pre-tx view.
            for key, _ in execution.rwset.writes:
                written.setdefault(key, index)
                overlay.put(key, None, Version(block.number, index))
        overlay.commit_to_base()

        # 3. state-hash agreement at equal heights.
        state_hash = None
        if self.deep:
            state_hash = peer.ledger.state_hash()
            first_hash = self._state_hash_at.setdefault(block.number, state_hash)
            if state_hash != first_hash:
                self._record(
                    "state-divergence", name,
                    f"state hash at height {block.number} is {state_hash[:12]}, "
                    f"first-seen {first_hash[:12]}",
                )

        # 4. game-level conservation.
        for invariant in self.asset_invariants:
            breach = invariant.on_append(name, peer, block, executions, codes)
            if breach:
                self._record(invariant.name, name, breach)

        if self.on_commit is not None:
            self.on_commit(
                self.chain.now, name, block.number,
                state_hash if state_hash is not None else digest,
            )

    # ------------------------------------------------------------------
    # end-of-run checks

    def check_convergence(self) -> List[Violation]:
        """After faults are lifted and the network quiesced: every
        reachable, honest peer must agree on committed height, synced
        height and state hash, with an intact hash chain."""
        before = len(self.violations)
        reachable = [
            p for p in self.chain.peers if not self.chain.net.condition(p.name).down
        ]
        if not reachable:
            self._record("convergence", "-", "no reachable peers at end of run")
            return self.violations[before:]
        heights = {p.committed_height for p in reachable}
        if len(heights) != 1:
            detail = ", ".join(f"{p.name}={p.committed_height}" for p in reachable)
            self._record("convergence", "-", f"committed heights diverge: {detail}")
        hashes = {p.ledger.state_hash() for p in reachable}
        if len(hashes) != 1:
            self._record(
                "convergence", "-",
                f"{len(hashes)} distinct state hashes across reachable peers",
            )
        for peer in reachable:
            if peer.synced_height != peer.committed_height:
                self._record(
                    "convergence", peer.name,
                    f"synced height {peer.synced_height} lags committed "
                    f"{peer.committed_height}",
                )
            if not peer.ledger.validate_chain():
                self._record("convergence", peer.name, "hash chain broken")
            if peer.diverged:
                self._record(
                    "convergence", peer.name, "peer diverged from consensus"
                )
        return self.violations[before:]
