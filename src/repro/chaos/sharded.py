"""Chaos over a sharded deployment: swaps under fire, conservation global.

:func:`run_sharded_scenario` is the multi-shard twin of
:func:`repro.chaos.runner.run_scenario` (which dispatches here whenever
``scenario.n_shards > 1``).  The deployment is a
:class:`~repro.blockchain.sharding.ShardedDeployment` — per-shard
chains on one sim clock — and the workload adds what single-chain chaos
cannot exercise: cross-shard asset swaps driven by a crashable
:class:`~repro.blockchain.swaps.SwapCoordinator` while peers churn,
partitions cut through in-flight prepares, and (per the scenario) the
coordinator itself dies between prepare and commit and must recover.

Safety is judged at two levels:

* **per shard** — each shard gets its own
  :class:`~repro.chaos.invariants.InvariantMonitor` (prefix
  consistency, shadow-ledger MVCC, state-hash agreement, convergence),
  because block numbers and state hashes are per-chain quantities;
* **globally** — :func:`repro.blockchain.swaps.check_conservation`
  scans every shard's reference committed state on a fixed cadence and
  again at quiescence: no asset may ever be observed twice, and at the
  end each must exist exactly once with no surviving locks.
"""

from __future__ import annotations

import random
import time
from collections import Counter
from typing import Dict, List, Optional, Union

from ..blockchain.config import FabricConfig
from ..blockchain.sharding import ShardedDeployment
from ..blockchain.swaps import (
    OUTCOME_COMMITTED,
    ShardAssetContract,
    SwapCoordinator,
    asset_key,
    check_conservation,
)
from ..blockchain.transaction import TxValidationCode
from ..core.shim import ShardRouter
from .injector import FaultInjector
from .invariants import InvariantMonitor, Violation
from .runner import BUGGY_FIXTURES, ChaosResult, _run_budgeted
from .scenarios import Scenario, get_scenario

__all__ = ["ShardedSwapWorkload", "run_sharded_scenario"]

#: Client-side poll timeout, matching the single-chain chaos workload:
#: long enough to ride out any healed fault, short enough that a tx
#: stranded by the fault horizon doesn't stall quiescence for the
#: default two simulated minutes.
_POLL_TIMEOUT_MS = 20_000.0


class _ShardChainView:
    """The surface :class:`FaultInjector` (and the buggy fixtures) need:
    one ``.net`` and a flat ``.peers`` across every shard."""

    def __init__(self, deployment: ShardedDeployment):
        self.net = deployment.net
        self.peers = deployment.all_peers()


class ShardedSwapWorkload:
    """Session events on every shard plus periodic cross-shard swaps.

    Minting, the session-event cadence and the swap plan are all drawn
    from the seeded RNG before anything runs, so ``(scenario, seed)``
    replays the identical stream.  The workload tracks each asset's
    home shard from committed swap outcomes; a stale guess (possible
    while the coordinator is down) just yields a rejected prepare and an
    aborted swap — never an unsafe one.
    """

    def __init__(
        self,
        deployment: ShardedDeployment,
        scenario: Scenario,
        seed: int,
        telemetry=None,
        on_swap_done=None,
    ):
        self.deployment = deployment
        self.scenario = scenario
        self.rng = random.Random(seed)
        self.telemetry = telemetry
        self.on_swap_done = on_swap_done
        self.codes: Counter = Counter()
        self.submitted = 0
        self.swaps_started = 0
        self.swaps_skipped_while_crashed = 0
        self.probe_codes: List[str] = []
        self.minted: Dict[str, int] = {}
        self._asset_home: Dict[str, int] = {}
        self.recover_actions: List = []
        self.router: Optional[ShardRouter] = None
        self.coordinator: Optional[SwapCoordinator] = None
        self._installed = False

    # ------------------------------------------------------------------

    def sessions(self) -> List[str]:
        return [f"g{k:02d}" for k in range(4 * self.deployment.n_shards)]

    def install(self) -> "ShardedSwapWorkload":
        if self._installed:
            raise RuntimeError("workload already installed")
        self._installed = True
        dep = self.deployment
        scenario = self.scenario
        dep.install_contract(ShardAssetContract)
        self.router = ShardRouter(dep)
        self.coordinator = SwapCoordinator(dep, telemetry=self.telemetry)
        for shard in range(dep.n_shards):
            for prefix in ("router", self.coordinator.name):
                client = dep.client_for_shard(shard, prefix)
                client.poll_timeout_ms = _POLL_TIMEOUT_MS

        scheduler = dep.scheduler
        # Mint every tradable asset up front, round-robin across shards
        # (explicitly placed — swaps move assets anywhere, so asset
        # residence is coordinator state, not key-hash routing).
        for j in range(scenario.n_assets):
            aid = f"asset{j:03d}"
            self.minted[aid] = 50 + j
            self._asset_home[aid] = j % dep.n_shards
            scheduler.call_at(1.0 + 2.0 * j, self._mint, aid)

        t = 50.0
        sessions = self.sessions()
        while t < scenario.duration_ms:
            session = self.rng.choice(sessions)
            player = f"p{self.rng.randrange(4)}"
            scheduler.call_at(t, self._session_event, session, player)
            t += scenario.workload_interval_ms

        index = 0
        t = 2_000.0
        while t < scenario.duration_ms * 0.9:
            scheduler.call_at(t, self._try_swap, index)
            index += 1
            t += scenario.swap_interval_ms
        return self

    # ------------------------------------------------------------------

    def _count(self, result, _latency) -> None:
        self.codes.update([result.code])

    def _mint(self, aid: str) -> None:
        client = self.deployment.client_for_shard(self._asset_home[aid], "router")
        self.submitted += 1
        client.invoke(
            ShardAssetContract.name, "mint", (aid, "bank", self.minted[aid]),
            touched_keys=(asset_key(aid),), on_complete=self._count,
        )

    def _session_event(self, session: str, player: str) -> None:
        self.submitted += 1
        assert self.router is not None
        self.router.submit_session_event(
            session, player, 1, on_complete=self._count
        )

    def _try_swap(self, index: int) -> None:
        coordinator = self.coordinator
        assert coordinator is not None
        if coordinator.crashed:
            self.swaps_skipped_while_crashed += 1
            return
        aid = self.rng.choice(sorted(self._asset_home))
        src = self._asset_home[aid]
        others = [s for s in range(self.deployment.n_shards) if s != src]
        dst = self.rng.choice(others)
        self.swaps_started += 1
        self.submitted += 1

        def on_done(swap):
            if swap.outcome == OUTCOME_COMMITTED:
                self._asset_home[aid] = dst
            if self.on_swap_done is not None:
                self.on_swap_done(swap)

        coordinator.start_swap(
            f"cswap{index:03d}", aid, src, dst,
            f"owner{index}", self.minted[aid], on_done=on_done,
        )

    # ------------------------------------------------------------------
    # coordinator lifecycle (scheduled by the runner)

    def crash_coordinator(self) -> None:
        assert self.coordinator is not None
        self.coordinator.crash()

    def recover_coordinator(self) -> None:
        assert self.coordinator is not None
        self.coordinator.restart()
        self.recover_actions.extend(self.coordinator.recover())

    # ------------------------------------------------------------------
    # end-of-run

    def submit_probes(self, count: int = 3) -> None:
        """Post-heal liveness probes: one session event per shard-ish,
        each of which must commit VALID on its shard."""
        assert self.router is not None
        sessions = self.sessions()
        for i in range(count):
            self.router.submit_session_event(
                sessions[i % len(sessions)], "probe", 1,
                on_complete=lambda result, _lat: self.probe_codes.append(
                    result.code
                ),
            )

    def summary(self) -> Dict[str, int]:
        out = dict(sorted(self.codes.items()))
        assert self.coordinator is not None
        for outcome, n in self.coordinator.outcomes().items():
            out[f"swap_{outcome}"] = n
        if self.swaps_skipped_while_crashed:
            out["swap_skipped_while_crashed"] = self.swaps_skipped_while_crashed
        return out


def run_sharded_scenario(
    scenario: Union[str, Scenario],
    seed: int,
    max_faults: Optional[int] = None,
    buggy: Optional[str] = None,
    record_timeline: bool = True,
    telemetry=None,
    max_wall_s: Optional[float] = None,
    config: Optional[FabricConfig] = None,
) -> ChaosResult:
    """Run one seeded multi-shard chaos experiment end to end.

    Mirrors :func:`repro.chaos.runner.run_scenario` phase for phase
    (fault horizon → lift-all → settle → probes → quiesce) and adds the
    sharded tail: a final coordinator restart+recover for swaps the
    crash orphaned, a stale-lock sweep, and the quiescent global
    conservation check.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    if scenario.n_shards < 2:
        raise ValueError("run_sharded_scenario needs a scenario with n_shards > 1")
    if buggy is not None and buggy not in BUGGY_FIXTURES:
        known = ", ".join(sorted(BUGGY_FIXTURES))
        raise KeyError(f"unknown buggy fixture {buggy!r}; known: {known}")

    if config is None:
        config = FabricConfig(max_block_txs=scenario.max_block_txs)
    else:
        config = config.with_options(max_block_txs=scenario.max_block_txs)
    deployment = ShardedDeployment(
        n_peers=scenario.n_peers,
        n_shards=scenario.n_shards,
        config=config,
        seed=seed,
    )
    if telemetry is not None:
        telemetry.instrument_sharded(deployment)
    timeline: List[list] = []

    def record(kind: str, *fields) -> None:
        if record_timeline:
            timeline.append([kind, round(deployment.now, 3), *fields])

    workload = ShardedSwapWorkload(
        deployment, scenario, seed, telemetry=telemetry,
        on_swap_done=lambda swap: record(
            "swap", swap.swap_id, swap.outcome, swap.src_shard, swap.dst_shard
        ),
    ).install()

    # One monitor per shard: block numbers, state hashes and convergence
    # are per-chain quantities, so cross-shard comparison would be noise.
    monitors = [
        InvariantMonitor(
            shard,
            deep=True,
            on_commit=lambda t, peer, height, state_hash: record(
                "commit", peer, height, state_hash
            ),
        ).attach()
        for shard in deployment.shards
    ]
    conservation_violations: List[Violation] = []

    def conservation_probe() -> None:
        problems = check_conservation(deployment, workload.minted, quiescent=False)
        record("conservation", len(problems))
        for problem in problems:
            conservation_violations.append(
                Violation(deployment.now, "asset-conservation", "-", problem)
            )

    probe_t = 2_500.0
    while probe_t < scenario.duration_ms:
        deployment.scheduler.call_at(probe_t, conservation_probe)
        probe_t += 2_500.0

    chain_view = _ShardChainView(deployment)
    if buggy is not None:
        BUGGY_FIXTURES[buggy](chain_view)

    schedule = scenario.build_schedule(
        seed, deployment.peer_names(), deployment.shards[0].orderer.name
    )
    if max_faults is not None:
        schedule = schedule.prefix(max_faults)
    injector = FaultInjector(
        chain_view,
        schedule,
        on_fault=lambda t, kind, targets: record("fault", kind, list(targets)),
    ).install()
    if telemetry is not None:
        injector.telemetry = telemetry

    if scenario.coordinator_crash_ms > 0:
        deployment.scheduler.call_at(
            scenario.coordinator_crash_ms,
            lambda: (record("coordinator-crash"), workload.crash_coordinator()),
        )
        deployment.scheduler.call_at(
            scenario.coordinator_crash_ms + scenario.coordinator_recover_ms,
            lambda: (record("coordinator-recover"), workload.recover_coordinator()),
        )

    def finish_swaps() -> None:
        """Post-quiescence tail: resolve orphans, then sweep stale locks."""
        coordinator = workload.coordinator
        assert coordinator is not None
        if coordinator.crashed:
            record("coordinator-recover")
            workload.recover_coordinator()
            deployment.run_until_idle()
        if coordinator.unresolved():
            workload.recover_actions.extend(coordinator.recover())
            deployment.run_until_idle()
        for _ in range(3):
            if coordinator.sweep_stale_locks() == 0:
                break
            record("lock-sweep")
            deployment.run_until_idle()

    truncated = False
    wall_start = time.perf_counter()
    if max_wall_s is None:
        deployment.run(until=scenario.duration_ms)
        injector.lift_all()
        deployment.run(until=scenario.duration_ms + scenario.settle_ms)
        workload.submit_probes()
        deployment.run_until_idle()
        finish_swaps()
    else:
        deadline = wall_start + max_wall_s
        sched = deployment.scheduler
        if _run_budgeted(sched, deadline, until=scenario.duration_ms):
            injector.lift_all()
            if _run_budgeted(
                sched, deadline, until=scenario.duration_ms + scenario.settle_ms
            ):
                workload.submit_probes()
                truncated = not _run_budgeted(sched, deadline, until=None)
                if not truncated:
                    finish_swaps()
            else:
                truncated = True
        else:
            truncated = True
    wall_s = time.perf_counter() - wall_start

    if not truncated:
        for monitor in monitors:
            monitor.check_convergence()
        monitor0 = monitors[0]
        for index, code in enumerate(workload.probe_codes):
            if code != TxValidationCode.VALID:
                monitor0._record(
                    "liveness", "wl-probe",
                    f"post-heal probe {index} ended {code}, expected VALID",
                )
        if len(workload.probe_codes) < 3:
            monitor0._record(
                "liveness", "wl-probe",
                f"only {len(workload.probe_codes)} of 3 probes completed",
            )
        for problem in check_conservation(
            deployment, workload.minted, quiescent=True
        ):
            conservation_violations.append(
                Violation(deployment.now, "asset-conservation", "-", problem)
            )

    violations = [v for monitor in monitors for v in monitor.violations]
    violations.extend(conservation_violations)
    return ChaosResult(
        scenario=scenario.name,
        seed=seed,
        buggy=buggy,
        faults_in_schedule=len(schedule),
        faults_applied=injector.faults_applied,
        violations=violations,
        timeline=timeline,
        workload_summary=workload.summary(),
        probe_codes=list(workload.probe_codes),
        submitted=workload.submitted,
        committed_height=max(p.committed_height for p in deployment.all_peers()),
        network_stats=deployment.net.stats.as_dict(),
        schedule=schedule,
        truncated=truncated,
        wall_s=round(wall_s, 3) if max_wall_s is not None else 0.0,
    )
