"""Wires a :class:`~repro.chaos.faults.FaultSchedule` into a live chain.

The injector never forks the hot paths it attacks: peers crash through
:meth:`repro.blockchain.peer.Peer.crash`, the fabric splits through
:meth:`repro.simnet.transport.Network.partition`, DDoS bursts reuse the
attack models of :mod:`repro.simnet.ddos`, and message tampering rides
the single ``Network.fault_injector`` hook — the transport calls it with
each deliverable message and the injector answers with the delivery
times to use (none = drop, several = duplicate, later = delay/reorder).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..simnet.ddos import Attack, FloodAttack, LatencyInjectionAttack
from ..simnet.transport import Message
from .faults import FaultEvent, FaultKind, FaultSchedule

__all__ = ["FaultInjector"]


@dataclass
class _Window:
    """An active message-tampering window."""

    kind: str
    targets: Tuple[str, ...]
    until: float
    rate: float
    extra_ms: float = 0.0

    def matches(self, msg: Message) -> bool:
        return "*" in self.targets or msg.dst in self.targets or msg.src in self.targets


class FaultInjector:
    """Replays a fault schedule against a :class:`BlockchainNetwork`.

    Args:
        chain: the deployment under test.
        schedule: the fault timeline to inject.
        on_fault: optional observer ``(sim_ms, kind, targets)`` — the
            scenario runner records the injection timeline through it.
    """

    def __init__(
        self,
        chain,
        schedule: FaultSchedule,
        on_fault: Optional[Callable[[float, str, Tuple[str, ...]], None]] = None,
    ):
        self.chain = chain
        self.net = chain.net
        self.schedule = schedule.sorted()
        self.on_fault = on_fault
        # Independent stream so injection randomness (probabilistic drops)
        # never perturbs the simulation's own jitter RNG.
        self.rng = random.Random(int(schedule.digest()[:16], 16))
        self._peers: Dict[str, object] = {p.name: p for p in chain.peers}
        self._crashed: set = set()
        self._windows: List[_Window] = []
        self._attacks: List[Attack] = []
        self._partition_active = False
        self.faults_applied = 0
        self._installed = False
        #: Optional :class:`repro.telemetry.Telemetry` (None = disabled).
        self.telemetry = None

    # ------------------------------------------------------------------
    # lifecycle

    def install(self) -> "FaultInjector":
        """Schedule every fault event and hook the transport."""
        if self._installed:
            raise RuntimeError("injector already installed")
        self._installed = True
        self.net.fault_injector = self._filter
        for event in self.schedule.events:
            self.net.scheduler.call_at(event.at_ms, self._apply, event)
        return self

    def lift_all(self) -> None:
        """Restore the network: restart crashed hosts, heal partitions,
        lift active attacks, expire tampering windows.  The runner calls
        this at the fault horizon so every run — including a shrunk
        prefix whose pairing event was cut off — ends with a heal phase
        the convergence invariant can be checked after."""
        for name in sorted(self._crashed):
            peer = self._peers.get(name)
            if peer is not None:
                peer.restart()
            else:  # the ordering service
                self.net.condition(name).down = False
        self._crashed.clear()
        if self._partition_active:
            self.net.heal()
            self._partition_active = False
        for attack in self._attacks:
            if attack.active:
                attack.lift(self.net)
        self._attacks.clear()
        self._windows.clear()
        self._log("lift-all", ())

    # ------------------------------------------------------------------
    # event application

    def _apply(self, event: FaultEvent) -> None:
        kind = event.kind
        if kind == FaultKind.PEER_CRASH:
            (name,) = event.targets
            if name not in self._crashed:
                self._peers[name].crash()
                self._crashed.add(name)
        elif kind == FaultKind.PEER_RESTART:
            (name,) = event.targets
            if name in self._crashed:
                self._peers[name].restart()
                self._crashed.discard(name)
        elif kind == FaultKind.ORDERER_CRASH:
            (name,) = event.targets
            if name not in self._crashed:
                self.net.condition(name).down = True
                self._crashed.add(name)
        elif kind == FaultKind.ORDERER_RESTART:
            (name,) = event.targets
            if name in self._crashed:
                self.net.condition(name).down = False
                self._crashed.discard(name)
        elif kind == FaultKind.PARTITION:
            self.net.partition(*[list(group) for group in event.params])
            self._partition_active = True
        elif kind == FaultKind.HEAL:
            if self._partition_active:
                self.net.heal()
                self._partition_active = False
        elif kind in (FaultKind.MSG_DROP, FaultKind.MSG_DUPLICATE, FaultKind.MSG_DELAY):
            duration, rate = event.params[0], event.params[1]
            extra = event.params[2] if len(event.params) > 2 else 5.0
            self._windows.append(
                _Window(
                    kind=kind,
                    targets=event.targets,
                    until=self.net.scheduler.now + duration,
                    rate=rate,
                    extra_ms=extra,
                )
            )
        elif kind == FaultKind.DDOS_LATENCY:
            duration, extra_ms = event.params
            self._launch(LatencyInjectionAttack(event.targets, extra_ms), duration)
        elif kind == FaultKind.DDOS_FLOOD:
            duration, rate = event.params
            self._launch(FloodAttack(event.targets, rate), duration)
        else:  # pragma: no cover - schedule.add validates kinds
            raise ValueError(f"unknown fault kind {kind!r}")
        self.faults_applied += 1
        self._log(kind, event.targets)

    def _launch(self, attack: Attack, duration_ms: float) -> None:
        attack.apply(self.net)
        self._attacks.append(attack)
        self.net.scheduler.call_after(duration_ms, self._expire, attack)

    def _expire(self, attack: Attack) -> None:
        if attack.active:
            attack.lift(self.net)
            self._log("ddos-end", tuple(attack.targets))

    def _log(self, kind: str, targets: Tuple[str, ...]) -> None:
        if self.telemetry is not None:
            self.telemetry.fault(kind, targets)
        if self.on_fault is not None:
            self.on_fault(self.net.scheduler.now, kind, targets)

    # ------------------------------------------------------------------
    # message tampering (Network.fault_injector hook)

    def _filter(self, msg: Message, deliver_at: float) -> List[float]:
        now = self.net.scheduler.now
        self._windows = [w for w in self._windows if w.until > now]
        times = [deliver_at]
        for window in self._windows:
            if not window.matches(msg):
                continue
            if window.kind == FaultKind.MSG_DROP:
                if self.rng.random() < window.rate:
                    return []
            elif window.kind == FaultKind.MSG_DUPLICATE:
                if self.rng.random() < window.rate:
                    times.append(deliver_at + self.rng.uniform(0.1, window.extra_ms))
            elif window.kind == FaultKind.MSG_DELAY:
                if self.rng.random() < window.rate:
                    times = [t + window.extra_ms for t in times]
        return times
