"""Fault timelines: the seeded ``FaultSchedule`` DSL.

A schedule is an ordered, immutable list of :class:`FaultEvent`, each an
*atomic* injection at an absolute simulated time: crash or restart a
peer, take the ordering service down (failover), split or heal the
network, open an auto-expiring message-tampering window (drop /
duplicate / delay-reorder) or launch a DDoS burst through the paper's
attack models in :mod:`repro.simnet.ddos`.

Schedules are either built explicitly through the fluent builder
methods, or drawn reproducibly from a seed with
:meth:`FaultSchedule.generate`.  Because events are plain data, a
failing schedule can be *shrunk*: ``schedule.prefix(k)`` keeps only the
first ``k`` injections, which is what the scenario runner bisects over
to report a minimal failing fault prefix.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from ..blockchain.crypto import canonical_digest

__all__ = ["FaultKind", "FaultEvent", "FaultSchedule"]


class FaultKind:
    """The vocabulary of injectable faults."""

    PEER_CRASH = "peer-crash"
    PEER_RESTART = "peer-restart"
    ORDERER_CRASH = "orderer-crash"
    ORDERER_RESTART = "orderer-restart"
    PARTITION = "partition"
    HEAL = "heal"
    MSG_DROP = "msg-drop"
    MSG_DUPLICATE = "msg-duplicate"
    MSG_DELAY = "msg-delay"
    DDOS_LATENCY = "ddos-latency"
    DDOS_FLOOD = "ddos-flood"

    ALL = (
        PEER_CRASH,
        PEER_RESTART,
        ORDERER_CRASH,
        ORDERER_RESTART,
        PARTITION,
        HEAL,
        MSG_DROP,
        MSG_DUPLICATE,
        MSG_DELAY,
        DDOS_LATENCY,
        DDOS_FLOOD,
    )


@dataclass(frozen=True)
class FaultEvent:
    """One atomic injection.

    ``targets`` are host names ("*" matches every host for message
    windows); ``params`` is a kind-specific tuple:

    * message windows — ``(duration_ms, rate[, extra_ms])``
    * ``ddos-latency`` — ``(duration_ms, extra_ms)``
    * ``ddos-flood`` — ``(duration_ms, drop_rate)``
    * ``partition`` — ``params`` holds the groups as tuples of names
    """

    at_ms: float
    kind: str
    targets: Tuple[str, ...] = ()
    params: Tuple = ()

    def describe(self) -> str:
        who = ",".join(self.targets) if self.targets else "-"
        args = ",".join(repr(p) for p in self.params)
        return f"t={self.at_ms:.1f} {self.kind} [{who}] ({args})"

    def as_record(self):
        return [self.at_ms, self.kind, list(self.targets), _listify(self.params)]


def _listify(value):
    if isinstance(value, (tuple, list)):
        return [_listify(v) for v in value]
    return value


@dataclass
class FaultSchedule:
    """An ordered fault timeline, reproducible from its construction.

    The builder methods append events and return ``self`` so timelines
    read as sentences::

        FaultSchedule().crash(200, "peer1").partition(500, ["peer0"],
            ["peer1", "peer2"]).heal(900).restart(1000, "peer1")
    """

    events: List[FaultEvent] = field(default_factory=list)
    seed: int = 0

    # ------------------------------------------------------------------
    # builder DSL

    def add(self, event: FaultEvent) -> "FaultSchedule":
        if event.kind not in FaultKind.ALL:
            raise ValueError(f"unknown fault kind {event.kind!r}")
        if event.at_ms < 0:
            raise ValueError("fault time must be non-negative")
        self.events.append(event)
        return self

    def crash(self, at_ms: float, peer: str) -> "FaultSchedule":
        return self.add(FaultEvent(at_ms, FaultKind.PEER_CRASH, (peer,)))

    def restart(self, at_ms: float, peer: str) -> "FaultSchedule":
        return self.add(FaultEvent(at_ms, FaultKind.PEER_RESTART, (peer,)))

    def orderer_crash(self, at_ms: float, orderer: str = "orderer") -> "FaultSchedule":
        return self.add(FaultEvent(at_ms, FaultKind.ORDERER_CRASH, (orderer,)))

    def orderer_restart(self, at_ms: float, orderer: str = "orderer") -> "FaultSchedule":
        return self.add(FaultEvent(at_ms, FaultKind.ORDERER_RESTART, (orderer,)))

    def partition(self, at_ms: float, *groups: Iterable[str]) -> "FaultSchedule":
        frozen = tuple(tuple(sorted(group)) for group in groups)
        return self.add(FaultEvent(at_ms, FaultKind.PARTITION, (), frozen))

    def heal(self, at_ms: float) -> "FaultSchedule":
        return self.add(FaultEvent(at_ms, FaultKind.HEAL))

    def drop(
        self, at_ms: float, targets: Sequence[str], duration_ms: float, rate: float
    ) -> "FaultSchedule":
        return self.add(
            FaultEvent(at_ms, FaultKind.MSG_DROP, tuple(targets), (duration_ms, rate))
        )

    def duplicate(
        self, at_ms: float, targets: Sequence[str], duration_ms: float, rate: float
    ) -> "FaultSchedule":
        return self.add(
            FaultEvent(
                at_ms, FaultKind.MSG_DUPLICATE, tuple(targets), (duration_ms, rate)
            )
        )

    def delay(
        self,
        at_ms: float,
        targets: Sequence[str],
        duration_ms: float,
        rate: float,
        extra_ms: float,
    ) -> "FaultSchedule":
        """Delay a fraction of matching messages by ``extra_ms`` — enough
        to overtake later traffic on the same channel, i.e. a reorder."""
        return self.add(
            FaultEvent(
                at_ms,
                FaultKind.MSG_DELAY,
                tuple(targets),
                (duration_ms, rate, extra_ms),
            )
        )

    def ddos_latency(
        self, at_ms: float, targets: Sequence[str], duration_ms: float, extra_ms: float
    ) -> "FaultSchedule":
        return self.add(
            FaultEvent(
                at_ms, FaultKind.DDOS_LATENCY, tuple(targets), (duration_ms, extra_ms)
            )
        )

    def ddos_flood(
        self, at_ms: float, targets: Sequence[str], duration_ms: float, rate: float
    ) -> "FaultSchedule":
        return self.add(
            FaultEvent(
                at_ms, FaultKind.DDOS_FLOOD, tuple(targets), (duration_ms, rate)
            )
        )

    # ------------------------------------------------------------------
    # views

    def sorted(self) -> "FaultSchedule":
        """Events in injection order (stable for equal times)."""
        ordered = sorted(self.events, key=lambda e: e.at_ms)
        return FaultSchedule(events=ordered, seed=self.seed)

    def prefix(self, n: int) -> "FaultSchedule":
        """The first ``n`` injections (in time order) — the shrink step."""
        return FaultSchedule(events=self.sorted().events[:n], seed=self.seed)

    def __len__(self) -> int:
        return len(self.events)

    def digest(self) -> str:
        """Canonical digest of the timeline; equal schedules ⇔ equal digests."""
        return canonical_digest(
            {"seed": self.seed, "events": [e.as_record() for e in self.sorted().events]}
        )

    def describe(self) -> List[str]:
        return [e.describe() for e in self.sorted().events]

    # ------------------------------------------------------------------
    # seeded generation

    @classmethod
    def generate(
        cls,
        seed: int,
        duration_ms: float,
        peers: Sequence[str],
        orderer: Optional[str] = None,
        churn: int = 2,
        partitions: int = 1,
        ddos_bursts: int = 1,
        message_windows: int = 3,
        orderer_failovers: int = 0,
    ) -> "FaultSchedule":
        """Draw a reproducible fault timeline from ``seed``.

        Faults land in the first 70 % of the run so the tail is available
        for healing and convergence; crash/restart and partition/heal
        come pre-paired, message windows and DDoS bursts auto-expire.
        The same ``(seed, arguments)`` always yields the identical
        schedule — that is the property the determinism tests pin.
        """
        rng = random.Random(seed)
        peers = sorted(peers)
        schedule = cls(seed=seed)
        horizon = duration_ms * 0.7

        def when() -> float:
            return round(rng.uniform(duration_ms * 0.05, horizon), 3)

        for _ in range(churn):
            victim = rng.choice(peers)
            start = when()
            down_for = rng.uniform(duration_ms * 0.05, duration_ms * 0.2)
            schedule.crash(start, victim)
            schedule.restart(round(min(start + down_for, horizon + 1.0), 3), victim)

        for _ in range(partitions):
            start = when()
            heal_after = rng.uniform(duration_ms * 0.05, duration_ms * 0.2)
            minority_size = max(1, len(peers) // 3)
            minority = rng.sample(peers, minority_size)
            majority = [p for p in peers if p not in minority]
            if orderer is not None:
                majority.append(orderer)
            schedule.partition(start, majority, minority)
            schedule.heal(round(min(start + heal_after, horizon + 2.0), 3))

        for _ in range(ddos_bursts):
            start = when()
            burst = rng.uniform(duration_ms * 0.05, duration_ms * 0.15)
            n_victims = max(1, (len(peers) - 1) // 3)
            victims = rng.sample(peers, n_victims)
            if rng.random() < 0.5:
                schedule.ddos_latency(start, victims, burst, rng.uniform(100.0, 400.0))
            else:
                schedule.ddos_flood(start, victims, burst, rng.uniform(0.3, 0.8))

        for _ in range(message_windows):
            start = when()
            window = rng.uniform(duration_ms * 0.03, duration_ms * 0.1)
            target = rng.choice(list(peers) + ["*"])
            kind = rng.choice(("drop", "duplicate", "delay"))
            if kind == "drop":
                schedule.drop(start, (target,), window, rng.uniform(0.1, 0.5))
            elif kind == "duplicate":
                schedule.duplicate(start, (target,), window, rng.uniform(0.2, 0.7))
            else:
                schedule.delay(
                    start, (target,), window, rng.uniform(0.2, 0.6),
                    rng.uniform(20.0, 120.0),
                )

        for _ in range(orderer_failovers):
            if orderer is None:
                break
            start = when()
            down_for = rng.uniform(duration_ms * 0.03, duration_ms * 0.1)
            schedule.orderer_crash(start, orderer)
            schedule.orderer_restart(round(min(start + down_for, horizon + 1.0), 3), orderer)

        return schedule.sorted()
