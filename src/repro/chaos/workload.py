"""Deterministic game-like workloads driven against the chain under chaos.

The default workload is a bank of named counters — the same shape the
integration tests use — because its conservation law is exact: a counter
must equal the sum of its committed-valid deltas, whatever the fault
schedule did to the messages in between.  Conflicting same-tick updates
are injected on a fixed cadence so the block-level MVCC lock is
exercised continuously, not just on the happy path.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Dict, List, Optional

from ..blockchain.contracts import Contract, ContractError

__all__ = ["ChaosCounterContract", "CounterWorkload"]


class ChaosCounterContract(Contract):
    """Named non-negative counters: ``init``, ``add``, ``sub``.

    ``sub`` below zero is rejected — the workload's stand-in for a cheat.
    """

    name = "chaoscounter"

    @staticmethod
    def key(counter: str) -> str:
        return f"ctr/{counter}"

    def invoke(self, ctx, function, args):
        if function == "init":
            (counter,) = args
            if ctx.view.get(self.key(counter)) is not None:
                raise ContractError(f"counter {counter} already exists")
            ctx.view.put(self.key(counter), 0)
        elif function in ("add", "sub"):
            counter, delta = args
            delta = int(delta) if function == "add" else -int(delta)
            key = self.key(counter)
            value = ctx.view.get(key)
            if value is None:
                raise ContractError(f"no such counter {counter}")
            if value + delta < 0:
                raise ContractError("counter would go negative")
            ctx.view.put(key, value + delta)
        else:
            raise ContractError(f"unknown function {function}")

    def functions(self):
        return ["init", "add", "sub"]


class CounterWorkload:
    """An open-loop tick workload over :class:`ChaosCounterContract`.

    Every ``interval_ms`` one client submits a counter update; every
    ``conflict_every``-th tick submits *two* updates to the same counter
    back-to-back (an intra-block MVCC conflict for the honest ledger to
    reject).  All submission times and argument choices come from the
    seeded RNG, so a given ``(seed, parameters)`` pair replays the
    identical transaction stream.

    ``max_inflight`` turns the loop closed: a tick whose submission
    would push the number of unresolved updates past the cap is *shed*
    (counted in :attr:`shed`) instead of submitted.  On the simulated
    backend commit latency is a few sim-ms, so a generous cap never
    engages and the stream is unchanged; on real sockets it is the
    backpressure that keeps an over-capacity host degrading in
    throughput rather than in unbounded queueing delay.
    """

    def __init__(
        self,
        chain,
        duration_ms: float,
        interval_ms: float = 40.0,
        n_counters: int = 3,
        conflict_every: int = 4,
        seed: int = 0,
        poll_timeout_ms: float = 20_000.0,
        max_inflight: Optional[int] = None,
    ):
        self.chain = chain
        self.duration_ms = duration_ms
        self.interval_ms = interval_ms
        self.n_counters = n_counters
        self.conflict_every = conflict_every
        self.rng = random.Random(seed)
        self.codes: Counter = Counter()
        self.submitted = 0
        self.shed = 0
        self.inflight = 0
        self.probe_codes: List[str] = []
        self._clients = []
        self._probe_client = None
        self._poll_timeout_ms = poll_timeout_ms
        self._max_inflight = max_inflight
        self._installed = False

    # ------------------------------------------------------------------

    def counters(self) -> List[str]:
        return [f"c{i}" for i in range(self.n_counters)]

    def install(self) -> "CounterWorkload":
        """Create clients, install the contract, schedule every tick."""
        if self._installed:
            raise RuntimeError("workload already installed")
        self._installed = True
        self.chain.install_contract(ChaosCounterContract)
        anchors = [
            self.chain.peers[0],
            self.chain.peers[len(self.chain.peers) // 2],
        ]
        # Client names carry the chain's prefix so several sessions can
        # share one transport (the soak harness) without name clashes.
        prefix = getattr(self.chain, "name_prefix", "")
        for index, anchor in enumerate(anchors):
            client = self.chain.create_client(f"{prefix}wl{index}", anchor=anchor)
            client.poll_timeout_ms = self._poll_timeout_ms
            self._clients.append(client)
        self._probe_client = self.chain.create_client(
            f"{prefix}wl-probe", anchor=self.chain.peers[0]
        )
        self._probe_client.poll_timeout_ms = self._poll_timeout_ms

        scheduler = self.chain.scheduler
        for counter in self.counters():
            scheduler.call_at(1.0, self._submit, 0, "init", (counter,), counter)

        tick = 0
        t = 50.0
        while t < self.duration_ms:
            tick += 1
            counter = self.rng.choice(self.counters())
            client_index = self.rng.randrange(len(self._clients))
            if self.conflict_every and tick % self.conflict_every == 0:
                scheduler.call_at(t, self._submit, client_index, "add", (counter, 1), counter)
                scheduler.call_at(t, self._submit, client_index, "add", (counter, 1), counter)
            elif self.rng.random() < 0.15:
                # An occasional oversized sub: the contract-level cheat.
                scheduler.call_at(
                    t, self._submit, client_index, "sub", (counter, 1000), counter
                )
            else:
                scheduler.call_at(t, self._submit, client_index, "add", (counter, 1), counter)
            t += self.interval_ms
        return self

    def _submit(self, client_index: int, function: str, args, counter: str) -> None:
        if self._max_inflight is not None and self.inflight >= self._max_inflight:
            self.shed += 1
            return
        client = self._clients[client_index]
        self.submitted += 1
        self.inflight += 1

        def done(result, latency) -> None:
            self.inflight -= 1
            self.codes.update([result.code])

        client.invoke(
            ChaosCounterContract.name,
            function,
            args,
            touched_keys=(ChaosCounterContract.key(counter),),
            on_complete=done,
        )

    # ------------------------------------------------------------------

    def submit_probes(self, count: int = 3) -> None:
        """Submit post-heal liveness probes (one update per counter, round
        robin): each must commit VALID once the network has healed, and
        their delivery is what triggers gap detection at revived peers."""
        names = self.counters()
        for i in range(count):
            counter = names[i % len(names)]
            self._probe_client.invoke(
                ChaosCounterContract.name,
                "add",
                (counter, 1),
                touched_keys=(ChaosCounterContract.key(counter),),
                on_complete=lambda result, latency: self.probe_codes.append(result.code),
            )

    def summary(self) -> Dict[str, int]:
        return dict(sorted(self.codes.items()))

    def expected_totals(self) -> Optional[Dict[str, int]]:
        """Final counter values implied by peer0's committed ledger (for
        assertions in tests); None before any commit."""
        peer = self.chain.peers[0]
        return {
            name: peer.ledger.state.get(ChaosCounterContract.key(name))
            for name in self.counters()
        }
