"""Intentionally-buggy peer fixtures.

These install realistic *platform regressions* on live peers so the
chaos tests can prove the :class:`~repro.chaos.invariants.InvariantMonitor`
actually catches broken implementations — a monitor that never fires is
indistinguishable from one that checks nothing.

The fixtures patch object instances (never the classes), so a buggy
peer lives next to honest ones in the same deployment.
"""

from __future__ import annotations

from ..blockchain.transaction import TxValidationCode

__all__ = ["install_mvcc_bypass", "install_catchup_corruption"]


def install_mvcc_bypass(peer) -> None:
    """Break the peer's commit-time MVCC validation *and* its block-level
    conflict vote: stale reads and intra-block conflicts sail through.

    Installed on a whole deployment this models a platform regression
    (every peer commits the conflicting pair and the monitor's shadow
    MVCC check fires); installed on a minority it models a faulty node
    that diverges from consensus.
    """
    peer.ledger._mvcc_check = (
        lambda rwset, written_this_block: TxValidationCode.VALID
    )
    original_execute_one = peer._execute_one

    def execute_one(tx, overlay, written):
        execution = original_execute_one(tx, overlay, written)
        if execution.code == TxValidationCode.MVCC_READ_CONFLICT:
            execution.code = TxValidationCode.VALID
        return execution

    peer._execute_one = execute_one


def install_catchup_corruption(peer) -> None:
    """Corrupt the peer's gap-recovery path only: blocks replayed during
    catch-up apply *every* write, including transactions the rest of the
    network rejected.

    The bug is invisible until a fault forces the peer through catch-up
    — which is exactly what schedule shrinking should isolate: the
    minimal failing prefix ends at the fault that knocked the peer out.
    """
    real_append = peer.ledger.append
    real_mvcc = peer.ledger._mvcc_check

    def corrupted_append(block, executions):
        if block.number < peer._catch_up_below:
            for execution in executions:
                execution.code = TxValidationCode.VALID
            peer.ledger._mvcc_check = (
                lambda rwset, written_this_block: TxValidationCode.VALID
            )
            try:
                return real_append(block, executions)
            finally:
                peer.ledger._mvcc_check = real_mvcc
        return real_append(block, executions)

    peer.ledger.append = corrupted_append
