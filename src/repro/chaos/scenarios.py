"""The chaos scenario catalog.

A :class:`Scenario` fixes everything about a run *except* the seed: the
deployment shape, the workload cadence and the fault mix.  Given a seed
it draws the concrete :class:`~repro.chaos.faults.FaultSchedule`, so
``(scenario, seed)`` fully determines the run and its event timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from .faults import FaultSchedule

__all__ = ["Scenario", "SCENARIOS", "get_scenario"]


@dataclass(frozen=True)
class Scenario:
    """A named chaos experiment: deployment + workload + fault mix."""

    name: str
    description: str
    n_peers: int = 6
    duration_ms: float = 20_000.0
    churn: int = 0
    partitions: int = 0
    ddos_bursts: int = 0
    message_windows: int = 0
    orderer_failovers: int = 0
    workload_interval_ms: float = 60.0
    n_counters: int = 3
    conflict_every: int = 4
    #: the paper's Doom tuning; >1 so same-tick conflicting submissions
    #: can share a block and exercise the block-level KVS lock.
    max_block_txs: int = 5
    #: simulated grace period after faults are lifted before the
    #: liveness probes are injected.
    settle_ms: float = 2_000.0
    #: >1 runs the scenario over a ShardedDeployment (per-shard chains
    #: plus a cross-shard swap workload) instead of one chain; the
    #: fields below only apply then.  All default so the single-chain
    #: catalog's digests are untouched.
    n_shards: int = 1
    #: tradable assets minted before the clock starts (sharded runs).
    n_assets: int = 8
    #: cadence of cross-shard swap attempts (sharded runs).
    swap_interval_ms: float = 900.0
    #: crash the swap coordinator at this simulated time (0 = never);
    #: drawn to land between a swap's prepare and commit so recovery
    #: has real work to do.
    coordinator_crash_ms: float = 0.0
    #: restart + recover() the coordinator this long after the crash.
    coordinator_recover_ms: float = 3_000.0

    def build_schedule(self, seed: int, peer_names: Sequence[str],
                       orderer: str) -> FaultSchedule:
        return FaultSchedule.generate(
            seed=seed,
            duration_ms=self.duration_ms,
            peers=peer_names,
            orderer=orderer,
            churn=self.churn,
            partitions=self.partitions,
            ddos_bursts=self.ddos_bursts,
            message_windows=self.message_windows,
            orderer_failovers=self.orderer_failovers,
        )


_CATALOG = (
    Scenario(
        name="baseline",
        description="No faults at all — calibrates the workload and the "
        "invariant monitor against a healthy deployment.",
    ),
    Scenario(
        name="message-storm",
        description="Drop / duplicate / delay-reorder windows across the "
        "fabric; no process ever dies.",
        message_windows=6,
    ),
    Scenario(
        name="churn",
        description="Peers crash mid-block and restart from their durable "
        "ledger, resyncing the gap from the ordering service.",
        churn=3,
    ),
    Scenario(
        name="partition",
        description="The fabric splits (orderer stays with the majority) "
        "and heals mid-run; the minority must catch up.",
        partitions=2,
    ),
    Scenario(
        name="orderer-failover",
        description="The ordering service itself goes dark and comes back; "
        "clients and peers ride through the outage.",
        orderer_failovers=2,
    ),
    Scenario(
        name="ddos",
        description="Latency-injection and flooding bursts against peer "
        "subsets, via the paper's simnet attack models.",
        ddos_bursts=3,
    ),
    Scenario(
        name="churn-partition-ddos",
        description="The kitchen sink: crash/restart churn, a mid-block "
        "partition-and-heal, a DDoS burst and message tampering, all in "
        "one timeline.",
        n_peers=8,
        churn=2,
        partitions=1,
        ddos_bursts=1,
        message_windows=3,
    ),
    Scenario(
        name="cross-shard-swap",
        description="Two shards trading assets through the two-phase swap "
        "protocol while peers churn and a partition cuts through a swap; "
        "the coordinator crashes between prepare and commit and must "
        "recover without duplicating or destroying an asset.",
        n_peers=8,
        n_shards=2,
        duration_ms=16_000.0,
        churn=2,
        partitions=1,
        workload_interval_ms=120.0,
        coordinator_crash_ms=6_050.0,
        settle_ms=3_000.0,
    ),
    Scenario(
        name="smoke",
        description="Small and fast — the CI gate: one crash/restart and "
        "one tampering window over a 4-peer chain.",
        n_peers=4,
        duration_ms=8_000.0,
        churn=1,
        message_windows=1,
        workload_interval_ms=100.0,
        settle_ms=1_500.0,
    ),
)

SCENARIOS: Dict[str, Scenario] = {s.name: s for s in _CATALOG}


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r}; known: {known}") from None
