"""Symbolic world-state keys for static read/write-set inference.

The analyzer cannot know concrete key strings like ``asset/p1/6`` ahead
of time — it sees key *expressions* (``asset_key(player, aid)``,
f-strings, string constants).  This module models the result of
partially evaluating such an expression: a :class:`KeyPattern` is a
sequence of literal fragments and :class:`Sym` placeholders, each
placeholder tagged with *where its value comes from* at runtime.

The provenance tag is what makes conflict prediction possible:

* ``CREATOR`` — the transaction submitter's identity.  Two transactions
  from the *same* player produce equal values; from different players,
  different values.
* ``NONCE`` — per-transaction unique material (nonce, tx id).  Never
  equal across two distinct transactions, which is exactly why the
  runtime's ``~nonce/{creator}/{nonce}`` marker is conflict-free.
* ``ARG`` — an invocation argument (e.g. ``payload["item_id"]``).  Two
  transactions may or may not pass the same value, so patterns built
  from arguments *may* collide.
* ``UNKNOWN`` — anything the evaluator could not resolve (state reads,
  loop variables over unresolvable iterables).  Treated like ``ARG``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = ["Sym", "KeyPattern", "SymKind", "make_pattern", "may_collide", "covers_key"]


class SymKind:
    """Provenance of a symbolic key fragment (see module docstring)."""

    CREATOR = "creator"
    NONCE = "nonce"
    ARG = "arg"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class Sym:
    """One unresolved fragment of a world-state key."""

    name: str
    kind: str = SymKind.UNKNOWN

    def __str__(self) -> str:
        return "{%s}" % self.name


Part = Union[str, Sym]


@dataclass(frozen=True)
class KeyPattern:
    """A world-state key with zero or more symbolic fragments.

    ``parts`` alternates literal strings and :class:`Sym` placeholders;
    a fully literal pattern is a concrete key.  Placeholders are assumed
    to expand to non-empty text without ``/`` (all key helpers in this
    codebase interpolate identifiers, asset ids and nonces, none of
    which contain the segment separator).
    """

    parts: Tuple[Part, ...]

    def __str__(self) -> str:
        return "".join(str(p) for p in self.parts)

    @property
    def is_literal(self) -> bool:
        return all(isinstance(p, str) for p in self.parts)

    def regex(self) -> "re.Pattern[str]":
        out = []
        for part in self.parts:
            if isinstance(part, str):
                out.append(re.escape(part))
            else:
                out.append(r"[^/]+")
        return re.compile("".join(out) + r"\Z")

    def covers(self, key: str) -> bool:
        """True if this pattern can expand to the concrete ``key``."""
        return self.regex().match(key) is not None

    # ------------------------------------------------------------------
    # segmentation (for pairwise collision analysis)

    def segments(self) -> List[List[Part]]:
        """Split on ``/`` into per-segment token lists.

        Literal parts may span several segments; symbolic parts stay
        within one (see class docstring).
        """
        segments: List[List[Part]] = [[]]
        for part in self.parts:
            if isinstance(part, Sym):
                segments[-1].append(part)
                continue
            pieces = part.split("/")
            segments[-1].append(pieces[0])
            for piece in pieces[1:]:
                segments.append([piece])
        return segments


def make_pattern(parts: Iterable[Part]) -> KeyPattern:
    """Build a :class:`KeyPattern`, merging adjacent literal fragments."""
    return KeyPattern(tuple(_normalise(list(parts))))


def _normalise(tokens: Sequence[Part]) -> List[Part]:
    """Drop empty literals and merge adjacent literal tokens."""
    out: List[Part] = []
    for token in tokens:
        if isinstance(token, str):
            if not token:
                continue
            if out and isinstance(out[-1], str):
                out[-1] = out[-1] + token
                continue
        out.append(token)
    return out


def _nfa(tokens: Sequence[Part]) -> Tuple[List[List[Tuple[Optional[str], int]]], int]:
    """Compile one segment into a tiny NFA over single characters.

    A literal contributes one state per character; a placeholder becomes
    ``[^/]+``: one any-char edge in, then an any-char self-loop that can
    exit.  Edges are ``(char, next_state)`` with ``char=None`` meaning
    "any non-``/`` character".  Returns (edges per state, accept state).
    """
    edges: List[List[Tuple[Optional[str], int]]] = [[]]
    for token in tokens:
        if isinstance(token, str):
            for ch in token:
                edges[-1].append((ch, len(edges)))
                edges.append([])
        else:  # placeholder: non-empty, no '/'
            mid = len(edges)
            edges[-1].append((None, mid))
            edges.append([(None, mid)])  # self-loop on the wildcard
            # the exit edge is added below as an epsilon-free shortcut:
            # every edge out of `mid` is also reachable once >=1 char is
            # consumed, so we simply continue appending edges to `mid`.
            edges.append([])
            edges[mid].append(("", len(edges) - 1))  # epsilon exit marker
    return edges, len(edges) - 1


_Edges = List[List[Tuple[Optional[str], int]]]


def _closure(states: FrozenSet[int], edges: _Edges) -> FrozenSet[int]:
    """Follow epsilon exit markers (``char == ""``)."""
    out = set(states)
    stack = list(states)
    while stack:
        state = stack.pop()
        for char, nxt in edges[state]:
            if char == "" and nxt not in out:
                out.add(nxt)
                stack.append(nxt)
    return frozenset(out)


def _step(states: FrozenSet[int], char: Optional[str], edges: _Edges) -> FrozenSet[int]:
    """All states reachable by consuming one concrete character.

    ``char=None`` means a *free* character distinct from every literal
    (only wildcard edges can consume it); a literal ``char`` is consumed
    by its own edge or by any wildcard edge.
    """
    out = set()
    for state in states:
        for edge_char, nxt in edges[state]:
            if edge_char == "":
                continue  # epsilon, handled by closure
            if edge_char is None or (char is not None and edge_char == char):
                out.add(nxt)
    return _closure(frozenset(out), edges)


def _tokens_may_equal(a: Sequence[Part], b: Sequence[Part]) -> bool:
    """Exact emptiness test for the intersection of two segment patterns.

    Placeholders are modelled as ``[^/]+`` regardless of provenance (the
    caller applies the provenance rules first), so this is a sound
    over-approximation and *precise* on the literal structure: it rules
    out prefix-aliasing pairs like ``asset/1`` vs ``asset/1{x}`` (the
    placeholder must add at least one character) and ``10{x}`` vs ``1``.
    """
    edges_a, accept_a = _nfa(a)
    edges_b, accept_b = _nfa(b)
    alphabet = sorted(
        {ch for token in [*a, *b] if isinstance(token, str) for ch in token}
    )
    start = (_closure(frozenset([0]), edges_a), _closure(frozenset([0]), edges_b))
    seen = {start}
    queue = [start]
    while queue:
        sa, sb = queue.pop()
        if accept_a in sa and accept_b in sb:
            return True
        for char in [*alphabet, None]:
            na = _step(sa, char, edges_a)
            nb = _step(sb, char, edges_b)
            if not na or not nb:
                continue
            nxt = (na, nb)
            if nxt not in seen:
                seen.add(nxt)
                queue.append(nxt)
    return False


def _segments_may_equal(a: Sequence[Part], b: Sequence[Part], same_creator: bool) -> bool:
    """Can two key segments expand to the same text?"""
    a = _normalise(a)
    b = _normalise(b)
    if all(isinstance(t, str) for t in a) and all(isinstance(t, str) for t in b):
        return "".join(a) == "".join(b)

    # Single-placeholder segments get the precise provenance rules.
    if len(a) == 1 and len(b) == 1 and isinstance(a[0], Sym) and isinstance(b[0], Sym):
        ka, kb = a[0].kind, b[0].kind
        if SymKind.NONCE in (ka, kb):
            return False  # per-transaction unique material never collides
        if ka == kb == SymKind.CREATOR:
            return same_creator
        return True

    # Mixed segments: exact intersection test with every placeholder
    # widened to [^/]+.  Provenance distinctions (nonce uniqueness,
    # creator equality) only ever *remove* collisions and apply to
    # whole-segment placeholders above; embedded placeholders stay
    # conservative, which keeps the verdict an over-approximation.
    return _tokens_may_equal(a, b)


def may_collide(a: KeyPattern, b: KeyPattern, same_creator: bool) -> bool:
    """Can patterns ``a`` and ``b`` expand to the same concrete key?

    ``same_creator`` selects whether CREATOR placeholders in the two
    patterns refer to the same player (two transactions by one player in
    one block) or to different players.
    """
    seg_a = a.segments()
    seg_b = b.segments()
    if len(seg_a) != len(seg_b):
        return False
    return all(
        _segments_may_equal(sa, sb, same_creator) for sa, sb in zip(seg_a, seg_b)
    )


def covers_key(patterns: Iterable[KeyPattern], key: str) -> bool:
    """True if any pattern in ``patterns`` covers the concrete ``key``."""
    return any(p.covers(key) for p in patterns)
