"""Symbolic world-state keys for static read/write-set inference.

The analyzer cannot know concrete key strings like ``asset/p1/6`` ahead
of time — it sees key *expressions* (``asset_key(player, aid)``,
f-strings, string constants).  This module models the result of
partially evaluating such an expression: a :class:`KeyPattern` is a
sequence of literal fragments and :class:`Sym` placeholders, each
placeholder tagged with *where its value comes from* at runtime.

The provenance tag is what makes conflict prediction possible:

* ``CREATOR`` — the transaction submitter's identity.  Two transactions
  from the *same* player produce equal values; from different players,
  different values.
* ``NONCE`` — per-transaction unique material (nonce, tx id).  Never
  equal across two distinct transactions, which is exactly why the
  runtime's ``~nonce/{creator}/{nonce}`` marker is conflict-free.
* ``ARG`` — an invocation argument (e.g. ``payload["item_id"]``).  Two
  transactions may or may not pass the same value, so patterns built
  from arguments *may* collide.
* ``UNKNOWN`` — anything the evaluator could not resolve (state reads,
  loop variables over unresolvable iterables).  Treated like ``ARG``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple, Union

__all__ = ["Sym", "KeyPattern", "SymKind", "make_pattern", "may_collide", "covers_key"]


class SymKind:
    """Provenance of a symbolic key fragment (see module docstring)."""

    CREATOR = "creator"
    NONCE = "nonce"
    ARG = "arg"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class Sym:
    """One unresolved fragment of a world-state key."""

    name: str
    kind: str = SymKind.UNKNOWN

    def __str__(self) -> str:
        return "{%s}" % self.name


Part = Union[str, Sym]


@dataclass(frozen=True)
class KeyPattern:
    """A world-state key with zero or more symbolic fragments.

    ``parts`` alternates literal strings and :class:`Sym` placeholders;
    a fully literal pattern is a concrete key.  Placeholders are assumed
    to expand to non-empty text without ``/`` (all key helpers in this
    codebase interpolate identifiers, asset ids and nonces, none of
    which contain the segment separator).
    """

    parts: Tuple[Part, ...]

    def __str__(self) -> str:
        return "".join(str(p) for p in self.parts)

    @property
    def is_literal(self) -> bool:
        return all(isinstance(p, str) for p in self.parts)

    def regex(self) -> "re.Pattern[str]":
        out = []
        for part in self.parts:
            if isinstance(part, str):
                out.append(re.escape(part))
            else:
                out.append(r"[^/]+")
        return re.compile("".join(out) + r"\Z")

    def covers(self, key: str) -> bool:
        """True if this pattern can expand to the concrete ``key``."""
        return self.regex().match(key) is not None

    # ------------------------------------------------------------------
    # segmentation (for pairwise collision analysis)

    def segments(self) -> List[List[Part]]:
        """Split on ``/`` into per-segment token lists.

        Literal parts may span several segments; symbolic parts stay
        within one (see class docstring).
        """
        segments: List[List[Part]] = [[]]
        for part in self.parts:
            if isinstance(part, Sym):
                segments[-1].append(part)
                continue
            pieces = part.split("/")
            segments[-1].append(pieces[0])
            for piece in pieces[1:]:
                segments.append([piece])
        return segments


def make_pattern(parts: Iterable[Part]) -> KeyPattern:
    """Build a :class:`KeyPattern`, merging adjacent literal fragments."""
    return KeyPattern(tuple(_normalise(list(parts))))


def _normalise(tokens: Sequence[Part]) -> List[Part]:
    """Drop empty literals and merge adjacent literal tokens."""
    out: List[Part] = []
    for token in tokens:
        if isinstance(token, str):
            if not token:
                continue
            if out and isinstance(out[-1], str):
                out[-1] = out[-1] + token
                continue
        out.append(token)
    return out


def _segments_may_equal(a: Sequence[Part], b: Sequence[Part], same_creator: bool) -> bool:
    """Can two key segments expand to the same text?"""
    a = _normalise(a)
    b = _normalise(b)
    if all(isinstance(t, str) for t in a) and all(isinstance(t, str) for t in b):
        return "".join(a) == "".join(b)

    # Single-placeholder segments get the precise provenance rules.
    if len(a) == 1 and len(b) == 1 and isinstance(a[0], Sym) and isinstance(b[0], Sym):
        ka, kb = a[0].kind, b[0].kind
        if SymKind.NONCE in (ka, kb):
            return False  # per-transaction unique material never collides
        if ka == kb == SymKind.CREATOR:
            return same_creator
        return True

    # Mixed segments: compare the literal prefixes and suffixes that
    # survive around the placeholders; incompatible literals rule the
    # collision out, otherwise stay conservative.
    def literal_prefix(tokens: Sequence[Part]) -> str:
        return tokens[0] if tokens and isinstance(tokens[0], str) else ""

    def literal_suffix(tokens: Sequence[Part]) -> str:
        return tokens[-1] if tokens and isinstance(tokens[-1], str) else ""

    pa, pb = literal_prefix(a), literal_prefix(b)
    shared = min(len(pa), len(pb))
    if pa[:shared] != pb[:shared]:
        return False
    sa, sb = literal_suffix(a), literal_suffix(b)
    shared = min(len(sa), len(sb))
    if shared and sa[-shared:] != sb[-shared:]:
        return False
    # A nonce placeholder anywhere keeps the never-collides guarantee
    # only when it spans the whole segment; embedded, stay conservative.
    return True


def may_collide(a: KeyPattern, b: KeyPattern, same_creator: bool) -> bool:
    """Can patterns ``a`` and ``b`` expand to the same concrete key?

    ``same_creator`` selects whether CREATOR placeholders in the two
    patterns refer to the same player (two transactions by one player in
    one block) or to different players.
    """
    seg_a = a.segments()
    seg_b = b.segments()
    if len(seg_a) != len(seg_b):
        return False
    return all(
        _segments_may_equal(sa, sb, same_creator) for sa, sb in zip(seg_a, seg_b)
    )


def covers_key(patterns: Iterable[KeyPattern], key: str) -> bool:
    """True if any pattern in ``patterns`` covers the concrete ``key``."""
    return any(p.covers(key) for p in patterns)
