"""CLI for the contract static analyzer.

Usage::

    python -m repro.staticcheck repro.core.doom_contract:DoomContract
    python -m repro.staticcheck repro.core.monopoly_contract:MonopolyContract --json
    python -m repro.staticcheck --no-strict my.module:MyContract

Exit status 0 when the contract passes the determinism gate (strict
mode fails on warnings too), 1 when hazards were found, 2 on usage
errors.
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys

from . import analyze_contract


def _usage_error(message: str) -> SystemExit:
    print(f"error: {message}", file=sys.stderr)
    return SystemExit(2)


def _load(target: str):
    if ":" not in target:
        raise _usage_error(
            f"target must look like package.module:ClassName, got {target!r}"
        )
    module_name, _, class_name = target.partition(":")
    try:
        module = importlib.import_module(module_name)
    except ImportError as err:
        raise _usage_error(f"cannot import {module_name!r}: {err}")
    try:
        cls = getattr(module, class_name)
    except AttributeError:
        raise _usage_error(f"{module_name!r} has no attribute {class_name!r}")
    if not isinstance(cls, type):
        raise _usage_error(f"{target!r} is not a class")
    return cls


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck",
        description="Determinism linting, RWSet inference and MVCC "
        "conflict prediction for smart contracts.",
    )
    parser.add_argument(
        "target", help="contract class as package.module:ClassName"
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the machine-readable JSON report"
    )
    parser.add_argument(
        "--no-strict",
        action="store_true",
        help="fail only on errors (strict mode also fails on warnings)",
    )
    args = parser.parse_args(argv)

    cls = _load(args.target)
    report = analyze_contract(cls, strict=not args.no_strict)
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
