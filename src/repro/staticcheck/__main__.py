"""CLI for the contract static analyzer.

Usage::

    python -m repro.staticcheck repro.core.doom_contract:DoomContract
    python -m repro.staticcheck repro.core.monopoly_contract:MonopolyContract --json
    python -m repro.staticcheck --no-strict my.module:MyContract
    python -m repro.staticcheck a.module:A b.module:B --sarif findings.sarif
    python -m repro.staticcheck --fuzz 200 --seed 7

With targets, runs the full analysis (determinism lint + CHT taint
rules + footprints + conflict matrix) over each contract class.
``--sarif PATH`` additionally writes the combined findings as a SARIF
2.1.0 log for CI code-scanning upload.

``--fuzz N`` runs the fuzz-differential soundness harness instead:
randomized N-event traces through every shipped contract, asserting the
inferred footprints cover 100% of the runtime RWSet keys and the
conflict/lane verdicts agree with the ledger's MVCC outcomes.

Exit status 0 when every contract passes its gate (strict mode fails on
warnings too) and every fuzz case is sound, 1 on findings or soundness
violations, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import json
import sys

from . import analyze_contract, to_sarif
from .fuzz import default_cases, fuzz_case


def _usage_error(message: str) -> SystemExit:
    print(f"error: {message}", file=sys.stderr)
    return SystemExit(2)


def _load(target: str):
    if ":" not in target:
        raise _usage_error(
            f"target must look like package.module:ClassName, got {target!r}"
        )
    module_name, _, class_name = target.partition(":")
    try:
        module = importlib.import_module(module_name)
    except ImportError as err:
        raise _usage_error(f"cannot import {module_name!r}: {err}")
    try:
        cls = getattr(module, class_name)
    except AttributeError:
        raise _usage_error(f"{module_name!r} has no attribute {class_name!r}")
    if not isinstance(cls, type):
        raise _usage_error(f"{target!r} is not a class")
    return cls


def _source_uri(cls: type) -> str:
    """A repo-relative-ish artifact URI for SARIF locations."""
    try:
        path = inspect.getsourcefile(cls) or ""
    except TypeError:
        path = ""
    if not path:
        return f"contract://{cls.__name__}"
    for marker in ("src/", "tests/", "examples/"):
        index = path.find(marker)
        if index != -1:
            return path[index:]
    return path


def _run_fuzz(args) -> int:
    if args.target:
        raise _usage_error(
            "--fuzz covers the shipped contracts (which carry payload "
            "generators); run it without positional targets"
        )
    failures = 0
    for case in default_cases():
        outcome = fuzz_case(case, n_events=args.fuzz, seed=args.seed)
        verdict = "SOUND" if outcome.ok else "UNSOUND"
        print(
            f"{verdict} {outcome.case}: seed={outcome.seed} "
            f"events={outcome.n_events} blocks={outcome.blocks} "
            f"keys={outcome.keys_checked} pairs={outcome.pairs_checked} "
            f"codes={dict(sorted(outcome.codes.items()))}"
        )
        for violation in outcome.violations:
            failures += 1
            print(f"  {violation.kind}: {violation.detail}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck",
        description="Determinism linting, cheat-vulnerability taint rules, "
        "RWSet inference and MVCC conflict prediction for smart contracts.",
    )
    parser.add_argument(
        "target",
        nargs="*",
        help="contract classes as package.module:ClassName",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the machine-readable JSON report"
    )
    parser.add_argument(
        "--no-strict",
        action="store_true",
        help="fail only on errors (strict mode also fails on warnings)",
    )
    parser.add_argument(
        "--sarif",
        metavar="PATH",
        help="write combined findings as a SARIF 2.1.0 log",
    )
    parser.add_argument(
        "--fuzz",
        type=int,
        metavar="N",
        help="run the fuzz-differential soundness harness with N events "
        "per contract instead of the static report",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="fuzz seed (default 0)"
    )
    args = parser.parse_args(argv)

    if args.fuzz is not None:
        if args.fuzz < 1:
            raise _usage_error("--fuzz needs a positive event count")
        return _run_fuzz(args)

    if not args.target:
        raise _usage_error("need at least one target (or --fuzz N)")

    reports = []
    sarif_groups = []
    for target in args.target:
        cls = _load(target)
        report = analyze_contract(cls, strict=not args.no_strict)
        reports.append(report)
        sarif_groups.append(
            {
                "uri": _source_uri(cls),
                "diagnostics": report.diagnostics,
                "waived": report.waived,
            }
        )

    if args.sarif:
        with open(args.sarif, "w") as handle:
            json.dump(to_sarif(sarif_groups), handle, indent=2, sort_keys=True)
        print(f"SARIF written to {args.sarif}", file=sys.stderr)

    if args.json:
        payload = [report.to_json() for report in reports]
        print(json.dumps(payload[0] if len(payload) == 1 else payload,
                         indent=2, sort_keys=True))
    else:
        for index, report in enumerate(reports):
            if index:
                print()
            print(report.render())
    return 0 if all(report.ok for report in reports) else 1


if __name__ == "__main__":
    sys.exit(main())
