"""Process-level staticcheck telemetry.

The telemetry subsystem deliberately has no global registry (each
simulation session owns one), but the compile gate is *not* session
code — it runs wherever contracts are compiled, including import time.
This module owns the one registry for such process-level analyzer
events, so operational dashboards can see how often the escape hatch
(``compile_contract_source(strict=False/None)``) let findings through
ungated.
"""

from __future__ import annotations

from ..telemetry.metrics import MetricsRegistry

__all__ = ["REGISTRY", "record_waived_findings"]

#: Process-wide registry for analyzer metrics (scraped via
#: ``REGISTRY.collect()`` like any session registry).
REGISTRY = MetricsRegistry()


def record_waived_findings(n: int, mode: str) -> None:
    """Count findings a relaxed compile gate suppressed.

    ``mode`` is how they were waived: ``"no-strict"`` (warnings let
    through by ``strict=False``) or ``"gate-skipped"`` (every finding,
    ``strict=None``).
    """
    if n > 0:
        REGISTRY.counter(
            "staticcheck_waivers_total",
            help="findings suppressed by a relaxed compile gate",
            mode=mode,
        ).inc(n)
