"""SARIF 2.1.0 export for staticcheck findings.

SARIF (Static Analysis Results Interchange Format) is what CI code-
scanning UIs ingest — GitHub's ``upload-sarif`` action renders each
result as an annotation on the offending line.  One run carries the
combined determinism (DET) and cheat-vulnerability (CHT) findings for
any number of analyzed contracts; waived CHT findings are exported as
*suppressed* results, so the waiver is visible in the scan history
rather than silently absent.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .rules import Diagnostic, SEVERITY_ERROR
from .taint import CHT_RULES

__all__ = ["DET_RULES", "to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: One-line summaries of the determinism rules (mirrors ``rules.py``).
DET_RULES: Dict[str, str] = {
    "DET001": "nondeterministic value source (random, uuid, hash, ...)",
    "DET002": "wall-clock read inside contract code",
    "DET003": "iteration over an unordered collection",
    "DET004": "I/O inside contract code",
    "DET005": "cross-invocation shared state",
    "DET006": "floating-point accumulation in a loop",
    "DET007": "import of a nondeterminism-prone module",
}


def _level(diag: Diagnostic) -> str:
    return "error" if diag.severity == SEVERITY_ERROR else "warning"


def _result(diag: Diagnostic, uri: str, suppressed: bool = False) -> dict:
    message = diag.message
    if diag.context:
        message = f"{diag.context}: {message}"
    result = {
        "ruleId": diag.code,
        "level": _level(diag),
        "message": {"text": message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": uri},
                    "region": {
                        "startLine": max(diag.line, 1),
                        "startColumn": max(diag.col, 0) + 1,
                    },
                }
            }
        ],
    }
    if suppressed:
        result["suppressions"] = [
            {"kind": "inSource", "justification": "STATICCHECK_WAIVERS entry"}
        ]
    return result


def to_sarif(
    findings: Iterable[Dict],
    tool_version: str = "2.0",
) -> dict:
    """Assemble one SARIF log from per-contract finding groups.

    ``findings`` is an iterable of dicts with keys:

    * ``uri`` — artifact path the results anchor to (repo-relative
      preferred; pseudo-URIs like ``contract://Doom`` are fine for
      classes without a source file);
    * ``diagnostics`` — active :class:`Diagnostic` items;
    * ``waived`` — optional suppressed :class:`Diagnostic` items.
    """
    rules = [
        {
            "id": code,
            "shortDescription": {"text": text},
            "defaultConfiguration": {
                "level": "warning" if code in ("CHT002", "DET006") else "error"
            },
        }
        for code, text in sorted({**DET_RULES, **CHT_RULES}.items())
    ]
    results: List[dict] = []
    for group in findings:
        uri = group["uri"]
        for diag in group.get("diagnostics", []):
            results.append(_result(diag, uri))
        for diag in group.get("waived", []):
            results.append(_result(diag, uri, suppressed=True))

    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-staticcheck",
                        "informationUri": (
                            "https://github.com/paper-repo-growth/repro"
                        ),
                        "version": tool_version,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
