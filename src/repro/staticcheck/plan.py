"""Conflict-DAG planner: from the static conflict matrix to a concrete
validation schedule.

ROADMAP item 3 asks for "static-analysis-guided MVCC: use
``repro.staticcheck``'s conflict matrix at ordering time to pre-partition
non-conflicting txs".  The matrix answers the *per-function* question
("may SHOOT conflict with DAMAGE?"); this module lowers it onto a
*concrete batch* — each transaction carries its function and creator, so
a SAME_PLAYER verdict resolves to a real edge only when the two creators
match.  The result is a dependency DAG over the block:

* **edges** connect pairs that may touch a common key (in block order,
  earlier → later), i.e. exactly the pairs the ledger's MVCC check might
  invalidate;
* **lanes** are the connected components, each keeping its internal
  block order.  Two transactions in different lanes provably touch
  disjoint keys (the matrix over-approximates the runtime RWSets — see
  the fuzz-differential harness), so lanes can be validated/executed in
  parallel without changing any commit outcome.

The planner is strictly *advisory*: :class:`~repro.blockchain.ordering.
OrderingService` records the plan in non-hashed block metadata (like
Fabric's validation bitmap) and never reorders, drops or regroups
transactions — commit results are bit-identical with the flag on or off,
which the golden chaos record and perf replay tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from .conflicts import ConflictLevel, ConflictMatrix, predict_conflicts
from .rwset import infer_footprints

__all__ = ["ConflictPlan", "ConflictPlanner"]

#: ``for_contract`` memo for class targets (see its docstring).
_PLANNER_CACHE: Dict[type, "ConflictPlanner"] = {}
_PLANNER_CACHE_MAX = 256


@dataclass
class ConflictPlan:
    """The dependency structure of one concrete transaction batch."""

    tx_ids: List[str]
    #: (i, j) index pairs with i < j that may touch a common key.
    edges: List[Tuple[int, int]]
    #: Provably-independent groups of indices, each in block order.
    lanes: List[List[int]]

    @property
    def parallelism(self) -> int:
        return len(self.lanes)

    def lane_of(self, index: int) -> int:
        for lane_no, lane in enumerate(self.lanes):
            if index in lane:
                return lane_no
        raise IndexError(f"tx index {index} not in plan")

    def to_json(self) -> Dict[str, Any]:
        return {
            "tx_ids": list(self.tx_ids),
            "edges": [list(e) for e in self.edges],
            "lanes": [list(lane) for lane in self.lanes],
        }


class ConflictPlanner:
    """Plans provably-independent validation lanes for transaction batches.

    Built from a contract's static :class:`ConflictMatrix`; unknown
    functions (not discovered by the analyzer) are conservatively
    treated as conflicting with everything, so a plan can never be
    *less* safe than the matrix.
    """

    def __init__(self, matrix: ConflictMatrix, contract: Optional[str] = None):
        self.matrix = matrix
        #: Contract name the matrix describes; transactions addressed to a
        #: different contract are conservatively treated as conflicting.
        self.contract = contract
        self._known: Set[str] = set(matrix.events)

    @classmethod
    def for_contract(
        cls,
        target: Union[str, type],
        class_name: Optional[str] = None,
    ) -> "ConflictPlanner":
        """Build a planner from a contract class or source text.

        Class targets are memoised process-wide: the analysis is a pure
        function of the class source, and every simulated session that
        arms the planner (``conflict_planner`` / ``parallel_validation``)
        would otherwise re-run the same footprint inference (~0.1 s) at
        ``install_contract`` time.  Planner instances are stateless after
        construction, so sharing one is safe.
        """
        if isinstance(target, type) and class_name is None:
            cached = _PLANNER_CACHE.get(target)
            if cached is not None:
                return cached
        contract = getattr(target, "name", None) if isinstance(target, type) else None
        planner = cls(
            predict_conflicts(infer_footprints(target, class_name)),
            contract=contract if isinstance(contract, str) else None,
        )
        if isinstance(target, type) and class_name is None:
            if len(_PLANNER_CACHE) >= _PLANNER_CACHE_MAX:
                _PLANNER_CACHE.clear()
            _PLANNER_CACHE[target] = planner
        return planner

    # ------------------------------------------------------------------

    def may_conflict(self, tx_a, tx_b) -> bool:
        """May the two transactions touch a common key?

        Resolves the matrix's SAME_PLAYER verdict against the concrete
        creators.  Sound direction: ``False`` is a proof of disjointness
        (modulo the matrix's own soundness, which the fuzz-differential
        harness checks); ``True`` is merely "cannot rule it out".
        """
        if self.contract is not None and (
            tx_a.proposal.contract != self.contract
            or tx_b.proposal.contract != self.contract
        ):
            return True
        fa = tx_a.proposal.function
        fb = tx_b.proposal.function
        if fa not in self._known or fb not in self._known:
            return True
        level = self.matrix.level(fa, fb)
        if level == ConflictLevel.ALWAYS:
            return True
        if level == ConflictLevel.SAME_PLAYER:
            return tx_a.proposal.creator == tx_b.proposal.creator
        return False

    def plan_block(self, transactions: Sequence) -> ConflictPlan:
        """Lower the matrix onto a concrete batch (in block order)."""
        n = len(transactions)
        edges: List[Tuple[int, int]] = []
        parent = list(range(n))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        for i in range(n):
            for j in range(i + 1, n):
                if self.may_conflict(transactions[i], transactions[j]):
                    edges.append((i, j))
                    parent[find(i)] = find(j)

        lanes_by_root: Dict[int, List[int]] = {}
        for i in range(n):
            lanes_by_root.setdefault(find(i), []).append(i)
        # Deterministic lane order: by first (earliest) member index.
        lanes = sorted(lanes_by_root.values(), key=lambda lane: lane[0])
        return ConflictPlan(
            tx_ids=[tx.proposal.tx_id for tx in transactions],
            edges=edges,
            lanes=lanes,
        )
