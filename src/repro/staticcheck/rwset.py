"""AST-based read/write-set inference for smart contracts.

The runtime :class:`~repro.blockchain.contracts.StateView` records the
*concrete* keys one invocation touched; this module predicts, before any
transaction runs, the *shape* of every handler's footprint — which keys
an event can read and write as :class:`KeyPattern` templates such as
``asset/{creator}/6`` or ``item/{arg:item_id}``.

The inference is a symbolic abstract interpretation of the handler
bodies:

* ``ctx.view.get/put/exists`` calls record reads/writes; the key
  expression is partially evaluated (constants fold, f-strings become
  patterns, ``ctx.creator``/``payload[...]`` become tagged symbols).
* ``self._helper(...)`` calls are inlined with their arguments bound,
  so ``self._put(ctx, player, AssetId.HEALTH, v)`` resolves through the
  helper's f-string to ``asset/{creator}/1``.
* Module-level key helpers (``asset_key``, ``item_key``, ...) resolved
  through the contract module's namespace are inlined the same way.
* Both arms of unresolvable conditionals are explored and unioned, so
  the result over-approximates: inferred footprints are a *superset* of
  any runtime footprint (the property the differential test checks).

Every footprint also carries the runtime wrapper's replay-defence
marker ``~nonce/{creator}/{nonce}`` (read + write), which
:func:`~repro.blockchain.contracts.execute_transaction` adds around
every invocation.
"""

from __future__ import annotations

import ast
import inspect
import sys
import textwrap
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .symbols import KeyPattern, Sym, SymKind, make_pattern

__all__ = ["Footprint", "infer_footprints", "RUNTIME_NONCE_READS", "RUNTIME_NONCE_WRITES"]

#: Cap on pattern fan-out per key expression and loop unrolling.
_MAX_PATTERNS = 64
_MAX_UNROLL = 64
_MAX_INLINE_DEPTH = 10
_MAX_INLINE_STATEMENTS = 120

#: The replay-defence marker the contract runtime touches around every
#: invocation (`execute_transaction` reads it, then writes it).
_NONCE_PATTERN = make_pattern(
    ["~nonce/", Sym("creator", SymKind.CREATOR), "/", Sym("nonce", SymKind.NONCE)]
)
RUNTIME_NONCE_READS = (_NONCE_PATTERN,)
RUNTIME_NONCE_WRITES = (_NONCE_PATTERN,)


@dataclass(frozen=True)
class Footprint:
    """The statically inferred key footprint of one handler."""

    handler: str
    reads: Tuple[KeyPattern, ...]
    writes: Tuple[KeyPattern, ...]

    def read_covers(self, key: str) -> bool:
        return any(p.covers(key) for p in self.reads)

    def write_covers(self, key: str) -> bool:
        return any(p.covers(key) for p in self.writes)

    def to_json(self) -> dict:
        return {
            "handler": self.handler,
            "reads": sorted(str(p) for p in self.reads),
            "writes": sorted(str(p) for p in self.writes),
        }


# ----------------------------------------------------------------------
# symbolic values

class _Marker:
    def __init__(self, label: str):
        self.label = label

    def __repr__(self) -> str:
        return f"<{self.label}>"


_SELF = _Marker("self")
_CTX = _Marker("ctx")
_VIEW = _Marker("view")
_PAYLOAD = _Marker("payload")
_UNKNOWN = _Marker("unknown")


@dataclass(frozen=True)
class _Lit:
    value: Any


@dataclass(frozen=True)
class _SymV:
    sym: Sym


@dataclass(frozen=True)
class _PatternV:
    pattern: KeyPattern


class _UnionV:
    def __init__(self, members: Sequence[Any]):
        seen: Dict[str, Any] = {}
        for member in members:
            if isinstance(member, _UnionV):
                for inner in member.members:
                    seen.setdefault(_vkey(inner), inner)
            else:
                seen.setdefault(_vkey(member), member)
        self.members: List[Any] = list(seen.values())


@dataclass(frozen=True)
class _ObjV:
    """A live Python object resolved from the module namespace."""

    obj: Any


@dataclass(frozen=True)
class _MethodV:
    """A reference to a method of the analyzed class (for inlining)."""

    node: ast.FunctionDef
    env: Optional[dict]


@dataclass(frozen=True)
class _FuncV:
    """A module-level function we may inline."""

    node: ast.FunctionDef
    env: Optional[dict]


def _vkey(value: Any) -> str:
    if isinstance(value, _Lit):
        return f"lit:{value.value!r}"
    if isinstance(value, _SymV):
        return f"sym:{value.sym.name}:{value.sym.kind}"
    if isinstance(value, _PatternV):
        return f"pat:{value.pattern}"
    return f"other:{id(value)}"


def _union(members: Sequence[Any]) -> Any:
    u = _UnionV(members)
    if len(u.members) == 1:
        return u.members[0]
    return u


def _wrap_object(obj: Any) -> Any:
    if obj is None or isinstance(obj, (str, int, float, bool, tuple, frozenset)):
        return _Lit(obj)
    return _ObjV(obj)


# ----------------------------------------------------------------------
# class model

@dataclass
class _ClassInfo:
    name: str
    node: ast.ClassDef
    methods: Dict[str, ast.FunctionDef]
    consts: Dict[str, Any]  # class attrs + __init__ parameter defaults
    env: Optional[dict]


def _literal(node: ast.AST) -> Tuple[bool, Any]:
    try:
        return True, ast.literal_eval(node)
    except (ValueError, TypeError, SyntaxError, MemoryError):
        return False, None


def _build_class_info(node: ast.ClassDef, env: Optional[dict]) -> _ClassInfo:
    methods: Dict[str, ast.FunctionDef] = {}
    consts: Dict[str, Any] = {}
    for stmt in node.body:
        if isinstance(stmt, ast.FunctionDef):
            methods[stmt.name] = stmt
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                ok, value = _literal(stmt.value)
                if ok:
                    consts[target.id] = value
    # Instance attributes assigned verbatim from __init__ parameters take
    # the parameter's default (e.g. ``split_kvs=True``): the analyzer
    # assumes the default deployment configuration.
    init = methods.get("__init__")
    if init is not None:
        defaults: Dict[str, Any] = {}
        args = init.args
        positional = args.args[1:]  # drop self
        for arg, default in zip(
            positional[len(positional) - len(args.defaults):], args.defaults
        ):
            ok, value = _literal(default)
            if ok:
                defaults[arg.arg] = value
        for kwarg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None:
                ok, value = _literal(default)
                if ok:
                    defaults[kwarg.arg] = value
        for stmt in init.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Attribute)
                and isinstance(stmt.targets[0].value, ast.Name)
                and stmt.targets[0].value.id == "self"
            ):
                attr = stmt.targets[0].attr
                ok, value = _literal(stmt.value)
                if ok:
                    consts.setdefault(attr, value)
                elif isinstance(stmt.value, ast.Name) and stmt.value.id in defaults:
                    consts.setdefault(attr, defaults[stmt.value.id])
    return _ClassInfo(name=node.name, node=node, methods=methods, consts=consts, env=env)


# ----------------------------------------------------------------------
# the abstract interpreter

class _Analyzer:
    def __init__(self, info: _ClassInfo):
        self.info = info
        self.reads: Dict[str, KeyPattern] = {}
        self.writes: Dict[str, KeyPattern] = {}
        self._depth = 0

    # -- entry ----------------------------------------------------------

    def run_handler(self, method: ast.FunctionDef) -> None:
        bind: Dict[str, Any] = {}
        params = [a.arg for a in method.args.args]
        roles = [_SELF, _CTX, _PAYLOAD]
        for name, role in zip(params, roles):
            bind[name] = role
        for name in params[len(roles):]:
            bind[name] = _SymV(Sym(f"param:{name}", SymKind.ARG))
        collector: List[Any] = []
        self._exec_block(method.body, bind, self.info.env, collector)

    def footprint(self, handler: str) -> Footprint:
        reads = dict(self.reads)
        writes = dict(self.writes)
        for pattern in RUNTIME_NONCE_READS:
            reads.setdefault(str(pattern), pattern)
        for pattern in RUNTIME_NONCE_WRITES:
            writes.setdefault(str(pattern), pattern)
        return Footprint(
            handler=handler,
            reads=tuple(reads.values()),
            writes=tuple(writes.values()),
        )

    # -- footprint recording -------------------------------------------

    def _patterns_of(self, value: Any) -> List[KeyPattern]:
        if isinstance(value, _Lit):
            return [make_pattern([str(value.value)])]
        if isinstance(value, _SymV):
            return [make_pattern([value.sym])]
        if isinstance(value, _PatternV):
            return [value.pattern]
        if isinstance(value, _UnionV):
            out: List[KeyPattern] = []
            for member in value.members:
                out.extend(self._patterns_of(member))
                if len(out) >= _MAX_PATTERNS:
                    break
            return out[:_MAX_PATTERNS]
        return [make_pattern([Sym("?", SymKind.UNKNOWN)])]

    def _record(self, table: Dict[str, KeyPattern], key_value: Any) -> None:
        for pattern in self._patterns_of(key_value):
            table.setdefault(str(pattern), pattern)

    # -- statement execution -------------------------------------------

    def _exec_block(
        self,
        stmts: Sequence[ast.stmt],
        bind: Dict[str, Any],
        env: Optional[dict],
        returns: List[Any],
    ) -> bool:
        """Execute statements; True if every path through them returns
        or raises (used to prune code after a definite exit)."""
        for stmt in stmts:
            if self._exec_stmt(stmt, bind, env, returns):
                return True
        return False

    def _exec_stmt(
        self, stmt: ast.stmt, bind: Dict[str, Any], env: Optional[dict], returns: List[Any]
    ) -> bool:
        if isinstance(stmt, ast.Return):
            returns.append(
                self._eval(stmt.value, bind, env) if stmt.value is not None else _Lit(None)
            )
            return True
        if isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc, bind, env)
            return True
        if isinstance(stmt, ast.Expr):
            self._eval(stmt.value, bind, env)
            return False
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._exec_assign(stmt, bind, env)
            return False
        if isinstance(stmt, ast.If):
            return self._exec_if(stmt, bind, env, returns)
        if isinstance(stmt, ast.For):
            self._exec_for(stmt, bind, env, returns)
            return False
        if isinstance(stmt, ast.While):
            self._eval(stmt.test, bind, env)
            branch = dict(bind)
            self._exec_block(stmt.body, branch, env, returns)
            self._merge(bind, branch)
            return False
        if isinstance(stmt, ast.Try):
            self._exec_block(stmt.body, bind, env, returns)
            for handler in stmt.handlers:
                branch = dict(bind)
                self._exec_block(handler.body, branch, env, returns)
                self._merge(bind, branch)
            self._exec_block(stmt.orelse, bind, env, returns)
            self._exec_block(stmt.finalbody, bind, env, returns)
            return False
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self._eval(item.context_expr, bind, env)
            return self._exec_block(stmt.body, bind, env, returns)
        if isinstance(stmt, ast.Assert):
            self._eval(stmt.test, bind, env)
            return False
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bind[stmt.name] = _UNKNOWN
            return False
        return False

    def _exec_assign(self, stmt: ast.stmt, bind: Dict[str, Any], env: Optional[dict]) -> None:
        if isinstance(stmt, ast.AugAssign):
            self._eval(stmt.value, bind, env)
            if isinstance(stmt.target, ast.Name):
                bind[stmt.target.id] = _SymV(Sym(f"acc:{stmt.target.id}", SymKind.UNKNOWN))
            return
        value_node = stmt.value
        if value_node is None:  # bare annotation
            return
        value = self._eval(value_node, bind, env)
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        for target in targets:
            self._bind_target(target, value, bind)

    def _bind_target(self, target: ast.AST, value: Any, bind: Dict[str, Any]) -> None:
        if isinstance(target, ast.Name):
            bind[target.id] = value
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            elements = None
            if isinstance(value, _Lit) and isinstance(value.value, (tuple, list)):
                if len(value.value) == len(target.elts):
                    elements = [_Lit(v) for v in value.value]
            for i, elt in enumerate(target.elts):
                if elements is not None:
                    self._bind_target(elt, elements[i], bind)
                elif isinstance(elt, ast.Name):
                    bind[elt.id] = _SymV(Sym(f"unpack:{elt.id}", SymKind.UNKNOWN))

    def _exec_if(
        self, stmt: ast.If, bind: Dict[str, Any], env: Optional[dict], returns: List[Any]
    ) -> bool:
        truth = self._truth(self._eval(stmt.test, bind, env))
        if truth is True:
            return self._exec_block(stmt.body, bind, env, returns)
        if truth is False:
            return self._exec_block(stmt.orelse, bind, env, returns)
        then_bind = dict(bind)
        else_bind = dict(bind)
        t_term = self._exec_block(stmt.body, then_bind, env, returns)
        e_term = self._exec_block(stmt.orelse, else_bind, env, returns)
        if t_term and not e_term:
            bind.clear()
            bind.update(else_bind)
            return False
        if e_term and not t_term:
            bind.clear()
            bind.update(then_bind)
            return False
        self._merge_into(bind, then_bind, else_bind)
        return t_term and e_term

    def _exec_for(
        self, stmt: ast.For, bind: Dict[str, Any], env: Optional[dict], returns: List[Any]
    ) -> None:
        iterable = self._eval(stmt.iter, bind, env)
        concrete: Optional[List[Any]] = None
        if isinstance(iterable, _Lit) and isinstance(iterable.value, (list, tuple)):
            if len(iterable.value) <= _MAX_UNROLL:
                concrete = [_Lit(v) for v in iterable.value]
        elif isinstance(iterable, _Lit) and isinstance(iterable.value, dict):
            if len(iterable.value) <= _MAX_UNROLL:
                concrete = [_Lit(k) for k in iterable.value]
        if concrete is not None:
            for element in concrete:
                body_bind = dict(bind)
                self._bind_target(stmt.target, element, body_bind)
                self._exec_block(stmt.body, body_bind, env, returns)
                self._merge(bind, body_bind)
        else:
            body_bind = dict(bind)
            self._bind_target(
                stmt.target, _SymV(Sym("loop", SymKind.UNKNOWN)), body_bind
            )
            self._exec_block(stmt.body, body_bind, env, returns)
            self._merge(bind, body_bind)
        self._exec_block(stmt.orelse, bind, env, returns)

    def _merge(self, into: Dict[str, Any], branch: Dict[str, Any]) -> None:
        for name, value in branch.items():
            if name in into and _vkey(into[name]) != _vkey(value):
                into[name] = _union([into[name], value])
            else:
                into[name] = value

    def _merge_into(
        self, bind: Dict[str, Any], a: Dict[str, Any], b: Dict[str, Any]
    ) -> None:
        bind.clear()
        for name in set(a) | set(b):
            if name in a and name in b:
                if _vkey(a[name]) == _vkey(b[name]):
                    bind[name] = a[name]
                else:
                    bind[name] = _union([a[name], b[name]])
            else:
                bind[name] = a.get(name, b.get(name))

    # -- expression evaluation -----------------------------------------

    def _truth(self, value: Any) -> Optional[bool]:
        if isinstance(value, _Lit):
            try:
                return bool(value.value)
            except Exception:
                return None
        return None

    def _eval(self, node: Optional[ast.AST], bind: Dict[str, Any], env: Optional[dict]) -> Any:
        if node is None:
            return _Lit(None)
        handler = getattr(self, f"_eval_{type(node).__name__}", None)
        if handler is not None:
            return handler(node, bind, env)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._eval(child, bind, env)
        return _UNKNOWN

    def _eval_Constant(self, node: ast.Constant, bind, env) -> Any:
        return _Lit(node.value)

    def _eval_Name(self, node: ast.Name, bind, env) -> Any:
        if node.id in bind:
            return bind[node.id]
        if env is not None and node.id in env:
            return _wrap_object(env[node.id])
        return _SymV(Sym(node.id, SymKind.UNKNOWN))

    def _eval_Tuple(self, node: ast.Tuple, bind, env) -> Any:
        values = [self._eval(e, bind, env) for e in node.elts]
        if all(isinstance(v, _Lit) for v in values):
            return _Lit(tuple(v.value for v in values))
        return _UNKNOWN

    _eval_List = _eval_Tuple

    def _eval_Dict(self, node: ast.Dict, bind, env) -> Any:
        keys = [self._eval(k, bind, env) for k in node.keys if k is not None]
        values = [self._eval(v, bind, env) for v in node.values]
        if len(keys) == len(values) and all(
            isinstance(v, _Lit) for v in keys + values
        ):
            try:
                return _Lit({k.value: v.value for k, v in zip(keys, values)})
            except TypeError:
                return _UNKNOWN
        return _UNKNOWN

    def _eval_Set(self, node: ast.Set, bind, env) -> Any:
        for e in node.elts:
            self._eval(e, bind, env)
        return _UNKNOWN

    def _eval_Starred(self, node: ast.Starred, bind, env) -> Any:
        return self._eval(node.value, bind, env)

    def _eval_NamedExpr(self, node, bind, env) -> Any:
        value = self._eval(node.value, bind, env)
        if isinstance(node.target, ast.Name):
            bind[node.target.id] = value
        return value

    def _eval_IfExp(self, node: ast.IfExp, bind, env) -> Any:
        truth = self._truth(self._eval(node.test, bind, env))
        if truth is True:
            return self._eval(node.body, bind, env)
        if truth is False:
            return self._eval(node.orelse, bind, env)
        return _union([self._eval(node.body, bind, env), self._eval(node.orelse, bind, env)])

    def _eval_BoolOp(self, node: ast.BoolOp, bind, env) -> Any:
        values = [self._eval(v, bind, env) for v in node.values]
        if all(isinstance(v, _Lit) for v in values):
            try:
                raw = [v.value for v in values]
                if isinstance(node.op, ast.And):
                    result = raw[0]
                    for value in raw[1:]:
                        result = result and value
                else:
                    result = raw[0]
                    for value in raw[1:]:
                        result = result or value
                return _Lit(result)
            except Exception:
                return _UNKNOWN
        # `x or default` with a symbolic x: either side may be the value.
        if isinstance(node.op, ast.Or) and len(values) == 2:
            return _union(values)
        return _UNKNOWN

    def _eval_UnaryOp(self, node: ast.UnaryOp, bind, env) -> Any:
        operand = self._eval(node.operand, bind, env)
        if isinstance(operand, _Lit):
            try:
                if isinstance(node.op, ast.Not):
                    return _Lit(not operand.value)
                if isinstance(node.op, ast.USub):
                    return _Lit(-operand.value)
                if isinstance(node.op, ast.UAdd):
                    return _Lit(+operand.value)
            except Exception:
                return _UNKNOWN
        return _UNKNOWN

    def _eval_Compare(self, node: ast.Compare, bind, env) -> Any:
        left = self._eval(node.left, bind, env)
        rights = [self._eval(c, bind, env) for c in node.comparators]
        if isinstance(left, _Lit) and all(isinstance(r, _Lit) for r in rights):
            try:
                current = left.value
                for op, right in zip(node.ops, rights):
                    ok = _COMPARE_OPS[type(op)](current, right.value)
                    if not ok:
                        return _Lit(False)
                    current = right.value
                return _Lit(True)
            except Exception:
                return _UNKNOWN
        return _UNKNOWN

    def _eval_BinOp(self, node: ast.BinOp, bind, env) -> Any:
        left = self._eval(node.left, bind, env)
        right = self._eval(node.right, bind, env)
        if isinstance(left, _Lit) and isinstance(right, _Lit):
            try:
                return _Lit(_BIN_OPS[type(node.op)](left.value, right.value))
            except Exception:
                return _UNKNOWN
        if isinstance(node.op, ast.Add):
            # string concatenation building a key
            parts = self._concat_parts(left) + self._concat_parts(right)
            if parts is not None and any(isinstance(p, Sym) for p in parts):
                return _PatternV(make_pattern(parts))
        return _UNKNOWN

    def _concat_parts(self, value: Any) -> List[Any]:
        if isinstance(value, _Lit):
            return [str(value.value)]
        if isinstance(value, _SymV):
            return [value.sym]
        if isinstance(value, _PatternV):
            return list(value.pattern.parts)
        return [Sym("?", SymKind.UNKNOWN)]

    def _eval_JoinedStr(self, node: ast.JoinedStr, bind, env) -> Any:
        variants: List[List[Any]] = [[]]
        for piece in node.values:
            if isinstance(piece, ast.Constant):
                for variant in variants:
                    variant.append(str(piece.value))
                continue
            value = self._eval(piece.value, bind, env)
            options = self._format_options(value)
            new_variants: List[List[Any]] = []
            for variant in variants:
                for option in options:
                    if len(new_variants) >= _MAX_PATTERNS:
                        break
                    new_variants.append(variant + option)
            variants = new_variants or variants
        patterns = [make_pattern(v) for v in variants]
        if len(patterns) == 1 and patterns[0].is_literal:
            return _Lit(str(patterns[0]))
        if len(patterns) == 1:
            return _PatternV(patterns[0])
        return _union([
            _Lit(str(p)) if p.is_literal else _PatternV(p) for p in patterns
        ])

    def _format_options(self, value: Any) -> List[List[Any]]:
        """Possible part-lists one interpolated value expands to."""
        if isinstance(value, _Lit):
            return [[str(value.value)]]
        if isinstance(value, _SymV):
            return [[value.sym]]
        if isinstance(value, _PatternV):
            return [list(value.pattern.parts)]
        if isinstance(value, _UnionV):
            out: List[List[Any]] = []
            for member in value.members:
                out.extend(self._format_options(member))
            return out[:_MAX_PATTERNS]
        return [[Sym("?", SymKind.UNKNOWN)]]

    def _eval_Subscript(self, node: ast.Subscript, bind, env) -> Any:
        base = self._eval(node.value, bind, env)
        index = self._eval(node.slice, bind, env)
        if base is _PAYLOAD and isinstance(index, _Lit) and isinstance(index.value, str):
            return _SymV(Sym(f"arg:{index.value}", SymKind.ARG))
        if isinstance(base, _Lit) and isinstance(index, _Lit):
            try:
                return _wrap_object(base.value[index.value])
            except Exception:
                return _UNKNOWN
        return _UNKNOWN

    def _eval_Attribute(self, node: ast.Attribute, bind, env) -> Any:
        base = self._eval(node.value, bind, env)
        attr = node.attr
        if base is _CTX:
            if attr == "view":
                return _VIEW
            if attr == "creator":
                return _SymV(Sym("creator", SymKind.CREATOR))
            if attr in ("nonce", "tx_id"):
                return _SymV(Sym(attr, SymKind.NONCE))
            if attr == "timestamp":
                return _SymV(Sym("timestamp", SymKind.ARG))
            return _UNKNOWN
        if base is _SELF:
            if attr in self.info.methods:
                return _MethodV(self.info.methods[attr], env)
            if attr in self.info.consts:
                return _wrap_object(self.info.consts[attr])
            return _UNKNOWN
        if isinstance(base, _ObjV):
            try:
                return _wrap_object(getattr(base.obj, attr))
            except AttributeError:
                return _UNKNOWN
        return _UNKNOWN

    # -- calls ----------------------------------------------------------

    def _eval_Call(self, node: ast.Call, bind, env) -> Any:
        func = node.func
        # view.get/put/exists — the whole point of the analysis
        if isinstance(func, ast.Attribute):
            receiver = self._eval(func.value, bind, env)
            if receiver is _VIEW:
                return self._eval_view_call(func.attr, node, bind, env)
            if receiver is _PAYLOAD:
                return self._eval_payload_call(func.attr, node, bind, env)
            if receiver is _SELF:
                if func.attr in self.info.methods:
                    return self._inline(
                        self.info.methods[func.attr], node, bind, env, skip_self=True
                    )
                self._eval_args(node, bind, env)
                return _UNKNOWN
            if isinstance(receiver, (_Lit, _ObjV)):
                return self._eval_resolved_call(receiver, func.attr, node, bind, env)
            if isinstance(receiver, _MethodV):  # bound method object?  rare
                return self._inline(receiver.node, node, bind, receiver.env, skip_self=True)
            # unknown receiver: evaluate arguments for their side effects
            self._eval_args(node, bind, env)
            return _UNKNOWN

        callee = self._eval(func, bind, env)
        if isinstance(callee, _MethodV):
            return self._inline(callee.node, node, bind, callee.env, skip_self=True)
        if isinstance(callee, _FuncV):
            return self._inline(callee.node, node, bind, callee.env, skip_self=False)
        if isinstance(callee, _ObjV) and inspect.isfunction(callee.obj):
            inlined = self._function_ast(callee.obj)
            if inlined is not None:
                return self._inline(
                    inlined, node, bind, getattr(callee.obj, "__globals__", None),
                    skip_self=False,
                )
        if isinstance(func, ast.Name):
            return self._eval_builtin_call(func.id, node, bind, env)
        self._eval_args(node, bind, env)
        return _UNKNOWN

    def _eval_args(self, node: ast.Call, bind, env) -> List[Any]:
        values = [self._eval(a, bind, env) for a in node.args]
        for kw in node.keywords:
            self._eval(kw.value, bind, env)
        return values

    def _eval_view_call(self, attr: str, node: ast.Call, bind, env) -> Any:
        args = self._eval_args(node, bind, env)
        if attr in ("get", "exists") and args:
            self._record(self.reads, args[0])
            return _SymV(Sym("state", SymKind.UNKNOWN)) if attr == "get" else _UNKNOWN
        if attr == "put" and args:
            self._record(self.writes, args[0])
            return _Lit(None)
        return _UNKNOWN

    def _eval_payload_call(self, attr: str, node: ast.Call, bind, env) -> Any:
        args = self._eval_args(node, bind, env)
        if attr == "get" and args:
            key = args[0]
            if isinstance(key, _Lit) and isinstance(key.value, str):
                sym = _SymV(Sym(f"arg:{key.value}", SymKind.ARG))
                if len(args) > 1:
                    return _union([sym, args[1]])
                # No default: a missing argument yields None, which every
                # handler guards on before touching keys — keep the
                # argument symbol only.
                return sym
        return _UNKNOWN

    def _eval_resolved_call(self, receiver, attr: str, node: ast.Call, bind, env) -> Any:
        args = self._eval_args(node, bind, env)
        if isinstance(receiver, _Lit):
            if attr == "items" and isinstance(receiver.value, dict):
                return _Lit(list(receiver.value.items()))
            if attr == "keys" and isinstance(receiver.value, dict):
                return _Lit(list(receiver.value))
            if attr == "values" and isinstance(receiver.value, dict):
                return _Lit(list(receiver.value.values()))
            if attr == "get" and isinstance(receiver.value, dict) and args:
                if isinstance(args[0], _Lit):
                    default = args[1] if len(args) > 1 else _Lit(None)
                    try:
                        found = receiver.value[args[0].value]
                    except KeyError:
                        return default
                    return _wrap_object(found)
            return _UNKNOWN
        if isinstance(receiver, _ObjV):
            target = getattr(receiver.obj, attr, None)
            if inspect.isfunction(target) or inspect.ismethod(target):
                raw = getattr(target, "__func__", target)
                inlined = self._function_ast(raw)
                if inlined is not None:
                    return self._inline(
                        inlined, node, bind, getattr(raw, "__globals__", None),
                        skip_self=inspect.ismethod(target),
                        prebound=args,
                    )
        return _UNKNOWN

    def _eval_builtin_call(self, name: str, node: ast.Call, bind, env) -> Any:
        args = self._eval_args(node, bind, env)
        if name in ("str", "int", "float", "bool", "len", "abs", "min", "max", "round"):
            if args and all(isinstance(a, _Lit) for a in args):
                try:
                    import builtins

                    return _Lit(getattr(builtins, name)(*[a.value for a in args]))
                except Exception:
                    return _UNKNOWN
            if name == "str" and len(args) == 1 and isinstance(args[0], (_SymV, _PatternV)):
                return args[0]
        if name in ("dict", "list", "tuple", "sorted", "set", "frozenset"):
            if len(args) == 1:
                if args[0] is _PAYLOAD:
                    return _PAYLOAD
                if isinstance(args[0], _Lit):
                    try:
                        caster = {"dict": dict, "list": list, "tuple": tuple,
                                  "sorted": sorted, "set": set, "frozenset": frozenset}[name]
                        return _Lit(caster(args[0].value))
                    except Exception:
                        return _UNKNOWN
                return args[0] if name in ("list", "tuple", "sorted") else _UNKNOWN
            if not args:
                return _Lit({} if name == "dict" else [])
        if name == "isinstance":
            return _UNKNOWN
        return _UNKNOWN

    # -- inlining -------------------------------------------------------

    def _function_ast(self, fn) -> Optional[ast.FunctionDef]:
        module = getattr(fn, "__module__", "") or ""
        if not module.startswith("repro"):
            return None
        try:
            source = textwrap.dedent(inspect.getsource(fn))
        except (OSError, TypeError):
            return None
        try:
            tree = ast.parse(source)
        except SyntaxError:
            return None
        for stmt in tree.body:
            if isinstance(stmt, ast.FunctionDef):
                if sum(1 for _ in ast.walk(stmt)) > 40 * _MAX_INLINE_STATEMENTS:
                    return None
                return stmt
        return None

    def _inline(
        self,
        funcdef: ast.FunctionDef,
        call: ast.Call,
        caller_bind: Dict[str, Any],
        callee_env: Optional[dict],
        skip_self: bool,
        prebound: Optional[List[Any]] = None,
    ) -> Any:
        if self._depth >= _MAX_INLINE_DEPTH:
            self._eval_args(call, caller_bind, callee_env)
            return _UNKNOWN
        args = (
            prebound
            if prebound is not None
            else [self._eval(a, caller_bind, callee_env) for a in call.args]
        )
        kwargs = {
            kw.arg: self._eval(kw.value, caller_bind, callee_env)
            for kw in call.keywords
            if kw.arg is not None
        }

        params = [a.arg for a in funcdef.args.args]
        bind: Dict[str, Any] = {}
        if skip_self and params:
            bind[params[0]] = _SELF
            params = params[1:]
        # positional
        for name, value in zip(params, args):
            bind[name] = value
        # keyword
        for name in params[len(args):]:
            if name in kwargs:
                bind[name] = kwargs[name]
        # defaults for whatever is still missing
        defaults = funcdef.args.defaults
        positional = funcdef.args.args[1:] if skip_self else funcdef.args.args
        for arg, default in zip(
            positional[len(positional) - len(defaults):], defaults
        ):
            if arg.arg not in bind:
                ok, value = _literal(default)
                bind[arg.arg] = _Lit(value) if ok else _UNKNOWN
        for name in params:
            bind.setdefault(name, _UNKNOWN)

        returns: List[Any] = []
        self._depth += 1
        try:
            self._exec_block(funcdef.body, bind, callee_env, returns)
        finally:
            self._depth -= 1
        if not returns:
            return _Lit(None)
        return _union(returns)


_COMPARE_OPS = {
    ast.Eq: lambda a, b: a == b,
    ast.NotEq: lambda a, b: a != b,
    ast.Lt: lambda a, b: a < b,
    ast.LtE: lambda a, b: a <= b,
    ast.Gt: lambda a, b: a > b,
    ast.GtE: lambda a, b: a >= b,
    ast.In: lambda a, b: a in b,
    ast.NotIn: lambda a, b: a not in b,
    ast.Is: lambda a, b: a is b,
    ast.IsNot: lambda a, b: a is not b,
}

_BIN_OPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.Div: lambda a, b: a / b,
    ast.FloorDiv: lambda a, b: a // b,
    ast.Mod: lambda a, b: a % b,
    ast.Pow: lambda a, b: a ** b,
}


# ----------------------------------------------------------------------
# handler discovery + public API

def _find_class(tree: ast.Module, class_name: Optional[str]) -> ast.ClassDef:
    classes = [n for n in tree.body if isinstance(n, ast.ClassDef)]
    if class_name is not None:
        for node in classes:
            if node.name == class_name:
                return node
        raise ValueError(f"no class {class_name!r} in source")
    if not classes:
        raise ValueError("source defines no class")
    return classes[0]


def _const_eval(node: ast.AST, env: Optional[dict]) -> Tuple[bool, Any]:
    ok, value = _literal(node)
    if ok:
        return True, value
    # Attribute chains like EventType.LOCATION resolved via the module
    # namespace.
    if isinstance(node, ast.Attribute) and env is not None:
        parts: List[str] = []
        current: ast.AST = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if isinstance(current, ast.Name) and current.id in env:
            obj = env[current.id]
            try:
                for attr in reversed(parts):
                    obj = getattr(obj, attr)
            except AttributeError:
                return False, None
            if isinstance(obj, (str, int)):
                return True, obj
    return False, None


def _discover_handlers(info: _ClassInfo) -> Dict[str, str]:
    """Map public function name → method name for every handler."""
    for stmt in info.node.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id in ("HANDLERS", "_HANDLERS")
            and isinstance(stmt.value, ast.Dict)
        ):
            table: Dict[str, str] = {}
            for key_node, value_node in zip(stmt.value.keys, stmt.value.values):
                if key_node is None:
                    continue
                ok, key = _const_eval(key_node, info.env)
                if not ok or not isinstance(key, str):
                    continue
                if isinstance(value_node, ast.Name) and value_node.id in info.methods:
                    table[key] = value_node.id
                elif (
                    isinstance(value_node, ast.Attribute)
                    and value_node.attr in info.methods
                ):
                    table[key] = value_node.attr
            if table:
                return table
    # Fallback: lifecycle + on_* naming convention.
    table = {}
    if "add_player" in info.methods:
        table["addPlayer"] = "add_player"
    if "start_game" in info.methods:
        table["startGame"] = "start_game"
    for name in info.methods:
        if name.startswith("on_"):
            table[name[3:]] = name
    return table


def infer_footprints(
    target: Union[str, type],
    class_name: Optional[str] = None,
    include_runtime: bool = True,
) -> Dict[str, Footprint]:
    """Infer per-handler footprints for a contract.

    ``target`` is either a live :class:`Contract` subclass or contract
    source text (e.g. generated by ``generate_contract_source``).
    Returns ``{public function name: Footprint}``.
    """
    if isinstance(target, str):
        tree = ast.parse(textwrap.dedent(target))
        node = _find_class(tree, class_name)
        env: Optional[dict] = None
    else:
        source = textwrap.dedent(inspect.getsource(target))
        tree = ast.parse(source)
        node = _find_class(tree, class_name or target.__name__)
        module = sys.modules.get(target.__module__)
        env = dict(getattr(module, "__dict__", {})) if module else None

    info = _build_class_info(node, env)
    footprints: Dict[str, Footprint] = {}
    for public_name, method_name in sorted(_discover_handlers(info).items()):
        analyzer = _Analyzer(info)
        analyzer.run_handler(info.methods[method_name])
        if not include_runtime:
            footprints[public_name] = Footprint(
                handler=public_name,
                reads=tuple(analyzer.reads.values()),
                writes=tuple(analyzer.writes.values()),
            )
        else:
            footprints[public_name] = analyzer.footprint(public_name)
    return footprints
