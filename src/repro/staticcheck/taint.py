"""Interprocedural taint rules for cheat vulnerabilities (CHT001–CHT004).

The determinism rules (:mod:`repro.staticcheck.rules`) keep contracts
*replayable*; these rules keep them *honest*.  Every handler receives an
untrusted client payload — the exact attack surface the paper's cheat
taxonomy (``core/cheats.py``) exploits: IDDQD writes an absurd health
value, IDKFA mints ammunition, IDCLIP teleports by sending impossible
coordinates.  The runtime defends by validating inside the handler; this
module verifies **statically** that the validation is actually there, by
tracking taint from sources to the ``ctx.view.put`` sink through every
helper the handler calls (reusing the RWSet interpreter's inliner, so
guards inside ``DoomRules.validate_*`` etc. are observed).

Sources
    ``payload[...]`` / ``payload.get(...)`` / extra handler parameters /
    ``ctx.timestamp`` (client-claimed simulation time).

Guards (collected flow-insensitively per handler, including inlined
helpers — a guard anywhere on the path to the sink counts):

======================  ================================================
``existence``           any truthiness / ``is None`` test on the value
``bounds``              an order comparison (``<`` ``<=`` ``>`` ``>=``),
                        or the value passed into an opaque predicate in
                        test position (``game_map.in_bounds(x, y)``)
``membership``          ``in`` / ``not in`` / equality against a
                        collection or identity (roster checks)
======================  ================================================

Rules
    CHT001  *(error)* — a tainted value reaches a state write with **no**
            guard of any kind on any path.
    CHT002  *(warning)* — a tainted value reaches a state write through
            arithmetic, and no **bounds** check constrains it (existence
            or membership alone does not bound a delta).
    CHT003  *(error)* — statically provable non-conservation: a handler
            credits a tainted amount into an ``asset/…`` key on top of a
            state-read base, and no write in the handler debits the same
            source (a mint — IDKFA in one line).
    CHT004  *(error)* — a tainted value selects the state **key** being
            written (acting on another principal's state) with no
            validation at all — the handler is reachable without any
            roster/auth/existence check on the target.

False positives are treated as bugs: every shipped contract (Doom,
Monopoly, the codegen output) must pass clean — see the fixture suite in
:mod:`repro.staticcheck.vulnfixtures`.  A contract may carry an explicit
``STATICCHECK_WAIVERS = {"CHT00x": "reason"}`` class attribute; waived
findings are reported separately, never silently dropped.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from .rules import SEVERITY_ERROR, SEVERITY_WARNING, Diagnostic
from .rwset import (
    _Analyzer,
    _BIN_OPS,
    _Lit,
    _PatternV,
    _SymV,
    _UNKNOWN,
    _UnionV,
    _build_class_info,
    _discover_handlers,
    _find_class,
    make_pattern,
)
from .symbols import KeyPattern, Sym, SymKind

__all__ = [
    "CHT_RULES",
    "TaintReport",
    "taint_contract",
    "taint_source",
]

GUARD_EXISTENCE = "existence"
GUARD_BOUNDS = "bounds"
GUARD_MEMBERSHIP = "membership"

#: Rule id → one-line description (also used for SARIF rule metadata).
CHT_RULES: Dict[str, str] = {
    "CHT001": "untrusted input written to world state with no guard",
    "CHT002": "tainted arithmetic written to state without a bounds check",
    "CHT003": "asset credit from untrusted input without a matching debit",
    "CHT004": "state key addressed by unvalidated untrusted input",
}


def _is_taint_source(sym: Sym) -> bool:
    """ARG-kind symbols that originate from the client."""
    return sym.kind == SymKind.ARG and (
        sym.name.startswith(("arg:", "param:")) or sym.name == "timestamp"
    )


#: Weak sources are client-influenced but only dangerous when they
#: *derive* authoritative values: the claimed simulation time is
#: routinely logged verbatim (audit records), which is harmless, but
#: folding it unbounded into movement or expiry math is IDCLEV.  Weak
#: sources skip CHT001/CHT004 and still participate in CHT002/CHT003.
_WEAK_SOURCES = frozenset({"timestamp"})


# ----------------------------------------------------------------------
# taint values


@dataclass(frozen=True)
class _TaintV:
    """A value derived from tainted input and/or world state.

    ``credits``/``debits`` track the additive sign of each source inside
    the value (``state + amount`` credits ``amount``; ``state - cost``
    debits ``cost``) — the ingredient for the CHT003 conservation check.
    """

    sources: FrozenSet[str] = frozenset()
    state_based: bool = False
    arith: bool = False
    credits: FrozenSet[str] = frozenset()
    debits: FrozenSet[str] = frozenset()


#: The value returned by ``ctx.view.get`` — world state, not client data.
_STATE_READ = _TaintV(state_based=True)


def _sources_of(value: Any) -> Set[str]:
    """Every taint source a value may carry."""
    if isinstance(value, _SymV):
        return {value.sym.name} if _is_taint_source(value.sym) else set()
    if isinstance(value, _PatternV):
        return {
            p.name
            for p in value.pattern.parts
            if isinstance(p, Sym) and _is_taint_source(p)
        }
    if isinstance(value, _UnionV):
        out: Set[str] = set()
        for member in value.members:
            out |= _sources_of(member)
        return out
    if isinstance(value, _TaintV):
        return set(value.sources)
    return set()


def _is_state_based(value: Any) -> bool:
    if isinstance(value, _TaintV):
        return value.state_based
    if isinstance(value, _UnionV):
        return any(_is_state_based(m) for m in value.members)
    return False


def _is_arith(value: Any) -> bool:
    if isinstance(value, _TaintV):
        return value.arith
    if isinstance(value, _UnionV):
        return any(_is_arith(m) for m in value.members)
    return False


def _signs_of(value: Any) -> Tuple[Set[str], Set[str]]:
    """(credits, debits) carried by a value.

    A bare tainted symbol counts as a credit of itself: used as a term
    it adds its full client-chosen magnitude.
    """
    if isinstance(value, _TaintV):
        return set(value.credits), set(value.debits)
    if isinstance(value, _UnionV):
        credits: Set[str] = set()
        debits: Set[str] = set()
        for member in value.members:
            c, d = _signs_of(member)
            credits |= c
            debits |= d
        return credits, debits
    return _sources_of(value), set()


def _contains_taintv(value: Any) -> bool:
    if isinstance(value, _TaintV):
        return True
    if isinstance(value, _UnionV):
        return any(_contains_taintv(m) for m in value.members)
    return False


def _merge_taint(values: List[Any], arith: bool) -> Optional[_TaintV]:
    """Combine operand taint additively (Add / min / max / casts)."""
    sources: Set[str] = set()
    credits: Set[str] = set()
    debits: Set[str] = set()
    state = False
    touched = False
    for value in values:
        s = _sources_of(value)
        c, d = _signs_of(value)
        if s or _is_state_based(value):
            touched = True
        sources |= s
        credits |= c
        debits |= d
        state = state or _is_state_based(value)
    if not touched:
        return None
    return _TaintV(
        sources=frozenset(sources),
        state_based=state,
        arith=arith or any(_is_arith(v) for v in values),
        credits=frozenset(credits),
        debits=frozenset(debits),
    )


# ----------------------------------------------------------------------
# per-write evidence


@dataclass
class _WriteRec:
    """One observed ``ctx.view.put`` with its taint evidence."""

    patterns: List[KeyPattern]
    key_sources: Set[str]
    value_sources: Set[str]
    arith: bool
    state_based: bool
    credits: Set[str]
    debits: Set[str]
    line: int


def _is_asset_write(patterns: List[KeyPattern]) -> bool:
    for pattern in patterns:
        if pattern.parts and isinstance(pattern.parts[0], str):
            if pattern.parts[0].startswith("asset/"):
                return True
    return False


# ----------------------------------------------------------------------
# the taint interpreter


class _TaintAnalyzer(_Analyzer):
    """RWSet interpreter extended with taint propagation + guard notes."""

    def __init__(self, info) -> None:
        super().__init__(info)
        #: source name → set of guard kinds observed anywhere on the path
        self.guards: Dict[str, Set[str]] = {}
        self.write_recs: List[_WriteRec] = []

    # -- sources and sinks ---------------------------------------------

    def _eval_view_call(self, attr: str, node: ast.Call, bind, env) -> Any:
        args = self._eval_args(node, bind, env)
        if attr in ("get", "exists") and args:
            self._record(self.reads, args[0])
            return _STATE_READ if attr == "get" else _UNKNOWN
        if attr == "put" and args:
            self._record(self.writes, args[0])
            key = args[0]
            value = args[1] if len(args) > 1 else _UNKNOWN
            patterns = self._patterns_of(key)
            credits, debits = _signs_of(value)
            self.write_recs.append(
                _WriteRec(
                    patterns=patterns,
                    key_sources={
                        p.name
                        for pattern in patterns
                        for p in pattern.parts
                        if isinstance(p, Sym) and _is_taint_source(p)
                    },
                    value_sources=_sources_of(value),
                    arith=_is_arith(value),
                    state_based=_is_state_based(value),
                    credits=credits,
                    debits=debits,
                    line=getattr(node, "lineno", 0),
                )
            )
            return _Lit(None)
        return _UNKNOWN

    # -- taint through arithmetic --------------------------------------

    def _eval_BinOp(self, node: ast.BinOp, bind, env) -> Any:
        left = self._eval(node.left, bind, env)
        right = self._eval(node.right, bind, env)
        if isinstance(left, _Lit) and isinstance(right, _Lit):
            try:
                return _Lit(_BIN_OPS[type(node.op)](left.value, right.value))
            except Exception:
                return _UNKNOWN
        if isinstance(node.op, ast.Sub):
            merged = _merge_taint([left], arith=True)
            flipped = _merge_taint([right], arith=True)
            if merged is None and flipped is None:
                return _UNKNOWN
            merged = merged or _TaintV(arith=True)
            flipped = flipped or _TaintV(arith=True)
            # state - cost: the right operand's credits become debits.
            return _TaintV(
                sources=merged.sources | flipped.sources,
                state_based=merged.state_based or flipped.state_based,
                arith=True,
                credits=merged.credits | flipped.debits,
                debits=merged.debits | flipped.credits,
            )
        if isinstance(node.op, ast.Add):
            # Preserve the base analyzer's key-concatenation behaviour
            # only when a string literal proves this is concat and no
            # operand carries arithmetic/state taint; the syms inside
            # the pattern still count as key taint at the sink.  A
            # numeric literal (``x + 0.5``) or a state read means this
            # is arithmetic, not key building.
            str_concat = any(
                isinstance(v, _Lit) and isinstance(v.value, str)
                for v in (left, right)
            )
            if str_concat and not (
                _contains_taintv(left) or _contains_taintv(right)
            ):
                parts = self._concat_parts(left) + self._concat_parts(right)
                if any(isinstance(p, Sym) for p in parts):
                    return _PatternV(make_pattern(parts))
            merged = _merge_taint([left, right], arith=True)
            return merged if merged is not None else _UNKNOWN
        # Mult / Div / FloorDiv / Mod / Pow: magnitude scaling — taint
        # (and credit direction, for positive factors) flows through.
        merged = _merge_taint([left, right], arith=True)
        return merged if merged is not None else _UNKNOWN

    def _bind_target(self, target: ast.AST, value: Any, bind) -> None:
        # Unpacking propagates taint: ``d1, d2 = dice`` makes each
        # element carry the tuple's sources, so a later bounds check on
        # d1/d2 counts as a guard on the original payload value.
        if isinstance(target, (ast.Tuple, ast.List)) and not isinstance(
            value, _Lit
        ):
            merged = _merge_taint([value], arith=False)
            if merged is not None:
                for elt in target.elts:
                    if isinstance(elt, ast.Name):
                        bind[elt.id] = merged
                    else:
                        super()._bind_target(elt, _UNKNOWN, bind)
                return
        super()._bind_target(target, value, bind)

    def _eval_Dict(self, node: ast.Dict, bind, env) -> Any:
        # A dict display carrying tainted members is itself tainted —
        # handlers routinely write composite records ({"x": x, "y": y}).
        result = super()._eval_Dict(node, bind, env)
        if result is _UNKNOWN:
            values = [self._eval(v, bind, env) for v in node.values]
            merged = _merge_taint(values, arith=False)
            if merged is not None:
                return merged
        return result

    def _eval_builtin_call(self, name: str, node: ast.Call, bind, env) -> Any:
        result = super()._eval_builtin_call(name, node, bind, env)
        if result is _UNKNOWN and name in (
            "int", "float", "abs", "min", "max", "round", "dict", "bool",
        ):
            # clamps and casts preserve taint (min(cap, state + amount)
            # is still a mint of `amount`).
            args = [self._eval(a, bind, env) for a in node.args]
            merged = _merge_taint(args, arith=False)
            if merged is not None:
                return merged
        return result

    # -- guard collection ----------------------------------------------

    def _note_guard(self, test: ast.AST, bind, env) -> None:
        """Record which taint sources a branch/assert test constrains."""
        for node in ast.walk(test):
            if isinstance(node, ast.Compare):
                values = [self._eval(node.left, bind, env)]
                values += [self._eval(c, bind, env) for c in node.comparators]
                sources: Set[str] = set()
                for value in values:
                    sources |= _sources_of(value)
                if not sources:
                    continue
                kinds = {GUARD_EXISTENCE}
                for op in node.ops:
                    if isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE)):
                        kinds.add(GUARD_BOUNDS)
                    if isinstance(op, (ast.In, ast.NotIn, ast.Eq, ast.NotEq)):
                        kinds.add(GUARD_MEMBERSHIP)
                for source in sources:
                    self.guards.setdefault(source, set()).update(kinds)
            elif isinstance(node, ast.Call):
                # An opaque predicate in test position validates its
                # arguments (``if not game_map.in_bounds(x, y)``): treat
                # as a domain/sanity check on every tainted argument.
                arg_sources: Set[str] = set()
                for arg in node.args:
                    arg_sources |= _sources_of(self._eval(arg, bind, env))
                for source in arg_sources:
                    self.guards.setdefault(source, set()).update(
                        {GUARD_EXISTENCE, GUARD_BOUNDS}
                    )
        # Bare truthiness of the whole test (``if target: ...``).
        for source in _sources_of(self._eval(test, bind, env)):
            self.guards.setdefault(source, set()).add(GUARD_EXISTENCE)

    def _exec_if(self, stmt: ast.If, bind, env, returns) -> bool:
        self._note_guard(stmt.test, bind, env)
        return super()._exec_if(stmt, bind, env, returns)

    def _exec_stmt(self, stmt: ast.stmt, bind, env, returns) -> bool:
        if isinstance(stmt, (ast.Assert, ast.While)):
            self._note_guard(stmt.test, bind, env)
        return super()._exec_stmt(stmt, bind, env, returns)

    def _eval_IfExp(self, node: ast.IfExp, bind, env) -> Any:
        self._note_guard(node.test, bind, env)
        return super()._eval_IfExp(node, bind, env)


# ----------------------------------------------------------------------
# rule evaluation


def _describe_key(rec: _WriteRec) -> str:
    return str(rec.patterns[0]) if rec.patterns else "?"


def _pretty_source(source: str) -> str:
    if source.startswith("arg:"):
        return f"payload[{source[4:]!r}]"
    if source.startswith("param:"):
        return f"argument {source[6:]!r}"
    return f"ctx.{source}"


def _emit_handler_diags(
    handler: str, analyzer: _TaintAnalyzer
) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    seen: Set[Tuple[str, int, str]] = set()

    def emit(code: str, line: int, source: str, message: str, severity: str) -> None:
        key = (code, line, source)
        if key in seen:
            return
        seen.add(key)
        diags.append(
            Diagnostic(
                code=code,
                message=message,
                line=line,
                col=0,
                severity=severity,
                context=handler,
            )
        )

    guards = analyzer.guards
    all_debits: Set[str] = set()
    for rec in analyzer.write_recs:
        all_debits |= rec.debits

    for rec in analyzer.write_recs:
        key_str = _describe_key(rec)
        for source in sorted(rec.value_sources):
            held = guards.get(source, set())
            if not held and source not in _WEAK_SOURCES:
                emit(
                    "CHT001",
                    rec.line,
                    source,
                    f"handler {handler!r} writes {_pretty_source(source)} "
                    f"to state key {key_str} with no guard of any kind — "
                    "a client controls committed state directly",
                    SEVERITY_ERROR,
                )
            elif rec.arith and GUARD_BOUNDS not in held:
                emit(
                    "CHT002",
                    rec.line,
                    source,
                    f"handler {handler!r} folds {_pretty_source(source)} "
                    f"arithmetically into {key_str} without a bounds check "
                    f"(guards seen: {', '.join(sorted(held))}) — the "
                    "client chooses the delta's magnitude",
                    SEVERITY_WARNING,
                )
        if rec.state_based and rec.credits and _is_asset_write(rec.patterns):
            for source in sorted(rec.credits):
                if source not in all_debits:
                    emit(
                        "CHT003",
                        rec.line,
                        source,
                        f"handler {handler!r} credits {_pretty_source(source)} "
                        f"into asset key {key_str} with no matching debit "
                        "anywhere in the handler — assets are minted, not "
                        "conserved",
                        SEVERITY_ERROR,
                    )
        for source in sorted(rec.key_sources):
            if not guards.get(source) and source not in _WEAK_SOURCES:
                emit(
                    "CHT004",
                    rec.line,
                    source,
                    f"handler {handler!r} writes to key {key_str} selected "
                    f"by {_pretty_source(source)} without any roster/auth/"
                    "existence check — any client can act on any "
                    "principal's state",
                    SEVERITY_ERROR,
                )
    return diags


# ----------------------------------------------------------------------
# public API


@dataclass
class TaintReport:
    """Result of the CHT analysis over one contract."""

    contract: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    waived: List[Diagnostic] = field(default_factory=list)
    waivers: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def to_json(self) -> dict:
        return {
            "contract": self.contract,
            "diagnostics": [d.to_json() for d in self.diagnostics],
            "waived": [d.to_json() for d in self.waived],
            "waivers": dict(self.waivers),
        }


def _taint_class(info) -> TaintReport:
    raw_waivers = info.consts.get("STATICCHECK_WAIVERS")
    waivers: Dict[str, str] = (
        dict(raw_waivers) if isinstance(raw_waivers, dict) else {}
    )
    report = TaintReport(contract=info.name, waivers=waivers)
    for public_name, method_name in sorted(_discover_handlers(info).items()):
        analyzer = _TaintAnalyzer(info)
        analyzer.run_handler(info.methods[method_name])
        for diag in _emit_handler_diags(public_name, analyzer):
            if diag.code in waivers:
                report.waived.append(diag)
            else:
                report.diagnostics.append(diag)
    report.diagnostics.sort(key=lambda d: (d.line, d.col, d.code))
    report.waived.sort(key=lambda d: (d.line, d.col, d.code))
    return report


def taint_source(source: str, class_name: Optional[str] = None) -> TaintReport:
    """Run the CHT rules over contract source text."""
    tree = ast.parse(textwrap.dedent(source))
    node = _find_class(tree, class_name)
    return _taint_class(_build_class_info(node, env=None))


def taint_contract(cls: type, class_name: Optional[str] = None) -> TaintReport:
    """Run the CHT rules over a live contract class."""
    import sys

    source = textwrap.dedent(inspect.getsource(cls))
    tree = ast.parse(source)
    node = _find_class(tree, class_name or cls.__name__)
    module = sys.modules.get(cls.__module__)
    env = dict(getattr(module, "__dict__", {})) if module else None
    return _taint_class(_build_class_info(node, env))
