"""Seeded-vulnerable contract fixtures for the CHT rules.

Mirrors :mod:`repro.chaos.buggy` one layer up: where ``buggy.py`` breaks
the *platform* to prove the invariant monitor catches regressions, this
module breaks the *contract* to prove the taint rules catch the cheat
vulnerabilities the runtime currently rejects dynamically.  Each fixture
is the vulnerable variant of a shipped Doom/Monopoly handler — the
validation that ``core/cheats.py`` shows the runtime performing has been
removed, exactly the bug a hurried contract author would ship.

``CHEAT_RULE_MAP`` ties every relevant cheat of the taxonomy to the CHT
rule that would have flagged its vulnerable variant at *compile* time
(the paper prevents these at commit time; the linter moves detection
earlier).  The two protocol cheats are runtime-only by nature: REPLAY is
stopped by the ledger's nonce marker and SPOOF by signature
verification, neither of which is contract code the linter can see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = ["VulnFixture", "FIXTURES", "CHEAT_RULE_MAP", "RUNTIME_ONLY_CHEATS"]


@dataclass(frozen=True)
class VulnFixture:
    """One vulnerable contract variant and the rule expected to fire."""

    name: str
    rule: str  # the intended CHT rule id
    cheats: Tuple[str, ...]  # cheat codes this vulnerability enables
    class_name: str
    source: str


# ----------------------------------------------------------------------
# CHT001 — unguarded payload→state write.  The IDDQD family: the handler
# trusts the client's claimed asset value outright, so a cheater pins
# health at 200, grants itself the chainsaw, or toggles any power-up.

_UNGUARDED_GRANT = VulnFixture(
    name="unguarded-grant",
    rule="CHT001",
    cheats=("IDDQD", "IDFA", "IDCHOPPERS", "IDBEHOLDV", "IDBEHOLDS",
            "IDBEHOLDI", "IDBEHOLDR"),
    class_name="UnguardedGrantContract",
    source='''
class UnguardedGrantContract:
    """VULNERABLE: writes client-claimed asset values verbatim."""

    name = "vuln-grant"

    def on_set_health(self, ctx, payload):
        # IDDQD: no clamp against ASSETS bounds, no damage derivation —
        # the client simply *declares* its health.
        ctx.view.put(f"asset/{ctx.creator}/1", payload["hp"])

    def on_take_weapon(self, ctx, payload):
        # IDFA/IDCHOPPERS: weapon granted without a pickup at the
        # weapon's map location.
        ctx.view.put(f"asset/{ctx.creator}/3", payload["weapon"])

    def on_power_up(self, ctx, payload):
        # IDBEHOLD*: power-up expiry set to whatever the client asks.
        ctx.view.put(f"asset/{ctx.creator}/7", payload["until"])
''',
)


# ----------------------------------------------------------------------
# CHT002 — tainted arithmetic without a bounds check.  The IDCLIP/IDCLEV
# family: coordinates are only checked for presence, never against the
# map geometry or the speed limit, so the client teleports at will.

_TELEPORT_NO_BOUNDS = VulnFixture(
    name="teleport-no-bounds",
    rule="CHT002",
    cheats=("IDCLIP", "IDCLEV"),
    class_name="TeleportContract",
    source='''
class TeleportContract:
    """VULNERABLE: movement without geometry or speed validation."""

    name = "vuln-teleport"

    def on_location(self, ctx, payload):
        x = payload.get("x")
        y = payload.get("y")
        if x is None or y is None:
            raise ValueError("missing coordinates")
        # No in_bounds() wall check, no dist/dt speed check: an
        # existence guard alone does not bound the delta.
        ctx.view.put(
            f"asset/{ctx.creator}/6",
            {"x": x + 0.0, "y": y + 0.0},
        )
''',
)


# ----------------------------------------------------------------------
# CHT003 — statically provable non-conservation.  IDKFA: ammunition is
# credited by a client-chosen amount on top of the stored balance with
# no debit anywhere — a mint, where the real contract only ever adds
# fixed pickup amounts gated by the item's map marker.

_AMMO_MINT = VulnFixture(
    name="ammo-mint",
    rule="CHT003",
    cheats=("IDKFA",),
    class_name="AmmoMintContract",
    source='''
class AmmoMintContract:
    """VULNERABLE: client-chosen ammo credit with no matching debit."""

    name = "vuln-mint"

    def on_reload(self, ctx, payload):
        amount = payload.get("amount", 0)
        if amount is None:
            raise ValueError("missing amount")
        ammo = ctx.view.get(f"asset/{ctx.creator}/2") or 0
        # existence-checked but unbounded AND unconserved: nothing is
        # consumed in exchange for the credit.
        ctx.view.put(f"asset/{ctx.creator}/2", ammo + amount)
''',
)


# ----------------------------------------------------------------------
# CHT004 — payload-addressed key with no auth/roster check.  The
# application-layer counterpart of spoofing: any client rewrites any
# principal's state just by naming them, where the real damage handler
# first proves the target is on the roster.

_UNAUTH_TARGET = VulnFixture(
    name="unauthenticated-target",
    rule="CHT004",
    cheats=("SPOOF",),
    class_name="UnauthTargetContract",
    source='''
class UnauthTargetContract:
    """VULNERABLE: acts on an arbitrary principal's state."""

    name = "vuln-target"

    def on_damage(self, ctx, payload):
        target = payload["target"]
        amount = payload.get("amount", 0)
        if amount < 0:
            raise ValueError("negative damage")
        # `target` is never checked against the roster (or anything):
        # the write key is wholly client-selected.
        hp = ctx.view.get(f"asset/{target}/1") or 100
        ctx.view.put(f"asset/{target}/1", hp - amount)
''',
)


# ----------------------------------------------------------------------
# Waiver exercise: the same mint as above, but carrying an explicit
# STATICCHECK_WAIVERS entry — the finding must move to the waived list,
# never be silently dropped.

_WAIVED_MINT = VulnFixture(
    name="waived-mint",
    rule="CHT003",
    cheats=(),
    class_name="WaivedMintContract",
    source='''
class WaivedMintContract:
    """Mint vulnerability acknowledged via an explicit waiver."""

    name = "vuln-mint-waived"
    STATICCHECK_WAIVERS = {
        "CHT003": "test-currency faucet: minting is the contract's job",
        "CHT002": "faucet amount is rate-limited by the runtime, not here",
    }

    def on_faucet(self, ctx, payload):
        amount = payload.get("amount", 0)
        if amount is None:
            raise ValueError("missing amount")
        balance = ctx.view.get(f"asset/{ctx.creator}/2") or 0
        ctx.view.put(f"asset/{ctx.creator}/2", balance + amount)
''',
)


FIXTURES: Tuple[VulnFixture, ...] = (
    _UNGUARDED_GRANT,
    _TELEPORT_NO_BOUNDS,
    _AMMO_MINT,
    _UNAUTH_TARGET,
    _WAIVED_MINT,
)

#: cheat code → CHT rule whose fixture models the vulnerable variant.
#: ``None`` marks runtime-only defenses (protocol layer, not contract
#: code): REPLAY dies on the ``~nonce/{creator}/{nonce}`` marker, SPOOF
#: on certificate signature verification — though SPOOF's application-
#: layer shadow (acting on another principal by name) is CHT004.
CHEAT_RULE_MAP: Dict[str, Optional[str]] = {
    "IDDQD": "CHT001",
    "IDFA": "CHT001",
    "IDCHOPPERS": "CHT001",
    "IDBEHOLDV": "CHT001",
    "IDBEHOLDS": "CHT001",
    "IDBEHOLDI": "CHT001",
    "IDBEHOLDR": "CHT001",
    "IDCLIP": "CHT002",
    "IDCLEV": "CHT002",
    "IDKFA": "CHT003",
    "SPOOF": "CHT004",
    "REPLAY": None,
}

RUNTIME_ONLY_CHEATS: Tuple[str, ...] = tuple(
    code for code, rule in CHEAT_RULE_MAP.items() if rule is None
)
