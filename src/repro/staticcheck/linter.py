"""Lint driver: runs the determinism rules over contract source.

Two entry points:

* :func:`lint_source` — lint a source string (e.g. the output of
  :func:`repro.core.codegen.generate_contract_source` before it is
  exec'd).
* :func:`lint_contract` — lint a live :class:`Contract` subclass by
  recovering its class source with :mod:`inspect`; the defining
  module's namespace is used to see through import aliases.

``strict`` semantics (shared with the CLI and the codegen gate): errors
always fail; in strict mode warnings fail too.
"""

from __future__ import annotations

import ast
import inspect
import sys
import textwrap
from typing import List, Optional, Type

from .rules import Diagnostic, SEVERITY_ERROR, run_rules

__all__ = ["StaticCheckError", "lint_source", "lint_contract", "gate"]


class StaticCheckError(ValueError):
    """A contract failed static verification.

    Carries the diagnostics so callers (and tests) can inspect exactly
    which hazards were found.
    """

    def __init__(self, message: str, diagnostics: List[Diagnostic]):
        super().__init__(message)
        self.diagnostics = diagnostics


def lint_source(
    source: str,
    env: Optional[dict] = None,
    filename: str = "<contract>",
) -> List[Diagnostic]:
    """Lint contract source text; returns all diagnostics found."""
    tree = ast.parse(textwrap.dedent(source), filename=filename)
    return run_rules(tree, env=env)


def lint_contract(cls: Type) -> List[Diagnostic]:
    """Lint a live contract class from its recovered source."""
    source = inspect.getsource(cls)
    module = sys.modules.get(cls.__module__)
    env = dict(getattr(module, "__dict__", {})) if module else None
    return lint_source(source, env=env, filename=f"<{cls.__name__}>")


def gate(diagnostics: List[Diagnostic], strict: bool = True) -> List[Diagnostic]:
    """The diagnostics that fail the check under the given strictness."""
    if strict:
        return list(diagnostics)
    return [d for d in diagnostics if d.severity == SEVERITY_ERROR]
