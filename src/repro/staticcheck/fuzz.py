"""Fuzz-differential soundness harness for the static analyzer.

The footprints, the conflict matrix and the lane planner are only useful
if they *over-approximate* what contracts actually do at runtime.  This
module is the executable form of that soundness claim: drive randomized
but well-formed event traces through the real contracts, execute them
through the real ``execute_transaction`` → ``Ledger.append`` pipeline
(with the peer's speculative-overlay read semantics), and cross-check
every transaction against the static story:

* **coverage** — every key the runtime RWSet read must be covered by
  some inferred read pattern of the invoked handler, and every written
  key by some write pattern;
* **independence** — whenever the :class:`ConflictPlanner` declares two
  transactions of a block independent, their runtime write sets must be
  disjoint from each other's touched sets (so no MVCC interaction is
  possible);
* **conflict attribution** — every transaction the ledger downgrades to
  ``MVCC_READ_CONFLICT`` (after a VALID execution) must have a
  *predicted* edge to some earlier finally-VALID transaction of its
  block: the planner may cry wolf, but a wolf must never arrive
  unannounced;
* **lanes** — transactions placed in different lanes of the block plan
  must be pairwise independent at runtime (the property that makes
  per-lane parallel validation safe).

Any miss is a soundness bug in the analyzer, not in the contract.
Exposed on the CLI as ``python -m repro.staticcheck --fuzz N --seed S``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .conflicts import predict_conflicts
from .plan import ConflictPlanner
from .rwset import Footprint, infer_footprints
from .symbols import covers_key

__all__ = [
    "FuzzCase",
    "FuzzOutcome",
    "FuzzViolation",
    "default_cases",
    "fuzz_case",
    "run_fuzz",
]


@dataclass(frozen=True)
class FuzzCase:
    """One contract under differential test.

    ``payloads`` maps every fuzzable public function to a generator
    ``(rng, players, t) -> payload dict``.  Generators must always
    supply the keys the handler unconditionally subscripts (missing
    *optional* validation is the contract's business; a ``KeyError``
    would escape ``execute_transaction``, which only catches
    ``ContractError``).  Semantically invalid values are fair game —
    a ``CONTRACT_REJECTED`` is a prevented cheat, and its RWSet still
    participates in the coverage check.
    """

    name: str
    make: Callable[[], Any]  # fresh contract instance
    footprints: Callable[[], Dict[str, Footprint]]
    payloads: Dict[str, Callable[[random.Random, List[str], float], dict]]
    players: Tuple[str, ...] = ("fz-p1", "fz-p2", "fz-p3")


@dataclass(frozen=True)
class FuzzViolation:
    kind: str  # "coverage" | "independence" | "attribution" | "lanes"
    detail: str


@dataclass
class FuzzOutcome:
    """Result of fuzzing one case at one seed."""

    case: str
    seed: int
    n_events: int
    blocks: int = 0
    codes: Dict[str, int] = field(default_factory=dict)
    keys_checked: int = 0
    pairs_checked: int = 0
    violations: List[FuzzViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_json(self) -> dict:
        return {
            "case": self.case,
            "seed": self.seed,
            "n_events": self.n_events,
            "blocks": self.blocks,
            "codes": dict(sorted(self.codes.items())),
            "keys_checked": self.keys_checked,
            "pairs_checked": self.pairs_checked,
            "ok": self.ok,
            "violations": [
                {"kind": v.kind, "detail": v.detail} for v in self.violations
            ],
        }


# ----------------------------------------------------------------------
# payload generators per shipped contract


def _doom_case() -> FuzzCase:
    from ..core.doom_contract import DoomContract
    from ..game.doom import WEAPONS

    game_map = DoomContract().map
    item_ids = [item.item_id for item in game_map.items]
    weapon_items = [
        (item.item_id, item.kind.split(":", 1)[1])
        for item in game_map.items
        if item.kind.startswith("weapon:")
    ]
    wids = sorted(WEAPONS)

    def pickup(rng, players, t):
        return {"item_id": rng.choice(item_ids), "t": t}

    # Walk a shared cursor around the map so most moves satisfy the speed
    # rule (VALID traffic exercises the conflict checks); an occasional
    # long teleport keeps the rejection path covered too.
    cursor = {"x": game_map.spawn_points[0][0], "y": game_map.spawn_points[0][1]}

    def location(rng, players, t):
        if rng.random() < 0.15:
            cursor["x"] = rng.uniform(-50.0, game_map.width + 50.0)
            cursor["y"] = rng.uniform(-50.0, game_map.height + 50.0)
        else:
            cursor["x"] += rng.uniform(-3.0, 3.0)
            cursor["y"] += rng.uniform(-3.0, 3.0)
        return {"x": cursor["x"], "y": cursor["y"], "t": t}

    payloads = {
        "addPlayer": lambda rng, players, t: {},
        "startGame": lambda rng, players, t: {},
        "location": location,
        "shoot": lambda rng, players, t: {"count": rng.choice([1, 1, 1, 2, 5])},
        "weapon_change": lambda rng, players, t: {"wid": rng.choice(wids)},
        "damage": lambda rng, players, t: {
            "target": rng.choice(players + ["ghost"]),
            "amount": rng.randint(1, 60),
            "t": t,
        },
        "pickup_weapon": lambda rng, players, t: dict(
            pickup(rng, players, t),
            wid=rng.choice(weapon_items)[1] if weapon_items else rng.choice(wids),
            item_id=rng.choice(weapon_items)[0] if weapon_items else rng.choice(item_ids),
        ),
        "pickup_clip": pickup,
        "pickup_medkit": pickup,
        "pickup_radsuit": pickup,
        "pickup_invis": pickup,
        "pickup_invuln": pickup,
        "pickup_berserk": pickup,
    }
    return FuzzCase(
        name="doom",
        make=DoomContract,
        footprints=lambda: infer_footprints(DoomContract),
        payloads=payloads,
    )


def _monopoly_case() -> FuzzCase:
    from ..core.monopoly_contract import MonopolyContract

    payloads = {
        "addPlayer": lambda rng, players, t: {},
        "startGame": lambda rng, players, t: {},
        "roll": lambda rng, players, t: {
            "dice": (rng.randint(0, 7), rng.randint(1, 6)),
            "round": rng.randint(0, 30),
        },
        "buy": lambda rng, players, t: {},
        "payRent": lambda rng, players, t: {},
    }
    return FuzzCase(
        name="monopoly",
        make=MonopolyContract,
        footprints=lambda: infer_footprints(MonopolyContract),
        payloads=payloads,
    )


def _generated_case(split_kvs: bool) -> FuzzCase:
    from ..core.codegen import compile_contract_source, generate_contract_source
    from ..core.doomspec import doom_spec

    source = generate_contract_source(doom_spec(), split_kvs=split_kvs)
    cls = compile_contract_source(source)

    def event_payload(rng, players, t):
        return {"target": rng.choice(players)}

    payloads: Dict[str, Callable] = {
        "addPlayer": lambda rng, players, t: {},
        "startGame": lambda rng, players, t: {},
    }
    for function in cls().functions():
        if function not in payloads:
            payloads[function] = event_payload
    layout = "split" if split_kvs else "monolithic"
    return FuzzCase(
        name=f"gen-doom-{layout}",
        make=cls,
        # The class was exec-compiled (no importable source file), so the
        # footprints come from the same source text it was built from.
        footprints=lambda: infer_footprints(source, class_name=cls.__name__),
        payloads=payloads,
    )


def default_cases() -> List[FuzzCase]:
    """Every shipped contract: hand-written and generated, both layouts."""
    return [
        _doom_case(),
        _monopoly_case(),
        _generated_case(split_kvs=True),
        _generated_case(split_kvs=False),
    ]


# ----------------------------------------------------------------------
# the differential loop


def _make_tx(ca, identities, contract, function, payload, creator, nonce, t):
    from ..blockchain.identity import Identity  # noqa: F401  (type context)
    from ..blockchain.transaction import Proposal, Transaction

    if creator not in identities:
        identities[creator] = ca.enroll(creator)
    identity = identities[creator]
    proposal = Proposal(
        tx_id=f"fz-{nonce}",
        contract=contract,
        function=function,
        args=(payload,),
        nonce=f"n{nonce}",
        creator=creator,
        timestamp=t,
    )
    return Transaction(
        proposal=proposal,
        certificate=identity.certificate,
        signature=identity.sign(proposal.digest()),
    )


def fuzz_case(
    case: FuzzCase,
    n_events: int,
    seed: int,
    max_block_txs: int = 5,
) -> FuzzOutcome:
    """Run one randomized trace through ``case`` and cross-check it."""
    from ..blockchain.block import make_block, make_genesis_block
    from ..blockchain.contracts import execute_transaction
    from ..blockchain.identity import CertificateAuthority
    from ..blockchain.ledger import Ledger
    from ..blockchain.transaction import TxValidationCode

    rng = random.Random(seed)
    contract = case.make()
    footprints = case.footprints()
    planner = ConflictPlanner(
        predict_conflicts(footprints), contract=contract.name
    )
    outcome = FuzzOutcome(case=case.name, seed=seed, n_events=n_events)

    ledger = Ledger(make_genesis_block({"peers": list(case.players)}))
    ca = CertificateAuthority(name="fuzz-ca", seed=seed)
    identities: Dict[str, Any] = {}
    players = list(case.players)
    functions = sorted(case.payloads)
    gameplay = [f for f in functions if f not in ("addPlayer", "startGame")]

    # Deterministic prologue: join everyone, start the game, then the
    # random trace.  The prologue flows through the same checks.
    schedule: List[Tuple[str, str]] = [("addPlayer", p) for p in players]
    schedule.append(("startGame", players[0]))
    t = 0.0
    nonce = 0
    events_left = n_events

    while events_left > 0 or schedule:
        # Prologue transactions travel one per block: they all touch the
        # shared roster key, so batching them would just invalidate the
        # session setup instead of exercising gameplay conflicts.
        size = 1 if schedule else rng.randint(1, max_block_txs)
        txs = []
        while len(txs) < size and (schedule or events_left > 0):
            if schedule:
                function, creator = schedule.pop(0)
            else:
                function = rng.choice(gameplay)
                creator = rng.choice(players)
                events_left -= 1
            t += rng.uniform(5.0, 60.0)
            nonce += 1
            payload = case.payloads[function](rng, players, t)
            txs.append(
                _make_tx(ca, identities, contract.name, function, payload,
                         creator, nonce, t)
            )
        if not txs:
            break

        plan = planner.plan_block(txs)

        # Peer execution semantics: a speculative overlay makes earlier
        # in-block VALID writes visible to later transactions.
        overlay = ledger.state.overlay()
        executions = []
        for tx in txs:
            execution = execute_transaction(
                contract, tx, ledger.state, overlay=overlay
            )
            executions.append(execution)
            if execution.code == TxValidationCode.VALID:
                for key, value in execution.rwset.writes:
                    overlay.put_speculative(key, value)

        block = make_block(ledger.height, ledger.last_hash, txs, timestamp=t)
        codes = ledger.append(block, executions)
        outcome.blocks += 1
        for code in codes:
            outcome.codes[code] = outcome.codes.get(code, 0) + 1

        _check_block(case, outcome, planner, plan, footprints, txs,
                     executions, codes)

    return outcome


def _check_block(case, outcome, planner, plan, footprints, txs, executions,
                 codes) -> None:
    from ..blockchain.transaction import TxValidationCode

    # 1. coverage: runtime keys ⊆ static patterns, per handler.
    for tx, execution in zip(txs, executions):
        function = tx.proposal.function
        fp = footprints.get(function)
        if fp is None:
            outcome.violations.append(FuzzViolation(
                "coverage", f"{function}: no footprint inferred at all"
            ))
            continue
        for key in execution.rwset.read_keys():
            outcome.keys_checked += 1
            if not covers_key(fp.reads, key):
                outcome.violations.append(FuzzViolation(
                    "coverage",
                    f"{function} read {key!r} not covered by {fp.reads}",
                ))
        for key in execution.rwset.write_keys():
            outcome.keys_checked += 1
            if not covers_key(fp.writes, key):
                outcome.violations.append(FuzzViolation(
                    "coverage",
                    f"{function} wrote {key!r} not covered by {fp.writes}",
                ))

    touched = [set(e.rwset.touched()) for e in executions]
    written = [set(e.rwset.write_keys()) for e in executions]

    # 2. independence: predicted-independent pairs cannot interact.
    for i in range(len(txs)):
        for j in range(i + 1, len(txs)):
            outcome.pairs_checked += 1
            if planner.may_conflict(txs[i], txs[j]):
                continue
            overlap = (written[i] & touched[j]) | (written[j] & touched[i])
            if overlap:
                outcome.violations.append(FuzzViolation(
                    "independence",
                    f"{txs[i].proposal.function}/{txs[j].proposal.function} "
                    f"predicted independent but overlap on {sorted(overlap)}",
                ))

    # 3. attribution: every MVCC downgrade has a predicted cause.
    for j, (execution, code) in enumerate(zip(executions, codes)):
        if (execution.code == TxValidationCode.VALID
                and code == TxValidationCode.MVCC_READ_CONFLICT):
            explained = any(
                codes[i] == TxValidationCode.VALID
                and planner.may_conflict(txs[i], txs[j])
                for i in range(j)
            )
            if not explained:
                outcome.violations.append(FuzzViolation(
                    "attribution",
                    f"tx {txs[j].tx_id} ({txs[j].proposal.function}) hit "
                    "MVCC_READ_CONFLICT with no predicted edge to any "
                    "earlier valid tx",
                ))

    # 4. lanes: cross-lane pairs must be independent at runtime.
    lane_of = {}
    for lane_no, lane in enumerate(plan.lanes):
        for index in lane:
            lane_of[index] = lane_no
    for i in range(len(txs)):
        for j in range(i + 1, len(txs)):
            if lane_of[i] == lane_of[j]:
                continue
            overlap = (written[i] & touched[j]) | (written[j] & touched[i])
            if overlap:
                outcome.violations.append(FuzzViolation(
                    "lanes",
                    f"lanes {lane_of[i]}/{lane_of[j]} overlap at runtime "
                    f"on {sorted(overlap)}",
                ))


def run_fuzz(
    n_events: int,
    seed: int,
    cases: Optional[Sequence[FuzzCase]] = None,
) -> List[FuzzOutcome]:
    """Fuzz every case at one seed; returns per-case outcomes."""
    return [
        fuzz_case(case, n_events=n_events, seed=seed)
        for case in (cases if cases is not None else default_cases())
    ]
