"""Pre-ordering MVCC conflict prediction from inferred footprints.

Fabric's commit rules (mirrored by :class:`repro.blockchain.ledger.Ledger`)
invalidate a transaction when a key it read or wrote was already written
by an earlier valid transaction in the same block.  Whether two *events*
can trip that rule is decidable statically from their key footprints:
cross-join every handler pair and test whether any write pattern of one
can collide with a read/write pattern of the other.

The provenance tags on symbolic key fragments split the verdict into
the two regimes the paper's §6 optimisations care about:

* ``SAME_PLAYER`` — the footprints only collide when both transactions
  come from one player (e.g. two ``shoot`` events both write
  ``asset/{creator}/2``).  This is precisely the conflict the paper's
  block-size tuning and batching work around ("if a player shoots two
  successive bullets ... Fabric will reject the latter transaction").
* ``ALWAYS`` — the footprints can collide even across players (shared
  keys such as ``game/roster``, or argument-addressed keys such as
  ``item/{arg:item_id}`` that two players may both name).

The per-transaction nonce marker never collides across distinct
transactions (NONCE-tagged fragments), so the replay defence stays
conflict-free — the property that makes it safe to batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from .rwset import Footprint
from .symbols import KeyPattern, may_collide

__all__ = ["ConflictLevel", "ConflictMatrix", "predict_conflicts"]


class ConflictLevel:
    NONE = "none"
    SAME_PLAYER = "same-player"
    ALWAYS = "always"

    #: Rendering glyphs for the ASCII matrix.
    GLYPHS = {NONE: ".", SAME_PLAYER: "P", ALWAYS: "X"}


@dataclass
class ConflictMatrix:
    """Pairwise conflict verdicts over a contract's public functions."""

    events: List[str]
    levels: Dict[Tuple[str, str], str] = field(default_factory=dict)
    #: example colliding (pattern, pattern) pair per event pair
    witnesses: Dict[Tuple[str, str], Tuple[str, str]] = field(default_factory=dict)

    def level(self, a: str, b: str) -> str:
        return self.levels.get((a, b), ConflictLevel.NONE)

    def pairs(self, level: str) -> List[Tuple[str, str]]:
        return sorted(
            pair for pair, lv in self.levels.items() if lv == level and pair[0] <= pair[1]
        )

    def to_json(self) -> dict:
        return {
            "events": list(self.events),
            "conflicts": [
                {
                    "a": a,
                    "b": b,
                    "level": lv,
                    "witness": list(self.witnesses.get((a, b), ())),
                }
                for (a, b), lv in sorted(self.levels.items())
                if lv != ConflictLevel.NONE and a <= b
            ],
        }

    def to_table(self):
        """Render as an :class:`repro.analysis.report.AsciiTable`."""
        from ..analysis.report import render_conflict_matrix

        return render_conflict_matrix(
            self.events,
            lambda a, b: ConflictLevel.GLYPHS[self.level(a, b)],
            title="Predicted MVCC conflicts when batched in one block "
            "(X = any two players, P = same player only, . = conflict-free)",
        )


def _collides(
    writes: Iterable[KeyPattern], touched: Iterable[KeyPattern], same_creator: bool
) -> Tuple[bool, Tuple[str, str]]:
    for w in writes:
        for t in touched:
            if may_collide(w, t, same_creator=same_creator):
                return True, (str(w), str(t))
    return False, ("", "")


def _pair_level(a: Footprint, b: Footprint) -> Tuple[str, Tuple[str, str]]:
    """Conflict level for two transactions invoking handlers a then b."""
    touched_b = tuple(b.reads) + tuple(b.writes)
    hit, witness = _collides(a.writes, touched_b, same_creator=False)
    if hit:
        return ConflictLevel.ALWAYS, witness
    hit, witness = _collides(a.writes, touched_b, same_creator=True)
    if hit:
        return ConflictLevel.SAME_PLAYER, witness
    return ConflictLevel.NONE, ("", "")


def predict_conflicts(footprints: Dict[str, Footprint]) -> ConflictMatrix:
    """Cross-join footprints into a pairwise conflict matrix.

    The verdict for ``(a, b)`` is the worst over both block orders
    (a-before-b and b-before-a), since the orderer may sequence the
    pair either way.
    """
    events = sorted(footprints)
    matrix = ConflictMatrix(events=events)
    rank = {
        ConflictLevel.NONE: 0,
        ConflictLevel.SAME_PLAYER: 1,
        ConflictLevel.ALWAYS: 2,
    }
    for a in events:
        for b in events:
            level_ab, witness_ab = _pair_level(footprints[a], footprints[b])
            level_ba, witness_ba = _pair_level(footprints[b], footprints[a])
            if rank[level_ba] > rank[level_ab]:
                level, witness = level_ba, witness_ba
            else:
                level, witness = level_ab, witness_ab
            matrix.levels[(a, b)] = level
            if level != ConflictLevel.NONE:
                matrix.witnesses[(a, b)] = witness
    return matrix
