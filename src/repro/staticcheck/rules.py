"""Determinism lint rules for smart-contract source.

Every peer executes the same contract against the same state and must
reach the same verdict (§4.2.2) — a contract that consults a wall
clock, a random source, interpreter-specific identity, or unordered
collections silently breaks consensus in ways no runtime check can
catch.  Each rule below encodes one hazard class; the linter
(:mod:`repro.staticcheck.linter`) runs them over a contract's AST.

Rule codes:

========  ==============================================================
DET001    nondeterministic value source (``random``, ``uuid``,
          ``secrets``, ``os.urandom``, ``hash()``/``id()`` builtins)
DET002    wall-clock read (``time.time`` family, ``datetime.now`` ...)
          — contracts must use the transaction timestamp instead
DET003    unordered ``set`` iteration (or ``set.pop``) feeding logic;
          escalates to an error when the loop writes state
DET004    I/O — file, console or network access inside a contract
DET005    cross-invocation state: ``global``/``nonlocal``, writes to
          class attributes, or ``self.*`` mutation outside ``__init__``
DET006    floating-point accumulation in a loop (asset math drifts
          across peers with different summation orders)
DET007    import of a nondeterministic or I/O module in contract source
========  ==============================================================
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import List, Optional

__all__ = ["Diagnostic", "DeterminismVisitor", "run_rules", "SEVERITY_ERROR", "SEVERITY_WARNING"]

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: Modules whose mere use inside a contract is a determinism hazard.
RANDOMNESS_MODULES = frozenset({"random", "uuid", "secrets"})
WALLCLOCK_MODULES = frozenset({"time", "datetime"})
IO_MODULES = frozenset(
    {"socket", "urllib", "requests", "http", "subprocess", "shutil", "pathlib", "io"}
)
#: ``os`` is special-cased: it is both a randomness source (urandom),
#: environment-dependent (environ, getpid) and an I/O surface (listdir).
ENVIRONMENT_MODULES = frozenset({"os", "sys", "platform"})

BANNED_IMPORTS = (
    RANDOMNESS_MODULES | WALLCLOCK_MODULES | IO_MODULES | ENVIRONMENT_MODULES
)

#: Builtin calls that depend on interpreter state.  ``hash()`` of a str
#: is salted per process (PYTHONHASHSEED); ``id()`` is an address.
NONDETERMINISTIC_BUILTINS = frozenset({"hash", "id"})
IO_BUILTINS_ERROR = frozenset({"open", "input"})
IO_BUILTINS_WARNING = frozenset({"print"})

#: Method names that mutate state in place on whatever they are called
#: on — used by DET003 when the receiver is a set.
_SET_MUTATORS = frozenset({"pop"})

WRITE_METHOD_NAMES = frozenset({"put", "_put", "_write_asset", "delete"})


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding, anchored to a source location."""

    code: str
    message: str
    line: int
    col: int
    severity: str = SEVERITY_ERROR
    context: str = ""  # enclosing function/class, when known

    def __str__(self) -> str:
        where = f" [{self.context}]" if self.context else ""
        return f"{self.severity.upper()} {self.code} L{self.line}:{self.col}{where} {self.message}"

    def to_json(self) -> dict:
        return {
            "code": self.code,
            "message": self.message,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "context": self.context,
        }


def _root_name(node: ast.AST) -> Optional[str]:
    """The base ``Name`` of an attribute chain (``a.b.c()`` → ``a``)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted rendering of an attribute chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _module_of(env: Optional[dict], name: str) -> Optional[str]:
    """Resolve an alias through the live namespace, if one was given."""
    if not env or name not in env:
        return None
    value = env[name]
    module_name = getattr(value, "__name__", None)
    if module_name and getattr(value, "__package__", "__nope__") is not None:
        # Only treat actual module objects as modules.
        import types

        if isinstance(value, types.ModuleType):
            return module_name.split(".")[0]
    return None


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _contains_state_write(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Attribute)
            and child.func.attr in WRITE_METHOD_NAMES
        ):
            return True
    return False


def _contains_float_constant(node: ast.AST) -> bool:
    return any(
        isinstance(child, ast.Constant) and isinstance(child.value, float)
        for child in ast.walk(node)
    )


class DeterminismVisitor(ast.NodeVisitor):
    """Collects :class:`Diagnostic` objects over one source tree.

    ``env`` is an optional live namespace (the contract module's
    ``__dict__``) used to see through import aliases; name-based
    detection works without it.
    """

    def __init__(self, env: Optional[dict] = None, class_names: Optional[set] = None):
        self.env = env or {}
        self.diagnostics: List[Diagnostic] = []
        self._context: List[str] = []
        self._loop_depth = 0
        self._class_names = set(class_names or ())

    # ------------------------------------------------------------------
    # plumbing

    def _emit(self, node: ast.AST, code: str, message: str, severity: str = SEVERITY_ERROR):
        self.diagnostics.append(
            Diagnostic(
                code=code,
                message=message,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                severity=severity,
                context=".".join(self._context),
            )
        )

    def _in_function(self) -> Optional[str]:
        return self._context[-1] if self._context else None

    def _banned_root(self, name: Optional[str]) -> Optional[str]:
        """Map an alias or plain name to the hazardous module it names."""
        if name is None:
            return None
        resolved = _module_of(self.env, name)
        if resolved in BANNED_IMPORTS:
            return resolved
        if name in BANNED_IMPORTS and name not in self.env:
            return name
        # Plain-name fallback even with an env: a contract module rarely
        # shadows `random` with something safe.
        if name in BANNED_IMPORTS:
            return name
        return None

    # ------------------------------------------------------------------
    # DET007: imports

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in BANNED_IMPORTS:
                self._emit(
                    node,
                    "DET007",
                    f"contract source imports nondeterministic module {alias.name!r}",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        root = (node.module or "").split(".")[0]
        if root in BANNED_IMPORTS:
            self._emit(
                node,
                "DET007",
                f"contract source imports from nondeterministic module {node.module!r}",
            )
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # scope tracking

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_names.add(node.name)
        self._context.append(node.name)
        self.generic_visit(node)
        self._context.pop()

    def _visit_function(self, node) -> None:
        self._context.append(node.name)
        self.generic_visit(node)
        self._context.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # ------------------------------------------------------------------
    # DET001/DET002/DET004: hazardous calls

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in NONDETERMINISTIC_BUILTINS:
                self._emit(
                    node,
                    "DET001",
                    f"builtin {func.id}() depends on interpreter state "
                    "(hash salting / object addresses) and differs across peers",
                )
            elif func.id in IO_BUILTINS_ERROR:
                self._emit(node, "DET004", f"I/O builtin {func.id}() inside contract code")
            elif func.id in IO_BUILTINS_WARNING:
                self._emit(
                    node,
                    "DET004",
                    f"{func.id}() performs console I/O inside contract code",
                    severity=SEVERITY_WARNING,
                )
        elif isinstance(func, ast.Attribute):
            root = self._banned_root(_root_name(func))
            dotted = _dotted(func)
            if root in RANDOMNESS_MODULES:
                self._emit(
                    node,
                    "DET001",
                    f"call to {dotted}() draws nondeterministic values; "
                    "contracts must be pure functions of (state, transaction)",
                )
            elif root in WALLCLOCK_MODULES:
                self._emit(
                    node,
                    "DET002",
                    f"call to {dotted}() reads the wall clock; use the "
                    "transaction timestamp (ctx.timestamp) instead",
                )
            elif root in IO_MODULES:
                self._emit(node, "DET004", f"call to {dotted}() performs I/O")
            elif root in ENVIRONMENT_MODULES:
                self._emit(
                    node,
                    "DET001",
                    f"call to {dotted}() depends on the host environment",
                )
            # set.pop() removes an arbitrary element
            if func.attr in _SET_MUTATORS and _is_set_expr(func.value):
                self._emit(
                    node,
                    "DET003",
                    "set.pop() removes an arbitrary element — unordered across peers",
                )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # Non-call environment reads, e.g. `os.environ[...]`.
        root = self._banned_root(_root_name(node.value)) if isinstance(
            node.value, (ast.Name, ast.Attribute)
        ) else None
        if root in ENVIRONMENT_MODULES and node.attr in ("environ", "argv", "path"):
            self._emit(
                node,
                "DET001",
                f"{_dotted(node)} depends on the host environment",
            )
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # DET003: unordered iteration

    @staticmethod
    def _unordered_iter(iter_expr: ast.AST) -> bool:
        """True when ``iter_expr`` iterates a set in unordered fashion.

        ``sorted(...)`` launders set iteration; ``list()``/``tuple()`` of
        a set is still unordered, so only ``sorted`` is exempt.
        """
        if (
            isinstance(iter_expr, ast.Call)
            and isinstance(iter_expr.func, ast.Name)
            and iter_expr.func.id == "sorted"
        ):
            return False
        return _is_set_expr(iter_expr)

    def visit_For(self, node: ast.For) -> None:
        if self._unordered_iter(node.iter):
            writes = _contains_state_write(node)
            self._emit(
                node,
                "DET003",
                "iteration over a set is unordered across interpreter runs"
                + ("; the loop writes world state" if writes else ""),
                severity=SEVERITY_ERROR if writes else SEVERITY_WARNING,
            )
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def _visit_comprehension(self, node: ast.AST) -> None:
        # Comprehensions iterate exactly like `for` loops; a set-fed
        # generator makes the element order (and thus list/dict results,
        # or any state writes in the element expression) peer-dependent.
        for comp in getattr(node, "generators", []):
            if self._unordered_iter(comp.iter):
                writes = _contains_state_write(node)
                self._emit(
                    node,
                    "DET003",
                    "comprehension over a set is unordered across "
                    "interpreter runs"
                    + ("; the element expression writes world state" if writes else ""),
                    severity=SEVERITY_ERROR if writes else SEVERITY_WARNING,
                )
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def visit_While(self, node: ast.While) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    # ------------------------------------------------------------------
    # DET005: cross-invocation state

    def visit_Global(self, node: ast.Global) -> None:
        self._emit(
            node,
            "DET005",
            f"global statement ({', '.join(node.names)}): module state "
            "persists across invocations and across peers differently",
        )

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self._emit(node, "DET005", "nonlocal state mutation inside contract code")

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_state_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_state_target(node.target)
        # DET006: float accumulation in a loop
        if self._loop_depth > 0 and isinstance(node.op, (ast.Add, ast.Sub, ast.Mult)):
            if _contains_float_constant(node.value):
                self._emit(
                    node,
                    "DET006",
                    "floating-point accumulation in a loop: summation order "
                    "and rounding can diverge across peers; use integers "
                    "(fixed-point) for asset math",
                    severity=SEVERITY_WARNING,
                )
        self.generic_visit(node)

    def _check_state_target(self, target: ast.AST) -> None:
        if not isinstance(target, ast.Attribute):
            return
        base = target.value
        fn = self._in_function()
        if isinstance(base, ast.Name):
            if base.id in self._class_names:
                self._emit(
                    target,
                    "DET005",
                    f"assignment to class attribute {_dotted(target)} mutates "
                    "state shared across invocations",
                )
            elif base.id == "self" and fn not in (None, "__init__"):
                self._emit(
                    target,
                    "DET005",
                    f"assignment to self.{target.attr} outside __init__: "
                    "instance state does not survive peer restarts and is "
                    "not part of consensus",
                    severity=SEVERITY_WARNING,
                )
        elif (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
            and base.attr == "__class__"
        ):
            self._emit(target, "DET005", "mutation of self.__class__ attributes")


def run_rules(
    tree: ast.AST,
    env: Optional[dict] = None,
    class_names: Optional[set] = None,
) -> List[Diagnostic]:
    """Run every determinism rule over ``tree``; returns diagnostics."""
    visitor = DeterminismVisitor(env=env, class_names=class_names)
    visitor.visit(tree)
    return sorted(visitor.diagnostics, key=lambda d: (d.line, d.col, d.code))
