"""Static analysis for smart contracts: determinism linting, read/write
set inference and pre-ordering MVCC conflict prediction.

The platform's core guarantee — every peer executes the same contract
against the same state and reaches the same verdict (§4.2.2) — holds
only for *deterministic* contracts, and its throughput behaviour
(§6 opt. i) is fixed by *which keys* each handler touches.  This
package checks both properties before a contract ever runs:

* :func:`lint_contract` / :func:`lint_source` — AST determinism linter
  (wall clocks, randomness, unordered iteration, I/O, cross-invocation
  state, float accumulation).
* :func:`infer_footprints` — per-handler read/write key patterns,
  validated against the runtime ``StateView.rwset()`` ground truth by
  the differential tests.
* :func:`predict_conflicts` — which event pairs will MVCC-conflict when
  batched into one block, before the ordering service ever sees them.
* :func:`taint_contract` / :func:`taint_source` — interprocedural taint
  rules (CHT001–CHT004) flagging cheat vulnerabilities: unguarded
  payload→state writes, unbounded tainted arithmetic, asset minting and
  client-addressed keys.
* :class:`ConflictPlanner` — lowers the conflict matrix onto concrete
  transaction batches as provably-independent validation lanes
  (``FabricConfig.conflict_planner``).
* :func:`analyze_contract` / :func:`analyze_source` — everything at
  once, as a :class:`ContractReport`; also behind the
  ``python -m repro.staticcheck module:Class`` CLI, which additionally
  offers ``--fuzz N --seed S`` (differential soundness harness) and
  ``--sarif PATH`` (SARIF 2.1.0 export).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .conflicts import ConflictLevel, ConflictMatrix, predict_conflicts
from .fuzz import FuzzCase, FuzzOutcome, default_cases, fuzz_case, run_fuzz
from .linter import StaticCheckError, gate, lint_contract, lint_source
from .plan import ConflictPlan, ConflictPlanner
from .rules import Diagnostic, SEVERITY_ERROR, SEVERITY_WARNING
from .rwset import Footprint, infer_footprints
from .sarif import to_sarif
from .symbols import KeyPattern, Sym, SymKind, covers_key, make_pattern, may_collide
from .taint import CHT_RULES, TaintReport, taint_contract, taint_source

__all__ = [
    "CHT_RULES",
    "ConflictLevel",
    "ConflictMatrix",
    "ConflictPlan",
    "ConflictPlanner",
    "ContractReport",
    "Diagnostic",
    "Footprint",
    "FuzzCase",
    "FuzzOutcome",
    "KeyPattern",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "StaticCheckError",
    "Sym",
    "SymKind",
    "TaintReport",
    "analyze_contract",
    "analyze_source",
    "covers_key",
    "default_cases",
    "fuzz_case",
    "gate",
    "infer_footprints",
    "lint_contract",
    "lint_source",
    "make_pattern",
    "may_collide",
    "predict_conflicts",
    "run_fuzz",
    "taint_contract",
    "taint_source",
    "to_sarif",
]


@dataclass
class ContractReport:
    """Combined static-analysis result for one contract.

    ``diagnostics`` merges the determinism (DET) and taint (CHT)
    findings; ``waived`` holds CHT findings suppressed by an explicit
    ``STATICCHECK_WAIVERS`` entry — reported, never dropped, and never
    counted against the gate.
    """

    contract: str
    diagnostics: List[Diagnostic]
    footprints: Dict[str, Footprint]
    conflicts: ConflictMatrix
    strict: bool = True
    waived: List[Diagnostic] = field(default_factory=list)
    waivers: Dict[str, str] = field(default_factory=dict)

    def failures(self) -> List[Diagnostic]:
        return gate(self.diagnostics, strict=self.strict)

    @property
    def ok(self) -> bool:
        return not self.failures()

    def to_json(self) -> dict:
        return {
            "contract": self.contract,
            "strict": self.strict,
            "ok": self.ok,
            "diagnostics": [d.to_json() for d in self.diagnostics],
            "waived": [d.to_json() for d in self.waived],
            "waivers": dict(self.waivers),
            "footprints": {
                name: fp.to_json() for name, fp in sorted(self.footprints.items())
            },
            "conflicts": self.conflicts.to_json(),
        }

    def render(self) -> str:
        """Human-readable multi-section report."""
        from ..analysis.report import AsciiTable

        lines: List[str] = [f"Static analysis: {self.contract}"]
        lines.append("=" * len(lines[0]))
        if self.diagnostics:
            lines.append("")
            lines.append(f"Diagnostics ({len(self.diagnostics)}):")
            for diag in self.diagnostics:
                lines.append(f"  {diag}")
        else:
            lines.append("")
            lines.append("Determinism + taint: clean (no diagnostics)")
        if self.waived:
            lines.append("")
            lines.append(f"Waived findings ({len(self.waived)}):")
            for diag in self.waived:
                reason = self.waivers.get(diag.code, "")
                lines.append(f"  {diag}  [waived: {reason}]")

        table = AsciiTable(
            ["event", "reads", "writes"], title="Inferred per-event KVS footprints"
        )
        for name, fp in sorted(self.footprints.items()):
            table.row(
                name,
                " ".join(sorted(str(p) for p in fp.reads)),
                " ".join(sorted(str(p) for p in fp.writes)),
            )
        lines.append("")
        lines.append(table.render())
        lines.append("")
        lines.append(self.conflicts.to_table().render())
        lines.append("")
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(f"Verdict: {verdict} (strict={self.strict})")
        return "\n".join(lines)


def _analyze(
    lint_diags: List[Diagnostic],
    taint: TaintReport,
    footprints: Dict[str, Footprint],
    name: str,
    strict: bool,
) -> ContractReport:
    merged = sorted(
        list(lint_diags) + list(taint.diagnostics),
        key=lambda d: (d.line, d.col, d.code),
    )
    return ContractReport(
        contract=name,
        diagnostics=merged,
        footprints=footprints,
        conflicts=predict_conflicts(footprints),
        strict=strict,
        waived=list(taint.waived),
        waivers=dict(taint.waivers),
    )


def analyze_contract(cls: type, strict: bool = True) -> ContractReport:
    """Run the full analysis suite over a live contract class."""
    return _analyze(
        lint_contract(cls),
        taint_contract(cls),
        infer_footprints(cls),
        cls.__name__,
        strict,
    )


def analyze_source(
    source: str, class_name: Optional[str] = None, strict: bool = True
) -> ContractReport:
    """Run the full analysis suite over contract source text."""
    return _analyze(
        lint_source(source),
        taint_source(source, class_name=class_name),
        infer_footprints(source, class_name=class_name),
        class_name or "<generated>",
        strict,
    )
