"""Static analysis for smart contracts: determinism linting, read/write
set inference and pre-ordering MVCC conflict prediction.

The platform's core guarantee — every peer executes the same contract
against the same state and reaches the same verdict (§4.2.2) — holds
only for *deterministic* contracts, and its throughput behaviour
(§6 opt. i) is fixed by *which keys* each handler touches.  This
package checks both properties before a contract ever runs:

* :func:`lint_contract` / :func:`lint_source` — AST determinism linter
  (wall clocks, randomness, unordered iteration, I/O, cross-invocation
  state, float accumulation).
* :func:`infer_footprints` — per-handler read/write key patterns,
  validated against the runtime ``StateView.rwset()`` ground truth by
  the differential tests.
* :func:`predict_conflicts` — which event pairs will MVCC-conflict when
  batched into one block, before the ordering service ever sees them.
* :func:`analyze_contract` / :func:`analyze_source` — everything at
  once, as a :class:`ContractReport`; also behind the
  ``python -m repro.staticcheck module:Class`` CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .conflicts import ConflictLevel, ConflictMatrix, predict_conflicts
from .linter import StaticCheckError, gate, lint_contract, lint_source
from .rules import Diagnostic, SEVERITY_ERROR, SEVERITY_WARNING
from .rwset import Footprint, infer_footprints
from .symbols import KeyPattern, Sym, SymKind, covers_key, make_pattern, may_collide

__all__ = [
    "ConflictLevel",
    "ConflictMatrix",
    "ContractReport",
    "Diagnostic",
    "Footprint",
    "KeyPattern",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "StaticCheckError",
    "Sym",
    "SymKind",
    "analyze_contract",
    "analyze_source",
    "covers_key",
    "gate",
    "infer_footprints",
    "lint_contract",
    "lint_source",
    "make_pattern",
    "may_collide",
    "predict_conflicts",
]


@dataclass
class ContractReport:
    """Combined static-analysis result for one contract."""

    contract: str
    diagnostics: List[Diagnostic]
    footprints: Dict[str, Footprint]
    conflicts: ConflictMatrix
    strict: bool = True

    def failures(self) -> List[Diagnostic]:
        return gate(self.diagnostics, strict=self.strict)

    @property
    def ok(self) -> bool:
        return not self.failures()

    def to_json(self) -> dict:
        return {
            "contract": self.contract,
            "strict": self.strict,
            "ok": self.ok,
            "diagnostics": [d.to_json() for d in self.diagnostics],
            "footprints": {
                name: fp.to_json() for name, fp in sorted(self.footprints.items())
            },
            "conflicts": self.conflicts.to_json(),
        }

    def render(self) -> str:
        """Human-readable multi-section report."""
        from ..analysis.report import AsciiTable

        lines: List[str] = [f"Static analysis: {self.contract}"]
        lines.append("=" * len(lines[0]))
        if self.diagnostics:
            lines.append("")
            lines.append(f"Determinism diagnostics ({len(self.diagnostics)}):")
            for diag in self.diagnostics:
                lines.append(f"  {diag}")
        else:
            lines.append("")
            lines.append("Determinism: clean (no diagnostics)")

        table = AsciiTable(
            ["event", "reads", "writes"], title="Inferred per-event KVS footprints"
        )
        for name, fp in sorted(self.footprints.items()):
            table.row(
                name,
                " ".join(sorted(str(p) for p in fp.reads)),
                " ".join(sorted(str(p) for p in fp.writes)),
            )
        lines.append("")
        lines.append(table.render())
        lines.append("")
        lines.append(self.conflicts.to_table().render())
        lines.append("")
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(f"Verdict: {verdict} (strict={self.strict})")
        return "\n".join(lines)


def _analyze(
    lint_diags: List[Diagnostic],
    footprints: Dict[str, Footprint],
    name: str,
    strict: bool,
) -> ContractReport:
    return ContractReport(
        contract=name,
        diagnostics=lint_diags,
        footprints=footprints,
        conflicts=predict_conflicts(footprints),
        strict=strict,
    )


def analyze_contract(cls: type, strict: bool = True) -> ContractReport:
    """Run the full analysis suite over a live contract class."""
    return _analyze(
        lint_contract(cls), infer_footprints(cls), cls.__name__, strict
    )


def analyze_source(
    source: str, class_name: Optional[str] = None, strict: bool = True
) -> ContractReport:
    """Run the full analysis suite over contract source text."""
    return _analyze(
        lint_source(source),
        infer_footprints(source, class_name=class_name),
        class_name or "<generated>",
        strict,
    )
