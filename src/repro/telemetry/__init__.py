"""Pipeline telemetry: lifecycle tracing, metrics, exporters.

``repro.telemetry`` gives the execute-order-validate pipeline the
latency attribution the paper's evaluation is built on (Fig. 2 commit
bins, Fig. 3c validation latency, the §5/§6 stage decomposition):

* :class:`Telemetry` — the facade every component hooks into: a
  per-transaction lifecycle :class:`Tracer` on the deterministic sim
  clock plus a :class:`MetricsRegistry` of counters/gauges/histograms;
* exporters — :func:`write_trace_jsonl`, :func:`prometheus_text`,
  :func:`stage_summary` / :func:`fig2_latency_bins`.

Instrumentation is zero-cost when disabled: component hook sites guard
on ``telemetry is not None`` and nothing else.  Enabling telemetry is
host-side only — simulated results are bit-identical with and without.
"""

from .core import Telemetry
from .metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    FIG2_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .tracer import STAGES, TX_CHAIN_STAGES, Span, Tracer
from .export import (
    fig2_latency_bins,
    format_stage_summary,
    prometheus_text,
    stage_summary,
    trace_records,
    write_trace_jsonl,
)

__all__ = [
    "Telemetry",
    "Tracer",
    "Span",
    "STAGES",
    "TX_CHAIN_STAGES",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "FIG2_BUCKETS_MS",
    "trace_records",
    "write_trace_jsonl",
    "prometheus_text",
    "stage_summary",
    "format_stage_summary",
    "fig2_latency_bins",
]
