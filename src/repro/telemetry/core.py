"""The `Telemetry` facade: one object wired through the whole pipeline.

Components (shim/client, ordering service, peers, transport, chaos
injector) each carry a ``telemetry`` attribute that defaults to ``None``.
Every hook site in the engine is guarded::

    tel = self.telemetry
    if tel is not None:
        tel.block_cut(block)

so a run without telemetry pays exactly one attribute load and one
``is not None`` test per hook — the "zero-cost when disabled" contract
the PR-3 perf gates and the golden determinism record rely on.  All
recording is host-side: enabling telemetry never schedules events,
never draws from an RNG and never touches simulated state, so a traced
run is *simulated-ms identical* to an untraced one.

Per-transaction spans are recorded from the viewpoint of one **witness
peer** (default: ``peer0``) — the paper measures latency at the client's
anchor, and one linear chain per transaction is what the exporters and
the span-completeness property consume.  Per-stage histograms, by
contrast, aggregate over *every* peer, so fleet-wide latency
distributions (Fig. 3c's validation latency) still see all N peers.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from .metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    FIG2_BUCKETS_MS,
    Histogram,
    MetricsRegistry,
)
from .tracer import Tracer

__all__ = ["Telemetry"]

#: Block-size histogram bounds (transactions per block; Doom tuning is 5).
_BLOCK_SIZE_BOUNDS = (1.0, 2.0, 3.0, 4.0, 5.0, 8.0, 16.0, 32.0)


class Telemetry:
    """Lifecycle tracer + metrics registry + the hooks that feed them."""

    def __init__(self, witness: Optional[str] = None):
        self.tracer = Tracer()
        self.registry = MetricsRegistry()
        self.witness = witness
        self._sched = None

        reg = self.registry
        self._c_submitted = reg.counter(
            "client_txs_submitted", "transactions submitted by clients/shims"
        )
        self._c_enqueued = reg.counter(
            "orderer_txs_enqueued", "transactions received by the ordering service"
        )
        self._c_blocks_cut = reg.counter("orderer_blocks_cut", "blocks cut")
        self._c_txs_ordered = reg.counter("orderer_txs_ordered", "transactions ordered")
        self._h_block_size = reg.histogram(
            "orderer_block_size_txs", "transactions per cut block",
            boundaries=_BLOCK_SIZE_BOUNDS,
        )
        self._c_blocks_delivered = reg.counter(
            "peer_blocks_delivered", "first-time block deliveries at peers"
        )
        self._c_blocks_committed = reg.counter(
            "peer_blocks_committed", "block commits across peers"
        )
        self._c_txs_committed = reg.counter(
            "peer_txs_committed", "transactions committed VALID (all peers)"
        )
        self._c_txs_aborted = reg.counter(
            "peer_txs_aborted", "transactions aborted at validation (all peers)"
        )
        self._c_blocks_synced = reg.counter(
            "peer_blocks_synced", "ledger-sync quorums reached (all peers)"
        )
        self._h_fig2 = reg.histogram(
            "shim_commit_latency_ms",
            "per-event commit latency at the shim (the paper's Fig. 2 bins)",
            boundaries=FIG2_BUCKETS_MS,
        )
        self._c_acks = reg.counter("shim_events_acked", "game events acknowledged")
        self._c_rejected = reg.counter("shim_events_rejected", "game events rejected")
        self._h_stage: Dict[str, Histogram] = {}

        # Pending lifecycle state, keyed so entries are consumed on use.
        self._submitted_at: Dict[str, float] = {}
        self._enqueued_at: Dict[str, float] = {}
        #: keyed by block *digest*, not number: in a sharded deployment
        #: every shard has its own height sequence, so numbers collide.
        self._cut_at: Dict[str, float] = {}
        self._exec_end: Dict[Tuple[str, int], float] = {}
        self._decided_at: Dict[Tuple[str, int], float] = {}
        self._committed_at: Dict[Tuple[str, int], float] = {}

    # ------------------------------------------------------------------
    # wiring

    def instrument_chain(self, chain) -> "Telemetry":
        """Attach to a :class:`~repro.blockchain.network.BlockchainNetwork`:
        orderer, every peer, every existing client, and the transport."""
        self._sched = chain.scheduler
        if self.witness is None:
            self.witness = chain.peers[0].name
        chain.telemetry = self  # future create_client() calls inherit it
        chain.orderer.telemetry = self
        for peer in chain.peers:
            peer.telemetry = self
        for client in getattr(chain, "_clients", {}).values():
            client.telemetry = self
        self.bind_network(chain.net)
        return self

    def instrument_sharded(self, deployment) -> "Telemetry":
        """Attach to a :class:`~repro.blockchain.sharding.
        ShardedDeployment`: every shard's orderer, peers and clients,
        the shared transport (bound once — the shards share one
        network), plus per-shard progress gauges.

        The witness defaults to shard 0's first peer, so per-tx spans
        describe one shard's pipeline; per-stage histograms and the
        counters aggregate over all shards.
        """
        self._sched = deployment.scheduler
        if self.witness is None:
            self.witness = deployment.shards[0].peers[0].name
        deployment.telemetry = self
        for shard in deployment.shards:
            shard.telemetry = self
            shard.orderer.telemetry = self
            for peer in shard.peers:
                peer.telemetry = self
            for client in getattr(shard, "_clients", {}).values():
                client.telemetry = self
        for index, shard in enumerate(deployment.shards):
            def _height(s=shard) -> float:
                return float(max(p.committed_height for p in s.peers))

            def _throughput(s=shard) -> float:
                now_s = s.net.scheduler.now / 1000.0
                if now_s <= 0:
                    return 0.0
                peer = max(s.peers, key=lambda p: p.committed_height)
                return round(len(peer.ledger.committed_tx_ids()) / now_s, 6)

            self.registry.gauge(
                "shard_committed_height",
                "max committed block height of the shard",
                fn=_height, shard=f"s{index}",
            )
            self.registry.gauge(
                "shard_throughput_txs_per_s",
                "committed transactions per simulated second on the shard",
                fn=_throughput, shard=f"s{index}",
            )
        self.bind_network(deployment.net)
        return self

    def instrument_session(self, session) -> "Telemetry":
        """Attach to a :class:`~repro.core.session.GameSession` (chain plus
        every shim)."""
        self.instrument_chain(session.chain)
        for shim in session.shims:
            shim.telemetry = self
        return self

    def bind_network(self, net) -> None:
        """Absorb the transport's :class:`NetworkStats` into the registry
        (collect-time callback gauges — nothing added to the per-message
        path) and forward fabric events into the trace."""
        stats = net.stats
        for fname in stats.as_dict():
            def _read(s=stats, k=fname) -> float:
                return getattr(s, k)
            self.registry.gauge(f"net_{fname}", f"transport {fname}", fn=_read)
        previous = net.on_stats_event

        def _forward(event: str, detail: Dict[str, Any]) -> None:
            if previous is not None:
                previous(event, detail)
            attrs = {k: v for k, v in detail.items() if k != "t"}
            self.tracer.add_event(f"net.{event}", detail.get("t", self._now()), **attrs)

        net.on_stats_event = _forward

    # ------------------------------------------------------------------
    # internals

    def _now(self) -> float:
        return self._sched._now if self._sched is not None else 0.0

    def _stage_hist(self, stage: str) -> Histogram:
        hist = self._h_stage.get(stage)
        if hist is None:
            hist = self._h_stage[stage] = self.registry.histogram(
                "pipeline_stage_ms", "per-stage pipeline latency",
                boundaries=DEFAULT_LATENCY_BUCKETS_MS, stage=stage,
            )
        return hist

    def _span(self, trace_id, stage, host, t_start, t_end, **attrs) -> None:
        self.tracer.add_span(trace_id, stage, host, t_start, t_end, **attrs)
        self._stage_hist(stage).observe(t_end - t_start)

    # ------------------------------------------------------------------
    # client / shim hooks

    def tx_submitted(self, client_name: str, tx) -> None:
        self._c_submitted.inc()
        self._submitted_at[tx.tx_id] = self._now()

    def shim_ack(
        self, shim_name: str, tx_id: str, accepted: bool,
        code: str, latencies_ms, n_events: int,
    ) -> None:
        now = self._now()
        for latency in latencies_ms:
            self._h_fig2.observe(latency)
        self._c_acks.inc(n_events)
        if not accepted:
            self._c_rejected.inc(n_events)
        start = now - max(latencies_ms) if latencies_ms else now
        self._span(
            tx_id, "e2e", shim_name, start, now,
            accepted=accepted, code=code, events=n_events,
        )

    # ------------------------------------------------------------------
    # ordering hooks

    def tx_enqueued(self, tx) -> None:
        now = self._now()
        self._c_enqueued.inc()
        self._enqueued_at[tx.tx_id] = now
        start = self._submitted_at.pop(tx.tx_id, tx.proposal.timestamp)
        self._span(tx.tx_id, "submit", "orderer", start, now)

    def block_cut(self, block) -> None:
        now = self._now()
        self._c_blocks_cut.inc()
        self._c_txs_ordered.inc(len(block.transactions))
        self._h_block_size.observe(len(block.transactions))
        self._cut_at[block.digest()] = now
        for tx in block.transactions:
            start = self._enqueued_at.pop(tx.tx_id, now)
            self._span(
                tx.tx_id, "ordering", "orderer", start, now, block=block.number
            )

    # ------------------------------------------------------------------
    # peer hooks

    def block_delivered(self, peer_name: str, block) -> None:
        now = self._now()
        self._c_blocks_delivered.inc()
        start = self._cut_at.get(block.digest(), now)
        self._stage_hist("gossip").observe(now - start)
        if peer_name == self.witness:
            for tx in block.transactions:
                self.tracer.add_span(
                    tx.tx_id, "gossip", peer_name, start, now, block=block.number
                )

    def block_executed(self, peer_name: str, block, cost_ms: float) -> None:
        now = self._now()
        self._exec_end[(peer_name, block.number)] = now
        start = now - cost_ms
        self._stage_hist("endorsement").observe(cost_ms)
        if peer_name == self.witness:
            for tx in block.transactions:
                self.tracer.add_span(
                    tx.tx_id, "endorsement", peer_name, start, now,
                    block=block.number,
                )

    def block_decided(self, peer_name: str, block) -> None:
        now = self._now()
        key = (peer_name, block.number)
        self._decided_at[key] = now
        start = self._exec_end.pop(key, now)
        self._stage_hist("validation").observe(now - start)
        if peer_name == self.witness:
            for tx in block.transactions:
                self.tracer.add_span(
                    tx.tx_id, "validation", peer_name, start, now,
                    block=block.number,
                )

    def block_committed(self, peer_name: str, block, codes) -> None:
        now = self._now()
        key = (peer_name, block.number)
        self._committed_at[key] = now
        start = self._decided_at.pop(key, now)
        self._c_blocks_committed.inc()
        valid = sum(1 for code in codes if code == "VALID")
        self._c_txs_committed.inc(valid)
        self._c_txs_aborted.inc(len(codes) - valid)
        self._stage_hist("commit").observe(now - start)
        if peer_name == self.witness:
            for tx, code in zip(block.transactions, codes):
                stage = "commit" if code == "VALID" else "validation-abort"
                self.tracer.add_span(
                    tx.tx_id, stage, peer_name, start, now,
                    block=block.number, code=code,
                )

    def block_synced(self, peer_name: str, block_number: int) -> None:
        now = self._now()
        start = self._committed_at.pop((peer_name, block_number), now)
        self._c_blocks_synced.inc()
        self._stage_hist("sync").observe(now - start)
        if peer_name == self.witness:
            self.tracer.add_span(
                f"block/{block_number}", "sync", peer_name, start, now
            )

    # ------------------------------------------------------------------
    # cross-shard swap hooks

    def swap_stage(
        self, swap_id: str, stage: str, t_start: float, t_end: float
    ) -> None:
        """One finished protocol stage (prepare / commit / abort) of a
        cross-shard swap, recorded as a span on the swap's trace and in
        the per-stage histograms (stages ``swap-prepare`` etc.)."""
        self._span(swap_id, f"swap-{stage}", "swap-coordinator", t_start, t_end)

    def swap_outcome(self, outcome: str) -> None:
        """Terminal outcome of one cross-shard swap
        (``committed`` / ``aborted`` / ``timed_out``)."""
        self.registry.counter(
            "cross_shard_swaps_total",
            "cross-shard swaps by terminal outcome",
            outcome=str(outcome),
        ).inc()

    # ------------------------------------------------------------------
    # chaos hooks

    def fault(self, kind: str, targets) -> None:
        self.registry.counter(
            "chaos_faults_applied", "fault injections by kind", kind=str(kind)
        ).inc()
        self.tracer.add_event(
            f"fault.{kind}", self._now(), targets=list(targets)
        )
