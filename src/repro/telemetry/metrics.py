"""Counters, gauges and fixed-bucket histograms for the pipeline.

The registry is deliberately tiny and dependency-free: a metric is a
named (and optionally labelled) value the exporters can walk.  Two
design rules keep it out of the engine's hot paths:

* **get-or-create is the only lookup** — instrumented components resolve
  their metric objects once at attach time and then call ``inc`` /
  ``observe`` directly, so a recording is an attribute bump, not a
  registry access;
* **callback gauges** read their value lazily at collect time.  The
  transport's :class:`~repro.simnet.transport.NetworkStats` counters are
  absorbed this way: nothing is added to the per-message path, the
  registry simply projects the already-maintained struct when exported.

Histogram buckets are *fixed at construction* (Prometheus ``le``
semantics: a bucket counts observations ``<= upper_bound``, with an
implicit ``+Inf`` overflow bucket), so two runs of the same workload
always bin identically and histogram output is diffable.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "FIG2_BUCKETS_MS",
]

#: General-purpose latency buckets (milliseconds) for pipeline stages.
DEFAULT_LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0,
)

#: The paper's Fig. 2 commit-latency bin edges (§7.1): six bins from
#: 0-50 ms up to 350-600 ms, plus the implicit overflow bucket.
FIG2_BUCKETS_MS: Tuple[float, ...] = (50.0, 100.0, 150.0, 250.0, 350.0, 600.0)

Labels = Tuple[Tuple[str, str], ...]


def _labelkey(labels: Dict[str, str]) -> Labels:
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: Optional[Labels] = None):
        self.name = name
        self.help = help
        self.labels: Labels = labels or ()
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go up and down; optionally a collect-time callback."""

    __slots__ = ("name", "help", "labels", "_value", "_fn")

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Optional[Labels] = None,
        fn: Optional[Callable[[], float]] = None,
    ):
        self.name = name
        self.help = help
        self.labels: Labels = labels or ()
        self._value: float = 0
        self._fn = fn

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise RuntimeError(f"gauge {self.name} is callback-backed")
        self._value = value

    @property
    def value(self) -> float:
        return self._fn() if self._fn is not None else self._value


class Histogram:
    """Fixed-boundary histogram with Prometheus ``le`` semantics.

    ``boundaries`` are the finite upper bounds, strictly increasing; an
    observation lands in the first bucket whose bound is ``>= value``,
    or in the implicit ``+Inf`` bucket past the last bound.
    """

    __slots__ = ("name", "help", "labels", "boundaries", "bucket_counts", "sum", "count")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Optional[Labels] = None,
        boundaries: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
    ):
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise ValueError("histogram needs at least one bucket boundary")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket boundaries must be strictly increasing")
        if any(math.isinf(b) for b in bounds):
            raise ValueError("+Inf bucket is implicit; boundaries must be finite")
        self.name = name
        self.help = help
        self.labels: Labels = labels or ()
        self.boundaries = bounds
        #: per-bucket (non-cumulative) counts; index len(boundaries) = +Inf.
        self.bucket_counts: List[int] = [0] * (len(bounds) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        # Linear scan: bucket lists are short (≤ ~16) and observations in
        # practice land in the low buckets, where the scan exits early.
        for index, bound in enumerate(self.boundaries):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """Prometheus-style cumulative ``(le, count)`` pairs, +Inf last."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.boundaries, self.bucket_counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, running + self.bucket_counts[-1]))
        return out

    def bucket_of(self, value: float) -> int:
        """Index of the bucket ``observe(value)`` would increment."""
        for index, bound in enumerate(self.boundaries):
            if value <= bound:
                return index
        return len(self.boundaries)


class MetricsRegistry:
    """Get-or-create home for every metric of one telemetry session."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, Labels], Any] = {}

    def _get_or_create(self, cls, name: str, help: str, labels: Dict[str, str], **kwargs):
        key = (name, _labelkey(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, help=help, labels=key[1], **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(
        self, name: str, help: str = "",
        fn: Optional[Callable[[], float]] = None, **labels: str,
    ) -> Gauge:
        key = (name, _labelkey(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = Gauge(name, help=help, labels=key[1], fn=fn)
            self._metrics[key] = metric
        return metric

    def histogram(
        self, name: str, help: str = "",
        boundaries: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
        **labels: str,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labels, boundaries=boundaries
        )

    def collect(self) -> List[Any]:
        """Every registered metric, sorted by (name, labels) for diffable
        export output."""
        return [self._metrics[key] for key in sorted(self._metrics)]

    def get(self, name: str, **labels: str) -> Optional[Any]:
        return self._metrics.get((name, _labelkey(labels)))

    def as_dict(self) -> Dict[str, Any]:
        """Plain-data snapshot (JSON-friendly) of every metric."""
        out: Dict[str, Any] = {}
        for metric in self.collect():
            label_suffix = (
                "{" + ",".join(f"{k}={v}" for k, v in metric.labels) + "}"
                if metric.labels else ""
            )
            full = metric.name + label_suffix
            if metric.kind == "histogram":
                out[full] = {
                    "count": metric.count,
                    "sum": round(metric.sum, 6),
                    "buckets": {
                        ("+Inf" if math.isinf(le) else repr(le)): n
                        for le, n in metric.cumulative()
                    },
                }
            else:
                out[full] = metric.value
        return out
