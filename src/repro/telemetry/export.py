"""Exporters: JSONL trace dump, Prometheus text format, stage summaries.

All three are deterministic functions of a :class:`Telemetry` instance:
spans are emitted in recording order (which, on the deterministic sim
clock, is itself deterministic for a pinned seed), metrics sorted by
name and labels.  The stage summary is what reproduces the paper's
evaluation breakdowns from any run:

* **Fig. 2** — :func:`fig2_latency_bins` bins per-event commit latency
  into the paper's six latency buckets;
* **Fig. 3c** — the ``validation`` / ``endorsement`` / ``commit`` rows
  of :func:`stage_summary`, collected across runs at different peer
  counts, are the validation-latency decomposition.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Union

from .core import Telemetry
from .metrics import FIG2_BUCKETS_MS, MetricsRegistry

__all__ = [
    "trace_records",
    "write_trace_jsonl",
    "prometheus_text",
    "stage_summary",
    "format_stage_summary",
    "fig2_latency_bins",
]


# ----------------------------------------------------------------------
# JSONL trace dump


def trace_records(telemetry: Telemetry) -> List[Dict[str, Any]]:
    """Every span and point event as plain dicts, in recording order."""
    records: List[Dict[str, Any]] = [
        span.as_record() for span in telemetry.tracer.spans
    ]
    records.extend(dict(event) for event in telemetry.tracer.events)
    return records


def write_trace_jsonl(telemetry: Telemetry, path: str) -> int:
    """Dump the trace to ``path`` as JSON Lines; returns the line count."""
    records = trace_records(telemetry)
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True))
            fh.write("\n")
    return len(records)


# ----------------------------------------------------------------------
# Prometheus text format


def _fmt_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _fmt_labels(labels, extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def prometheus_text(source: Union[Telemetry, MetricsRegistry]) -> str:
    """The registry in Prometheus text exposition format (0.0.4)."""
    registry = source.registry if isinstance(source, Telemetry) else source
    lines: List[str] = []
    seen_header = set()
    for metric in registry.collect():
        if metric.name not in seen_header:
            seen_header.add(metric.name)
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
        if metric.kind == "histogram":
            for le, count in metric.cumulative():
                le_text = "+Inf" if math.isinf(le) else _fmt_value(le)
                labels = _fmt_labels(metric.labels, 'le="%s"' % le_text)
                lines.append(f"{metric.name}_bucket{labels} {count}")
            lines.append(
                f"{metric.name}_sum{_fmt_labels(metric.labels)} "
                f"{_fmt_value(round(metric.sum, 6))}"
            )
            lines.append(
                f"{metric.name}_count{_fmt_labels(metric.labels)} {metric.count}"
            )
        else:
            lines.append(
                f"{metric.name}{_fmt_labels(metric.labels)} {_fmt_value(metric.value)}"
            )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# per-stage latency summary


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile on an already-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


def stage_summary(telemetry: Telemetry) -> Dict[str, Dict[str, Any]]:
    """Per-stage latency statistics from the recorded spans.

    Keys are stage names (``submit``, ``ordering``, ``gossip``,
    ``endorsement``, ``validation``, ``commit``, ``validation-abort``,
    ``sync``, ``e2e``); values carry count / mean / p50 / p95 / max in
    simulated milliseconds.
    """
    out: Dict[str, Dict[str, Any]] = {}
    for stage, spans in sorted(telemetry.tracer.by_stage().items()):
        durations = sorted(span.duration_ms for span in spans)
        total = sum(durations)
        out[stage] = {
            "count": len(durations),
            "mean_ms": round(total / len(durations), 3),
            "p50_ms": round(_percentile(durations, 0.50), 3),
            "p95_ms": round(_percentile(durations, 0.95), 3),
            "max_ms": round(durations[-1], 3),
        }
    return out


def format_stage_summary(summary: Dict[str, Dict[str, Any]]) -> List[str]:
    """Human-readable table lines for a :func:`stage_summary` result."""
    lines = [
        f"{'stage':<17s} {'count':>7s} {'mean':>9s} {'p50':>9s} "
        f"{'p95':>9s} {'max':>9s}  (simulated ms)"
    ]
    for stage, row in summary.items():
        lines.append(
            f"{stage:<17s} {row['count']:>7d} {row['mean_ms']:>9.2f} "
            f"{row['p50_ms']:>9.2f} {row['p95_ms']:>9.2f} {row['max_ms']:>9.2f}"
        )
    return lines


def fig2_latency_bins(telemetry: Telemetry) -> Dict[str, Any]:
    """Commit-latency distribution in the paper's Fig. 2 bins.

    Reads the ``shim_commit_latency_ms`` histogram (per *event*, the
    figure's unit); returns bin edges, per-bin counts and fractions.
    """
    hist = telemetry.registry.get("shim_commit_latency_ms")
    if hist is None or hist.count == 0:
        return {"bins": list(FIG2_BUCKETS_MS), "counts": [], "fractions": []}
    counts = list(hist.bucket_counts)
    total = hist.count
    return {
        "bins": list(hist.boundaries) + ["+Inf"],
        "counts": counts,
        "fractions": [round(n / total, 4) for n in counts],
        "count": total,
        "mean_ms": round(hist.sum / total, 3),
    }
