"""Per-transaction lifecycle tracing over the deterministic sim clock.

A *span* is one stage of one transaction's (or block's) life, with start
and end in **simulated milliseconds**: because the sim clock is
deterministic, the trace of a pinned-seed run is itself deterministic —
two runs of the same seed produce byte-identical trace dumps, so traces
can be diffed the same way timeline digests are.

Stage names are fixed vocabulary (:data:`STAGES`), mirroring the paper's
execute-order-validate decomposition (§4, §6):

========== =====================================================
``submit``      shim/client submission → arrival at the orderer
``ordering``    orderer enqueue → block cut
``gossip``      block cut → block delivery at a peer
``endorsement`` contract execution (+ signature checks) at a peer
``validation``  execution done → per-tx consensus decided
``commit``      commit CPU work for a tx that ended VALID
``validation-abort`` commit CPU work for a tx consensus rejected
``sync``        ledger commit → state-hash sync quorum (block level)
``e2e``         game-event arrival at the shim → acknowledgement
========== =====================================================

A committed transaction therefore carries the chain
``submit → ordering → gossip → endorsement → validation → commit`` and
an aborted one the same chain ending in ``validation-abort``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["Span", "Tracer", "STAGES", "TX_CHAIN_STAGES"]

#: Canonical stage order within one transaction's lifecycle.
STAGES = (
    "submit", "ordering", "gossip", "endorsement",
    "validation", "commit", "validation-abort", "sync", "e2e",
)

#: The span chain every *committed* transaction must carry (the
#: span-completeness property the telemetry tests assert).
TX_CHAIN_STAGES = ("submit", "ordering", "gossip", "endorsement", "validation")

_STAGE_ORDER = {stage: index for index, stage in enumerate(STAGES)}


@dataclass
class Span:
    """One completed lifecycle stage."""

    trace_id: str
    stage: str
    host: str
    t_start: float
    t_end: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ms(self) -> float:
        return self.t_end - self.t_start

    def as_record(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "stage": self.stage,
            "host": self.host,
            "t_start": round(self.t_start, 6),
            "t_end": round(self.t_end, 6),
            "duration_ms": round(self.duration_ms, 6),
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record


class Tracer:
    """Append-only store of completed spans and point events."""

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self.events: List[Dict[str, Any]] = []
        self._by_trace: Dict[str, List[Span]] = {}

    # ------------------------------------------------------------------
    # recording

    def add_span(
        self,
        trace_id: str,
        stage: str,
        host: str,
        t_start: float,
        t_end: float,
        **attrs: Any,
    ) -> Span:
        span = Span(trace_id, stage, host, t_start, t_end, attrs)
        self.spans.append(span)
        self._by_trace.setdefault(trace_id, []).append(span)
        return span

    def add_event(self, name: str, t: float, **attrs: Any) -> None:
        """A point event (fault injection, partition, heal, ...)."""
        event: Dict[str, Any] = {"event": name, "t": round(t, 6)}
        if attrs:
            event.update(attrs)
        self.events.append(event)

    # ------------------------------------------------------------------
    # queries

    def trace_ids(self) -> List[str]:
        return list(self._by_trace)

    def spans_for(self, trace_id: str) -> List[Span]:
        """Spans of one trace, ordered by (start time, stage order)."""
        spans = self._by_trace.get(trace_id, [])
        return sorted(
            spans,
            key=lambda s: (s.t_start, _STAGE_ORDER.get(s.stage, len(STAGES))),
        )

    def stage_chain(self, trace_id: str, host: Optional[str] = None) -> List[str]:
        """The ordered stage names of one trace (optionally one host's view).

        Stages recorded at peers (gossip onwards) are filtered to ``host``
        when given, so an N-peer deployment still yields one linear chain.
        """
        chain: List[str] = []
        for span in self.spans_for(trace_id):
            if host is not None and span.host != host and span.stage not in (
                "submit", "ordering", "e2e",
            ):
                continue
            chain.append(span.stage)
        return chain

    def by_stage(self) -> Dict[str, List[Span]]:
        out: Dict[str, List[Span]] = {}
        for span in self.spans:
            out.setdefault(span.stage, []).append(span)
        return out

    def __len__(self) -> int:
        return len(self.spans)
