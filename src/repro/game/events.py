"""The eleven tracked Doom game events and their five analysis categories.

"Our Doom specification includes 9 assets and 11 events corresponding to
shoot, weapon change, damage to sprites, gaining power ups (weapons,
clips, medical kits, radiation suit, invulnerability, invisibility and
berserk) and location updates." (§6 ii)

The paper's evaluation (Fig. 3a/3b) groups logged events into five
categories: armor, health, location, shoot and weapon.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

from .assets import AssetId

__all__ = ["EventType", "Category", "GameEvent", "event_category", "affected_assets"]


class EventType:
    """The 11 event identifiers registered with the shim."""

    SHOOT = "shoot"
    WEAPON_CHANGE = "weapon_change"
    DAMAGE = "damage"
    PICKUP_WEAPON = "pickup_weapon"
    PICKUP_CLIP = "pickup_clip"
    PICKUP_MEDKIT = "pickup_medkit"
    PICKUP_RADSUIT = "pickup_radsuit"
    PICKUP_INVULN = "pickup_invuln"
    PICKUP_INVIS = "pickup_invis"
    PICKUP_BERSERK = "pickup_berserk"
    LOCATION = "location"

    ALL = (
        SHOOT,
        WEAPON_CHANGE,
        DAMAGE,
        PICKUP_WEAPON,
        PICKUP_CLIP,
        PICKUP_MEDKIT,
        PICKUP_RADSUIT,
        PICKUP_INVULN,
        PICKUP_INVIS,
        PICKUP_BERSERK,
        LOCATION,
    )


class Category:
    """Analysis categories used in the paper's event-frequency figures."""

    ARMOR = "armor"
    HEALTH = "health"
    LOCATION = "location"
    SHOOT = "shoot"
    WEAPON = "weapon"
    OTHER = "other"

    FREQUENT = (ARMOR, HEALTH, LOCATION, SHOOT, WEAPON)


@dataclass(frozen=True)
class GameEvent:
    """One client event as received by the shim.

    Attributes:
        t_ms: session-relative timestamp in milliseconds.
        player: player identity string.
        etype: one of :class:`EventType`.
        payload: event arguments — e.g. ``{"x":..,"y":..}`` for location,
            ``{"count": n}`` for shoot bursts, ``{"target":.., "amount":..,
            "to_armor":..}`` for damage.
        seq: per-player sequence (acknowledgement) number; consecutive
            numbers are what makes events batchable (§4.2.5).
    """

    t_ms: float
    player: str
    etype: str
    payload: Dict[str, Any] = field(default_factory=dict)
    seq: int = 0

    def category(self) -> str:
        return event_category(self)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "t_ms": self.t_ms,
            "player": self.player,
            "etype": self.etype,
            "payload": self.payload,
            "seq": self.seq,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "GameEvent":
        return cls(
            t_ms=float(d["t_ms"]),
            player=str(d["player"]),
            etype=str(d["etype"]),
            payload=dict(d.get("payload", {})),
            seq=int(d.get("seq", 0)),
        )


_CATEGORY_BY_TYPE = {
    EventType.LOCATION: Category.LOCATION,
    EventType.SHOOT: Category.SHOOT,
    EventType.WEAPON_CHANGE: Category.WEAPON,
    EventType.PICKUP_WEAPON: Category.WEAPON,
    EventType.PICKUP_CLIP: Category.WEAPON,
    EventType.PICKUP_MEDKIT: Category.HEALTH,
    EventType.PICKUP_RADSUIT: Category.OTHER,
    EventType.PICKUP_INVULN: Category.OTHER,
    EventType.PICKUP_INVIS: Category.OTHER,
    EventType.PICKUP_BERSERK: Category.OTHER,
}


def event_category(event: GameEvent) -> str:
    """Map an event to its analysis category.

    Damage events are health events unless the armour absorbed the hit,
    matching how the paper's logs attribute armour updates.
    """
    if event.etype == EventType.DAMAGE:
        if event.payload.get("to_armor"):
            return Category.ARMOR
        return Category.HEALTH
    return _CATEGORY_BY_TYPE.get(event.etype, Category.OTHER)


_AFFECTED = {
    EventType.SHOOT: (AssetId.AMMUNITION,),
    EventType.WEAPON_CHANGE: (AssetId.WEAPON,),
    EventType.DAMAGE: (AssetId.HEALTH, AssetId.ARMOR),
    EventType.PICKUP_WEAPON: (AssetId.WEAPON, AssetId.AMMUNITION),
    EventType.PICKUP_CLIP: (AssetId.AMMUNITION,),
    EventType.PICKUP_MEDKIT: (AssetId.HEALTH,),
    EventType.PICKUP_RADSUIT: (AssetId.RADIATION_SUIT,),
    # Invulnerability gates damage, i.e. it is a power mode of Health
    # (cf. Fig. 1's power pwId=2 on the Health asset).
    EventType.PICKUP_INVULN: (AssetId.HEALTH,),
    EventType.PICKUP_INVIS: (AssetId.INVISIBILITY,),
    EventType.PICKUP_BERSERK: (AssetId.BERSERK, AssetId.HEALTH),
    EventType.LOCATION: (AssetId.POSITION,),
}


def affected_assets(etype: str) -> Tuple[int, ...]:
    """Asset ids an event type updates (drives the shim's touched-keys
    declaration and per-asset dispatch threads)."""
    return _AFFECTED.get(etype, ())
