"""The game-client model: local state, prediction and reconciliation.

"Clients perform prediction along with entity interpolation to keep the
game responsive.  However, they must reconcile with the global game
state when the server pushes the updates back to the clients." (§4.2.5)

:class:`DoomClient` applies events optimistically the moment the player
produces them and reconciles when the acknowledgement (consensus
verdict) comes back: a rejected event rolls local state back to the
authoritative value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .assets import AssetId
from .doom import DoomMap, DoomRules, RuleViolation, initial_assets
from .events import EventType, GameEvent

__all__ = ["PredictionStats", "DoomClient"]


@dataclass
class PredictionStats:
    """How often optimistic prediction had to be rolled back."""

    predicted: int = 0
    confirmed: int = 0
    rolled_back: int = 0

    @property
    def misprediction_rate(self) -> float:
        done = self.confirmed + self.rolled_back
        return self.rolled_back / done if done else 0.0


class DoomClient:
    """One player's client-side state machine.

    The client keeps two copies of its assets: ``predicted`` (rendered to
    the player immediately) and ``confirmed`` (the last state every ack
    agreed on).  ``apply_event`` advances the prediction; ``acknowledge``
    either confirms or rolls back.
    """

    def __init__(
        self,
        player: str,
        game_map: Optional[DoomMap] = None,
        tickrate: int = DoomRules.TICRATE,
    ):
        self.player = player
        self.map = game_map if game_map is not None else DoomMap.default_map()
        self.tickrate = tickrate
        spawn = self.map.spawn_points[0]
        self.confirmed: Dict[int, object] = initial_assets(spawn)
        self.predicted: Dict[int, object] = initial_assets(spawn)
        self._inflight: Dict[int, GameEvent] = {}  # seq -> event
        self.stats = PredictionStats()

    @property
    def tick_ms(self) -> float:
        return 1000.0 / self.tickrate

    # ------------------------------------------------------------------
    # outbound events

    def apply_event(self, event: GameEvent) -> None:
        """Optimistically apply the player's own event to predicted state."""
        if event.player != self.player:
            raise ValueError(f"event belongs to {event.player}, not {self.player}")
        self._apply(self.predicted, event)
        self._inflight[event.seq] = event
        self.stats.predicted += 1

    # ------------------------------------------------------------------
    # feedback loop

    def acknowledge(self, seq: int, accepted: bool) -> None:
        """Process the shim's per-event acknowledgement (§4.2.5(1))."""
        event = self._inflight.pop(seq, None)
        if event is None:
            return
        if accepted:
            self._apply(self.confirmed, event)
            self.stats.confirmed += 1
        else:
            self.stats.rolled_back += 1
            self._rollback()

    def _rollback(self) -> None:
        """Server reconciliation: reset prediction to confirmed state and
        re-apply surviving in-flight events in order."""
        self.predicted = {k: _copy_value(v) for k, v in self.confirmed.items()}
        for seq in sorted(self._inflight):
            self._apply(self.predicted, self._inflight[seq])

    # ------------------------------------------------------------------
    # state transition (mirrors the smart contract's update logic)

    def _apply(self, state: Dict[int, object], event: GameEvent) -> None:
        etype, payload, t = event.etype, event.payload, event.t_ms
        try:
            if etype == EventType.LOCATION:
                state[AssetId.POSITION] = DoomRules.validate_move(
                    state[AssetId.POSITION], payload["x"], payload["y"], t, self.map
                )
            elif etype == EventType.SHOOT:
                state[AssetId.AMMUNITION] = DoomRules.validate_shoot(
                    state[AssetId.WEAPON],
                    state[AssetId.AMMUNITION],
                    payload.get("count", 1),
                )
            elif etype == EventType.WEAPON_CHANGE:
                state[AssetId.WEAPON] = DoomRules.validate_weapon_change(
                    state[AssetId.WEAPON], payload["wid"]
                )
            elif etype == EventType.DAMAGE:
                health, armor, _ = DoomRules.apply_damage(
                    state[AssetId.HEALTH],
                    state[AssetId.ARMOR],
                    payload["amount"],
                    t,
                )
                state[AssetId.HEALTH] = health
                state[AssetId.ARMOR] = armor
            elif etype == EventType.PICKUP_MEDKIT:
                state[AssetId.HEALTH] = DoomRules.heal(
                    state[AssetId.HEALTH], DoomRules.MEDKIT_HEAL
                )
            elif etype == EventType.PICKUP_CLIP:
                state[AssetId.AMMUNITION] = DoomRules.add_ammo(
                    state[AssetId.AMMUNITION], DoomRules.CLIP_AMMO
                )
            elif etype == EventType.PICKUP_WEAPON:
                weapon = dict(state[AssetId.WEAPON])
                owned = list(weapon.get("owned", []))
                if payload["wid"] not in owned:
                    owned.append(payload["wid"])
                weapon["owned"] = owned
                weapon["current"] = payload["wid"]
                state[AssetId.WEAPON] = weapon
                state[AssetId.AMMUNITION] = DoomRules.add_ammo(
                    state[AssetId.AMMUNITION], DoomRules.WEAPON_PICKUP_AMMO
                )
            elif etype == EventType.PICKUP_RADSUIT:
                state[AssetId.RADIATION_SUIT] = t + DoomRules.POWERUP_DURATION_MS
            elif etype == EventType.PICKUP_INVIS:
                state[AssetId.INVISIBILITY] = t + DoomRules.POWERUP_DURATION_MS
            elif etype == EventType.PICKUP_INVULN:
                health = dict(state[AssetId.HEALTH])
                health["invuln_until"] = t + DoomRules.POWERUP_DURATION_MS
                state[AssetId.HEALTH] = health
            elif etype == EventType.PICKUP_BERSERK:
                state[AssetId.BERSERK] = t + DoomRules.POWERUP_DURATION_MS
                state[AssetId.HEALTH] = DoomRules.heal(state[AssetId.HEALTH], 100)
        except RuleViolation:
            # A locally-invalid prediction is simply not applied; the
            # authoritative verdict arrives via acknowledge().
            pass


def _copy_value(value):
    if isinstance(value, dict):
        return dict(value)
    if isinstance(value, list):
        return list(value)
    return value
