"""Demo (recorded session) format, loading/saving and trace statistics.

The paper analyses "25 real-world Doom game sessions provided by the
community … Overall, the 25 Doom sessions clocked over 6 hours of
gameplay and logged ∼350K events" (§7.2.1).  A :class:`Demo` is the
event stream one shim observes during one session, with the statistics
the evaluation plots: per-category counts, per-second frequency series
(Fig. 3a) and per-category maximum frequency (Fig. 3b).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, TextIO

from .doom import DoomMap, MapItem
from .events import Category, GameEvent, event_category

__all__ = ["Demo", "load_demo", "save_demo"]


@dataclass
class Demo:
    """One recorded game session (a Doom demo's shim-visible events).

    ``game_map`` carries the item placement the session was recorded
    against, so pickups in the trace validate against real map items.
    """

    session_id: str
    events: List[GameEvent]
    tickrate: int = 35
    player: str = "p1"
    game_map: Optional[DoomMap] = None

    def __post_init__(self) -> None:
        if any(
            self.events[i].t_ms > self.events[i + 1].t_ms
            for i in range(len(self.events) - 1)
        ):
            self.events = sorted(self.events, key=lambda e: e.t_ms)

    # ------------------------------------------------------------------
    # basic properties

    @property
    def duration_ms(self) -> float:
        return self.events[-1].t_ms if self.events else 0.0

    @property
    def duration_minutes(self) -> float:
        return self.duration_ms / 60_000.0

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # ------------------------------------------------------------------
    # statistics (Figs. 3a/3b)

    def category_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            cat = event_category(event)
            counts[cat] = counts.get(cat, 0) + 1
        return counts

    def category_share(self, category: str) -> float:
        """Fraction of all events in ``category`` (location ≈ 99.3% in
        the paper's longest session)."""
        if not self.events:
            return 0.0
        return self.category_counts().get(category, 0) / len(self.events)

    def frequency_series(
        self, category: Optional[str] = None, bin_ms: float = 1000.0
    ) -> List[int]:
        """Events per ``bin_ms`` over the session (Fig. 3a's time series)."""
        n_bins = int(self.duration_ms // bin_ms) + 1
        series = [0] * n_bins
        for event in self.events:
            if category is not None and event_category(event) != category:
                continue
            series[int(event.t_ms // bin_ms)] += 1
        return series

    def max_frequency(self, category: str, bin_ms: float = 1000.0) -> int:
        """Maximum events/second for a category (Fig. 3b's bars)."""
        series = self.frequency_series(category, bin_ms)
        return max(series) if series else 0

    def max_frequencies(self) -> Dict[str, int]:
        return {cat: self.max_frequency(cat) for cat in Category.FREQUENT}

    def events_between(self, start_ms: float, end_ms: float) -> List[GameEvent]:
        return [e for e in self.events if start_ms <= e.t_ms < end_ms]

    def slice(self, duration_ms: float) -> "Demo":
        """A prefix of the session (used to keep long benches tractable)."""
        return Demo(
            session_id=f"{self.session_id}[:{duration_ms:.0f}ms]",
            events=[e for e in self.events if e.t_ms <= duration_ms],
            tickrate=self.tickrate,
            player=self.player,
            game_map=self.game_map,
        )


def save_demo(demo: Demo, fp: TextIO) -> None:
    """Write a demo as JSON lines: one header line, then one per event."""
    header = {
        "session_id": demo.session_id,
        "tickrate": demo.tickrate,
        "player": demo.player,
        "n_events": len(demo.events),
    }
    if demo.game_map is not None:
        header["map"] = {
            "name": demo.game_map.name,
            "width": demo.game_map.width,
            "height": demo.game_map.height,
            "spawn_points": [list(p) for p in demo.game_map.spawn_points],
            "items": [
                {"item_id": i.item_id, "kind": i.kind, "x": i.x, "y": i.y,
                 "respawn_ms": i.respawn_ms}
                for i in demo.game_map.items
            ],
        }
    fp.write(json.dumps(header) + "\n")
    for event in demo.events:
        fp.write(json.dumps(event.to_dict(), separators=(",", ":")) + "\n")


def load_demo(fp: TextIO) -> Demo:
    """Read a demo written by :func:`save_demo`."""
    header_line = fp.readline()
    if not header_line.strip():
        raise ValueError("empty demo file")
    header = json.loads(header_line)
    events = [GameEvent.from_dict(json.loads(line)) for line in fp if line.strip()]
    if len(events) != header.get("n_events", len(events)):
        raise ValueError(
            f"demo truncated: header says {header['n_events']} events, "
            f"found {len(events)}"
        )
    game_map = None
    if "map" in header:
        m = header["map"]
        game_map = DoomMap(
            name=m["name"],
            width=float(m["width"]),
            height=float(m["height"]),
            items=[
                MapItem(item_id=i["item_id"], kind=i["kind"], x=float(i["x"]),
                        y=float(i["y"]), respawn_ms=float(i["respawn_ms"]))
                for i in m["items"]
            ],
            spawn_points=[tuple(p) for p in m["spawn_points"]],
        )
    return Demo(
        session_id=header["session_id"],
        events=events,
        tickrate=int(header.get("tickrate", 35)),
        player=str(header.get("player", "p1")),
        game_map=game_map,
    )
