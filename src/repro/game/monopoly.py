"""Monopoly: the paper's non-repudiation case study (§7.3 ii).

"We apply our approach to C/S-based Monopoly, a full information
multi-player game where all claims can be verified through the
blockchain's event log. … Property is defined on color basis, and has
an owner and price attribute.  Each player has 3 attributes: location,
currency and assets[]."

This module holds the board and the pure game rules; the smart contract
wrapping them lives in ``repro.core.monopoly_contract``, and the dice
come from the distributed random-number generator in ``repro.rng``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = [
    "MonopolyError",
    "Property",
    "BOARD_SIZE",
    "STANDARD_PROPERTIES",
    "MonopolyRules",
    "initial_player",
]


class MonopolyError(Exception):
    """An illegal Monopoly move (the Monopoly analogue of a cheat)."""


BOARD_SIZE = 40
STARTING_CURRENCY = 1500
GO_SALARY = 200


@dataclass(frozen=True)
class Property:
    """A purchasable square: color group, price and base rent."""

    square: int
    name: str
    color: str
    price: int
    rent: int


#: A compact standard board: the 22 colour-group streets (positions per
#: the classic layout); railroads/utilities are omitted for parity with
#: the paper's minimal asset model (currency + colour properties).
STANDARD_PROPERTIES: Dict[int, Property] = {
    p.square: p
    for p in (
        Property(1, "Mediterranean Avenue", "brown", 60, 2),
        Property(3, "Baltic Avenue", "brown", 60, 4),
        Property(6, "Oriental Avenue", "lightblue", 100, 6),
        Property(8, "Vermont Avenue", "lightblue", 100, 6),
        Property(9, "Connecticut Avenue", "lightblue", 120, 8),
        Property(11, "St. Charles Place", "pink", 140, 10),
        Property(13, "States Avenue", "pink", 140, 10),
        Property(14, "Virginia Avenue", "pink", 160, 12),
        Property(16, "St. James Place", "orange", 180, 14),
        Property(18, "Tennessee Avenue", "orange", 180, 14),
        Property(19, "New York Avenue", "orange", 200, 16),
        Property(21, "Kentucky Avenue", "red", 220, 18),
        Property(23, "Indiana Avenue", "red", 220, 18),
        Property(24, "Illinois Avenue", "red", 240, 20),
        Property(26, "Atlantic Avenue", "yellow", 260, 22),
        Property(27, "Ventnor Avenue", "yellow", 260, 22),
        Property(29, "Marvin Gardens", "yellow", 280, 24),
        Property(31, "Pacific Avenue", "green", 300, 26),
        Property(32, "North Carolina Avenue", "green", 300, 26),
        Property(34, "Pennsylvania Avenue", "green", 320, 28),
        Property(37, "Park Place", "blue", 350, 35),
        Property(39, "Boardwalk", "blue", 400, 50),
    )
}


def initial_player() -> Dict:
    """A player's starting attributes: location, currency, assets[]."""
    return {"location": 0, "currency": STARTING_CURRENCY, "assets": []}


class MonopolyRules:
    """Pure validation/transition functions over player/property state."""

    @staticmethod
    def validate_roll(dice: Tuple[int, int]) -> int:
        d1, d2 = dice
        if not (1 <= d1 <= 6 and 1 <= d2 <= 6):
            raise MonopolyError(f"impossible dice roll {dice}")
        return d1 + d2

    @staticmethod
    def move(player: Dict, steps: int) -> Dict:
        """Advance a player; passing GO pays the salary."""
        if not 2 <= steps <= 12:
            raise MonopolyError(f"cannot move {steps} squares with two dice")
        new_loc = (player["location"] + steps) % BOARD_SIZE
        passed_go = new_loc < player["location"]
        out = dict(player)
        out["location"] = new_loc
        if passed_go:
            out["currency"] = out["currency"] + GO_SALARY
        return out

    @staticmethod
    def validate_purchase(
        player: Dict, prop: Optional[Property], owner: Optional[str]
    ) -> Dict:
        """A purchase is legal iff the player stands on an unowned
        property it can afford."""
        if prop is None:
            raise MonopolyError("square is not purchasable")
        if owner is not None:
            raise MonopolyError(f"{prop.name} is already owned")
        if player["location"] != prop.square:
            raise MonopolyError(
                f"player is on square {player['location']}, not {prop.square}"
            )
        if player["currency"] < prop.price:
            raise MonopolyError(
                f"{prop.name} costs {prop.price}, player has {player['currency']}"
            )
        out = dict(player)
        out["currency"] -= prop.price
        out["assets"] = list(player["assets"]) + [prop.square]
        return out

    @staticmethod
    def rent_due(prop: Property, owner: str, visitor: Dict) -> int:
        if visitor["location"] != prop.square:
            raise MonopolyError("rent is only due on the visited square")
        return min(prop.rent, visitor["currency"])

    @staticmethod
    def transfer(payer: Dict, payee: Dict, amount: int) -> Tuple[Dict, Dict]:
        if amount < 0:
            raise MonopolyError("cannot transfer a negative amount")
        if payer["currency"] < amount:
            raise MonopolyError("insufficient funds")
        new_payer, new_payee = dict(payer), dict(payee)
        new_payer["currency"] -= amount
        new_payee["currency"] += amount
        return new_payer, new_payee
