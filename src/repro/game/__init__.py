"""Game substrate: Doom-like rules, clients, demo traces and Monopoly."""

from .assets import ASSETS, FREQUENT_ASSETS, AssetDef, AssetId, asset_key
from .client import DoomClient, PredictionStats
from .demo import Demo, load_demo, save_demo
from .doom import (
    WEAPONS,
    DoomMap,
    DoomRules,
    MapItem,
    RuleViolation,
    WeaponDef,
    WeaponId,
    initial_assets,
)
from .events import Category, EventType, GameEvent, affected_assets, event_category
from .monopoly import (
    BOARD_SIZE,
    STANDARD_PROPERTIES,
    MonopolyError,
    MonopolyRules,
    Property,
    initial_player,
)
from .traces import (
    TraceProfile,
    generate_session,
    paper_dataset,
    scale_tickrate,
    ten_longest,
)

__all__ = [
    "ASSETS",
    "FREQUENT_ASSETS",
    "AssetDef",
    "AssetId",
    "asset_key",
    "DoomClient",
    "PredictionStats",
    "Demo",
    "load_demo",
    "save_demo",
    "WEAPONS",
    "DoomMap",
    "DoomRules",
    "MapItem",
    "RuleViolation",
    "WeaponDef",
    "WeaponId",
    "initial_assets",
    "Category",
    "EventType",
    "GameEvent",
    "affected_assets",
    "event_category",
    "BOARD_SIZE",
    "STANDARD_PROPERTIES",
    "MonopolyError",
    "MonopolyRules",
    "Property",
    "initial_player",
    "TraceProfile",
    "generate_session",
    "paper_dataset",
    "scale_tickrate",
    "ten_longest",
]
