"""The nine tracked Doom assets.

"We integrated the shim with the client and registered packet formats
for 9 assets, i.e., ammunition, weapon, health, armor, keys, player
position, invisibility pack, radiation suit and berserk pack." (§6 i)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = ["AssetId", "AssetDef", "ASSETS", "asset_key", "FREQUENT_ASSETS"]


class AssetId:
    """Stable numeric identifiers for the nine tracked assets."""

    HEALTH = 1
    AMMUNITION = 2
    WEAPON = 3
    ARMOR = 4
    KEYS = 5
    POSITION = 6
    INVISIBILITY = 7
    RADIATION_SUIT = 8
    BERSERK = 9

    ALL = (
        HEALTH,
        AMMUNITION,
        WEAPON,
        ARMOR,
        KEYS,
        POSITION,
        INVISIBILITY,
        RADIATION_SUIT,
        BERSERK,
    )


@dataclass(frozen=True)
class AssetDef:
    """Static description of a tracked asset.

    ``default`` is the value a player starts a session with; ``minimum``
    and ``maximum`` bound legal values (the contract rejects transitions
    outside them).  Position and keys/weapon assets carry structured
    values, for which the bounds are None.
    """

    aid: int
    name: str
    default: object
    minimum: Optional[float] = None
    maximum: Optional[float] = None

    def in_bounds(self, value) -> bool:
        if self.minimum is not None and value < self.minimum:
            return False
        if self.maximum is not None and value > self.maximum:
            return False
        return True


#: Doom 1993 constants: start with 100% health, a pistol with 50 bullets,
#: no armor, no keys, at the level start position.  Health caps at 200
#:  (soulsphere), armor at 200 (megaarmor), ammo at 400 (backpack doubles
#: the 200 bullet limit).
ASSETS: Dict[int, AssetDef] = {
    AssetId.HEALTH: AssetDef(AssetId.HEALTH, "Health", 100, 0, 200),
    AssetId.AMMUNITION: AssetDef(AssetId.AMMUNITION, "Ammunition", 50, 0, 400),
    AssetId.WEAPON: AssetDef(AssetId.WEAPON, "Weapon", None),
    AssetId.ARMOR: AssetDef(AssetId.ARMOR, "Armor", 0, 0, 200),
    AssetId.KEYS: AssetDef(AssetId.KEYS, "Keys", None),
    AssetId.POSITION: AssetDef(AssetId.POSITION, "Position", None),
    AssetId.INVISIBILITY: AssetDef(AssetId.INVISIBILITY, "Invisibility", 0, 0, None),
    AssetId.RADIATION_SUIT: AssetDef(AssetId.RADIATION_SUIT, "RadiationSuit", 0, 0, None),
    AssetId.BERSERK: AssetDef(AssetId.BERSERK, "Berserk", 0, 0, None),
}

#: The five most frequently updated assets (§6: block size is tuned to
#: "the number of most frequently updated events operating on mutually
#: exclusive KVS", which is five — matching the five event categories of
#: Fig. 3a: armor, health, location, shoot, weapon).
FREQUENT_ASSETS: Tuple[int, ...] = (
    AssetId.POSITION,
    AssetId.AMMUNITION,
    AssetId.HEALTH,
    AssetId.ARMOR,
    AssetId.WEAPON,
)


def asset_key(player: str, aid: int) -> str:
    """World-state key for one player's asset.

    This is the per-player per-asset KVS split of §6 optimisation (i):
    one key per (player, asset) pair minimises read/write conflicts
    within a block.
    """
    return f"asset/{player}/{aid}"
