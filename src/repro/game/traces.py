"""Synthetic Doom session generator calibrated to the paper's dataset.

Substitution (DESIGN.md §2): the paper replays 25 community demo files
(~6 hours, ~350 K events).  We generate statistically matched synthetic
sessions instead:

* location updates at the client tickrate (35/s) while the player is
  active, idle gaps in between — yielding the paper's ≈99 % location
  share and the stable 35 events/s plateaus of Fig. 3a;
* bursty shoot activity during firefights (the second-most frequent
  event, Fig. 3b), sparse weapon/health/armor events;
* 25 sessions, the longest 24 minutes with ≈25 K events (the paper's
  session #9).

Everything is deterministic from a seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .demo import Demo
from .doom import DoomMap, DoomRules, MapItem, WeaponId
from .events import EventType, GameEvent

__all__ = ["TraceProfile", "generate_session", "paper_dataset", "ten_longest", "scale_tickrate"]


@dataclass(frozen=True)
class TraceProfile:
    """Knobs of the player-behaviour model.

    The defaults reproduce the paper's aggregate statistics; tests and
    ablations override individual fields.
    """

    tickrate: int = 35
    active_duty: float = 0.49  # fraction of time moving (location stream on)
    mean_active_s: float = 9.0
    mean_idle_s: float = 9.0
    fight_probability: float = 0.22  # an active period that includes a firefight
    mean_fight_s: float = 2.2
    shoot_rate_hz: float = 11.0  # trigger rate during a firefight
    max_speed_fraction: float = 0.8  # of the engine speed limit
    pickups_per_minute: float = 0.9
    weapon_changes_per_minute: float = 0.5


def _exp(rng: random.Random, mean: float) -> float:
    return rng.expovariate(1.0 / mean) if mean > 0 else 0.0


class _PlayerSimulator:
    """Generates one player's event stream by simulating behaviour."""

    def __init__(
        self,
        player: str,
        duration_ms: float,
        profile: TraceProfile,
        game_map: DoomMap,
        rng: random.Random,
        spawn_index: int = 0,
    ):
        self.player = player
        self.duration_ms = duration_ms
        self.profile = profile
        self.map = game_map
        self.rng = rng
        self.events: List[GameEvent] = []
        self.seq = 0
        # The spawn must match the roster position the player will get
        # from the contract's addPlayer at replay time.
        spawn = game_map.spawn_points[spawn_index % len(game_map.spawn_points)]
        self.x, self.y = spawn
        self.heading = rng.uniform(0.0, 2 * math.pi)
        # Resource tracking keeps the generated stream legal under the
        # contract's rules (no shooting on empty, only owned weapons).
        self.ammo = 50
        self.owned_weapons = [WeaponId.FIST, WeaponId.PISTOL]
        # Items the session was recorded against: each pickup binds to a
        # fresh item placed where the player stood (DESIGN.md §2).
        self.session_items: List["MapItem"] = []
        self._item_seq = 0
        self._trajectory: List[Tuple[float, float, float]] = []

    def _emit(self, t_ms: float, etype: str, payload: Dict) -> None:
        self.seq += 1
        self.events.append(
            GameEvent(t_ms=round(t_ms, 3), player=self.player, etype=etype,
                      payload=payload, seq=self.seq)
        )

    def run(self) -> List[GameEvent]:
        t = 0.0
        # Sessions start idle about half the time, like real demos.
        active = self.rng.random() < 0.5
        duty = self.profile.active_duty
        mean_active = self.profile.mean_active_s * 1000.0
        mean_idle = mean_active * (1.0 - duty) / duty
        while t < self.duration_ms:
            if active:
                span = min(_exp(self.rng, mean_active), self.duration_ms - t)
                self._active_period(t, span)
            else:
                span = min(_exp(self.rng, mean_idle), self.duration_ms - t)
            t += max(span, 1.0)
            active = not active
        self.events.sort(key=lambda e: e.t_ms)
        return self.events

    # ------------------------------------------------------------------

    def _active_period(self, start_ms: float, span_ms: float) -> None:
        tick = 1000.0 / self.profile.tickrate
        speed = DoomRules.MAX_SPEED_PER_MS * self.profile.max_speed_fraction
        steps = int(span_ms / tick)
        for i in range(steps):
            t = start_ms + i * tick
            # Wander with occasional heading changes, clamped to the map.
            if self.rng.random() < 0.05:
                self.heading += self.rng.uniform(-1.2, 1.2)
            self.x += math.cos(self.heading) * speed * tick
            self.y += math.sin(self.heading) * speed * tick
            margin = 64.0
            if not (margin < self.x < self.map.width - margin):
                self.heading = math.pi - self.heading
                self.x = min(max(self.x, margin), self.map.width - margin)
            if not (margin < self.y < self.map.height - margin):
                self.heading = -self.heading
                self.y = min(max(self.y, margin), self.map.height - margin)
            self._emit(t, EventType.LOCATION,
                       {"x": round(self.x, 1), "y": round(self.y, 1)})
            self._trajectory.append((t, self.x, self.y))

        if self.rng.random() < self.profile.fight_probability and span_ms > 500:
            self._firefight(start_ms, span_ms)
        self._sparse_events(start_ms, span_ms)

    def _firefight(self, start_ms: float, span_ms: float) -> None:
        fight_ms = min(_exp(self.rng, self.profile.mean_fight_s * 1000.0), span_ms)
        fight_start = start_ms + self.rng.uniform(0.0, span_ms - fight_ms)
        t = fight_start
        interval = 1000.0 / self.profile.shoot_rate_hz
        while t < fight_start + fight_ms:
            if self.ammo <= 5:
                self._emit_pickup(EventType.PICKUP_CLIP, t, {})
                self.ammo += DoomRules.CLIP_AMMO
            self._emit(t, EventType.SHOOT, {"count": 1})
            self.ammo -= 1
            t += self.rng.uniform(0.5 * interval, 1.5 * interval)
        # Take some return fire: health (and sometimes armour) updates.
        for _ in range(self.rng.randint(1, 3)):
            hit_t = fight_start + self.rng.uniform(0.0, fight_ms)
            to_armor = self.rng.random() < 0.35
            self._emit(hit_t, EventType.DAMAGE,
                       {"amount": self.rng.choice((5, 10, 15, 20)),
                        "to_armor": to_armor})

    def _sparse_events(self, start_ms: float, span_ms: float) -> None:
        minutes = span_ms / 60_000.0
        # Only switch to weapons owned before this span: a change drawn at
        # a timestamp earlier than this span's own pickups must stay legal.
        owned_at_entry = list(self.owned_weapons)
        expected_pickups = self.profile.pickups_per_minute * minutes
        for _ in range(self._poisson(expected_pickups)):
            t = start_ms + self.rng.uniform(0.0, span_ms)
            kind = self.rng.choices(
                (EventType.PICKUP_CLIP, EventType.PICKUP_MEDKIT,
                 EventType.PICKUP_WEAPON, EventType.PICKUP_BERSERK,
                 EventType.PICKUP_RADSUIT, EventType.PICKUP_INVIS),
                weights=(5, 4, 2, 1, 1, 1),
            )[0]
            payload: Dict = {}
            if kind == EventType.PICKUP_WEAPON:
                wid = self.rng.choice(
                    (WeaponId.SHOTGUN, WeaponId.CHAINGUN, WeaponId.ROCKET_LAUNCHER))
                payload = {"wid": wid}
                if wid not in self.owned_weapons:
                    self.owned_weapons.append(wid)
                self.ammo = min(400, self.ammo + DoomRules.WEAPON_PICKUP_AMMO)
            elif kind == EventType.PICKUP_CLIP:
                self.ammo = min(400, self.ammo + DoomRules.CLIP_AMMO)
            self._emit_pickup(kind, t, payload)
        expected_changes = self.profile.weapon_changes_per_minute * minutes
        for _ in range(self._poisson(expected_changes)):
            t = start_ms + self.rng.uniform(0.0, span_ms)
            self._emit(t, EventType.WEAPON_CHANGE,
                       {"wid": self.rng.choice(owned_at_entry)})

    _PICKUP_ITEM_KIND = {
        EventType.PICKUP_CLIP: "clip",
        EventType.PICKUP_MEDKIT: "medkit",
        EventType.PICKUP_RADSUIT: "radsuit",
        EventType.PICKUP_INVULN: "invuln",
        EventType.PICKUP_INVIS: "invis",
        EventType.PICKUP_BERSERK: "berserk",
    }

    def _emit_pickup(self, kind: str, t: float, payload: Dict) -> None:
        """Emit a pickup bound to a fresh item placed where the player
        stood at time ``t``, so strict contract validation passes."""
        x, y = self._position_at(t)
        if kind == EventType.PICKUP_WEAPON:
            item_kind = f"weapon:{payload['wid']}"
        else:
            item_kind = self._PICKUP_ITEM_KIND[kind]
        self._item_seq += 1
        item = MapItem(
            item_id=f"{self.player}-i{self._item_seq}", kind=item_kind,
            x=round(x, 1), y=round(y, 1),
        )
        self.session_items.append(item)
        payload = dict(payload)
        payload["item_id"] = item.item_id
        self._emit(t, kind, payload)

    def _position_at(self, t: float) -> Tuple[float, float]:
        """Last known position at time ``t`` (falls back to current)."""
        best = None
        for sample in reversed(self._trajectory):
            if sample[0] <= t:
                best = sample
                break
        if best is None:
            return self.x, self.y
        return best[1], best[2]

    def _poisson(self, lam: float) -> int:
        if lam <= 0:
            return 0
        # Knuth's method is fine for the small rates used here.
        threshold = math.exp(-lam)
        k, p = 0, 1.0
        while True:
            p *= self.rng.random()
            if p <= threshold:
                return k
            k += 1


def generate_session(
    session_id: str,
    duration_ms: float,
    seed: int = 0,
    profile: Optional[TraceProfile] = None,
    game_map: Optional[DoomMap] = None,
    player: str = "p1",
    spawn_index: int = 0,
) -> Demo:
    """Generate one synthetic session for one player's shim.

    ``spawn_index`` is the roster position the player will occupy when
    the demo is replayed (it fixes the starting spawn point).
    """
    if duration_ms <= 0:
        raise ValueError("duration_ms must be positive")
    profile = profile if profile is not None else TraceProfile()
    game_map = game_map if game_map is not None else DoomMap.default_map()
    rng = random.Random(f"trace:{session_id}:{seed}")
    sim = _PlayerSimulator(player, duration_ms, profile, game_map, rng,
                           spawn_index=spawn_index)
    events = sim.run()
    session_map = DoomMap(
        name=f"{game_map.name}+{session_id}",
        width=game_map.width,
        height=game_map.height,
        items=list(game_map.items) + sim.session_items,
        spawn_points=list(game_map.spawn_points),
    )
    return Demo(session_id=session_id, events=events, tickrate=profile.tickrate,
                player=player, game_map=session_map)


#: Session durations (minutes) calibrated so 25 sessions span >6 hours
#: with the longest (#9, index 8) at 24 minutes, as in §7.2.1/§7.2.4.
_PAPER_DURATIONS_MIN = (
    11, 16, 9, 14, 19, 8, 13, 21, 24, 17,
    12, 10, 15, 7, 18, 11, 14, 9, 16, 13,
    20, 8, 15, 12, 22,
)


def paper_dataset(seed: int = 2018, count: int = 25) -> List[Demo]:
    """The 25-session dataset standing in for the community demos."""
    if not 1 <= count <= len(_PAPER_DURATIONS_MIN):
        raise ValueError(f"count must be in [1, {len(_PAPER_DURATIONS_MIN)}]")
    demos = []
    for i in range(count):
        demos.append(
            generate_session(
                session_id=f"#{i + 1}",
                duration_ms=_PAPER_DURATIONS_MIN[i] * 60_000.0,
                seed=seed + i,
            )
        )
    return demos


def ten_longest(demos: List[Demo]) -> List[Demo]:
    """The 10 longest sessions, used by the scalability study (§7.2.4)."""
    return sorted(demos, key=lambda d: d.duration_ms, reverse=True)[:10]


def scale_tickrate(demo: Demo, new_tickrate: int) -> Demo:
    """Replay a session at a higher client tickrate (§7.2.4(2), Table 4).

    Location updates are densified by interpolating between consecutive
    samples so the location stream runs at ``new_tickrate`` during active
    periods; other events are unchanged.
    """
    if new_tickrate < demo.tickrate:
        raise ValueError("tickrate can only be scaled up")
    if new_tickrate == demo.tickrate:
        return demo
    old_tick = 1000.0 / demo.tickrate
    new_tick = 1000.0 / new_tickrate

    # Split the location stream into contiguous runs (consecutive samples
    # no further apart than ~one old tick), then resample each run onto
    # the new, denser tick grid with linear interpolation.
    events: List[GameEvent] = []
    run: List[GameEvent] = []

    def flush_run() -> None:
        if not run:
            return
        if len(run) == 1:
            events.append(run[0])
            run.clear()
            return
        start, end = run[0].t_ms, run[-1].t_ms
        n_samples = int((end - start) / new_tick) + 1
        idx = 0
        for j in range(n_samples):
            t = start + j * new_tick
            while idx + 1 < len(run) and run[idx + 1].t_ms <= t:
                idx += 1
            a = run[idx]
            b = run[min(idx + 1, len(run) - 1)]
            span = b.t_ms - a.t_ms
            frac = (t - a.t_ms) / span if span > 0 else 0.0
            events.append(GameEvent(
                round(t, 3), a.player, EventType.LOCATION,
                {"x": round(a.payload["x"] + frac * (b.payload["x"] - a.payload["x"]), 1),
                 "y": round(a.payload["y"] + frac * (b.payload["y"] - a.payload["y"]), 1)},
                0))
        run.clear()

    for event in demo.events:
        if event.etype != EventType.LOCATION:
            flush_run()
            events.append(event)
            continue
        if run and (event.t_ms - run[-1].t_ms) > 1.5 * old_tick:
            flush_run()
        run.append(event)
    flush_run()

    events.sort(key=lambda e: e.t_ms)
    renumbered = [
        GameEvent(e.t_ms, e.player, e.etype, dict(e.payload), i + 1)
        for i, e in enumerate(events)
    ]
    return Demo(session_id=f"{demo.session_id}@{new_tickrate}", events=renumbered,
                tickrate=new_tickrate, player=demo.player)
