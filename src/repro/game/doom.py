"""Doom game rules: weapons, damage, movement and map items.

These are the *server-side* rules that the paper ports into the smart
contract ("our strategy requires developers to port code running
previously on the server to a smart contract", §1).  They are pure
functions over asset values so the same logic runs identically inside
the contract at every peer and inside the trusted server of the C/S
baseline.

Constants follow Doom (1993): 100% start health capped at 200, armour
absorbs a third of incoming damage, player top speed ≈ 30 map units per
tic at 35 tics/s, deathmatch items respawn after 30 seconds.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .assets import ASSETS, AssetId

__all__ = [
    "RuleViolation",
    "WeaponId",
    "WeaponDef",
    "WEAPONS",
    "MapItem",
    "DoomMap",
    "DoomRules",
    "initial_assets",
]


class RuleViolation(Exception):
    """An asset update that the rules of the game do not allow."""


class WeaponId:
    FIST = 0
    CHAINSAW = 1
    PISTOL = 2
    SHOTGUN = 3
    CHAINGUN = 4
    ROCKET_LAUNCHER = 5
    PLASMA_RIFLE = 6
    BFG9000 = 7

    ALL = (FIST, CHAINSAW, PISTOL, SHOTGUN, CHAINGUN, ROCKET_LAUNCHER, PLASMA_RIFLE, BFG9000)


@dataclass(frozen=True)
class WeaponDef:
    wid: int
    name: str
    ammo_per_shot: int
    damage: int
    melee: bool = False


WEAPONS: Dict[int, WeaponDef] = {
    WeaponId.FIST: WeaponDef(WeaponId.FIST, "Fist", 0, 10, melee=True),
    WeaponId.CHAINSAW: WeaponDef(WeaponId.CHAINSAW, "Chainsaw", 0, 20, melee=True),
    WeaponId.PISTOL: WeaponDef(WeaponId.PISTOL, "Pistol", 1, 10),
    WeaponId.SHOTGUN: WeaponDef(WeaponId.SHOTGUN, "Shotgun", 1, 35),
    WeaponId.CHAINGUN: WeaponDef(WeaponId.CHAINGUN, "Chaingun", 1, 10),
    WeaponId.ROCKET_LAUNCHER: WeaponDef(WeaponId.ROCKET_LAUNCHER, "RocketLauncher", 1, 80),
    WeaponId.PLASMA_RIFLE: WeaponDef(WeaponId.PLASMA_RIFLE, "PlasmaRifle", 1, 22),
    WeaponId.BFG9000: WeaponDef(WeaponId.BFG9000, "BFG9000", 40, 300),
}


@dataclass
class MapItem:
    """A pickup placed on the map; deathmatch items respawn."""

    item_id: str
    kind: str  # "weapon:<wid>", "clip", "medkit", "armor", "radsuit",
    #            "invuln", "invis", "berserk", "key:<color>"
    x: float
    y: float
    respawn_ms: float = 30_000.0


@dataclass
class DoomMap:
    """Item placement plus movement bounds for one level."""

    name: str
    width: float
    height: float
    items: List[MapItem]
    spawn_points: List[Tuple[float, float]]

    def item(self, item_id: str) -> Optional[MapItem]:
        for item in self.items:
            if item.item_id == item_id:
                return item
        return None

    def items_of_kind(self, kind: str) -> List[MapItem]:
        return [item for item in self.items if item.kind == kind]

    def in_bounds(self, x: float, y: float) -> bool:
        return 0.0 <= x <= self.width and 0.0 <= y <= self.height

    @classmethod
    def default_map(cls, seed: int = 0) -> "DoomMap":
        """A deterministic deathmatch arena with Doom-style item spread."""
        rng = random.Random(f"doom-map:{seed}")
        width = height = 4096.0
        kinds = (
            ["weapon:3", "weapon:4", "weapon:5", "weapon:6", "weapon:1"]
            + ["clip"] * 10
            + ["medkit"] * 8
            + ["armor"] * 4
            + ["radsuit", "invuln", "invis", "berserk"]
            + ["key:red", "key:blue", "key:yellow"]
        )
        items = [
            MapItem(
                item_id=f"item{i}",
                kind=kind,
                x=round(rng.uniform(128.0, width - 128.0), 1),
                y=round(rng.uniform(128.0, height - 128.0), 1),
            )
            for i, kind in enumerate(kinds)
        ]
        spawns = [
            (512.0, 512.0),
            (width - 512.0, 512.0),
            (512.0, height - 512.0),
            (width - 512.0, height - 512.0),
        ]
        return cls(name="DM1", width=width, height=height, items=items, spawn_points=spawns)


class DoomRules:
    """Pure validation/transition functions over asset values."""

    TICRATE = 35
    TICK_MS = 1000.0 / TICRATE
    MAX_SPEED_PER_MS = 1.2  # ~30 map units per tic + strafe-running margin
    PICKUP_RADIUS = 64.0
    POWERUP_DURATION_MS = 30_000.0
    ARMOR_ABSORB = 3  # armour soaks 1/3 of incoming damage
    MEDKIT_HEAL = 25
    CLIP_AMMO = 10
    WEAPON_PICKUP_AMMO = 20
    BERSERK_MELEE_MULTIPLIER = 10

    # ------------------------------------------------------------------
    # movement

    @staticmethod
    def validate_move(
        old_pos: Dict[str, float],
        new_x: float,
        new_y: float,
        t_ms: float,
        game_map: DoomMap,
    ) -> Dict[str, float]:
        """Check a location update against speed and bounds limits.

        Rejects teleport-style cheats: covering more distance than the
        engine's top speed allows for the elapsed time.
        """
        if not game_map.in_bounds(new_x, new_y):
            raise RuleViolation(f"position ({new_x}, {new_y}) outside the map")
        dt = t_ms - old_pos["t"]
        if dt < 0:
            raise RuleViolation("location update travels back in time")
        dist = math.hypot(new_x - old_pos["x"], new_y - old_pos["y"])
        allowed = DoomRules.MAX_SPEED_PER_MS * max(dt, DoomRules.TICK_MS)
        if dist > allowed:
            raise RuleViolation(
                f"moved {dist:.0f} units in {dt:.0f} ms (max {allowed:.0f})"
            )
        return {"x": new_x, "y": new_y, "t": t_ms}

    # ------------------------------------------------------------------
    # shooting

    @staticmethod
    def validate_shoot(weapon_state: Dict, ammo: int, count: int) -> int:
        """Returns the remaining ammunition after ``count`` shots."""
        if count < 1:
            raise RuleViolation("shot count must be positive")
        current = WEAPONS.get(weapon_state.get("current"))
        if current is None:
            raise RuleViolation("no current weapon")
        cost = current.ammo_per_shot * count
        if cost > ammo:
            raise RuleViolation(
                f"{count} shots need {cost} ammo but only {ammo} available"
            )
        return ammo - cost

    @staticmethod
    def validate_weapon_change(weapon_state: Dict, new_wid: int) -> Dict:
        owned = weapon_state.get("owned", [])
        if new_wid not in owned:
            raise RuleViolation(f"weapon {new_wid} not owned")
        return {"current": new_wid, "owned": list(owned)}

    # ------------------------------------------------------------------
    # damage

    @staticmethod
    def apply_damage(
        health_state: Dict, armor: int, amount: int, t_ms: float
    ) -> Tuple[Dict, int, bool]:
        """Returns (new health state, new armour, absorbed_by_armor).

        Invulnerability (a Health power mode) nullifies damage while
        active; otherwise armour soaks a third of the hit.
        """
        if amount < 0:
            raise RuleViolation("damage must be non-negative")
        if health_state.get("invuln_until", 0.0) > t_ms:
            return dict(health_state), armor, False
        soak = min(armor, amount // DoomRules.ARMOR_ABSORB)
        hp = max(0, health_state["hp"] - (amount - soak))
        new_state = dict(health_state)
        new_state["hp"] = hp
        return new_state, armor - soak, soak > 0

    # ------------------------------------------------------------------
    # pickups

    @staticmethod
    def validate_pickup(
        item: Optional[MapItem],
        taken_state: Optional[Dict],
        pos: Dict[str, float],
        t_ms: float,
    ) -> None:
        """A pickup is legal iff the item exists, has respawned, and the
        player's last reported position is within reach.

        This is exactly the check that defeats IDCHOPPERS: "other players
        will not reach consensus on his state that has a new weapon
        without traversing the location on the map where the chainsaw is
        available for collection" (§7.2.2).
        """
        if item is None:
            raise RuleViolation("no such item on this map")
        taken_at = (taken_state or {}).get("taken_at")
        if taken_at is not None and t_ms < taken_at + item.respawn_ms:
            raise RuleViolation(f"item {item.item_id} not yet respawned")
        dist = math.hypot(item.x - pos["x"], item.y - pos["y"])
        # The authoritative position may lag the pickup by in-flight
        # location updates; grant the distance the player could legally
        # have covered since the stored sample.  A cheat claiming an item
        # farther than the engine's top speed allows is still rejected.
        lag_ms = max(0.0, t_ms - pos.get("t", t_ms))
        allowed = DoomRules.PICKUP_RADIUS + DoomRules.MAX_SPEED_PER_MS * lag_ms
        if dist > allowed:
            raise RuleViolation(
                f"player is {dist:.0f} units from {item.item_id} (max "
                f"{allowed:.0f})"
            )

    @staticmethod
    def heal(health_state: Dict, amount: int, cap: int = 100) -> Dict:
        new_state = dict(health_state)
        new_state["hp"] = min(cap, health_state["hp"] + amount)
        return new_state

    @staticmethod
    def add_ammo(ammo: int, amount: int) -> int:
        cap = ASSETS[AssetId.AMMUNITION].maximum
        return min(int(cap), ammo + amount)


def initial_assets(spawn: Tuple[float, float] = (512.0, 512.0)) -> Dict[int, object]:
    """A player's asset valuation at session start (addPlayer, §6 ii)."""
    return {
        AssetId.HEALTH: {"hp": 100, "invuln_until": 0.0},
        AssetId.AMMUNITION: 50,
        AssetId.WEAPON: {"current": WeaponId.PISTOL, "owned": [WeaponId.FIST, WeaponId.PISTOL]},
        AssetId.ARMOR: 0,
        AssetId.KEYS: [],
        AssetId.POSITION: {"x": spawn[0], "y": spawn[1], "t": 0.0},
        AssetId.INVISIBILITY: 0.0,
        AssetId.RADIATION_SUIT: 0.0,
        AssetId.BERSERK: 0.0,
    }
