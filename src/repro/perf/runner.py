"""Suite runner, cProfile attribution and the CI regression gate."""

from __future__ import annotations

import cProfile
import io
import json
import os
import platform
import pstats
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

from .workloads import WORKLOADS, calibration_ms

__all__ = ["run_suite", "check_against_baseline", "profile_workload"]

SCHEMA = "repro.perf/1"


def profile_workload(workload, quick: bool = False, top: int = 10) -> List[Dict[str, Any]]:
    """Run one workload under cProfile; return the top hotspots by
    cumulative time (the table DESIGN.md's perf section reports)."""
    profiler = cProfile.Profile()
    profiler.enable()
    workload.run(quick=quick)
    profiler.disable()
    stats = pstats.Stats(profiler, stream=io.StringIO())
    stats.sort_stats("cumulative")
    rows: List[Dict[str, Any]] = []
    for func, (cc, nc, tt, ct, _callers) in sorted(
        stats.stats.items(), key=lambda item: item[1][3], reverse=True
    ):
        filename, lineno, name = func
        if filename.startswith("<") or "/perf/" in filename.replace("\\", "/"):
            continue  # harness frames, not engine frames
        short = filename.replace("\\", "/").split("/site-packages/")[-1]
        if "/repro/" in short:
            short = "repro/" + short.split("/repro/", 1)[1]
        elif "/lib/python" in short:
            short = short.rsplit("/", 1)[-1]
        rows.append(
            {
                "function": f"{short}:{lineno}({name})",
                "ncalls": nc,
                "tottime_s": round(tt, 4),
                "cumtime_s": round(ct, 4),
            }
        )
        if len(rows) >= top:
            break
    return rows


def run_suite(
    quick: bool = False,
    profile: bool = False,
    only: Optional[List[str]] = None,
    verbose: bool = True,
    trace_dir: Optional[str] = None,
    executor: Optional[str] = None,
) -> Dict[str, Any]:
    """Run the workload suite and return the BENCH_engine record.

    With ``trace_dir`` set, every traceable workload (the full-stack
    replays) runs with telemetry enabled: the lifecycle trace is dumped
    to ``<trace_dir>/trace_<name>.jsonl``, the metrics registry to
    ``<trace_dir>/metrics_<name>.prom``, and the per-stage latency
    summary is embedded in the workload's record entry.  Telemetry is
    host-side only, so simulated metrics are identical either way —
    but ``wall_s`` includes the recording overhead, so traced runs
    should not be gated against an untraced baseline.

    ``executor`` ("serial" / "parallel") selects the block-validation
    executor for the workloads that take one (the full-stack replays).
    The modes are bit-identical by contract, so a parallel run gates
    cleanly against a serial baseline — the sim-metric comparison then
    doubles as a differential check.
    """
    selected = [w for w in WORKLOADS if only is None or w.name in only]
    if only is not None:
        unknown = set(only) - {w.name for w in selected}
        if unknown:
            raise ValueError(f"unknown workloads: {sorted(unknown)}")

    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)

    cal = calibration_ms()
    record: Dict[str, Any] = {
        "schema": SCHEMA,
        "mode": "quick" if quick else "full",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "calibration_ms": round(cal, 3),
        "workloads": {},
    }
    if executor is not None:
        record["executor"] = executor
    t0 = time.perf_counter()
    for workload in selected:
        if verbose:
            print(f"[perf] running {workload.name} ({record['mode']}) ...", file=sys.stderr)
        telemetry = None
        if trace_dir is not None and workload.traceable:
            from ..telemetry import Telemetry

            telemetry = Telemetry()
        result = workload.run(quick=quick, telemetry=telemetry, executor=executor)
        entry = result.as_record()
        entry["normalized"] = round(result.wall_s * 1000.0 / cal, 4)
        if telemetry is not None:
            from ..telemetry import prometheus_text, stage_summary, write_trace_jsonl

            trace_path = os.path.join(trace_dir, f"trace_{workload.name}.jsonl")
            n_records = write_trace_jsonl(telemetry, trace_path)
            prom_path = os.path.join(trace_dir, f"metrics_{workload.name}.prom")
            with open(prom_path, "w", encoding="utf-8") as fh:
                fh.write(prometheus_text(telemetry))
            entry["trace"] = {
                "path": trace_path,
                "records": n_records,
                "stage_summary": stage_summary(telemetry),
            }
            if verbose:
                print(
                    f"[perf]   {workload.name}: trace {n_records} records -> {trace_path}",
                    file=sys.stderr,
                )
        record["workloads"][workload.name] = entry
        if verbose:
            print(
                f"[perf]   {workload.name}: {result.wall_s:.2f}s wall "
                f"(x{entry['normalized']:.1f} calibration)",
                file=sys.stderr,
            )
    record["total_wall_s"] = round(time.perf_counter() - t0, 3)

    if profile:
        # Profile the largest replay in the selection (replay names end in
        # "<N>p"): the 32-peer replay is where the O(N^2) gossip dominates
        # and is the workload the DESIGN.md perf tables are drawn from.
        replays = [w for w in selected if w.name.startswith("replay-")]

        def _peers(w):  # "replay-32p" -> 32
            digits = "".join(ch for ch in w.name if ch.isdigit())
            return int(digits) if digits else 0

        replay = max(replays, key=_peers, default=selected[-1])
        if verbose:
            print(f"[perf] profiling {replay.name} ...", file=sys.stderr)
        record["profile"] = {
            "workload": replay.name,
            "top_cumulative": profile_workload(replay, quick=quick),
        }
    return record


def check_against_baseline(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = 0.25,
    min_wall_s: float = 0.25,
) -> Tuple[bool, List[str]]:
    """Compare a run against a checked-in baseline.

    Timings are compared through the ``normalized`` figure (wall-clock
    divided by the host calibration loop) so a slower CI runner is not
    misread as an engine regression; a workload fails when it is more
    than ``tolerance`` slower than baseline.  Workloads whose wall time
    is under ``min_wall_s`` on both sides skip the timing gate — below
    that, timer and calibration noise dwarf any real engine change.
    Simulated metrics must match exactly regardless of size: the engine
    may get faster, never different.

    A malformed baseline (no ``workloads`` mapping) and workloads present
    in the current run but absent from the baseline are reported as
    explicit problems rather than raising or passing silently: both mean
    the baseline predates the current suite and must be regenerated.
    """
    problems: List[str] = []
    base_workloads = baseline.get("workloads")
    if not isinstance(base_workloads, dict):
        return (
            False,
            [
                "baseline is malformed: no 'workloads' mapping "
                "(regenerate it with python -m repro.perf)"
            ],
        )
    cur_workloads = current.get("workloads", {})
    for name in sorted(cur_workloads):
        if name not in base_workloads:
            problems.append(
                f"{name}: present in current run but missing from baseline "
                "(stale baseline — regenerate it with python -m repro.perf)"
            )
    for name, base_entry in base_workloads.items():
        cur_entry = current.get("workloads", {}).get(name)
        if cur_entry is None:
            problems.append(f"{name}: missing from current run")
            continue
        if cur_entry.get("params") != base_entry.get("params"):
            problems.append(
                f"{name}: params changed {base_entry.get('params')} -> "
                f"{cur_entry.get('params')} (regenerate the baseline)"
            )
            continue
        base_sim = base_entry.get("sim_metrics", {})
        cur_sim = cur_entry.get("sim_metrics", {})
        if base_sim != cur_sim:
            diffs = [
                k
                for k in set(base_sim) | set(cur_sim)
                if base_sim.get(k) != cur_sim.get(k)
            ]
            problems.append(f"{name}: simulated metrics diverged ({sorted(diffs)})")
        base_norm = base_entry.get("normalized")
        cur_norm = cur_entry.get("normalized")
        if (
            base_entry.get("wall_s", 0.0) < min_wall_s
            and cur_entry.get("wall_s", 0.0) < min_wall_s
        ):
            continue  # too small to time reliably; sim metrics checked above
        if base_norm and cur_norm and cur_norm > base_norm * (1.0 + tolerance):
            problems.append(
                f"{name}: {cur_norm:.2f} normalized vs baseline {base_norm:.2f} "
                f"(> {tolerance:.0%} regression)"
            )
    return (not problems, problems)


def load_json(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def dump_json(record: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
