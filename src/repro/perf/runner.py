"""Suite runner, cProfile attribution and the CI regression gate."""

from __future__ import annotations

import cProfile
import io
import json
import os
import platform
import pstats
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

from .workloads import WORKLOADS, calibration_ms

__all__ = [
    "run_suite",
    "check_against_baseline",
    "profile_workload",
    "scaling_report",
    "host_metadata",
    "run_context",
]

SCHEMA = "repro.perf/1"


def profile_workload(workload, quick: bool = False, top: int = 10) -> List[Dict[str, Any]]:
    """Run one workload under cProfile; return the top hotspots by
    cumulative time (the table DESIGN.md's perf section reports)."""
    profiler = cProfile.Profile()
    profiler.enable()
    workload.run(quick=quick)
    profiler.disable()
    stats = pstats.Stats(profiler, stream=io.StringIO())
    stats.sort_stats("cumulative")
    rows: List[Dict[str, Any]] = []
    for func, (cc, nc, tt, ct, _callers) in sorted(
        stats.stats.items(), key=lambda item: item[1][3], reverse=True
    ):
        filename, lineno, name = func
        if filename.startswith("<") or "/perf/" in filename.replace("\\", "/"):
            continue  # harness frames, not engine frames
        short = filename.replace("\\", "/").split("/site-packages/")[-1]
        if "/repro/" in short:
            short = "repro/" + short.split("/repro/", 1)[1]
        elif "/lib/python" in short:
            short = short.rsplit("/", 1)[-1]
        rows.append(
            {
                "function": f"{short}:{lineno}({name})",
                "ncalls": nc,
                "tottime_s": round(tt, 4),
                "cumtime_s": round(ct, 4),
            }
        )
        if len(rows) >= top:
            break
    return rows


def host_metadata() -> Dict[str, Any]:
    """Where this record was measured: CPU count and load average.

    Stored in every BENCH record and echoed by the regression gate so a
    mismatch can be read in context — a loaded 1-core runner regressing
    a wall-clock figure is a very different signal than a quiet 16-core
    box doing so.
    """
    meta: Dict[str, Any] = {"cpu_count": os.cpu_count()}
    try:
        meta["loadavg_1m"] = round(os.getloadavg()[0], 2)
    except (AttributeError, OSError):  # pragma: no cover - non-POSIX
        meta["loadavg_1m"] = None
    return meta


def run_context(record: Dict[str, Any]) -> str:
    """One-line host/placement context for a BENCH record."""
    host = record.get("host") or {}
    bits = []
    if host.get("cpu_count") is not None:
        bits.append(f"cpus={host['cpu_count']}")
    if host.get("loadavg_1m") is not None:
        bits.append(f"load1m={host['loadavg_1m']}")
    if record.get("executor") is not None:
        bits.append(f"executor={record['executor']}")
    if record.get("procs") is not None:
        bits.append(f"procs={record['procs']}")
    if record.get("backend") is not None:
        bits.append(f"backend={record['backend']}")
    return ", ".join(bits) if bits else "no host metadata"


def run_suite(
    quick: bool = False,
    profile: bool = False,
    only: Optional[List[str]] = None,
    verbose: bool = True,
    trace_dir: Optional[str] = None,
    executor: Optional[str] = None,
    procs: Optional[int] = None,
    profile_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Run the workload suite and return the BENCH_engine record.

    With ``trace_dir`` set, every traceable workload (the full-stack
    replays) runs with telemetry enabled: the lifecycle trace is dumped
    to ``<trace_dir>/trace_<name>.jsonl``, the metrics registry to
    ``<trace_dir>/metrics_<name>.prom``, and the per-stage latency
    summary is embedded in the workload's record entry.  Telemetry is
    host-side only, so simulated metrics are identical either way —
    but ``wall_s`` includes the recording overhead, so traced runs
    should not be gated against an untraced baseline.

    ``executor`` ("serial" / "parallel") selects the block-validation
    executor for the workloads that take one (the full-stack replays).
    The modes are bit-identical by contract, so a parallel run gates
    cleanly against a serial baseline — the sim-metric comparison then
    doubles as a differential check.

    ``procs`` places the sharded replays' shard pipelines across that
    many worker processes (the bridged engine; 1 keeps them in-process).
    Placements are bit-identical by contract too, so any ``procs`` run
    gates against the same baseline.  ``profile_dir`` additionally asks
    each worker process to dump a cProfile (``shardworker_*.pstats``)
    there on shutdown.
    """
    selected = [w for w in WORKLOADS if only is None or w.name in only]
    if only is not None:
        unknown = set(only) - {w.name for w in selected}
        if unknown:
            raise ValueError(f"unknown workloads: {sorted(unknown)}")

    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)

    cal = calibration_ms()
    record: Dict[str, Any] = {
        "schema": SCHEMA,
        "mode": "quick" if quick else "full",
        # Perf workloads always measure the deterministic backend; the
        # tag lets the regression gate refuse a baseline produced by a
        # wall-clock (realnet/soak) run, whose timings mean something else.
        "backend": "simnet",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "calibration_ms": round(cal, 3),
        "host": host_metadata(),
        "workloads": {},
    }
    if executor is not None:
        record["executor"] = executor
    if procs is not None:
        record["procs"] = procs
    t0 = time.perf_counter()
    for workload in selected:
        if verbose:
            print(f"[perf] running {workload.name} ({record['mode']}) ...", file=sys.stderr)
        telemetry = None
        if trace_dir is not None and workload.traceable:
            from ..telemetry import Telemetry

            telemetry = Telemetry()
        result = workload.run(
            quick=quick, telemetry=telemetry, executor=executor,
            procs=procs, profile_dir=profile_dir,
        )
        entry = result.as_record()
        entry["normalized"] = round(result.wall_s * 1000.0 / cal, 4)
        if telemetry is not None:
            from ..telemetry import prometheus_text, stage_summary, write_trace_jsonl

            trace_path = os.path.join(trace_dir, f"trace_{workload.name}.jsonl")
            n_records = write_trace_jsonl(telemetry, trace_path)
            prom_path = os.path.join(trace_dir, f"metrics_{workload.name}.prom")
            with open(prom_path, "w", encoding="utf-8") as fh:
                fh.write(prometheus_text(telemetry))
            entry["trace"] = {
                "path": trace_path,
                "records": n_records,
                "stage_summary": stage_summary(telemetry),
            }
            if verbose:
                print(
                    f"[perf]   {workload.name}: trace {n_records} records -> {trace_path}",
                    file=sys.stderr,
                )
        record["workloads"][workload.name] = entry
        if verbose:
            print(
                f"[perf]   {workload.name}: {result.wall_s:.2f}s wall "
                f"(x{entry['normalized']:.1f} calibration)",
                file=sys.stderr,
            )
    record["total_wall_s"] = round(time.perf_counter() - t0, 3)

    scaling = scaling_report(record["workloads"])
    if scaling is not None:
        record["scaling"] = scaling
        if verbose:
            for shards, eff in scaling["efficiency"].items():
                print(
                    f"[perf] scaling: {shards} shards -> "
                    f"{scaling['speedup'][shards]:.2f}x speedup "
                    f"(efficiency {eff:.2f})",
                    file=sys.stderr,
                )

    if profile:
        # Profile the largest replay in the selection (replay names end in
        # "<N>p"): the 32-peer replay is where the O(N^2) gossip dominates
        # and is the workload the DESIGN.md perf tables are drawn from.
        replays = [w for w in selected if w.name.startswith("replay-")]

        def _peers(w):  # "replay-32p" -> 32
            digits = "".join(ch for ch in w.name if ch.isdigit())
            return int(digits) if digits else 0

        replay = max(replays, key=_peers, default=selected[-1])
        if verbose:
            print(f"[perf] profiling {replay.name} ...", file=sys.stderr)
        record["profile"] = {
            "workload": replay.name,
            "top_cumulative": profile_workload(replay, quick=quick),
        }
    return record


def scaling_report(workloads: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    """Scaling-efficiency summary over the ``sharded-replay-<n>s`` runs.

    Every shard count runs the same logical workload on the same total
    peer count, and throughput is measured in *simulated* time, so
    ``speedup(n) = throughput(n) / throughput(1)`` isolates the
    pipeline-parallelism win and ``efficiency(n) = speedup(n) / n`` is
    directly comparable across hosts.  Returns None unless the 1-shard
    base and at least one multi-shard run are present.
    """
    prefix, suffix = "sharded-replay-", "s"
    throughput: Dict[int, float] = {}
    for name, entry in workloads.items():
        if not (name.startswith(prefix) and name.endswith(suffix)):
            continue
        eps = entry.get("sim_metrics", {}).get("throughput_eps")
        if eps:
            throughput[int(name[len(prefix):-len(suffix)])] = eps
    if 1 not in throughput or len(throughput) < 2:
        return None
    base = throughput[1]
    report: Dict[str, Any] = {
        "base": f"{prefix}1{suffix}",
        "throughput_eps": {str(n): round(throughput[n], 6) for n in sorted(throughput)},
        "speedup": {},
        "efficiency": {},
    }
    for n in sorted(throughput):
        if n == 1:
            continue
        speedup = throughput[n] / base
        report["speedup"][str(n)] = round(speedup, 4)
        report["efficiency"][str(n)] = round(speedup / n, 4)
    return report


def check_against_baseline(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = 0.25,
    min_wall_s: float = 0.25,
    min_efficiency: float = 0.375,
    only: Optional[List[str]] = None,
) -> Tuple[bool, List[str], List[str]]:
    """Compare a run against a checked-in baseline.

    Returns ``(ok, problems, skipped)``.  Timings are compared through
    the ``normalized`` figure (wall-clock divided by the host
    calibration loop) so a slower CI runner is not misread as an engine
    regression; a workload fails when it is more than ``tolerance``
    slower than baseline.  Workloads whose wall time is under
    ``min_wall_s`` on both sides skip the timing gate — below that,
    timer and calibration noise dwarf any real engine change.
    Simulated metrics must match exactly regardless of size: the engine
    may get faster, never different.

    Workloads present in the current run but absent from the baseline
    are *skipped*, not failed: a filtered run (``--workloads``) or a
    freshly added workload is gated on what the baseline does cover,
    and the skip is reported so a stale baseline stays visible.  A
    malformed baseline (no ``workloads`` mapping) is still a failure.
    Symmetrically, ``only`` names the workloads the run was filtered
    to: baseline entries outside the filter are skipped (they were
    never run), while a baseline entry *inside* the filter that the
    run failed to produce is still a failure.

    When the current run carries a ``scaling`` section (the sharded
    replays all ran), every shard count's parallel efficiency must meet
    ``min_efficiency`` — the scale-out subsystem's headline guarantee,
    gated absolutely rather than against the baseline so it can never
    ratchet down.
    """
    problems: List[str] = []
    skipped: List[str] = []
    # Host/placement context rides on every mismatch message: a timing
    # regression on a loaded or smaller box reads differently, and a
    # sim divergence between placements names the suspect immediately.
    context = f" [current: {run_context(current)}; baseline: {run_context(baseline)}]"
    base_workloads = baseline.get("workloads")
    if not isinstance(base_workloads, dict):
        return (
            False,
            [
                "baseline is malformed: no 'workloads' mapping "
                "(regenerate it with python -m repro.perf)"
            ],
            skipped,
        )
    # Records from different transport backends time different things
    # entirely (discrete-event cranking vs wall-clock sockets): refuse
    # the comparison outright rather than report nonsense regressions.
    cur_backend = current.get("backend", "simnet")
    base_backend = baseline.get("backend", "simnet")
    if cur_backend != base_backend:
        return (
            False,
            [
                f"backend mismatch: current run is {cur_backend!r} but the "
                f"baseline is {base_backend!r} — cross-backend timing "
                "comparisons are meaningless; regenerate the baseline on "
                "the same backend"
            ],
            skipped,
        )
    # Execution placement differs between the two records: the timing
    # comparison still runs (normalized figures absorb most of it), but
    # the mismatch is surfaced rather than discovered inside a cryptic
    # regression message.
    for field in ("executor", "procs"):
        if current.get(field) != baseline.get(field):
            skipped.append(
                f"host-context: {field} differs between run and baseline "
                f"(current={current.get(field)!r}, baseline="
                f"{baseline.get(field)!r}) — timings compared across "
                "different execution placements"
            )
    cur_workloads = current.get("workloads", {})
    for name in sorted(cur_workloads):
        if name not in base_workloads:
            skipped.append(
                f"{name}: not in baseline — timing not gated "
                "(regenerate the baseline to cover it)"
            )
    scaling = current.get("scaling")
    if isinstance(scaling, dict):
        for shards, efficiency in sorted(scaling.get("efficiency", {}).items()):
            if efficiency < min_efficiency:
                problems.append(
                    f"scaling: {shards}-shard efficiency {efficiency:.3f} "
                    f"below the {min_efficiency} floor"
                )
    for name, base_entry in base_workloads.items():
        cur_entry = current.get("workloads", {}).get(name)
        if cur_entry is None:
            if only is not None and name not in only:
                skipped.append(
                    f"{name}: in baseline but excluded by the workload filter"
                )
                continue
            problems.append(f"{name}: missing from current run")
            continue
        if cur_entry.get("params") != base_entry.get("params"):
            problems.append(
                f"{name}: params changed {base_entry.get('params')} -> "
                f"{cur_entry.get('params')} (regenerate the baseline)"
            )
            continue
        base_sim = base_entry.get("sim_metrics", {})
        cur_sim = cur_entry.get("sim_metrics", {})
        if base_sim != cur_sim:
            diffs = [
                k
                for k in set(base_sim) | set(cur_sim)
                if base_sim.get(k) != cur_sim.get(k)
            ]
            problems.append(
                f"{name}: simulated metrics diverged ({sorted(diffs)}){context}"
            )
        base_norm = base_entry.get("normalized")
        cur_norm = cur_entry.get("normalized")
        if (
            base_entry.get("wall_s", 0.0) < min_wall_s
            and cur_entry.get("wall_s", 0.0) < min_wall_s
        ):
            continue  # too small to time reliably; sim metrics checked above
        if base_norm and cur_norm and cur_norm > base_norm * (1.0 + tolerance):
            problems.append(
                f"{name}: {cur_norm:.2f} normalized vs baseline {base_norm:.2f} "
                f"(> {tolerance:.0%} regression){context}"
            )
    return (not problems, problems, skipped)


def load_json(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def dump_json(record: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
