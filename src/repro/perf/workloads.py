"""Calibrated engine workloads measured in host wall-clock time.

Each workload returns a :class:`WorkloadResult` carrying both the
wall-clock cost and the *simulated* outcome metrics (commit counts,
simulated-ms latencies, heights).  The simulated metrics must be
bit-identical across engine optimisations — host-side caching and
incremental hashing may change how fast the simulation runs, never what
it computes — so the runner records them alongside the timings and the
regression gate compares them exactly.
"""

from __future__ import annotations

import dataclasses
import hashlib
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..blockchain import (
    CertificateAuthority,
    FabricConfig,
    MembershipProvider,
    Version,
    WorldState,
)
from ..blockchain.block import make_block, make_genesis_block
from ..blockchain.contracts import Contract, ContractError, execute_transaction
from ..blockchain.ledger import Ledger, TxExecution
from ..blockchain.transaction import Proposal, RWSet, Transaction, TxValidationCode

__all__ = [
    "Workload",
    "WorkloadResult",
    "WORKLOADS",
    "calibration_ms",
    "SESSION9_SEED",
]

#: Seed of the paper dataset's session #9 (``paper_dataset(seed=2018)``
#: generates sessions #1..#25 with per-session seeds 2018+i).
SESSION9_SEED = 2018 + 8
_SESSION9_DURATION_MS = 24 * 60_000.0


@dataclass
class WorkloadResult:
    """One measured workload run."""

    name: str
    wall_s: float
    #: Scale knobs the run used (events, peers, keys, ...).
    params: Dict[str, Any] = field(default_factory=dict)
    #: Simulated outcome — must not change across engine optimisations.
    sim_metrics: Dict[str, Any] = field(default_factory=dict)
    #: Validation-executor mode the run used ("serial" / "parallel"),
    #: for workloads that support both.  Deliberately *not* part of
    #: ``params``: the two modes are bit-identical by contract, so a
    #: parallel run may be gated against a serial baseline.
    executor: Optional[str] = None
    #: Worker-process count the run used, for workloads that can place
    #: shards in worker processes.  Like ``executor``, *not* part of
    #: ``params``: every ``procs`` placement is bit-identical by
    #: contract, so a ``--procs 8`` run gates against the same baseline.
    procs: Optional[int] = None

    def as_record(self) -> Dict[str, Any]:
        record = {
            "name": self.name,
            "wall_s": round(self.wall_s, 4),
            "params": self.params,
            "sim_metrics": self.sim_metrics,
        }
        if self.executor is not None:
            record["executor"] = self.executor
        if self.procs is not None:
            record["procs"] = self.procs
        return record


@dataclass(frozen=True)
class Workload:
    """A named, scalable benchmark workload."""

    name: str
    fn: Callable[..., WorkloadResult]
    #: (full-size kwargs, quick-size kwargs)
    full: Dict[str, Any] = field(default_factory=dict)
    quick: Dict[str, Any] = field(default_factory=dict)
    #: Whether the workload accepts a ``telemetry=`` kwarg (full-stack
    #: replays do; micro-benchmarks with no pipeline to trace do not).
    traceable: bool = False
    #: Whether the workload accepts an ``executor=`` kwarg (full-stack
    #: replays validate blocks through a ValidationExecutor; the
    #: micro-benchmarks have no peer pipeline to switch).
    takes_executor: bool = False
    #: Whether the workload accepts ``procs=`` / ``profile_dir=`` kwargs
    #: (the sharded family runs on the bridged engine and can place its
    #: shard pipelines in worker processes).
    takes_procs: bool = False

    def run(
        self,
        quick: bool = False,
        telemetry=None,
        executor: Optional[str] = None,
        procs: Optional[int] = None,
        profile_dir: Optional[str] = None,
    ) -> WorkloadResult:
        kwargs = dict(self.quick if quick else self.full)
        if telemetry is not None and self.traceable:
            kwargs["telemetry"] = telemetry
        if executor is not None and self.takes_executor:
            kwargs["executor"] = executor
        if procs is not None and self.takes_procs:
            kwargs["procs"] = procs
        if profile_dir is not None and self.takes_procs:
            kwargs["profile_dir"] = profile_dir
        return self.fn(**kwargs)


def calibration_ms(loops: int = 60) -> float:
    """Milliseconds this host takes for a fixed pure-Python reference loop.

    The CI regression gate normalises workload timings by this figure so
    a slower runner does not read as an engine regression.
    """
    t0 = time.perf_counter()
    h = hashlib.sha256()
    acc: Dict[str, int] = {}
    for i in range(loops):
        for j in range(1000):
            h.update(b"calibration-block-%d" % j)
            acc[str(j % 97)] = acc.get(str(j % 97), 0) + i
        int(h.hexdigest(), 16)
    return (time.perf_counter() - t0) * 1000.0


# ----------------------------------------------------------------------
# workload 1: block validation (signatures + execution + commit)


class _CounterContract(Contract):
    """Minimal deterministic contract: per-creator counters."""

    name = "perfcounter"

    def invoke(self, ctx, function, args):
        if function != "add":
            raise ContractError(f"unknown function {function!r}")
        key = f"ctr/{args[0]}"
        current = ctx.view.get(key)
        ctx.view.put(key, (current or 0) + int(args[1]))
        return None

    def functions(self):
        return ["add"]


def _make_signed_txs(n_txs: int, ca: CertificateAuthority, identity) -> List[Transaction]:
    txs = []
    for i in range(n_txs):
        proposal = Proposal(
            tx_id=f"perf-{i}",
            contract="perfcounter",
            function="add",
            args=(f"lane{i % 5}", 1),
            nonce=f"n{i}",
            creator=identity.name,
            timestamp=float(i),
            touched_keys=(f"ctr/lane{i % 5}",),
        )
        txs.append(
            Transaction(
                proposal=proposal,
                certificate=identity.certificate,
                signature=identity.sign(proposal.digest()),
            )
        )
    return txs


def block_validation(n_txs: int = 400, n_peers: int = 8, block_txs: int = 5) -> WorkloadResult:
    """Validate the same gossiped blocks at ``n_peers`` simulated peers.

    This is the per-peer CPU loop of the pipeline's stage 1: certificate
    chain + transaction signature verification, contract execution, MVCC
    commit.  Every peer sees the *same* transaction and block objects,
    exactly as in-process peers do in the simulator.
    """
    ca = CertificateAuthority(seed=11)
    msp = MembershipProvider()
    msp.trust_ca(ca)
    identity = ca.enroll("bench-player")
    contract = _CounterContract()
    txs = _make_signed_txs(n_txs, ca, identity)
    genesis = make_genesis_block({"peers": ["bench"], "policy": "majority"})

    blocks = []
    prev = genesis.digest()
    for start in range(0, n_txs, block_txs):
        chunk = txs[start : start + block_txs]
        block = make_block(len(blocks) + 1, prev, chunk, timestamp=float(start))
        prev = block.digest()
        blocks.append(block)

    t0 = time.perf_counter()
    code_tally: Dict[str, int] = {}
    heights = set()
    for _ in range(n_peers):
        ledger = Ledger(genesis)
        for block in blocks:
            if block.data_digest() != block.header.data_hash:
                raise RuntimeError("block integrity check failed")
            executions = []
            for tx in block.transactions:
                if not msp.validate(tx.certificate) or not tx.verify_signature():
                    executions.append(
                        TxExecution(rwset=RWSet(), code=TxValidationCode.BAD_SIGNATURE)
                    )
                    continue
                executions.append(execute_transaction(contract, tx, ledger.state))
            for code in ledger.append(block, executions):
                code_tally[code] = code_tally.get(code, 0) + 1
        heights.add(ledger.height)
    wall = time.perf_counter() - t0
    return WorkloadResult(
        name="block-validation",
        wall_s=wall,
        params={"n_txs": n_txs, "n_peers": n_peers, "block_txs": block_txs},
        sim_metrics={
            "codes": dict(sorted(code_tally.items())),
            "heights": sorted(heights),
        },
    )


# ----------------------------------------------------------------------
# workload 2: sync round (state hashing under a write stream)


def sync_round(
    n_keys: int = 20_000, rounds: int = 400, dirty_per_round: int = 8
) -> WorkloadResult:
    """State hashing as the ledger-sync stage exercises it.

    Builds a world state of ``n_keys`` entries, then performs ``rounds``
    sync rounds: a handful of writes followed by a full ``state_hash()``
    — the access pattern of every peer after every commit.
    """
    rng = random.Random(1905)
    state = WorldState()
    for i in range(n_keys):
        state.put(f"asset/p{i % 64}/{i}", {"v": i, "x": i * 7 % 1001}, Version(0, 0))

    t0 = time.perf_counter()
    hashes = set()
    for r in range(1, rounds + 1):
        for _ in range(dirty_per_round):
            i = rng.randrange(n_keys)
            state.put(
                f"asset/p{i % 64}/{i}", {"v": i, "x": r}, Version(r, 0)
            )
        hashes.add(state.state_hash())
    wall = time.perf_counter() - t0
    return WorkloadResult(
        name="sync-round",
        wall_s=wall,
        params={"n_keys": n_keys, "rounds": rounds, "dirty_per_round": dirty_per_round},
        # Hash *values* are scheme-specific; the scheme-independent
        # invariants are the state size and that every round's hash is
        # distinct (each round really changed the digest).
        sim_metrics={"n_keys": len(state), "distinct_hashes": len(hashes)},
    )


# ----------------------------------------------------------------------
# workload 3: session replay (the full stack)


def _session9_prefix(n_events: int):
    from ..game.traces import generate_session

    demo = generate_session("#9", _SESSION9_DURATION_MS, seed=SESSION9_SEED)
    if n_events >= len(demo.events):
        return demo
    return dataclasses.replace(demo, events=demo.events[:n_events])


def session_replay(
    n_peers: int = 32,
    n_events: int = 2500,
    seed: int = 7,
    telemetry=None,
    executor: str = "serial",
) -> WorkloadResult:
    """Replay a prefix of session #9 (the paper's longest trace) through
    the real shim + blockchain + simnet stack.

    The simulated metrics recorded here — commit counts, simulated
    latencies, heights, scheduler event count — are the bit-identical
    contract the engine optimisations must preserve.  An optional
    :class:`repro.telemetry.Telemetry` traces the run; being host-side
    only, it never changes the simulated metrics (only ``wall_s``).
    ``executor`` selects the block-validation executor ("serial" or
    "parallel"); the two are bit-identical by contract (enforced by
    ``tests/test_validation_parallel_diff.py``), so either mode may be
    gated against the same baseline.
    """
    from ..core import GameSession

    if executor not in ("serial", "parallel"):
        raise ValueError(f"unknown executor mode {executor!r}")
    demo = _session9_prefix(n_events)
    if executor == "parallel":
        # The conflict planner's static analysis is a pure function of the
        # contract class, memoised process-wide; build it here so the first
        # parallel replay in a process doesn't pay it inside the timed
        # region (the demo parse above is untimed setup for the same
        # reason).
        from ..core.doom_contract import DoomContract
        from ..staticcheck.plan import ConflictPlanner

        ConflictPlanner.for_contract(DoomContract)
    t0 = time.perf_counter()
    session = GameSession(
        n_peers=n_peers,
        fabric_config=FabricConfig(
            max_block_txs=5,
            mutually_exclusive_blocks=True,
            parallel_validation=(executor == "parallel"),
        ),
        seed=seed,
    )
    if telemetry is not None:
        telemetry.instrument_session(session)
    session.setup()
    session.play_demo(demo)
    session.run_until_idle()
    wall = time.perf_counter() - t0

    stats = session.stats()
    peers = session.chain.peers
    latencies = stats.latencies_ms
    return WorkloadResult(
        name=f"replay-{n_peers}p",
        wall_s=wall,
        params={"n_peers": n_peers, "n_events": n_events, "seed": seed},
        executor=executor,
        sim_metrics={
            "accepted": stats.accepted_events,
            "rejected": stats.rejected_events,
            "avg_latency_ms": round(stats.avg_latency_ms, 6),
            "max_latency_ms": round(max(latencies), 6) if latencies else 0.0,
            "sim_now_ms": round(session.now, 6),
            "committed_heights": sorted({p.committed_height for p in peers}),
            "synced_heights": sorted({p.synced_height for p in peers}),
            "scheduler_events": session.scheduler.events_processed,
            "ledgers_agree": session.ledgers_agree(),
        },
    )


# ----------------------------------------------------------------------
# workload 4: sharded replay (1000+ sessions over per-shard pipelines)


def sharded_replay(
    n_shards: int,
    n_peers: int = 16,
    n_sessions: int = 1000,
    players_per_session: int = 100,
    n_events: int = 3000,
    swap_fraction: float = 0.02,
    seed: int = 11,
    lookahead_ms: Optional[float] = None,
    telemetry=None,
    executor: str = "serial",
    procs: int = 1,
    profile_dir: Optional[str] = None,
) -> WorkloadResult:
    """Route an MMOG-scale event stream across ``n_shards`` pipelines.

    All shard counts run the *same* logical workload — fixed total peer
    count, fixed session/player population, fixed event schedule — so
    dividing the committed-event throughput of an 8-shard run by the
    1-shard run measures scaling efficiency and nothing else.  A
    ``swap_fraction`` slice of the load is cross-session asset trades
    driven through the two-phase swap protocol (degenerating to plain
    transfers when both sessions land on one shard).

    Runs on the :class:`~repro.blockchain.shardworker.BridgedShardEngine`:
    each shard's pipeline lives on its own clock behind a conservative-
    lookahead time bridge, and ``procs`` places the shard worlds either
    in-process (``1``) or across spawned worker processes (``N``).  The
    placements are bit-identical by construction (DESIGN.md §14), so
    ``procs`` — like ``executor`` — stays out of ``params`` and every
    placement gates against one baseline; only ``wall_s`` may differ.

    Throughput is *simulated-time* events per second: makespan is the
    sim-clock span from the start of injection to the last ledger
    append, which is deterministic at a fixed seed and independent of
    host speed — exactly what a scaling ratio should compare.
    """
    from ..blockchain.shardworker import BridgedShardEngine, BridgeSwapPort
    from ..blockchain.swaps import (
        ShardAssetContract,
        SwapCoordinator,
        asset_key,
        check_conservation_summaries,
    )
    from ..core import ShardedSessionPool
    from ..simnet.bridge import DEFAULT_LOOKAHEAD_MS

    if executor not in ("serial", "parallel"):
        raise ValueError(f"unknown executor mode {executor!r}")
    if executor == "parallel":
        from ..staticcheck.plan import ConflictPlanner

        ConflictPlanner.for_contract(ShardAssetContract)
    if lookahead_ms is None:
        lookahead_ms = DEFAULT_LOOKAHEAD_MS

    n_swaps = int(n_events * swap_fraction)
    rng = random.Random(seed)
    # (src session, dst session) per swap — drawn before the clock
    # starts so the trade plan is identical for every shard count.
    trades = [
        (rng.randrange(n_sessions), rng.randrange(n_sessions))
        for _ in range(n_swaps)
    ]

    t0 = time.perf_counter()
    engine = BridgedShardEngine(
        n_peers=n_peers,
        n_shards=n_shards,
        config=FabricConfig(
            max_block_txs=10,
            # Signature checks are host-side CPU with no simulated cost;
            # at 100k-player scale they only slow the host down.
            verify_signatures=False,
            parallel_validation=(executor == "parallel"),
        ),
        seed=seed,
        procs=procs,
        lookahead_ms=lookahead_ms,
        profile_dir=profile_dir,
    )
    pool = ShardedSessionPool(
        engine, n_sessions, players_per_session, poll_interval_ms=250.0
    )

    # -- untimed-in-sim setup: mint one tradable asset per swap --------
    minted: Dict[str, int] = {}
    mint_failures = [0]

    def on_mint(result, _latency):
        if result.code != TxValidationCode.VALID:
            mint_failures[0] += 1

    for j, (src, _dst) in enumerate(trades):
        aid = f"a{j:04d}"
        minted[aid] = 100 + j
        pool.router.submit(
            pool.session_id(src), "mint",
            (aid, pool.session_id(src), minted[aid]),
            touched_keys=(asset_key(aid),),
            on_complete=on_mint,
            effect_time=0.0,
        )
    engine.run()

    # -- the measured stream -------------------------------------------
    # The bridge horizon after the mint quiesce *is* the control clock,
    # so measure_start is identical for every placement.
    measure_start = engine.now

    codes_tally: Dict[str, int] = {}

    def on_event(result, _latency):
        codes_tally[result.code] = codes_tally.get(result.code, 0) + 1

    # Saturating injection: fast enough that every shard's orderer cuts
    # full blocks at every shard count (a trickle would make the 8-shard
    # run pay timeout-cut partial blocks and measure the batcher, not
    # the pipelines).  The makespan is then capacity-bound — the thing
    # a scaling ratio should compare.  The whole stream is pre-planned
    # (absolute effect times), so it rides the bridge without paying
    # per-event lookahead latency.
    inject_interval_ms = 0.05
    for i in range(n_events):
        # Round-robin distinct (session, player) pairs: every event
        # touches a unique key, so shard counts are compared on the
        # same conflict-free load.
        sid = i % n_sessions
        pid = (i // n_sessions) % players_per_session
        pool.submit_event(
            sid, pid, 1, on_event,
            effect_time=measure_start + i * inject_interval_ms,
        )

    # Swaps are *reactive* control-plane traffic: each 2PC step crosses
    # the bridge and pays the modeled lookahead transit, like a real
    # coordinator talking to remote shards would.
    coordinator = SwapCoordinator(port=BridgeSwapPort(engine), telemetry=telemetry)
    inject_span_ms = n_events * inject_interval_ms
    for j, (src, dst) in enumerate(trades):
        engine.call_at(
            measure_start + (j + 1) * inject_span_ms / (n_swaps + 1),
            coordinator.start_swap,
            f"swap{j:04d}", f"a{j:04d}",
            pool.shard_of(src), pool.shard_of(dst),
            pool.session_id(dst), minted[f"a{j:04d}"],
        )

    engine.run()
    summaries = engine.collect_summaries()
    if telemetry is not None:
        engine.aggregate_telemetry(telemetry)
    bridge_rounds = engine.bridge.rounds
    scheduler_events = engine.scheduler_events()
    sim_now = engine.now
    engine.close()
    wall = time.perf_counter() - t0

    last_commit = max(
        [measure_start] + [s["last_commit_ms"] for s in summaries.values()]
    )
    makespan_ms = max(last_commit - measure_start, 1e-9)
    accepted = codes_tally.get(TxValidationCode.VALID, 0)
    rejected = sum(codes_tally.values()) - accepted
    return WorkloadResult(
        name=f"sharded-replay-{n_shards}s",
        wall_s=wall,
        params={
            "n_shards": n_shards,
            "n_peers": n_peers,
            "n_sessions": n_sessions,
            "players_per_session": players_per_session,
            "n_events": n_events,
            "swap_fraction": swap_fraction,
            "seed": seed,
            "lookahead_ms": lookahead_ms,
        },
        executor=executor,
        procs=procs,
        sim_metrics={
            "accepted": accepted,
            "rejected": rejected,
            "mint_failures": mint_failures[0],
            "swap_outcomes": coordinator.outcomes(),
            "swaps_unresolved": coordinator.unresolved(),
            "committed_txs": sum(
                s["committed_tx_count"] for s in summaries.values()
            ),
            "committed_heights": [
                summaries[i]["committed_height"] for i in range(n_shards)
            ],
            "ledgers_agree": [
                summaries[i]["ledgers_agree"] for i in range(n_shards)
            ],
            "state_hashes": [
                summaries[i]["state_hash"] for i in range(n_shards)
            ],
            "conservation_problems": check_conservation_summaries(
                summaries, minted, quiescent=True
            ),
            "sessions_per_shard": pool.sessions_per_shard(),
            "makespan_ms": round(makespan_ms, 6),
            "throughput_eps": round(accepted / (makespan_ms / 1000.0), 6),
            "sim_now_ms": round(sim_now, 6),
            "scheduler_events": scheduler_events,
            "bridge_rounds": bridge_rounds,
        },
    )


# ----------------------------------------------------------------------

WORKLOADS: Tuple[Workload, ...] = (
    Workload(
        name="block-validation",
        fn=block_validation,
        full={"n_txs": 400, "n_peers": 8, "block_txs": 5},
        quick={"n_txs": 100, "n_peers": 3, "block_txs": 5},
    ),
    Workload(
        name="sync-round",
        fn=sync_round,
        full={"n_keys": 20_000, "rounds": 400, "dirty_per_round": 8},
        quick={"n_keys": 4_000, "rounds": 80, "dirty_per_round": 8},
    ),
    Workload(
        name="replay-4p",
        fn=session_replay,
        full={"n_peers": 4, "n_events": 2500, "seed": 7},
        quick={"n_peers": 4, "n_events": 300, "seed": 7},
        traceable=True,
        takes_executor=True,
    ),
    Workload(
        name="replay-16p",
        fn=session_replay,
        full={"n_peers": 16, "n_events": 2500, "seed": 7},
        quick={"n_peers": 16, "n_events": 200, "seed": 7},
        traceable=True,
        takes_executor=True,
    ),
    Workload(
        name="replay-32p",
        fn=session_replay,
        full={"n_peers": 32, "n_events": 2500, "seed": 7},
        quick={"n_peers": 32, "n_events": 200, "seed": 7},
        traceable=True,
        takes_executor=True,
    ),
    # The sharded family measures shard-count scaling, so the suite
    # always runs it serial (takes_executor=False): per-shard blocks
    # are small enough that lane-parallel validation only adds thread
    # overhead, and its sim_metrics are executor-independent anyway.
    Workload(
        name="sharded-replay-1s",
        fn=sharded_replay,
        full={"n_shards": 1, "n_peers": 16, "n_sessions": 1000,
              "players_per_session": 100, "n_events": 3000,
              "swap_fraction": 0.02, "seed": 11},
        quick={"n_shards": 1, "n_peers": 16, "n_sessions": 200,
               "players_per_session": 100, "n_events": 1200,
               "swap_fraction": 0.02, "seed": 11},
        traceable=True,
        takes_executor=False,
        takes_procs=True,
    ),
    Workload(
        name="sharded-replay-4s",
        fn=sharded_replay,
        full={"n_shards": 4, "n_peers": 16, "n_sessions": 1000,
              "players_per_session": 100, "n_events": 3000,
              "swap_fraction": 0.02, "seed": 11},
        quick={"n_shards": 4, "n_peers": 16, "n_sessions": 200,
               "players_per_session": 100, "n_events": 1200,
               "swap_fraction": 0.02, "seed": 11},
        traceable=True,
        takes_executor=False,
        takes_procs=True,
    ),
    Workload(
        name="sharded-replay-8s",
        fn=sharded_replay,
        full={"n_shards": 8, "n_peers": 16, "n_sessions": 1000,
              "players_per_session": 100, "n_events": 3000,
              "swap_fraction": 0.02, "seed": 11},
        quick={"n_shards": 8, "n_peers": 16, "n_sessions": 200,
               "players_per_session": 100, "n_events": 1200,
               "swap_fraction": 0.02, "seed": 11},
        traceable=True,
        takes_executor=False,
        takes_procs=True,
    ),
)
