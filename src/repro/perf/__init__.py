"""Wall-clock performance harness for the simulation engine.

Everything else in this repository measures *simulated* milliseconds;
this package measures *host* milliseconds — how fast the engine itself
runs the execute-order-validate pipeline.  The north star (ROADMAP) is
"as fast as the hardware allows": scaling the paper's evaluation past
32-64 peers is gated on host CPU, not on simulated latency.

Three calibrated workloads exercise the hot paths:

* ``block-validation`` — signature verification + contract execution +
  commit for batches of transactions at one peer (the per-peer CPU the
  paper's Fig. 3c attributes validation latency to);
* ``sync-round`` — world-state hashing under a write stream (the ledger
  synchronisation stage: every peer hashes its state after every
  commit);
* ``replay-<n>p`` — a full session replay (prefix of the paper's
  session #9, its longest trace) through the real shim + simnet stack
  at 4/16/32 peers.

``python -m repro.perf`` runs them, attributes time with cProfile, and
emits ``BENCH_engine.json``.  A checked-in baseline plus a
machine-speed calibration loop makes the CI smoke job
(``--check``) robust to runner hardware differences.
"""

from .workloads import (
    WORKLOADS,
    Workload,
    WorkloadResult,
    calibration_ms,
)
from .runner import run_suite, check_against_baseline

__all__ = [
    "WORKLOADS",
    "Workload",
    "WorkloadResult",
    "calibration_ms",
    "run_suite",
    "check_against_baseline",
]
