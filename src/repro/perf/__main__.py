"""CLI: ``python -m repro.perf``.

Examples::

    python -m repro.perf --quick                    # CI smoke sizes
    python -m repro.perf --out BENCH_engine.json    # full suite
    python -m repro.perf --quick --check benchmarks/BENCH_engine_baseline.json
    python -m repro.perf --only replay-32p --profile
    python -m repro.perf --quick --workloads 'sharded-replay-*'
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import os
import sys

from .runner import (
    check_against_baseline,
    dump_json,
    load_json,
    run_context,
    run_suite,
)
from .workloads import WORKLOADS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Wall-clock performance harness for the simulation engine.",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small workload sizes (CI smoke; seconds instead of minutes)",
    )
    parser.add_argument(
        "--only", nargs="+", metavar="NAME",
        help="run only the named workloads (e.g. replay-32p sync-round)",
    )
    parser.add_argument(
        "--workloads", nargs="+", metavar="GLOB",
        help="run only workloads whose name matches one of the shell-style "
        "globs (e.g. 'sharded-replay-*'); composes with --only",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="also cProfile the replay workload and record top hotspots",
    )
    parser.add_argument(
        "--out", default="BENCH_engine.json",
        help="output JSON path (default: %(default)s)",
    )
    parser.add_argument(
        "--executor", choices=("serial", "parallel"), default=None,
        help="block-validation executor for the replay workloads; the two "
        "modes are bit-identical, so either can be --check'ed against the "
        "same baseline (default: the workloads' own default, serial)",
    )
    parser.add_argument(
        "--procs", type=int, default=None, metavar="N",
        help="run the sharded replays' shard pipelines across N worker "
        "processes (bridged engine; bit-identical to in-process, so any "
        "N --check's against the same baseline; default: 1, in-process)",
    )
    parser.add_argument(
        "--profile-dir", default=None, metavar="DIR",
        help="with --procs > 1, each shard worker dumps a cProfile "
        "(shardworker_*.pstats) into DIR on shutdown",
    )
    parser.add_argument(
        "--force", action="store_true",
        help="allow overwriting a full-mode record with a quick or "
        "filtered run (refused by default: CI's quick smoke must not "
        "clobber the checked-in full benchmark record)",
    )
    parser.add_argument(
        "--check", metavar="BASELINE",
        help="compare against a baseline JSON; exit 1 on >tolerance regression "
        "or any simulated-metric divergence",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed normalized-time regression vs baseline (default: 0.25)",
    )
    parser.add_argument(
        "--baseline-of", metavar="BASELINE",
        help="embed this baseline run in the output and report the speedup",
    )
    parser.add_argument(
        "--trace", nargs="?", const="traces", default=None, metavar="DIR",
        help="enable telemetry on the replay workloads: dump JSONL "
        "lifecycle traces + Prometheus metrics into DIR (default: "
        "%(const)s) and print the per-stage latency summary",
    )
    args = parser.parse_args(argv)

    only = list(args.only) if args.only else None
    if args.workloads:
        matched = [
            w.name for w in WORKLOADS
            if any(fnmatch.fnmatch(w.name, pattern) for pattern in args.workloads)
        ]
        if not matched:
            print(
                f"[perf] no workload matches {args.workloads} "
                f"(known: {[w.name for w in WORKLOADS]})",
                file=sys.stderr,
            )
            return 2
        only = sorted(set(matched) | set(only or []))

    # Refuse before spending minutes on the suite: a quick or filtered
    # run silently replacing the checked-in full record is exactly how
    # BENCH_engine.json lost its history once.
    if not args.force and os.path.exists(args.out):
        try:
            existing = load_json(args.out)
        except (OSError, ValueError):
            existing = None
        if isinstance(existing, dict) and existing.get("mode") == "full":
            downgrade = []
            if args.quick:
                downgrade.append("a quick-mode run")
            if only is not None:
                missing = sorted(set(existing.get("workloads", {})) - set(only))
                if missing:
                    downgrade.append(
                        f"a filtered run dropping {missing}"
                    )
            if downgrade:
                print(
                    f"[perf] refusing to overwrite full-mode record "
                    f"{args.out} with {' and '.join(downgrade)}; pass "
                    f"--force to allow it or --out for a separate file",
                    file=sys.stderr,
                )
                return 2

    record = run_suite(
        quick=args.quick, profile=args.profile, only=only,
        trace_dir=args.trace, executor=args.executor,
        procs=args.procs, profile_dir=args.profile_dir,
    )
    print(f"[perf] host: {run_context(record)}", file=sys.stderr)

    if args.baseline_of:
        baseline = load_json(args.baseline_of)
        record["baseline"] = baseline
        speedups = {}
        for name, entry in record["workloads"].items():
            base = baseline.get("workloads", {}).get(name)
            if base and entry["wall_s"] > 0:
                speedups[name] = round(base["wall_s"] / entry["wall_s"], 2)
        record["speedup_vs_baseline"] = speedups

    dump_json(record, args.out)
    print(f"[perf] wrote {args.out}", file=sys.stderr)

    if args.trace is not None:
        for name, entry in record["workloads"].items():
            summary = entry.get("trace", {}).get("stage_summary")
            if not summary:
                continue
            print(f"[perf] {name} per-stage latency:")
            width = max(len(stage) for stage in summary)
            for stage, row in summary.items():
                print(
                    f"[perf]   {stage:<{width}s}  count={row['count']:<6d} "
                    f"mean={row['mean_ms']:.2f}ms p50={row['p50_ms']:.2f}ms "
                    f"p95={row['p95_ms']:.2f}ms max={row['max_ms']:.2f}ms"
                )
    print(json.dumps({
        name: {
            "wall_s": entry["wall_s"],
            "normalized": entry["normalized"],
        }
        for name, entry in record["workloads"].items()
    }, indent=2))

    if args.check:
        ok, problems, skipped = check_against_baseline(
            record, load_json(args.check), tolerance=args.tolerance, only=only
        )
        for skip in skipped:
            print(f"[perf] SKIPPED: {skip}", file=sys.stderr)
        if not ok:
            for problem in problems:
                print(f"[perf] REGRESSION: {problem}", file=sys.stderr)
            return 1
        print("[perf] no regression vs baseline", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
