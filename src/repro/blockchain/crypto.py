"""Cryptographic primitives: hashing, Merkle trees and RSA signatures.

The blockchain substrate needs (a) tamper-evident hash chaining, (b) a
Merkle root over block transactions and (c) real public-key signatures so
that PKI certificates and endorsements are verifiable by anyone holding
the public key (the paper binds peer identities to the blockchain with
PKI certificates, §5).

We implement textbook RSA over 512-bit moduli with deterministic key
generation from a seed.  512 bits is of course not secure against a 2026
adversary — it is chosen so that key generation and signing stay fast in
pure Python while every verification in the system is a *real*
asymmetric check, not a stub.  Swapping in a stronger scheme only means
changing this module.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "sha256_hex",
    "canonical_digest",
    "merkle_root",
    "PublicKey",
    "PrivateKey",
    "KeyPair",
    "generate_keypair",
    "verify_batch",
    "reset_crypto_caches",
    "crypto_cache_sizes",
]

_DEFAULT_KEY_BITS = 512


def sha256_hex(data) -> str:
    """SHA-256 hex digest of ``data`` (str is encoded UTF-8)."""
    if isinstance(data, str):
        data = data.encode("utf-8")
    return hashlib.sha256(data).hexdigest()


def _reject_non_native(obj: Any) -> Any:
    """Refuse to digest objects json cannot represent natively.

    The previous ``default=str`` fallback silently collided distinct
    objects (two dataclasses with equal ``str()`` digested equally) and
    made digests depend on ``repr`` stability.  Anything hashed into the
    chain must be explicitly reduced to JSON-native types first.
    """
    raise TypeError(
        f"canonical_digest: {type(obj).__name__} is not JSON-native; convert "
        "it explicitly (e.g. to_dict()/list) before hashing"
    )


def canonical_digest(obj: Any) -> str:
    """Digest of a JSON-native object tree, with sorted keys so logically
    equal objects hash equally.  Raises ``TypeError`` on non-native types
    (no silent ``str()`` fallback)."""
    return sha256_hex(
        json.dumps(obj, sort_keys=True, separators=(",", ":"), default=_reject_non_native)
    )


def merkle_root(leaves: Sequence[str]) -> str:
    """Merkle root over a sequence of hex-digest leaves.

    An empty sequence hashes to the digest of the empty string; odd levels
    duplicate the final node (Bitcoin-style).
    """
    if not leaves:
        return sha256_hex(b"")
    level: List[str] = [sha256_hex(leaf) for leaf in leaves]
    while len(level) > 1:
        if len(level) % 2 == 1:
            level.append(level[-1])
        level = [
            sha256_hex(level[i] + level[i + 1]) for i in range(0, len(level), 2)
        ]
    return level[0]


# ----------------------------------------------------------------------
# RSA

def _miller_rabin(n: int, rng: random.Random, rounds: int = 24) -> bool:
    if n < 2:
        return False
    for small in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % small == 0:
            return n == small
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _random_prime(bits: int, rng: random.Random) -> int:
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if _miller_rabin(candidate, rng):
            return candidate


#: Process-wide memo of verification verdicts keyed by
#: ``(n, e, message, signature)``.  In the simulator every peer is handed
#: the *same* gossiped transaction/certificate objects, so N peers
#: re-checking one signature would otherwise each pay the modexp; the
#: verdict is a pure function of the key material, message and signature,
#: so caching cannot change any result.  Bounded: cleared when full.
_VERIFY_CACHE: dict = {}
_VERIFY_CACHE_MAX = 1 << 17


@dataclass(frozen=True)
class PublicKey:
    """RSA public key ``(n, e)``."""

    n: int
    e: int

    def verify(self, message, signature: int) -> bool:
        """True iff ``signature`` is a valid RSA signature over ``message``.

        Verdicts are memoised process-wide (see :data:`_VERIFY_CACHE`);
        :meth:`verify_uncached` bypasses the memo for audit paths.
        """
        if not isinstance(signature, int) or not 0 < signature < self.n:
            return False
        try:
            key = (self.n, self.e, message, signature)
            cached = _VERIFY_CACHE.get(key)
        except TypeError:  # unhashable message (e.g. bytearray)
            return self.verify_uncached(message, signature)
        if cached is None:
            cached = self.verify_uncached(message, signature)
            if len(_VERIFY_CACHE) >= _VERIFY_CACHE_MAX:
                _VERIFY_CACHE.clear()
            _VERIFY_CACHE[key] = cached
        return cached

    def verify_uncached(self, message, signature: int) -> bool:
        """The real asymmetric check, no memoisation."""
        if not isinstance(signature, int) or not 0 < signature < self.n:
            return False
        h = int(sha256_hex(message), 16) % self.n
        return pow(signature, self.e, self.n) == h

    def fingerprint(self) -> str:
        """Stable identifier for this key (hash of its components)."""
        return sha256_hex(f"{self.n:x}:{self.e:x}")[:16]

    def to_dict(self) -> dict:
        return {"n": f"{self.n:x}", "e": self.e}

    @classmethod
    def from_dict(cls, d: dict) -> "PublicKey":
        return cls(n=int(d["n"], 16), e=int(d["e"]))


@dataclass(frozen=True)
class PrivateKey:
    """RSA private key; keep it secret (the paper's attack model assumes an
    honest majority that does not share private keys, §3.2).

    When the prime factors ``p``/``q`` are retained (they are for keys
    from :func:`generate_keypair`), signing uses the standard CRT
    shortcut — two half-size modexps recombined with Garner's formula —
    which produces the *same* signature value roughly 3–4× faster.
    Keys built from ``(n, d)`` alone keep the single full-size modexp.
    """

    n: int
    d: int
    p: Optional[int] = None
    q: Optional[int] = None

    def sign(self, message) -> int:
        h = int(sha256_hex(message), 16) % self.n
        p, q = self.p, self.q
        if p is None or q is None:
            return pow(h, self.d, self.n)
        # CRT: sign modulo each prime, then recombine.  Bit-identical to
        # pow(h, d, n) by the Chinese Remainder Theorem.  The per-prime
        # exponents and Garner coefficient are constants of the key, so
        # they are computed once and memoised on the frozen instance.
        consts = getattr(self, "_crt_memo", None)
        if consts is None:
            consts = (self.d % (p - 1), self.d % (q - 1), pow(q, -1, p))
            object.__setattr__(self, "_crt_memo", consts)
        dp, dq, qinv = consts
        m1 = pow(h % p, dp, p)
        m2 = pow(h % q, dq, q)
        return m2 + ((m1 - m2) * qinv % p) * q


@dataclass(frozen=True)
class KeyPair:
    public: PublicKey
    private: PrivateKey

    def sign(self, message) -> int:
        return self.private.sign(message)

    def verify(self, message, signature: int) -> bool:
        return self.public.verify(message, signature)


#: Memoised key pairs.  ``generate_keypair`` is a pure function of
#: ``(seed, bits)`` and the produced objects are immutable, so identical
#: requests can share one key pair.  Re-creating a session (the
#: differential replays, golden tests, repeated benchmarks) re-enrolls
#: the same identities; the prime search is by far the most expensive
#: part of session setup, so the memo pays for itself immediately.
_KEYPAIR_CACHE: Dict[Tuple[str, int], KeyPair] = {}
_KEYPAIR_CACHE_MAX = 512


def generate_keypair(seed, bits: int = _DEFAULT_KEY_BITS) -> KeyPair:
    """Deterministically generate an RSA key pair from ``seed``.

    Determinism keeps simulation runs reproducible; distinct seeds yield
    distinct keys with overwhelming probability.
    """
    if bits < 64:
        raise ValueError("key size too small to be meaningful")
    # The RNG below is seeded with str(seed), so (str(seed), bits) keys
    # the memo exactly as finely as the function's own determinism.
    cache_key = (f"repro-rsa:{seed}", bits)
    cached = _KEYPAIR_CACHE.get(cache_key)
    if cached is not None:
        return cached
    rng = random.Random(cache_key[0])
    e = 65537
    half = bits // 2
    while True:
        p = _random_prime(half, rng)
        q = _random_prime(bits - half, rng)
        if p == q:
            continue
        phi = (p - 1) * (q - 1)
        if phi % e == 0:
            continue
        n = p * q
        d = pow(e, -1, phi)
        pair = KeyPair(
            public=PublicKey(n=n, e=e),
            private=PrivateKey(n=n, d=d, p=p, q=q),
        )
        if len(_KEYPAIR_CACHE) >= _KEYPAIR_CACHE_MAX:
            _KEYPAIR_CACHE.clear()
        _KEYPAIR_CACHE[cache_key] = pair
        return pair


def crypto_cache_sizes() -> Dict[str, int]:
    """Current entry counts of the process-global memo caches."""
    return {"verify": len(_VERIFY_CACHE), "keypair": len(_KEYPAIR_CACHE)}


def reset_crypto_caches() -> Dict[str, int]:
    """Drop every process-global crypto memo; returns the prior sizes.

    The verify/keypair caches are pure memos — they can never change a
    verdict or a key — but they *do* change wall-clock timings and, in a
    forked worker, would start pre-warmed with whatever the parent had
    verified.  Worker processes of the process-parallel shard engine
    call this at bootstrap so every worker starts cold deterministically
    regardless of start method (fork inherits the parent's caches; spawn
    starts empty; after the reset both look identical).
    """
    sizes = crypto_cache_sizes()
    _VERIFY_CACHE.clear()
    _KEYPAIR_CACHE.clear()
    return sizes


# ----------------------------------------------------------------------
# batch verification

#: Bit width of the per-item randomizers in the product batch check.  An
#: adversary who cannot predict them forges a passing batch containing an
#: invalid signature with probability ~2^-64.
_BATCH_RAND_BITS = 64

#: Auto-gate for the randomized-product path: a direct verification costs
#: ~e.bit_length() modular multiplications while the product check costs
#: ~2*_BATCH_RAND_BITS per item, so with the fleet-wide e = 65537 (17
#: bits) the "mathematical" batching is a *pessimisation* and the
#: amortised single-pass cache sweep is the whole win.  The product path
#: turns on automatically only for keys with large public exponents.
_PRODUCT_MIN_E_BITS = 2 * _BATCH_RAND_BITS


def _batch_randomizers(
    n: int, e: int, group: List[Tuple[int, int, int]]
) -> List[int]:
    """Deterministic (Fiat–Shamir style) non-zero randomizers bound to the
    exact batch content, so no RNG state is consumed and replays of the
    same batch draw the same exponents."""
    seed = hashlib.sha256(
        ("batch:%x:%x:" % (n, e)).encode("ascii")
        + b"|".join(b"%x:%x" % (h, sig) for _, h, sig in group)
    ).digest()
    mask = (1 << _BATCH_RAND_BITS) - 1
    out: List[int] = []
    for i in range(len(group)):
        r = (
            int.from_bytes(
                hashlib.sha256(seed + i.to_bytes(4, "big")).digest()[:16], "big"
            )
            & mask
        )
        out.append(r | 1)  # never zero
    return out


def _product_check(n: int, e: int, group: List[Tuple[int, int, int]]) -> bool:
    """Bellare–Garay–Rabin small-exponents test for one ``(n, e)`` group:
    accepts iff ``(Π σ_i^{r_i})^e == Π h_i^{r_i} (mod n)`` — true whenever
    every signature is valid, false except with negligible probability
    when any is not."""
    randomizers = _batch_randomizers(n, e, group)
    lhs = 1
    rhs = 1
    for (_, h, sig), r in zip(group, randomizers):
        lhs = lhs * pow(sig, r, n) % n
        rhs = rhs * pow(h, r, n) % n
    return pow(lhs, e, n) == rhs


def verify_batch(
    items: Sequence[Tuple["PublicKey", Any, int]],
    fresh: bool = False,
    force_product: Optional[bool] = None,
) -> List[bool]:
    """Verify many ``(public_key, message, signature)`` triples in one
    amortised pass; returns one verdict per item, in order, identical to
    calling :meth:`PublicKey.verify` in a loop.

    The amortisation is structural, not mathematical: one sweep resolves
    every item against the process-wide verdict cache, only the misses
    pay a modexp, and all fresh verdicts are written back in one go.  For
    keys with large public exponents (``e.bit_length() >=``
    :data:`_PRODUCT_MIN_E_BITS`) same-key groups additionally use the
    randomized-product check, attributing the exact bad signatures by
    per-item fallback when the product test fails.  ``force_product``
    overrides the auto-gate in either direction (used by the property
    tests; with the fleet-wide e = 65537 the product path costs more
    modular multiplications than it saves).

    ``fresh=True`` is the audit bypass: every item is re-verified with
    :meth:`PublicKey.verify_uncached`, no cache reads or writes.
    """
    results: List[Optional[bool]] = [None] * len(items)
    if fresh:
        return [key.verify_uncached(message, sig) for key, message, sig in items]

    # Pass 1: structural rejects + one cache sweep.
    misses: List[int] = []
    for i, (key, message, sig) in enumerate(items):
        if not isinstance(sig, int) or not 0 < sig < key.n:
            results[i] = False
            continue
        try:
            cached = _VERIFY_CACHE.get((key.n, key.e, message, sig))
        except TypeError:  # unhashable message: uncacheable, verify directly
            results[i] = key.verify_uncached(message, sig)
            continue
        if cached is not None:
            results[i] = cached
        else:
            misses.append(i)

    # Pass 2: group cache misses by key material.
    groups: dict = {}
    for i in misses:
        key, message, sig = items[i]
        h = int(sha256_hex(message), 16) % key.n
        groups.setdefault((key.n, key.e), []).append((i, h, sig))

    fills: List[Tuple[int, bool]] = []
    for (n, e), group in groups.items():
        use_product = (
            force_product
            if force_product is not None
            else e.bit_length() >= _PRODUCT_MIN_E_BITS
        )
        if use_product and len(group) >= 2 and _product_check(n, e, group):
            for i, _, _ in group:
                results[i] = True
                fills.append((i, True))
            continue
        # Product test failed (or was not profitable): per-item verify
        # attributes the exact bad signature(s).
        for i, h, sig in group:
            ok = pow(sig, e, n) == h
            results[i] = ok
            fills.append((i, ok))

    # Pass 3: one write-back sweep for all freshly computed verdicts.
    if fills:
        if len(_VERIFY_CACHE) + len(fills) > _VERIFY_CACHE_MAX:
            _VERIFY_CACHE.clear()
        for i, ok in fills:
            key, message, sig = items[i]
            _VERIFY_CACHE[(key.n, key.e, message, sig)] = ok

    return [bool(r) for r in results]
