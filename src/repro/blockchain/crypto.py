"""Cryptographic primitives: hashing, Merkle trees and RSA signatures.

The blockchain substrate needs (a) tamper-evident hash chaining, (b) a
Merkle root over block transactions and (c) real public-key signatures so
that PKI certificates and endorsements are verifiable by anyone holding
the public key (the paper binds peer identities to the blockchain with
PKI certificates, §5).

We implement textbook RSA over 512-bit moduli with deterministic key
generation from a seed.  512 bits is of course not secure against a 2026
adversary — it is chosen so that key generation and signing stay fast in
pure Python while every verification in the system is a *real*
asymmetric check, not a stub.  Swapping in a stronger scheme only means
changing this module.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import Any, List, Sequence

__all__ = [
    "sha256_hex",
    "canonical_digest",
    "merkle_root",
    "PublicKey",
    "PrivateKey",
    "KeyPair",
    "generate_keypair",
]

_DEFAULT_KEY_BITS = 512


def sha256_hex(data) -> str:
    """SHA-256 hex digest of ``data`` (str is encoded UTF-8)."""
    if isinstance(data, str):
        data = data.encode("utf-8")
    return hashlib.sha256(data).hexdigest()


def _reject_non_native(obj: Any) -> Any:
    """Refuse to digest objects json cannot represent natively.

    The previous ``default=str`` fallback silently collided distinct
    objects (two dataclasses with equal ``str()`` digested equally) and
    made digests depend on ``repr`` stability.  Anything hashed into the
    chain must be explicitly reduced to JSON-native types first.
    """
    raise TypeError(
        f"canonical_digest: {type(obj).__name__} is not JSON-native; convert "
        "it explicitly (e.g. to_dict()/list) before hashing"
    )


def canonical_digest(obj: Any) -> str:
    """Digest of a JSON-native object tree, with sorted keys so logically
    equal objects hash equally.  Raises ``TypeError`` on non-native types
    (no silent ``str()`` fallback)."""
    return sha256_hex(
        json.dumps(obj, sort_keys=True, separators=(",", ":"), default=_reject_non_native)
    )


def merkle_root(leaves: Sequence[str]) -> str:
    """Merkle root over a sequence of hex-digest leaves.

    An empty sequence hashes to the digest of the empty string; odd levels
    duplicate the final node (Bitcoin-style).
    """
    if not leaves:
        return sha256_hex(b"")
    level: List[str] = [sha256_hex(leaf) for leaf in leaves]
    while len(level) > 1:
        if len(level) % 2 == 1:
            level.append(level[-1])
        level = [
            sha256_hex(level[i] + level[i + 1]) for i in range(0, len(level), 2)
        ]
    return level[0]


# ----------------------------------------------------------------------
# RSA

def _miller_rabin(n: int, rng: random.Random, rounds: int = 24) -> bool:
    if n < 2:
        return False
    for small in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % small == 0:
            return n == small
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _random_prime(bits: int, rng: random.Random) -> int:
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if _miller_rabin(candidate, rng):
            return candidate


#: Process-wide memo of verification verdicts keyed by
#: ``(n, e, message, signature)``.  In the simulator every peer is handed
#: the *same* gossiped transaction/certificate objects, so N peers
#: re-checking one signature would otherwise each pay the modexp; the
#: verdict is a pure function of the key material, message and signature,
#: so caching cannot change any result.  Bounded: cleared when full.
_VERIFY_CACHE: dict = {}
_VERIFY_CACHE_MAX = 1 << 17


@dataclass(frozen=True)
class PublicKey:
    """RSA public key ``(n, e)``."""

    n: int
    e: int

    def verify(self, message, signature: int) -> bool:
        """True iff ``signature`` is a valid RSA signature over ``message``.

        Verdicts are memoised process-wide (see :data:`_VERIFY_CACHE`);
        :meth:`verify_uncached` bypasses the memo for audit paths.
        """
        if not isinstance(signature, int) or not 0 < signature < self.n:
            return False
        try:
            key = (self.n, self.e, message, signature)
            cached = _VERIFY_CACHE.get(key)
        except TypeError:  # unhashable message (e.g. bytearray)
            return self.verify_uncached(message, signature)
        if cached is None:
            cached = self.verify_uncached(message, signature)
            if len(_VERIFY_CACHE) >= _VERIFY_CACHE_MAX:
                _VERIFY_CACHE.clear()
            _VERIFY_CACHE[key] = cached
        return cached

    def verify_uncached(self, message, signature: int) -> bool:
        """The real asymmetric check, no memoisation."""
        if not isinstance(signature, int) or not 0 < signature < self.n:
            return False
        h = int(sha256_hex(message), 16) % self.n
        return pow(signature, self.e, self.n) == h

    def fingerprint(self) -> str:
        """Stable identifier for this key (hash of its components)."""
        return sha256_hex(f"{self.n:x}:{self.e:x}")[:16]

    def to_dict(self) -> dict:
        return {"n": f"{self.n:x}", "e": self.e}

    @classmethod
    def from_dict(cls, d: dict) -> "PublicKey":
        return cls(n=int(d["n"], 16), e=int(d["e"]))


@dataclass(frozen=True)
class PrivateKey:
    """RSA private key; keep it secret (the paper's attack model assumes an
    honest majority that does not share private keys, §3.2)."""

    n: int
    d: int

    def sign(self, message) -> int:
        h = int(sha256_hex(message), 16) % self.n
        return pow(h, self.d, self.n)


@dataclass(frozen=True)
class KeyPair:
    public: PublicKey
    private: PrivateKey

    def sign(self, message) -> int:
        return self.private.sign(message)

    def verify(self, message, signature: int) -> bool:
        return self.public.verify(message, signature)


def generate_keypair(seed, bits: int = _DEFAULT_KEY_BITS) -> KeyPair:
    """Deterministically generate an RSA key pair from ``seed``.

    Determinism keeps simulation runs reproducible; distinct seeds yield
    distinct keys with overwhelming probability.
    """
    if bits < 64:
        raise ValueError("key size too small to be meaningful")
    rng = random.Random(f"repro-rsa:{seed}")
    e = 65537
    half = bits // 2
    while True:
        p = _random_prime(half, rng)
        q = _random_prime(bits - half, rng)
        if p == q:
            continue
        phi = (p - 1) * (q - 1)
        if phi % e == 0:
            continue
        n = p * q
        d = pow(e, -1, phi)
        return KeyPair(public=PublicKey(n=n, e=e), private=PrivateKey(n=n, d=d))
