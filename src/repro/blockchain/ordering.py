"""The ordering service.

"The ordering service is a high availability cluster of nodes that
leverage protocols such as Kafka to reach consensus over the order of
the transactions submitted to the blockchain.  The orderers use the
transaction's timestamp to order it within a block, before sending the
block out for validation." (§4, footnote 1)

We model the cluster as one logical host with a configurable block-
assembly cost.  Two cutting rules come straight from the paper's
optimisations (§6):

* ``max_block_txs`` — the block size, tuned to the number of frequently
  updated, mutually exclusive assets (5 for Doom);
* ``mutually_exclusive_blocks`` — only transactions with disjoint
  declared key sets share a block, so none can invalidate another via
  the block-level KVS lock.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Set

from ..simnet.clock import Timer
from ..simnet.latency import Region
from ..simnet.topology import Host
from .block import Block, make_block
from .config import FabricConfig
from .messages import DeliverBlock, RequestBlocks, SubmitTx
from .transaction import Transaction

__all__ = ["OrderingService"]


class OrderingService(Host):
    """Orders submitted transactions into blocks and delivers them to peers."""

    def __init__(
        self,
        name: str = "orderer",
        region: str = Region.DALLAS,
        config: Optional[FabricConfig] = None,
        genesis: Optional[Block] = None,
    ):
        super().__init__(name, region)
        self.config = config if config is not None else FabricConfig()
        self._queue: List[Transaction] = []
        self._peers: List[Host] = []
        self._next_number = 1
        self._previous_hash = genesis.digest() if genesis is not None else "0" * 64
        self._timeout: Optional[Timer] = None
        self._cut_blocks: List[Block] = []  # retained for catch-up requests
        self.blocks_cut = 0
        self.txs_ordered = 0
        #: Observer called with each freshly cut block (chaos timelines).
        self.on_block_cut: Optional[Callable[[Block], None]] = None
        #: Optional :class:`repro.telemetry.Telemetry` (None = disabled).
        #: Typed ``Any`` — the telemetry package must stay optional here.
        self.telemetry: Any = None
        #: Optional :class:`repro.staticcheck.plan.ConflictPlanner`; when
        #: set, every cut block gets a lane plan in its (non-hashed)
        #: metadata.  Advisory only: never reorders or drops transactions.
        #: Typed ``Any`` to avoid a blockchain → staticcheck import cycle.
        self.planner: Any = None

    def set_genesis(self, genesis: Block) -> None:
        """Anchor the chain this orderer extends (before any block is cut)."""
        if self._next_number != 1:
            raise RuntimeError("cannot re-anchor after blocks were cut")
        self._previous_hash = genesis.digest()

    def connect_peers(self, peers: List[Host]) -> None:
        """Register the peers that receive every cut block."""
        self._peers = list(peers)

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    # message handling

    def handle_message(self, src: Host, payload) -> None:
        if isinstance(payload, SubmitTx):
            self.submit(payload.tx)
        elif isinstance(payload, RequestBlocks):
            self._retransmit(src, payload)
        else:
            raise TypeError(f"orderer cannot handle {type(payload).__name__}")

    def _retransmit(self, peer: Host, request: RequestBlocks) -> None:
        """Re-deliver a block range to one peer (gap recovery)."""
        for number in range(request.from_number, request.to_number + 1):
            index = number - 1
            if 0 <= index < len(self._cut_blocks):
                block = self._cut_blocks[index]
                size = block.size_bytes(
                    self.config.tx_bytes, self.config.block_overhead_bytes
                )
                self.send(peer, DeliverBlock(block), size_bytes=size)

    def submit(self, tx: Transaction) -> None:
        """Enqueue a transaction; cut a block when the batch fills."""
        self._queue.append(tx)
        if self.telemetry is not None:
            self.telemetry.tx_enqueued(tx)
        if self._eligible_count() >= self.config.max_block_txs:
            self._cut_block()
        elif self._timeout is None or not self._timeout.active:
            self._timeout = self.network.scheduler.call_after(
                self.config.batch_timeout_ms, self._on_timeout
            )

    def _on_timeout(self) -> None:
        if self._queue:
            self._cut_block()

    def _eligible_count(self) -> int:
        """How many queued transactions could go into the next block."""
        if not self.config.mutually_exclusive_blocks:
            return min(len(self._queue), self.config.max_block_txs)
        return len(self._select_mutually_exclusive())

    def _select_mutually_exclusive(self) -> List[Transaction]:
        """Greedy front-to-back scan: take a transaction when its declared
        keys are disjoint from everything already taken.  Conflicting
        transactions stay queued for the next block, which preserves
        their order relative to the conflicting key."""
        taken: List[Transaction] = []
        taken_keys: Set[str] = set()
        for tx in self._queue:
            keys = set(tx.proposal.touched_keys)
            if not keys:
                # Undeclared transactions are conservatively assumed to
                # conflict with everything: they travel alone.
                if not taken:
                    taken.append(tx)
                break
            if keys & taken_keys:
                continue
            taken.append(tx)
            taken_keys |= keys
            if len(taken) >= self.config.max_block_txs:
                break
        return taken

    def _cut_block(self) -> None:
        if self._timeout is not None:
            self._timeout.cancel()
            self._timeout = None
        if self.config.mutually_exclusive_blocks:
            chosen = self._select_mutually_exclusive()
            chosen_ids = {id(tx) for tx in chosen}
            self._queue = [tx for tx in self._queue if id(tx) not in chosen_ids]
        else:
            chosen = self._queue[: self.config.max_block_txs]
            self._queue = self._queue[self.config.max_block_txs :]
        if not chosen:
            return

        # Order within the block by submission timestamp (footnote 1);
        # prioritised functions jump ahead (extension for §8(2)).
        priority = self.config.priority_functions
        chosen.sort(
            key=lambda tx: (
                tx.proposal.function not in priority,
                tx.proposal.timestamp,
            )
        )
        block = make_block(
            number=self._next_number,
            previous_hash=self._previous_hash,
            transactions=chosen,
            timestamp=self.network.scheduler.now,
        )
        if self.planner is not None:
            block.plan = self.planner.plan_block(chosen).to_json()
        self._next_number += 1
        self._previous_hash = block.digest()
        self._cut_blocks.append(block)
        self.blocks_cut += 1
        self.txs_ordered += len(chosen)
        if self.telemetry is not None:
            self.telemetry.block_cut(block)
        if self.on_block_cut is not None:
            self.on_block_cut(block)

        size = block.size_bytes(self.config.tx_bytes, self.config.block_overhead_bytes)
        self.network.scheduler.call_after(
            self.config.order_ms_per_block, self._deliver, block, size
        )
        # More work may already be waiting.
        if self._queue and self._eligible_count() >= self.config.max_block_txs:
            self.network.scheduler.call_after(
                self.config.order_ms_per_block, self._maybe_cut_more
            )
        elif self._queue:
            self._timeout = self.network.scheduler.call_after(
                self.config.batch_timeout_ms, self._on_timeout
            )

    def _maybe_cut_more(self) -> None:
        if self._queue:
            self._cut_block()

    def _deliver(self, block: Block, size: int) -> None:
        self.send_many(self._peers, DeliverBlock(block), size_bytes=size)
