"""The append-only ledger: hash-chained blocks plus versioned world state.

Commit-time validation implements Fabric v1.0's two rules exactly:

* **MVCC read check** — a transaction is invalid if any key it read has a
  committed version different from the version it observed at execution.
* **Block-level KVS conflict** — a transaction is invalid if any key it
  touches was already written by an earlier valid transaction *in the
  same block* ("if a player shoots two successive bullets and the two
  events spawn two transactions within the same block, Fabric will
  reject the latter transaction", §6).

These rules are what make the paper's per-player-per-asset KVS split and
mutually-exclusive-block optimisations measurable rather than asserted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .block import Block
from .state import Version, WorldState
from .transaction import RWSet, TxValidationCode

__all__ = ["TxExecution", "Ledger", "LedgerError"]


class LedgerError(RuntimeError):
    """Raised on invalid ledger operations (bad chain linkage etc.)."""


@dataclass
class TxExecution:
    """Outcome of executing one transaction's contract call locally.

    ``code`` is :data:`TxValidationCode.VALID` when the contract accepted
    the update; otherwise the contract-level failure
    (``CONTRACT_REJECTED``, ``DUPLICATE_NONCE``, ...).  The ledger may
    still downgrade a VALID execution to an MVCC conflict at commit.
    """

    rwset: RWSet
    code: str = TxValidationCode.VALID


class Ledger:
    """One peer's copy of the chain and world state."""

    def __init__(self, genesis: Block):
        if genesis.number != 0:
            raise LedgerError("genesis block must have number 0")
        self._blocks: List[Block] = [genesis]
        self.state = WorldState()
        self._tx_index: Dict[str, Tuple[str, int]] = {}  # tx_id -> (code, block number)
        #: Observer called after every successful append with
        #: ``(block, executions, codes)`` — the chaos invariant monitor
        #: hooks here to re-check MVCC and cross-peer consistency.
        self.on_append = None

    # ------------------------------------------------------------------
    # chain accessors

    @property
    def height(self) -> int:
        """Number of blocks in the chain (genesis included)."""
        return len(self._blocks)

    @property
    def last_block(self) -> Block:
        return self._blocks[-1]

    @property
    def last_hash(self) -> str:
        return self._blocks[-1].digest()

    def block(self, number: int) -> Block:
        return self._blocks[number]

    def blocks(self) -> List[Block]:
        return list(self._blocks)

    @property
    def genesis(self) -> Block:
        return self._blocks[0]

    # ------------------------------------------------------------------
    # commit

    def append(self, block: Block, executions: List[TxExecution]) -> List[str]:
        """Validate and commit ``block``; returns final per-tx codes.

        ``executions`` must align 1:1 with ``block.transactions``.
        """
        if block.number != self.height:
            raise LedgerError(
                f"expected block {self.height}, got {block.number}"
            )
        if block.header.previous_hash != self.last_hash:
            raise LedgerError("previous-hash mismatch: chain fork or tampering")
        if block.data_digest() != block.header.data_hash:
            raise LedgerError("block data hash does not match transactions")
        if len(executions) != len(block.transactions):
            raise LedgerError("one execution result required per transaction")

        codes: List[str] = []
        written_this_block: Set[str] = set()
        for idx, (tx, execution) in enumerate(zip(block.transactions, executions)):
            code = execution.code
            if code == TxValidationCode.VALID:
                code = self._mvcc_check(execution.rwset, written_this_block)
            if code == TxValidationCode.VALID:
                version = Version(block.number, idx)
                for key, value in execution.rwset.writes:
                    self.state.put(key, value, version)
                    written_this_block.add(key)
            codes.append(code)
            self._tx_index[tx.tx_id] = (code, block.number)

        block.validation_codes = codes
        self._blocks.append(block)
        if self.on_append is not None:
            self.on_append(block, executions, codes)
        return codes

    def _mvcc_check(self, rwset: RWSet, written_this_block: Set[str]) -> str:
        for key, observed in rwset.reads:
            if key in written_this_block:
                return TxValidationCode.MVCC_READ_CONFLICT
            current = self.state.version_of(key)
            current_tuple = current.to_tuple() if current is not None else None
            if current_tuple != observed:
                return TxValidationCode.MVCC_READ_CONFLICT
        for key, _ in rwset.writes:
            if key in written_this_block:
                return TxValidationCode.MVCC_READ_CONFLICT
        return TxValidationCode.VALID

    # ------------------------------------------------------------------
    # queries

    def tx_status(self, tx_id: str) -> Tuple[str, Optional[int]]:
        """(validation code, block number) for a transaction, or
        (PENDING, None) when not yet committed."""
        if tx_id in self._tx_index:
            return self._tx_index[tx_id]
        return (TxValidationCode.PENDING, None)

    def committed_tx_ids(self) -> List[str]:
        return list(self._tx_index)

    def state_hash(self) -> str:
        return self.state.state_hash()

    # ------------------------------------------------------------------
    # integrity

    def validate_chain(self) -> bool:
        """Recompute every hash link; False if any block was tampered with.

        Uses the ``fresh`` (non-memoised) digest paths throughout: the
        whole point of this walk is to detect objects mutated in place
        after their digests were first computed, so cached digests must
        not be trusted here.
        """
        for i in range(1, len(self._blocks)):
            block = self._blocks[i]
            if block.header.previous_hash != self._blocks[i - 1].digest(fresh=True):
                return False
            if block.data_digest(fresh=True) != block.header.data_hash:
                return False
        return True
