"""Platform configuration: block cutting, compute costs, message sizes.

The compute-cost constants are calibrated against the paper's Fabric
v1.0 measurements so that the aggregate event-validation latency curve
reproduces Fig. 3c's shape (see DESIGN.md §6 and EXPERIMENTS.md).  They
are per-operation CPU costs in *simulated* milliseconds; each peer
serialises its CPU work, which is what makes vote and sync processing
grow linearly with peer count.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["FabricConfig"]


@dataclass
class FabricConfig:
    """Tunable parameters of the blockchain platform.

    Block cutting:
        max_block_txs: transactions per block ("block size", §6 opt. ii).
            The paper varies this from 1 to 5 — 5 matching the number of
            frequently updated assets.
        batch_timeout_ms: cut a partial block after this long.
        mutually_exclusive_blocks: restrict a block to transactions whose
            declared key sets are disjoint (§6 opt. ii), so no
            block-level KVS conflict can invalidate them.

    Compute costs (simulated ms of peer CPU):
        exec_ms_per_tx: contract execution + endorsement checks per tx.
        sig_verify_ms: verifying a transaction creator's signature.
        vote_verify_ms: processing one incoming vote message.
        sync_verify_ms: processing one incoming state-hash message.
        commit_ms_per_tx: applying a validated write set.
        order_ms_per_block: ordering-service block assembly cost.

    Wire sizes (bytes, drive transport serialisation):
        tx_bytes: a transaction with certificate and signature.
        block_overhead_bytes: block header/metadata.
        vote_msg_bytes / sync_msg_bytes / query_msg_bytes: control traffic.

    Security switches:
        verify_signatures: run real RSA verification of submitted
            transactions at every peer (recommended; disable only in
            micro-benchmarks that measure something else).
    """

    max_block_txs: int = 1
    batch_timeout_ms: float = 5.0
    mutually_exclusive_blocks: bool = False

    exec_ms_per_tx: float = 0.9
    sig_verify_ms: float = 0.4
    vote_verify_ms: float = 0.5
    sync_verify_ms: float = 0.2
    commit_ms_per_tx: float = 0.3
    order_ms_per_block: float = 0.8
    #: Ledger state-transfer time before a peer can attest its post-commit
    #: state hash: sync_base_ms + sync_per_peer_ms * n_peers.  The state
    #: transfer plane is separate from the CPU but handles one block at a
    #: time, so single-transaction blocks queue for it while a full block
    #: pays once — the amortisation of §6 opt. ii.  Calibrated to Fabric
    #: v1.0's measured ledger-synchronisation times (Fig. 3c).
    sync_base_ms: float = 2.0
    sync_per_peer_ms: float = 1.3

    tx_bytes: int = 2500
    block_overhead_bytes: int = 2500
    vote_msg_bytes: int = 512
    sync_msg_bytes: int = 256
    query_msg_bytes: int = 128

    verify_signatures: bool = True

    #: Anti-entropy retransmission: a peer with unfinished consensus work
    #: (an executed-but-undecided block, an unacknowledged sync hash, or a
    #: known delivery gap) re-broadcasts its vote / state hash / backfill
    #: request every ``anti_entropy_ms`` until it either makes progress or
    #: has retried ``anti_entropy_max_retries`` times without any.  This
    #: is what lets consensus survive *message-level* faults (drops,
    #: floods) rather than only whole-host takedowns; retries are bounded
    #: so a genuinely dead quorum still lets the simulation quiesce.
    #: ``anti_entropy_ms = 0`` disables retransmission entirely.
    anti_entropy_ms: float = 400.0
    anti_entropy_max_retries: int = 3

    #: Static-analysis-guided ordering (ROADMAP item 3): when enabled, the
    #: ordering service runs the staticcheck ConflictPlanner over every cut
    #: block and records the resulting lane partition in non-hashed block
    #: metadata.  Strictly advisory — transaction order, block contents and
    #: commit outcomes are bit-identical with the flag on or off (pinned by
    #: the golden chaos record); the plan tells validators which
    #: transactions are provably independent.
    conflict_planner: bool = False

    #: Lane-parallel block validation (consumes the planner's lanes): when
    #: enabled, peers validate a block's provably-independent transaction
    #: lanes through the parallel :class:`~repro.blockchain.execution.
    #: ValidationExecutor` instead of the serial one, and the ordering
    #: service is armed with the ConflictPlanner automatically.  Simulated
    #: results — digests, ledgers, votes, telemetry spans, golden records
    #: — are bit-identical either way (pinned by the differential suite in
    #: ``tests/test_validation_parallel_diff.py``); the executor only
    #: changes how the *host* computes them.
    parallel_validation: bool = False
    #: Worker threads for the parallel executor; 0 means auto (one worker
    #: per available core, capped at 4).  With one worker the executor
    #: still partitions by lane and merges deterministically, but runs the
    #: lanes inline instead of paying thread-pool overhead.
    validation_workers: int = 0
    #: Cross-peer block-execution memoisation: peers executing the *same*
    #: block object on the *same* basis state (same genesis, contracts and
    #: pre-block state hash) reuse the first peer's execution results
    #: instead of re-running contracts and signature checks.  Execution is
    #: deterministic, so the shared results are exactly what each peer
    #: would have computed; peers with instance-patched execution paths
    #: (chaos buggy fixtures) bypass the cache automatically.
    shared_execution_cache: bool = True

    #: Cross-shard swap protocol (``repro.blockchain.swaps``): a swap
    #: still undecided (prepare phase) after ``swap_timeout_ms`` of
    #: simulated time is aborted by its coordinator, releasing the locks
    #: on both shards.  Committing swaps ignore the timeout — past the
    #: point of no return the protocol rolls forward.
    swap_timeout_ms: float = 4_000.0
    #: Poll tick of the swap coordinator's per-shard clients; a swap is
    #: four dependent transactions, so its latency is roughly four
    #: commit latencies quantised to this tick.
    swap_poll_interval_ms: float = 50.0

    #: Extension addressing limitation §8(2): contract functions listed
    #: here are ordered ahead of others within a block (a C/S server
    #: "may prioritize SHOOT events over location updates"); the default
    #: empty tuple keeps the paper's pure timestamp order.
    priority_functions: tuple = ()

    #: Transport backend a deployment constructs when it is not handed an
    #: existing network: ``"simnet"`` (deterministic discrete-event) or
    #: ``"realnet"`` (asyncio TCP on a wall clock — see DESIGN.md §15).
    #: Everything above the transport boundary is backend-agnostic; the
    #: flag only selects which fabric ``BlockchainNetwork`` builds.
    backend: str = "simnet"

    def with_options(self, **kwargs) -> "FabricConfig":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)

    def __post_init__(self) -> None:
        if self.max_block_txs < 1:
            raise ValueError("max_block_txs must be >= 1")
        if self.batch_timeout_ms <= 0:
            raise ValueError("batch_timeout_ms must be positive")
        if self.validation_workers < 0:
            raise ValueError("validation_workers must be >= 0 (0 = auto)")
        if self.swap_timeout_ms <= 0:
            raise ValueError("swap_timeout_ms must be positive")
        if self.swap_poll_interval_ms <= 0:
            raise ValueError("swap_poll_interval_ms must be positive")
        if self.backend not in ("simnet", "realnet"):
            raise ValueError(f"unknown transport backend {self.backend!r}")
