"""Atomic cross-shard asset transfers: two-phase prepare/commit.

A sharded room (:class:`~repro.blockchain.sharding.ShardedDeployment`)
partitions the key space, so "player trades an item between sessions on
different shards" cannot be one transaction — no single shard's ledger
sees both sides.  This module implements the classic resolution:

1. **prepare** — lock the asset on the source shard
   (``swap_prepare_out``), then create a matching value-carrying lock on
   the destination shard (``swap_prepare_in``).  A lock names the swap
   that owns it; a locked asset rejects every other swap and transfer.
2. **commit** — tombstone the asset on the source shard
   (``swap_commit_out``), then materialise it from the carried lock on
   the destination (``swap_commit_in``).  The commit order is fixed:
   the destination record is only ever created *after* the source
   record is provably gone, so no consistent cut across shards can
   observe the asset twice.
3. **abort** — clear the locks (``swap_abort``); legal any time before
   ``swap_commit_out`` is submitted, after which the protocol is past
   its point of no return and must roll forward.

The :class:`SwapCoordinator` drives the sequence through ordinary
per-shard :class:`~repro.blockchain.client.BlockchainClient` submissions
and is itself a crashable host-side state machine: :meth:`~
SwapCoordinator.crash` freezes it mid-protocol (locks stay on chain,
exactly like a real coordinator dying), and :meth:`~SwapCoordinator.
recover` re-derives each unresolved swap's fate from *committed chain
state only* — presumed abort when undecided, roll-forward when the
source tombstone proves the commit point was passed.  Timeouts abort
undecided swaps so locks are never leaked by a slow or dead
counterparty.

Conservation is checkable globally: :func:`check_conservation` scans
every shard's reference committed state and verifies each asset exists
exactly once — as a live record, or carried by an in-flight destination
lock — and never twice.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .contracts import Contract, ContractError, InvocationContext
from .sharding import ShardedDeployment
from .transaction import TxResult, TxValidationCode

__all__ = [
    "ShardAssetContract",
    "SwapState",
    "CrossShardSwap",
    "SwapCoordinator",
    "DeploymentSwapPort",
    "scan_assets",
    "scan_from_summaries",
    "check_conservation",
    "check_conservation_summaries",
]

ASSET_PREFIX = "asset/"
LOCK_PREFIX = "swaplock/"


def asset_key(asset_id: str) -> str:
    return f"{ASSET_PREFIX}{asset_id}"


def lock_key(asset_id: str) -> str:
    return f"{LOCK_PREFIX}{asset_id}"


def session_key(session_id: str, player_id: str) -> str:
    return f"sess/{session_id}/p/{player_id}"


class ShardAssetContract(Contract):
    """Session state plus swappable assets, deployed on every shard.

    Assets are ``asset/<id>`` records ``{"owner", "value"}``; swap locks
    are ``swaplock/<id>`` records naming the owning swap.  Deleting a
    record writes ``None`` (the ledger applies write sets verbatim and
    the state view treats a ``None`` value as absent), so a committed
    ``swap_commit_out`` is a durable tombstone.
    """

    name = "shardasset"

    def invoke(self, ctx: InvocationContext, function: str, args: Tuple) -> Any:
        handler = getattr(self, f"_fn_{function}", None)
        if handler is None:
            raise ContractError(f"unknown function {function!r}")
        return handler(ctx, *args)

    def functions(self) -> List[str]:
        return [
            "mint", "transfer", "session_event",
            "swap_prepare_out", "swap_prepare_in",
            "swap_commit_out", "swap_commit_in", "swap_abort",
        ]

    # -- plain session / asset operations ------------------------------

    def _fn_mint(self, ctx, asset_id: str, owner: str, value: int):
        if ctx.view.get(asset_key(asset_id)) is not None:
            raise ContractError(f"asset {asset_id} already exists")
        ctx.view.put(asset_key(asset_id), {"owner": owner, "value": int(value)})

    def _fn_transfer(self, ctx, asset_id: str, new_owner: str):
        record = ctx.view.get(asset_key(asset_id))
        if record is None:
            raise ContractError(f"no such asset {asset_id}")
        if ctx.view.get(lock_key(asset_id)) is not None:
            raise ContractError(f"asset {asset_id} is locked by a swap")
        ctx.view.put(
            asset_key(asset_id), {"owner": new_owner, "value": record["value"]}
        )

    def _fn_session_event(self, ctx, session_id: str, player_id: str, delta: int):
        key = session_key(session_id, player_id)
        current = ctx.view.get(key)
        ctx.view.put(key, (current or 0) + int(delta))

    # -- two-phase swap ------------------------------------------------

    def _fn_swap_prepare_out(self, ctx, swap_id: str, asset_id: str):
        record = ctx.view.get(asset_key(asset_id))
        if record is None:
            raise ContractError(f"no such asset {asset_id}")
        if ctx.view.get(lock_key(asset_id)) is not None:
            raise ContractError(f"asset {asset_id} already locked")
        ctx.view.put(
            lock_key(asset_id),
            {"swap": swap_id, "direction": "out",
             "owner": record["owner"], "value": record["value"]},
        )

    def _fn_swap_prepare_in(self, ctx, swap_id: str, asset_id: str,
                            new_owner: str, value: int):
        if ctx.view.get(asset_key(asset_id)) is not None:
            raise ContractError(f"asset {asset_id} already present here")
        if ctx.view.get(lock_key(asset_id)) is not None:
            raise ContractError(f"asset {asset_id} already locked here")
        ctx.view.put(
            lock_key(asset_id),
            {"swap": swap_id, "direction": "in",
             "owner": new_owner, "value": int(value)},
        )

    def _require_lock(self, ctx, swap_id: str, asset_id: str) -> Dict[str, Any]:
        lock = ctx.view.get(lock_key(asset_id))
        if lock is None:
            raise ContractError(f"no swap lock on {asset_id}")
        if lock["swap"] != swap_id:
            raise ContractError(
                f"lock on {asset_id} belongs to swap {lock['swap']!r}"
            )
        return lock

    def _fn_swap_commit_out(self, ctx, swap_id: str, asset_id: str):
        self._require_lock(ctx, swap_id, asset_id)
        ctx.view.put(asset_key(asset_id), None)   # tombstone: the value
        ctx.view.put(lock_key(asset_id), None)    # now lives in the in-lock


    def _fn_swap_commit_in(self, ctx, swap_id: str, asset_id: str):
        lock = self._require_lock(ctx, swap_id, asset_id)
        ctx.view.put(
            asset_key(asset_id), {"owner": lock["owner"], "value": lock["value"]}
        )
        ctx.view.put(lock_key(asset_id), None)

    def _fn_swap_abort(self, ctx, swap_id: str, asset_id: str):
        self._require_lock(ctx, swap_id, asset_id)
        ctx.view.put(lock_key(asset_id), None)


# ----------------------------------------------------------------------
# execution ports
#
# The coordinator is a pure host-side state machine; everything it needs
# from the outside world fits a five-method port, so the same 2PC logic
# drives both the in-process ShardedDeployment and the process-parallel
# BridgedShardEngine (repro.blockchain.shardworker.BridgeSwapPort).


class DeploymentSwapPort:
    """The classic backend: direct clients on a shared-clock deployment."""

    def __init__(self, deployment: ShardedDeployment, client_name: str = "swapcoord"):
        self.deployment = deployment
        self.client_name = client_name

    @property
    def now(self) -> float:
        return self.deployment.now

    @property
    def swap_timeout_ms(self) -> float:
        return self.deployment.config.swap_timeout_ms

    def call_after(self, delay: float, fn: Callable[..., Any], *args: Any):
        return self.deployment.scheduler.call_after(delay, fn, *args)

    def submit(
        self,
        shard_index: int,
        contract: str,
        function: str,
        args: Tuple,
        keys: Tuple[str, ...],
        on_complete: Callable[[TxResult, float], None],
    ) -> None:
        client = self.deployment.client_for_shard(
            shard_index, self.client_name,
            poll_interval_ms=self.deployment.config.swap_poll_interval_ms,
        )
        client.invoke(
            contract, function, args, touched_keys=keys, on_complete=on_complete
        )

    def committed_state_get(self, shard_index: int, key: str) -> Any:
        return self.deployment.committed_state_get(shard_index, key)


# ----------------------------------------------------------------------
# coordinator state machine


class SwapState(enum.Enum):
    PREPARING = "preparing"
    PREPARED = "prepared"
    COMMITTING = "committing"
    COMMITTED = "committed"
    ABORTING = "aborting"
    ABORTED = "aborted"


#: Outcome labels — the telemetry counter's ``outcome`` label values.
OUTCOME_COMMITTED = "committed"
OUTCOME_ABORTED = "aborted"
OUTCOME_TIMED_OUT = "timed_out"


@dataclass
class CrossShardSwap:
    """One in-flight (or finished) cross-shard transfer."""

    swap_id: str
    asset_id: str
    src_shard: int
    dst_shard: int
    new_owner: str
    value: int
    state: SwapState = SwapState.PREPARING
    outcome: Optional[str] = None
    started_at: float = 0.0
    prepared_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: prepares whose VALID commit this coordinator has observed.
    prepared_out: bool = False
    prepared_in: bool = False
    history: List[Tuple[float, str]] = field(default_factory=list)

    @property
    def done(self) -> bool:
        return self.state in (SwapState.COMMITTED, SwapState.ABORTED)


class SwapCoordinator:
    """Drives cross-shard swaps through per-shard clients.

    One coordinator can run many swaps concurrently; each swap is an
    independent state machine.  ``crash()`` models coordinator death:
    every pending callback and timer of the old incarnation is
    abandoned (in-flight *transactions* still commit — the chain does
    not care that their submitter died), and ``recover()`` later
    resolves the orphaned swaps from committed chain state alone.
    """

    def __init__(
        self,
        deployment: Optional[ShardedDeployment] = None,
        contract: str = "shardasset",
        timeout_ms: Optional[float] = None,
        telemetry=None,
        name: str = "swapcoord",
        commit_retries: int = 3,
        port=None,
    ):
        """Drive swaps over ``deployment`` (classic shared-clock backend)
        or an explicit ``port`` (any object with the
        :class:`DeploymentSwapPort` protocol, e.g. the bridged engine's
        ``BridgeSwapPort``); exactly one must be given."""
        if port is None:
            if deployment is None:
                raise ValueError("need a deployment or an explicit port")
            port = DeploymentSwapPort(deployment, client_name=name)
        elif deployment is not None:
            raise ValueError("pass either a deployment or a port, not both")
        self.port = port
        self.deployment = getattr(port, "deployment", None)
        self.contract = contract
        self.timeout_ms = (
            timeout_ms if timeout_ms is not None else port.swap_timeout_ms
        )
        self.telemetry = telemetry
        self.name = name
        self.commit_retries = commit_retries
        self.swaps: Dict[str, CrossShardSwap] = {}
        self.crashed = False
        self._generation = 0
        self._timers: Dict[str, Any] = {}
        self._aborts_inflight: Dict[str, int] = {}
        self._on_done: Dict[str, Callable[[CrossShardSwap], None]] = {}

    # -- plumbing ------------------------------------------------------

    @property
    def _now(self) -> float:
        return self.port.now

    def _submit(self, shard_index: int, function: str, args: Tuple,
                keys: Tuple[str, ...], handler: Callable[[TxResult], None]) -> None:
        generation = self._generation

        def on_complete(result: TxResult, _latency: float) -> None:
            if self.crashed or generation != self._generation:
                return
            handler(result)

        self.port.submit(
            shard_index, self.contract, function, args, keys, on_complete
        )

    def _mark(self, swap: CrossShardSwap, note: str) -> None:
        swap.history.append((round(self._now, 3), note))

    def _span(self, swap: CrossShardSwap, stage: str, start: float) -> None:
        if self.telemetry is not None:
            self.telemetry.swap_stage(swap.swap_id, stage, start, self._now)

    def _finish(self, swap: CrossShardSwap, state: SwapState, outcome: str) -> None:
        swap.state = state
        swap.outcome = outcome
        swap.finished_at = self._now
        self._mark(swap, outcome)
        timer = self._timers.pop(swap.swap_id, None)
        if timer is not None:
            timer.cancel()
        if self.telemetry is not None:
            self.telemetry.swap_outcome(outcome)
        callback = self._on_done.pop(swap.swap_id, None)
        if callback is not None:
            callback(swap)

    # -- lifecycle -----------------------------------------------------

    def crash(self) -> None:
        """Die mid-protocol: drop timers, ignore all pending callbacks."""
        self.crashed = True
        self._generation += 1
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()
        self._aborts_inflight.clear()

    def restart(self) -> None:
        self.crashed = False

    # -- the happy path ------------------------------------------------

    def start_swap(
        self,
        swap_id: str,
        asset_id: str,
        src_shard: int,
        dst_shard: int,
        new_owner: str,
        value: int,
        on_done: Optional[Callable[[CrossShardSwap], None]] = None,
    ) -> CrossShardSwap:
        if self.crashed:
            raise RuntimeError("coordinator crashed; call restart() first")
        if swap_id in self.swaps:
            raise ValueError(f"swap {swap_id!r} already started")
        swap = CrossShardSwap(
            swap_id=swap_id, asset_id=asset_id,
            src_shard=src_shard, dst_shard=dst_shard,
            new_owner=new_owner, value=value, started_at=self._now,
        )
        self.swaps[swap_id] = swap
        if on_done is not None:
            self._on_done[swap_id] = on_done
        self._mark(swap, "start")
        keys = (asset_key(asset_id), lock_key(asset_id))
        if src_shard == dst_shard:
            # Degenerate case: the router put both sessions on one shard,
            # so a plain single-shard transfer is already atomic.
            self._submit(
                src_shard, "transfer", (asset_id, new_owner), keys[:1],
                lambda result: self._on_local_transfer(swap, result),
            )
            return swap
        self._timers[swap_id] = self.port.call_after(
            self.timeout_ms, self._on_timeout, swap
        )
        self._submit(
            src_shard, "swap_prepare_out", (swap_id, asset_id), keys,
            lambda result: self._on_prepare_out(swap, result),
        )
        return swap

    def _on_local_transfer(self, swap: CrossShardSwap, result: TxResult) -> None:
        if result.code == TxValidationCode.VALID:
            self._span(swap, "commit", swap.started_at)
            self._finish(swap, SwapState.COMMITTED, OUTCOME_COMMITTED)
        else:
            self._finish(swap, SwapState.ABORTED, OUTCOME_ABORTED)

    def _on_prepare_out(self, swap: CrossShardSwap, result: TxResult) -> None:
        valid = result.code == TxValidationCode.VALID
        swap.prepared_out = valid
        self._mark(swap, f"prepare_out:{result.code}")
        if swap.state in (SwapState.ABORTING, SwapState.ABORTED):
            # Timed out while this prepare was in flight; if it made it
            # onto the chain after all, release its lock immediately.
            if valid:
                self._abort_side(swap, swap.src_shard)
            return
        if not valid:
            self._finish(swap, SwapState.ABORTED, OUTCOME_ABORTED)
            return
        self._submit(
            swap.dst_shard, "swap_prepare_in",
            (swap.swap_id, swap.asset_id, swap.new_owner, swap.value),
            (asset_key(swap.asset_id), lock_key(swap.asset_id)),
            lambda result: self._on_prepare_in(swap, result),
        )

    def _on_prepare_in(self, swap: CrossShardSwap, result: TxResult) -> None:
        valid = result.code == TxValidationCode.VALID
        swap.prepared_in = valid
        self._mark(swap, f"prepare_in:{result.code}")
        if swap.state in (SwapState.ABORTING, SwapState.ABORTED):
            if valid:
                self._abort_side(swap, swap.dst_shard)
            return
        if not valid:
            # Destination refused (asset materialised there, concurrent
            # lock, ...): roll back the source lock.
            swap.state = SwapState.ABORTING
            swap.outcome = OUTCOME_ABORTED
            self._abort_side(swap, swap.src_shard)
            return
        swap.state = SwapState.PREPARED
        swap.prepared_at = self._now
        self._span(swap, "prepare", swap.started_at)
        self._begin_commit(swap)

    def _begin_commit(self, swap: CrossShardSwap) -> None:
        # Point of no return: once swap_commit_out is submitted the
        # timeout can no longer abort — recovery must roll forward.
        swap.state = SwapState.COMMITTING
        timer = self._timers.pop(swap.swap_id, None)
        if timer is not None:
            timer.cancel()
        self._mark(swap, "commit_out")
        self._submit(
            swap.src_shard, "swap_commit_out", (swap.swap_id, swap.asset_id),
            (asset_key(swap.asset_id), lock_key(swap.asset_id)),
            lambda result: self._on_commit_out(swap, result),
        )

    def _on_commit_out(self, swap: CrossShardSwap, result: TxResult) -> None:
        self._mark(swap, f"commit_out:{result.code}")
        if result.code != TxValidationCode.VALID:
            # Nothing destroyed yet (the tombstone did not commit):
            # still safe to abort both sides.
            swap.state = SwapState.ABORTING
            swap.outcome = OUTCOME_ABORTED
            self._abort_side(swap, swap.src_shard)
            self._abort_side(swap, swap.dst_shard)
            return
        self._submit_commit_in(swap, self.commit_retries)

    def _submit_commit_in(self, swap: CrossShardSwap, retries: int) -> None:
        self._mark(swap, "commit_in")
        self._submit(
            swap.dst_shard, "swap_commit_in", (swap.swap_id, swap.asset_id),
            (asset_key(swap.asset_id), lock_key(swap.asset_id)),
            lambda result: self._on_commit_in(swap, result, retries),
        )

    def _on_commit_in(self, swap: CrossShardSwap, result: TxResult, retries: int) -> None:
        self._mark(swap, f"commit_in:{result.code}")
        if result.code == TxValidationCode.VALID:
            start = swap.prepared_at if swap.prepared_at is not None else swap.started_at
            self._span(swap, "commit", start)
            self._finish(swap, SwapState.COMMITTED, OUTCOME_COMMITTED)
            return
        # Past the point of no return: the source record is gone, the
        # destination lock still carries the value.  Roll forward.
        if retries > 0:
            self._submit_commit_in(swap, retries - 1)
        # else: leave COMMITTING for recover() to finish.

    # -- abort / timeout ----------------------------------------------

    def _abort_side(self, swap: CrossShardSwap, shard_index: int) -> None:
        self._aborts_inflight[swap.swap_id] = (
            self._aborts_inflight.get(swap.swap_id, 0) + 1
        )
        self._mark(swap, f"abort:s{shard_index}")
        self._submit(
            shard_index, "swap_abort", (swap.swap_id, swap.asset_id),
            (asset_key(swap.asset_id), lock_key(swap.asset_id)),
            lambda result: self._on_abort_done(swap, result),
        )

    def _on_abort_done(self, swap: CrossShardSwap, result: TxResult) -> None:
        # A rejected abort means the lock was already gone — same end
        # state, so both codes count as resolved.
        remaining = self._aborts_inflight.get(swap.swap_id, 1) - 1
        self._aborts_inflight[swap.swap_id] = remaining
        if remaining <= 0 and swap.state == SwapState.ABORTING:
            self._aborts_inflight.pop(swap.swap_id, None)
            self._span(swap, "abort", swap.started_at)
            self._finish(swap, SwapState.ABORTED, swap.outcome or OUTCOME_ABORTED)

    def _on_timeout(self, swap: CrossShardSwap) -> None:
        self._timers.pop(swap.swap_id, None)
        if swap.state not in (SwapState.PREPARING, SwapState.PREPARED):
            return
        swap.outcome = OUTCOME_TIMED_OUT
        swap.state = SwapState.ABORTING
        self._mark(swap, "timeout")
        aborted_any = False
        if swap.prepared_out:
            self._abort_side(swap, swap.src_shard)
            aborted_any = True
        if swap.prepared_in:
            self._abort_side(swap, swap.dst_shard)
            aborted_any = True
        if not aborted_any:
            # No confirmed lock anywhere; in-flight prepares (if any)
            # will be aborted by their completion callbacks.
            self._span(swap, "abort", swap.started_at)
            self._finish(swap, SwapState.ABORTED, OUTCOME_TIMED_OUT)

    # -- crash recovery ------------------------------------------------

    def recover(self) -> List[Tuple[str, str]]:
        """Resolve every unfinished swap from committed chain state.

        Call after a :meth:`restart`, once in-flight submissions have
        settled (the chain quiesced): reads each shard's reference
        committed state and either rolls the swap forward (the source
        tombstone proves ``swap_commit_out`` committed) or presumes
        abort.  Returns ``(swap_id, action)`` pairs for the log.
        """
        if self.crashed:
            raise RuntimeError("coordinator crashed; call restart() first")
        actions: List[Tuple[str, str]] = []
        for swap_id in sorted(self.swaps):
            swap = self.swaps[swap_id]
            if swap.done:
                continue
            actions.append((swap_id, self._recover_one(swap)))
        return actions

    def _lock_of(self, swap: CrossShardSwap, shard_index: int) -> Optional[Dict]:
        lock = self.port.committed_state_get(
            shard_index, lock_key(swap.asset_id)
        )
        if isinstance(lock, dict) and lock.get("swap") == swap.swap_id:
            return lock
        return None

    def _recover_one(self, swap: CrossShardSwap) -> str:
        port = self.port
        src_asset = port.committed_state_get(swap.src_shard, asset_key(swap.asset_id))
        if swap.src_shard == swap.dst_shard:
            if src_asset is not None and src_asset.get("owner") == swap.new_owner:
                self._finish(swap, SwapState.COMMITTED, OUTCOME_COMMITTED)
                return "local-committed"
            self._finish(swap, SwapState.ABORTED, OUTCOME_ABORTED)
            return "local-aborted"
        out_lock = self._lock_of(swap, swap.src_shard)
        in_lock = self._lock_of(swap, swap.dst_shard)
        dst_asset = port.committed_state_get(swap.dst_shard, asset_key(swap.asset_id))
        if out_lock is None and in_lock is None:
            # Fully settled one way or the other; the records tell which.
            if dst_asset is not None:
                self._finish(swap, SwapState.COMMITTED, OUTCOME_COMMITTED)
                return "already-committed"
            self._finish(swap, SwapState.ABORTED, swap.outcome or OUTCOME_ABORTED)
            return "already-aborted"
        if out_lock is not None:
            # Undecided (commit_out never committed): presumed abort.
            swap.state = SwapState.ABORTING
            swap.outcome = swap.outcome or OUTCOME_ABORTED
            self._abort_side(swap, swap.src_shard)
            if in_lock is not None:
                self._abort_side(swap, swap.dst_shard)
            return "presumed-abort"
        # in_lock only.  prepare_in is submitted strictly after
        # prepare_out commits, so the source side *did* prepare; its
        # lock being gone means either commit_out committed (asset
        # tombstoned → roll forward) or the source aborted first
        # (asset still there → abort the dangling destination lock).
        if src_asset is None:
            swap.state = SwapState.COMMITTING
            self._submit_commit_in(swap, self.commit_retries)
            return "roll-forward"
        swap.state = SwapState.ABORTING
        swap.outcome = swap.outcome or OUTCOME_ABORTED
        self._abort_side(swap, swap.dst_shard)
        return "abort-dangling-lock"

    def sweep_stale_locks(self) -> int:
        """Release locks owned by already-decided swaps; returns the
        number of ``swap_abort`` submissions made.

        A prepare delayed by a partition can commit *after* its swap was
        resolved (timeout, or crash recovery presuming abort on the
        lock's absence), leaving a lock no live state machine will ever
        clear.  Releasing it is always safe: a decided-aborted swap
        never submitted ``swap_commit_out``, so the asset record is
        intact and only the stale lock goes.  Run at quiescence until it
        returns 0.
        """
        if self.crashed:
            raise RuntimeError("coordinator crashed; call restart() first")
        submitted = 0
        for swap_id in sorted(self.swaps):
            swap = self.swaps[swap_id]
            if not swap.done:
                continue
            for shard in (swap.src_shard, swap.dst_shard):
                lock = self._lock_of(swap, shard)
                if lock is None:
                    continue
                if swap.state == SwapState.COMMITTED and lock["direction"] == "in":
                    # The committed path's own commit_in retries handle
                    # this lock; clearing it here would race them.
                    continue
                self._mark(swap, f"sweep:s{shard}")
                self._submit(
                    shard, "swap_abort", (swap_id, swap.asset_id),
                    (asset_key(swap.asset_id), lock_key(swap.asset_id)),
                    lambda result: None,
                )
                submitted += 1
        return submitted

    # -- bookkeeping ---------------------------------------------------

    def outcomes(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for swap_id in sorted(self.swaps):
            outcome = self.swaps[swap_id].outcome or "unresolved"
            tally[outcome] = tally.get(outcome, 0) + 1
        return dict(sorted(tally.items()))

    def unresolved(self) -> List[str]:
        return [sid for sid in sorted(self.swaps) if not self.swaps[sid].done]


# ----------------------------------------------------------------------
# global conservation


def scan_assets(
    deployment: ShardedDeployment,
) -> Dict[str, Dict[str, List[Tuple[int, Dict[str, Any]]]]]:
    """Every asset record and swap lock, per asset id, across shards.

    Reads each shard's reference committed state (see
    :meth:`ShardedDeployment.reference_peer`).  Shards with no reachable
    peer are skipped — their assets are unobservable, not destroyed.
    """
    out: Dict[str, Dict[str, List[Tuple[int, Dict[str, Any]]]]] = {}

    def slot(asset_id: str) -> Dict[str, List[Tuple[int, Dict[str, Any]]]]:
        return out.setdefault(asset_id, {"records": [], "locks": []})

    for index in range(deployment.n_shards):
        peer = deployment.reference_peer(index)
        if peer is None:
            continue
        for key, value in sorted(peer.ledger.state.snapshot().items()):
            if value is None:
                continue  # tombstone
            if key.startswith(ASSET_PREFIX):
                slot(key[len(ASSET_PREFIX):])["records"].append((index, value))
            elif key.startswith(LOCK_PREFIX):
                slot(key[len(LOCK_PREFIX):])["locks"].append((index, value))
    return out


def scan_from_summaries(
    summaries: Dict[int, Dict[str, Any]],
) -> Dict[str, Dict[str, List[Tuple[int, Dict[str, Any]]]]]:
    """Same shape as :func:`scan_assets`, built from worker summaries.

    Bridged engines (:class:`~repro.blockchain.shardworker.BridgedShardEngine`)
    keep shard state in worker processes; each worker ships its committed
    asset records and swap locks in its summary dict, so conservation is
    judged over the wire instead of by touching peer ledgers directly.
    """
    out: Dict[str, Dict[str, List[Tuple[int, Dict[str, Any]]]]] = {}

    def slot(asset_id: str) -> Dict[str, List[Tuple[int, Dict[str, Any]]]]:
        return out.setdefault(asset_id, {"records": [], "locks": []})

    for index in sorted(summaries):
        summary = summaries[index]
        for asset_id in sorted(summary.get("assets", {})):
            slot(asset_id)["records"].append((index, summary["assets"][asset_id]))
        for asset_id in sorted(summary.get("locks", {})):
            slot(asset_id)["locks"].append((index, summary["locks"][asset_id]))
    return out


def check_conservation(
    deployment: ShardedDeployment,
    minted: Dict[str, int],
    quiescent: bool = False,
) -> List[str]:
    """Global asset conservation across every shard; [] when it holds.

    Mid-run (``quiescent=False``) an asset may legitimately live in an
    in-flight destination lock (between ``swap_commit_out`` and
    ``swap_commit_in``); it must still exist *somewhere*, exactly once,
    at its minted value.  At quiescence the rules tighten: exactly one
    live record per asset and no surviving locks at all.
    """
    scan = scan_assets(deployment)
    reachability = [
        deployment.reference_peer(i) is not None
        for i in range(deployment.n_shards)
    ]
    if not any(reachability):
        return []  # nothing observable to judge
    # With a whole shard dark, an asset living there is unobservable,
    # not destroyed — only positive evidence (duplicates, value drift)
    # can be judged until every shard is readable again.
    return _check_scan(scan, minted, quiescent, all(reachability))


def check_conservation_summaries(
    summaries: Dict[int, Dict[str, Any]],
    minted: Dict[str, int],
    quiescent: bool = True,
) -> List[str]:
    """Conservation over bridged-engine worker summaries; [] when it holds.

    Summaries reflect every shard (workers always answer), so the strict
    all-shards-readable rules apply.
    """
    return _check_scan(scan_from_summaries(summaries), minted, quiescent, True)


def _check_scan(
    scan: Dict[str, Dict[str, List[Tuple[int, Dict[str, Any]]]]],
    minted: Dict[str, int],
    quiescent: bool,
    all_shards_readable: bool,
) -> List[str]:
    problems: List[str] = []
    for asset_id in sorted(minted):
        entry = scan.get(asset_id, {"records": [], "locks": []})
        records = entry["records"]
        in_locks = [
            (shard, lock) for shard, lock in entry["locks"]
            if lock.get("direction") == "in"
        ]
        if len(records) > 1:
            shards = [shard for shard, _ in records]
            problems.append(f"asset {asset_id} duplicated on shards {shards}")
        elif not records and all_shards_readable:
            if quiescent or not in_locks:
                problems.append(f"asset {asset_id} destroyed (no record, "
                                f"{len(in_locks)} carrying lock(s))")
        for _shard, record in records:
            if record.get("value") != minted[asset_id]:
                problems.append(
                    f"asset {asset_id} value changed: "
                    f"{record.get('value')} != minted {minted[asset_id]}"
                )
        if quiescent and entry["locks"]:
            shards = [shard for shard, _ in entry["locks"]]
            problems.append(
                f"asset {asset_id} has leaked lock(s) on shards {shards}"
            )
    return problems
