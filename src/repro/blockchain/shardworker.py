"""Process-parallel shard execution: worlds, worker processes, engine.

The single-process :class:`~repro.blockchain.sharding.ShardedDeployment`
interleaves every shard's pipeline on one scheduler; the GIL then
serializes all validation, hashing and crypto, capping the 8-shard
replay's parallel efficiency.  This module is the escape hatch:

* :class:`ShardWorld` — one shard's complete pipeline (orderer, peers,
  executor, ledger, clients) on its *own* :class:`Network` and clock,
  built from a plain serializable spec so it can be constructed inside
  a freshly spawned worker process;
* :func:`_worker_main` — the worker process loop: resets the crypto
  memo caches (cold start regardless of fork/spawn), builds its shard
  worlds, then serves codec-framed epoch requests over a pipe;
* :class:`LocalShardGroupPort` / :class:`ProcessShardGroupPort` — the
  two placements behind one :class:`~repro.simnet.bridge.ShardGroupPort`
  protocol.  The local port round-trips every frame through the same
  :mod:`~repro.blockchain.codec` as the process port, so the two
  placements execute byte-identical command streams — bit-identical
  results are by construction, not by luck;
* :class:`BridgedShardEngine` — the deployment-shaped facade: routing,
  command submission with completion callbacks, the epoch loop, and
  summary collection.  :class:`BridgeSwapPort` adapts it for the
  :class:`~repro.blockchain.swaps.SwapCoordinator`, whose 2PC steps
  then traverse the time bridge like any other control-plane traffic.

Determinism argument (DESIGN.md §14): each shard world is a pure
function of its spec and its injected command stream; the bridge ships
identical command batches and merges upward events in a placement-
independent total order; therefore sim metrics, ledgers and state
hashes are identical for ``procs=1`` and ``procs=N``.
"""

from __future__ import annotations

import cProfile
import importlib
import multiprocessing
import os
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..simnet.bridge import (
    DEFAULT_LOOKAHEAD_MS,
    BridgeError,
    Command,
    ShardGroupPort,
    TimeBridge,
    UpEvent,
)
from ..simnet.latency import INTERCONTINENTAL, INTERNET_US, LAN_1GBPS, LatencyProfile
from .client import BlockchainClient
from .codec import decode, encode
from .config import FabricConfig
from .crypto import reset_crypto_caches
from .network import BlockchainNetwork
from .policy import MAJORITY
from .sharding import session_shard_key, shard_index_for_key
from .transaction import TxResult

__all__ = [
    "ShardWorld",
    "LocalShardGroupPort",
    "ProcessShardGroupPort",
    "BridgedShardEngine",
    "BridgeSwapPort",
    "shard_specs",
]

#: Named latency profiles a spec may reference (object graphs do not
#: cross the process boundary — names do).
_PROFILES: Dict[str, LatencyProfile] = {
    profile.name: profile
    for profile in (INTERNET_US, LAN_1GBPS, INTERCONTINENTAL)
}

ASSET_PREFIX = "asset/"
LOCK_PREFIX = "swaplock/"


def _resolve_contract(path: str) -> Callable[[], Any]:
    """Import a contract factory from a ``module:attr`` dotted path."""
    module_name, _, attr = path.partition(":")
    if not attr:
        raise ValueError(f"contract path {path!r} must be 'module:attr'")
    return getattr(importlib.import_module(module_name), attr)


def shard_specs(
    n_peers: int,
    n_shards: int,
    config: FabricConfig,
    seed: int = 0,
    policy: str = MAJORITY,
    profile: LatencyProfile = INTERNET_US,
    contract: str = "repro.blockchain.swaps:ShardAssetContract",
    profile_dir: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Serializable per-shard construction specs.

    Sizing, per-shard seeds and name prefixes follow
    :class:`~repro.blockchain.sharding.ShardedDeployment` exactly
    (``base + 1`` peers for the first ``n_peers % n_shards`` shards,
    seed ``seed + index``, prefix ``s<index>-``).
    """
    if n_shards < 1:
        raise ValueError("need at least one shard")
    if n_peers < n_shards:
        raise ValueError("need at least one peer per shard")
    if profile.name not in _PROFILES:
        raise ValueError(f"unknown profile {profile.name!r}")
    config_dict = dict(config.__dict__)
    config_dict["priority_functions"] = list(config.priority_functions)
    base, extra = divmod(n_peers, n_shards)
    specs: List[Dict[str, Any]] = []
    for index in range(n_shards):
        specs.append(
            {
                "index": index,
                "n_peers": base + (1 if index < extra else 0),
                "seed": seed + index,
                "ca_seed": seed,
                "policy": policy,
                "profile": profile.name,
                "config": config_dict,
                "contract": contract,
                "name_prefix": f"s{index}-",
                "profile_dir": profile_dir,
            }
        )
    return specs


class ShardWorld:
    """One shard's full pipeline on a private clock.

    Executes downward ``invoke`` commands at their effect times and
    buffers upward completion events, each stamped with
    ``(local time, shard index, emission seq)`` so the bridge can merge
    streams from many worlds into one global order.
    """

    def __init__(self, spec: Dict[str, Any]):
        self.index = int(spec["index"])
        config_dict = dict(spec["config"])
        config_dict["priority_functions"] = tuple(config_dict["priority_functions"])
        self.config = FabricConfig(**config_dict)
        from .identity import CertificateAuthority

        self.chain = BlockchainNetwork(
            n_peers=int(spec["n_peers"]),
            profile=_PROFILES[spec["profile"]],
            config=self.config,
            policy=spec["policy"],
            seed=int(spec["seed"]),
            ca=CertificateAuthority(seed=int(spec["ca_seed"])),
            name_prefix=spec["name_prefix"],
        )
        self.chain.install_contract(_resolve_contract(spec["contract"]))
        self.scheduler = self.chain.scheduler
        self._clients: Dict[str, BlockchainClient] = {}
        self._events: List[UpEvent] = []
        self._event_seq = 0
        self.last_commit_ms = 0.0
        self.blocks_committed = 0
        for peer in self.chain.peers:
            peer.ledger.on_append = self._on_append

    # -- upward events -------------------------------------------------

    def _on_append(self, _block, _executions, _codes) -> None:
        self.last_commit_ms = max(self.last_commit_ms, self.scheduler.now)
        self.blocks_committed += 1

    def _emit(self, kind: str, payload: Any) -> None:
        self._event_seq += 1
        self._events.append(
            (self.scheduler.now, self.index, self._event_seq, kind, payload)
        )

    def drain_events(self) -> List[UpEvent]:
        events, self._events = self._events, []
        return events

    # -- downward commands ---------------------------------------------

    def _client(self, prefix: str, poll_interval_ms: float) -> BlockchainClient:
        client = self._clients.get(prefix)
        if client is None:
            client = self.chain.create_client(
                f"{prefix}-s{self.index}", poll_interval_ms=poll_interval_ms
            )
            self._clients[prefix] = client
        return client

    def apply_commands(self, commands: List[Command]) -> None:
        for _seq, effect_time, op, payload in commands:
            if effect_time < self.scheduler.now:
                raise BridgeError(
                    f"shard {self.index}: command effect t={effect_time:.3f} "
                    f"is before local now={self.scheduler.now:.3f}"
                )
            if op != "invoke":
                raise BridgeError(f"shard {self.index}: unknown command op {op!r}")
            self.scheduler.call_at(effect_time, self._do_invoke, payload)

    def _do_invoke(self, payload: Dict[str, Any]) -> None:
        callback_id = payload["cb"]
        on_complete = None
        if callback_id is not None:
            def on_complete(result: TxResult, latency: float) -> None:
                self._emit("complete", (callback_id, result, latency))

        self._client(payload["prefix"], payload["poll_ms"]).invoke(
            payload["contract"],
            payload["function"],
            payload["args"],
            touched_keys=payload["keys"],
            on_complete=on_complete,
        )

    # -- epoch execution -----------------------------------------------

    def run_epoch(self, until: float) -> Dict[str, Any]:
        self.scheduler.run(until=until)
        return {
            "pending": self.scheduler.pending,
            "next_when": self.scheduler._peek_when(),
        }

    # -- inspection ----------------------------------------------------

    def _reference_peer(self):
        best = None
        for peer in self.chain.peers:
            if best is None or peer.committed_height > best.committed_height:
                best = peer
        return best

    def summary(self) -> Dict[str, Any]:
        """Codec-safe end-of-run digest of this shard's committed state."""
        peer = self._reference_peer()
        assets: Dict[str, Any] = {}
        locks: Dict[str, Any] = {}
        for key, value in sorted(peer.ledger.state.snapshot().items()):
            if value is None:
                continue  # tombstone
            if key.startswith(ASSET_PREFIX):
                assets[key[len(ASSET_PREFIX):]] = value
            elif key.startswith(LOCK_PREFIX):
                locks[key[len(LOCK_PREFIX):]] = value
        submitted = sum(c.submitted_count for c in self._clients.values())
        completed = sum(c.completed_count for c in self._clients.values())
        return {
            "shard": self.index,
            "committed_height": peer.committed_height,
            "committed_heights_all": sorted(
                {p.committed_height for p in self.chain.peers}
            ),
            "synced_heights": sorted({p.synced_height for p in self.chain.peers}),
            "ledgers_agree": len(
                {p.ledger.state_hash() for p in self.chain.peers}
            ) == 1,
            "state_hash": peer.ledger.state_hash(),
            "committed_tx_count": len(peer.ledger.committed_tx_ids()),
            "last_commit_ms": self.last_commit_ms,
            "sim_now_ms": self.scheduler.now,
            "events_processed": self.scheduler.events_processed,
            "assets": assets,
            "locks": locks,
            "counters": {
                "txs_submitted": submitted,
                "txs_completed": completed,
                "blocks_committed": self.blocks_committed,
            },
        }


# ----------------------------------------------------------------------
# frame protocol (shared by both placements)
#
#   down: ("epoch", until, {shard: [command, ...]})
#         ("summaries",)
#         ("stop",)
#   up:   ("events", [event, ...], {shard: {"pending", "next_when"}})
#         ("summaries", {shard: summary})
#         ("bye",)


class _WorldGroup:
    """The shard worlds hosted by one worker; executes decoded frames."""

    def __init__(self, specs: List[Dict[str, Any]]):
        self.worlds = {spec["index"]: ShardWorld(spec) for spec in specs}

    def handle(self, frame: Tuple) -> Tuple:
        kind = frame[0]
        if kind == "epoch":
            _, until, commands_by_shard = frame
            for index, commands in commands_by_shard.items():
                self.worlds[index].apply_commands(commands)
            events: List[UpEvent] = []
            stats: Dict[int, Dict[str, Any]] = {}
            for index in sorted(self.worlds):
                world = self.worlds[index]
                stats[index] = world.run_epoch(until)
                events.extend(world.drain_events())
            return ("events", events, stats)
        if kind == "summaries":
            return (
                "summaries",
                {index: world.summary() for index, world in self.worlds.items()},
            )
        raise BridgeError(f"unknown frame kind {frame[0]!r}")


def _worker_main(conn, specs_bytes: bytes) -> None:
    """Entry point of one spawned shard worker process."""
    # Cold caches regardless of start method: a forked worker inherits
    # the parent's verify/keypair memos, a spawned one starts empty —
    # after this reset both are identical (and deterministic).
    reset_crypto_caches()
    specs = decode(specs_bytes)
    profiler = None
    profile_dir = specs[0].get("profile_dir") if specs else None
    if profile_dir:
        profiler = cProfile.Profile()
        profiler.enable()
    group = _WorldGroup(specs)
    while True:
        frame = decode(conn.recv_bytes())
        if frame[0] == "stop":
            if profiler is not None:
                profiler.disable()
                os.makedirs(profile_dir, exist_ok=True)
                tag = "-".join(f"s{spec['index']}" for spec in specs)
                profiler.dump_stats(
                    os.path.join(profile_dir, f"shardworker_{tag}.pstats")
                )
            conn.send_bytes(encode(("bye",)))
            return
        conn.send_bytes(encode(group.handle(frame)))


class LocalShardGroupPort(ShardGroupPort):
    """All worlds in-process — but through the same codec-framed
    protocol as the process port, so the executed byte streams are
    identical in both placements."""

    def __init__(self, specs: List[Dict[str, Any]]):
        self.shard_indices = tuple(spec["index"] for spec in specs)
        self._group = _WorldGroup(decode(encode(specs)))
        self._reply: Optional[bytes] = None

    def _roundtrip(self, frame: Tuple) -> bytes:
        return encode(self._group.handle(decode(encode(frame))))

    def begin_epoch(self, until: float, commands: Dict[int, List[Command]]) -> None:
        self._reply = self._roundtrip(("epoch", until, commands))

    def finish_epoch(self) -> Tuple[List[UpEvent], Dict[int, Dict[str, Any]]]:
        assert self._reply is not None, "begin_epoch not called"
        _, events, stats = decode(self._reply)
        self._reply = None
        return events, stats

    def collect_summaries(self) -> Dict[int, Dict[str, Any]]:
        return decode(self._roundtrip(("summaries",)))[1]

    def close(self) -> None:
        pass


class ProcessShardGroupPort(ShardGroupPort):
    """Worlds in a spawned worker process, codec frames over a pipe.

    ``spawn`` (not ``fork``) so every worker starts from a clean
    interpreter: no inherited scheduler state, no warmed memo caches,
    identical bootstrap on every platform.
    """

    def __init__(self, specs: List[Dict[str, Any]]):
        self.shard_indices = tuple(spec["index"] for spec in specs)
        ctx = multiprocessing.get_context("spawn")
        self._conn, child_conn = ctx.Pipe(duplex=True)
        self._process = ctx.Process(
            target=_worker_main,
            args=(child_conn, encode(specs)),
            name=f"shardworker-{'-'.join(map(str, self.shard_indices))}",
            daemon=True,
        )
        self._process.start()
        child_conn.close()

    def begin_epoch(self, until: float, commands: Dict[int, List[Command]]) -> None:
        self._conn.send_bytes(encode(("epoch", until, commands)))

    def finish_epoch(self) -> Tuple[List[UpEvent], Dict[int, Dict[str, Any]]]:
        reply = decode(self._conn.recv_bytes())
        if reply[0] != "events":
            raise BridgeError(f"unexpected worker reply {reply[0]!r}")
        return reply[1], reply[2]

    def collect_summaries(self) -> Dict[int, Dict[str, Any]]:
        self._conn.send_bytes(encode(("summaries",)))
        reply = decode(self._conn.recv_bytes())
        if reply[0] != "summaries":
            raise BridgeError(f"unexpected worker reply {reply[0]!r}")
        return reply[1]

    def close(self) -> None:
        if self._process.is_alive():
            try:
                self._conn.send_bytes(encode(("stop",)))
                self._conn.recv_bytes()  # ("bye",)
            except (BrokenPipeError, EOFError, OSError):
                pass
        self._conn.close()
        self._process.join(timeout=30)
        if self._process.is_alive():  # pragma: no cover - hung worker
            self._process.terminate()
            self._process.join(timeout=5)


# ----------------------------------------------------------------------
# engine facade


class BridgedShardEngine:
    """Deployment-shaped facade over the bridge + worker worlds.

    The control plane (completion callbacks, swap coordinator timers)
    runs on the bridge's control scheduler; every shard interaction is
    a routed command.  ``procs=1`` hosts all worlds in-process (still
    codec-framed); ``procs=N`` distributes them round-robin over
    ``min(N, n_shards)`` spawned workers.  Results are bit-identical
    across placements by construction.
    """

    def __init__(
        self,
        n_peers: int,
        n_shards: int,
        config: Optional[FabricConfig] = None,
        policy: str = MAJORITY,
        profile: LatencyProfile = INTERNET_US,
        seed: int = 0,
        procs: int = 1,
        lookahead_ms: float = DEFAULT_LOOKAHEAD_MS,
        contract: str = "repro.blockchain.swaps:ShardAssetContract",
        profile_dir: Optional[str] = None,
    ):
        if procs < 1:
            raise ValueError("need at least one process")
        self.n_shards = n_shards
        self.config = config if config is not None else FabricConfig()
        self.contract_path = contract
        self.contract_name = _resolve_contract(contract).name
        self.procs = procs
        specs = shard_specs(
            n_peers, n_shards, self.config, seed=seed, policy=policy,
            profile=profile, contract=contract, profile_dir=profile_dir,
        )
        n_workers = min(procs, n_shards)
        by_worker: List[List[Dict[str, Any]]] = [[] for _ in range(n_workers)]
        for spec in specs:
            by_worker[spec["index"] % n_workers].append(spec)
        port_cls = LocalShardGroupPort if procs == 1 else ProcessShardGroupPort
        self.bridge = TimeBridge(
            [port_cls(group) for group in by_worker], lookahead_ms=lookahead_ms
        )
        self._summaries: Optional[Dict[int, Dict[str, Any]]] = None
        self._closed = False

    # -- routing (identical to ShardedDeployment) ----------------------

    def shard_index_for_key(self, key: str) -> int:
        return shard_index_for_key(key, self.n_shards)

    def shard_index_for_session(self, session_id: str) -> int:
        return self.shard_index_for_key(session_shard_key(session_id))

    # -- control plane -------------------------------------------------

    @property
    def now(self) -> float:
        return self.bridge.now

    @property
    def scheduler(self):
        return self.bridge.control

    def call_at(self, when: float, fn: Callable[..., Any], *args: Any):
        return self.bridge.call_at(when, fn, *args)

    def call_after(self, delay: float, fn: Callable[..., Any], *args: Any):
        return self.bridge.call_after(delay, fn, *args)

    def submit_invoke(
        self,
        shard_index: int,
        function: str,
        args: Tuple,
        touched_keys: Tuple[str, ...] = (),
        on_complete: Optional[Callable[[TxResult, float], None]] = None,
        client_prefix: str = "router",
        poll_interval_ms: float = 250.0,
        contract: Optional[str] = None,
        effect_time: Optional[float] = None,
    ) -> float:
        """Route one contract invocation to a shard world.

        ``on_complete(result, latency_ms)`` fires on the control clock
        at the completion's shard-local timestamp.  Without an explicit
        ``effect_time`` the call is *reactive* and takes effect one
        lookahead window from control-now (the modeled bridge transit);
        pre-planned streams pass their absolute injection times.
        Returns the effect time.
        """
        self._summaries = None
        callback_id = (
            self.bridge.register_callback(on_complete)
            if on_complete is not None else None
        )
        payload = {
            "cb": callback_id,
            "prefix": client_prefix,
            "poll_ms": float(poll_interval_ms),
            "contract": contract if contract is not None else self.contract_name,
            "function": function,
            "args": tuple(args),
            "keys": tuple(touched_keys),
        }
        return self.bridge.submit(shard_index, "invoke", payload, effect_time)

    def run(self) -> None:
        """Run epoch rounds until the whole system is quiescent."""
        self.bridge.run()

    # -- results -------------------------------------------------------

    def collect_summaries(self) -> Dict[int, Dict[str, Any]]:
        if self._summaries is None:
            merged: Dict[int, Dict[str, Any]] = {}
            for port in self.bridge.ports:
                merged.update(port.collect_summaries())
            self._summaries = {index: merged[index] for index in sorted(merged)}
        return self._summaries

    def committed_heights(self) -> List[int]:
        summaries = self.collect_summaries()
        return [summaries[i]["committed_height"] for i in range(self.n_shards)]

    def ledgers_agree(self) -> List[bool]:
        summaries = self.collect_summaries()
        return [summaries[i]["ledgers_agree"] for i in range(self.n_shards)]

    def state_hashes(self) -> List[str]:
        summaries = self.collect_summaries()
        return [summaries[i]["state_hash"] for i in range(self.n_shards)]

    def committed_tx_count(self) -> int:
        return sum(s["committed_tx_count"] for s in self.collect_summaries().values())

    def scheduler_events(self) -> int:
        """Shard events + control events: the cross-placement invariant."""
        total = sum(s["events_processed"] for s in self.collect_summaries().values())
        return total + self.bridge.control.events_processed

    def aggregate_telemetry(self, telemetry) -> None:
        """Merge per-worker counters into one parent metrics registry,
        labeled by shard — the single pane of glass over all workers."""
        for index, summary in self.collect_summaries().items():
            for name, value in summary["counters"].items():
                if value:
                    telemetry.registry.counter(
                        f"repro_shard_{name}_total",
                        f"per-shard {name.replace('_', ' ')} (worker aggregate)",
                        shard=str(index),
                    ).inc(value)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.bridge.close()

    def __enter__(self) -> "BridgedShardEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class BridgeSwapPort:
    """Adapts :class:`BridgedShardEngine` for the
    :class:`~repro.blockchain.swaps.SwapCoordinator`: 2PC submissions
    become bridged commands (reactive, so they pay the bridge transit
    latency), timers run on the control clock."""

    def __init__(self, engine: BridgedShardEngine, client_name: str = "swapcoord"):
        self.engine = engine
        self.client_name = client_name

    @property
    def now(self) -> float:
        return self.engine.now

    @property
    def swap_timeout_ms(self) -> float:
        return self.engine.config.swap_timeout_ms

    def call_after(self, delay: float, fn: Callable[..., Any], *args: Any):
        return self.engine.call_after(delay, fn, *args)

    def submit(
        self,
        shard_index: int,
        contract: str,
        function: str,
        args: Tuple,
        keys: Tuple[str, ...],
        on_complete: Callable[[TxResult, float], None],
    ) -> None:
        self.engine.submit_invoke(
            shard_index, function, args, touched_keys=keys,
            on_complete=on_complete, client_prefix=self.client_name,
            poll_interval_ms=self.engine.config.swap_poll_interval_ms,
            contract=contract,
        )

    def committed_state_get(self, shard_index: int, key: str) -> Any:
        raise NotImplementedError(
            "crash recovery reads committed state synchronously; that needs "
            "the in-process ShardedDeployment (chaos scenarios keep it)"
        )
